//! The Fig. 1 validation as a test suite: the threaded fan-in solver must
//! reproduce the sequential factor (up to floating-point reassociation in
//! the aggregation order) across processor counts, distribution strategies
//! and blocking sizes.

use pastix::graph::{build_problem, canonical_solution, rhs_for_solution, ProblemId};
use pastix::machine::MachineModel;
use pastix::ordering::{nested_dissection, OrderingOptions};
use pastix::sched::{map_and_schedule, DistStrategy, Mapping, SchedOptions};
use pastix::solver::{
    factorize_sequential, solve_in_place, FactorStorage, Plan, SolverConfig,
};
use pastix::symbolic::{analyze, Analysis, AnalysisOptions};

fn setup(id: ProblemId, scale: f64) -> (pastix::graph::SymCsc<f64>, Analysis) {
    let a = build_problem::<f64>(id, scale);
    let g = a.to_graph();
    let ord = nested_dissection(&g, &OrderingOptions::scotch_like());
    let an = analyze(&g, &ord, &AnalysisOptions::default());
    (a, an)
}

fn run_case(a: &pastix::graph::SymCsc<f64>, an: &Analysis, mapping: &Mapping) {
    let sym = &mapping.graph.split.symbol;
    let ap = a.permuted(&an.perm);
    let plan = Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
    let par = plan.factorize(&ap, &SolverConfig::default()).unwrap();
    let mut seq = FactorStorage::zeros(sym);
    seq.scatter(sym, &ap);
    factorize_sequential(sym, &mut seq).unwrap();
    let mut max_diff = 0.0f64;
    for (pa, pb) in par.panels.iter().zip(&seq.panels) {
        for (x, y) in pa.iter().zip(pb) {
            max_diff = max_diff.max((x - y).abs());
        }
    }
    assert!(max_diff < 1e-8, "factor deviation {max_diff}");
    let x_exact = canonical_solution::<f64>(a.n());
    let b = rhs_for_solution(&ap, &an.perm.apply_vec(&x_exact));
    let mut x = b.clone();
    solve_in_place(sym, &par, &mut x);
    assert!(ap.residual_norm(&x, &b) < 1e-12);
}

#[test]
fn proc_count_sweep_mixed() {
    let (a, an) = setup(ProblemId::Quer, 0.01);
    for p in [1usize, 2, 3, 4, 8, 16] {
        let machine = MachineModel::sp2(p);
        let mut opts = SchedOptions::default();
        opts.block_size = 24;
        opts.mapping.width_2d_min = 24;
        opts.mapping.procs_2d_min = 2.0;
        let mapping = map_and_schedule(&an.symbol, &machine, &opts);
        run_case(&a, &an, &mapping);
    }
}

#[test]
fn strategy_sweep() {
    let (a, an) = setup(ProblemId::Ship001, 0.01);
    for strategy in [DistStrategy::Only1d, DistStrategy::Mixed1d2d] {
        let machine = MachineModel::sp2(4);
        let mut opts = SchedOptions::default();
        opts.block_size = 16;
        opts.mapping.strategy = strategy;
        opts.mapping.width_2d_min = 16;
        opts.mapping.procs_2d_min = 2.0;
        let mapping = map_and_schedule(&an.symbol, &machine, &opts);
        run_case(&a, &an, &mapping);
    }
}

#[test]
fn block_size_sweep() {
    let (a, an) = setup(ProblemId::Thread, 0.008);
    for block in [8usize, 32, 128] {
        let machine = MachineModel::sp2(4);
        let mut opts = SchedOptions::default();
        opts.block_size = block;
        opts.mapping.width_2d_min = block;
        opts.mapping.procs_2d_min = 2.0;
        let mapping = map_and_schedule(&an.symbol, &machine, &opts);
        run_case(&a, &an, &mapping);
    }
}

#[test]
fn solid_3d_with_many_procs() {
    let (a, an) = setup(ProblemId::Bmwcra1, 0.004);
    let machine = MachineModel::sp2(8);
    let mut opts = SchedOptions::default();
    opts.block_size = 16;
    opts.mapping.width_2d_min = 16;
    opts.mapping.procs_2d_min = 2.0;
    let mapping = map_and_schedule(&an.symbol, &machine, &opts);
    run_case(&a, &an, &mapping);
}
