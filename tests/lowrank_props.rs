//! Property tests for the low-rank kernel family: the compressor's error
//! contract, the four-way `lr_gemm_nt_acc` dispatch against the dense
//! reference, the solve-side products, and recompression. Inputs are
//! synthesized from a per-case seed so every run replays identically.

use pastix_kernels::lowrank::{LowRankBlock, LrOp};
use pastix_kernels::{
    compress_block, gemm_nn_acc, gemm_nt_acc, gemm_tn_acc, lr_gemm_nn_acc, lr_gemm_nt_acc,
    lr_gemm_nt_acc_recompress, lr_gemm_tn_acc,
};
use proptest::prelude::*;

/// SplitMix64 stream for matrix entries; dimensions come from the
/// strategy, values from this (one seed per case keeps the strategies
/// independent of the drawn sizes).
struct Vals {
    state: u64,
}

impl Vals {
    fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }

    fn fill(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next()).collect()
    }
}

/// Exact rank-`r` block `U·Vᵀ` as a column-major dense matrix.
fn low_rank_dense(vals: &mut Vals, m: usize, n: usize, r: usize) -> Vec<f64> {
    let u = vals.fill(m * r);
    let v = vals.fill(n * r);
    let mut a = vec![0.0; m * n];
    gemm_nt_acc(m, n, r, 1.0, &u, m, &v, n, &mut a, m);
    a
}

fn frob(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

fn compress(vals: &mut Vals, m: usize, n: usize, r: usize, tol: f64) -> LowRankBlock<f64> {
    let a = low_rank_dense(vals, m, n, r);
    compress_block(m, n, &a, m, tol, 0.0).expect("an exact low-rank block must compress")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `compress_block` on an exact rank-`r` matrix recovers a factored
    /// form with rank ≤ `r` whose reconstruction error meets the
    /// tolerance, and the representation is profitable.
    #[test]
    fn compress_recovers_low_rank((m, n, r, seed) in (6usize..24, 6usize..24, 1usize..4, 0u64..1 << 48)) {
        let mut vals = Vals::new(seed);
        let a = low_rank_dense(&mut vals, m, n, r);
        let tol = 1e-10 * frob(&a).max(1.0);
        let lr = compress_block(m, n, &a, m, tol, 0.0)
            .expect("exact low-rank block must compress");
        prop_assert!(lr.rank <= r, "rank {} exceeds constructed rank {r}", lr.rank);
        prop_assert!(lr.is_profitable());
        let back = lr.decompress();
        let diff: Vec<f64> = a.iter().zip(&back).map(|(x, y)| x - y).collect();
        prop_assert!(frob(&diff) <= tol, "reconstruction error {} > {tol}", frob(&diff));
    }

    /// On arbitrary (generically full-rank) data the compressor either
    /// declines — the caller keeps the block dense — or returns a
    /// profitable representation within the requested absolute tolerance.
    #[test]
    fn compress_error_contract((m, n, seed) in (4usize..20, 4usize..20, 0u64..1 << 48)) {
        let mut vals = Vals::new(seed);
        let a = vals.fill(m * n);
        let tol = 0.3 * frob(&a);
        if let Some(lr) = compress_block(m, n, &a, m, tol, 0.0) {
            prop_assert!(lr.is_profitable());
            prop_assert!(lr.bytes() < lr.dense_bytes());
            let back = lr.decompress();
            let diff: Vec<f64> = a.iter().zip(&back).map(|(x, y)| x - y).collect();
            prop_assert!(frob(&diff) <= tol, "error {} > {tol}", frob(&diff));
        }
    }

    /// All four `lr_gemm_nt_acc` dispatch arms agree with the dense
    /// reference on decompressed operands; the dense×dense arm is
    /// bitwise-identical to `gemm_nt_acc`.
    #[test]
    fn lr_gemm_nt_matches_dense((m, n, k, seed) in (5usize..16, 5usize..16, 6usize..16, 0u64..1 << 48)) {
        let mut vals = Vals::new(seed);
        let la = compress(&mut vals, m, k, 2, 1e-12);
        let lb = compress(&mut vals, n, k, 2, 1e-12);
        let (da, db) = (la.decompress(), lb.decompress());
        let c0 = vals.fill(m * n);

        let mut want = c0.clone();
        gemm_nt_acc(m, n, k, 0.5, &da, m, &db, n, &mut want, m);

        let arms: [(LrOp<'_, f64>, LrOp<'_, f64>); 4] = [
            (LrOp::Dense { a: &da, ld: m }, LrOp::Dense { a: &db, ld: n }),
            (LrOp::Lr(la.as_ref()), LrOp::Dense { a: &db, ld: n }),
            (LrOp::Dense { a: &da, ld: m }, LrOp::Lr(lb.as_ref())),
            (LrOp::Lr(la.as_ref()), LrOp::Lr(lb.as_ref())),
        ];
        let scale = frob(&want).max(1.0);
        for (i, (a, b)) in arms.into_iter().enumerate() {
            let mut c = c0.clone();
            lr_gemm_nt_acc(m, n, k, 0.5, a, b, &mut c, m);
            if i == 0 {
                prop_assert!(
                    c.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "dense×dense arm must be bitwise gemm_nt_acc"
                );
            } else {
                let diff: Vec<f64> = c.iter().zip(&want).map(|(x, y)| x - y).collect();
                prop_assert!(frob(&diff) <= 1e-9 * scale, "arm {i} error {}", frob(&diff));
            }
        }
    }

    /// The solve-side products (`Y += α·(U·Vᵀ)·X` and `C += α·(U·Vᵀ)ᵀ·B`)
    /// match the dense products on the decompressed block.
    #[test]
    fn lr_solve_products_match_dense((m, n, nrhs, seed) in (5usize..16, 5usize..16, 1usize..4, 0u64..1 << 48)) {
        let mut vals = Vals::new(seed);
        let lr = compress(&mut vals, m, n, 2, 1e-12);
        let dense = lr.decompress();
        let scale = frob(&dense).max(1.0);

        let x = vals.fill(n * nrhs);
        let y0 = vals.fill(m * nrhs);
        let mut y_want = y0.clone();
        gemm_nn_acc(m, nrhs, n, 1.5, &dense, m, &x, n, &mut y_want, m);
        let mut y = y0;
        lr_gemm_nn_acc(1.5, lr.as_ref(), &x, nrhs, n, &mut y, m);
        let dy: Vec<f64> = y.iter().zip(&y_want).map(|(a, b)| a - b).collect();
        prop_assert!(frob(&dy) <= 1e-9 * scale, "forward product error {}", frob(&dy));

        let b = vals.fill(m * nrhs);
        let c0 = vals.fill(n * nrhs);
        let mut c_want = c0.clone();
        gemm_tn_acc(n, nrhs, m, -1.0, &dense, m, &b, m, &mut c_want, n);
        let mut c = c0;
        lr_gemm_tn_acc(-1.0, lr.as_ref(), &b, nrhs, m, &mut c, n);
        let dc: Vec<f64> = c.iter().zip(&c_want).map(|(a, b)| a - b).collect();
        prop_assert!(frob(&dc) <= 1e-9 * scale, "transpose product error {}", frob(&dc));
    }

    /// Recompressing accumulation tracks the dense sum: after a low-rank
    /// accumulator absorbs an update, decompressing it reproduces the
    /// dense result within the recompression tolerance, and an update that
    /// cancels the accumulator drives the rank back to zero.
    #[test]
    fn recompress_tracks_dense_sum((m, n, k, seed) in (5usize..14, 5usize..14, 5usize..14, 0u64..1 << 48)) {
        let mut vals = Vals::new(seed);
        let mut acc = compress(&mut vals, m, n, 2, 1e-12);
        let la = compress(&mut vals, m, k, 2, 1e-12);
        let lb = compress(&mut vals, n, k, 2, 1e-12);

        let mut want = acc.decompress();
        lr_gemm_nt_acc(m, n, k, 1.0, LrOp::Lr(la.as_ref()), LrOp::Lr(lb.as_ref()), &mut want, m);
        let tol = 1e-10 * frob(&want).max(1.0);
        lr_gemm_nt_acc_recompress(&mut acc, k, 1.0, LrOp::Lr(la.as_ref()), LrOp::Lr(lb.as_ref()), tol, 0.0);
        let got = acc.decompress();
        let diff: Vec<f64> = got.iter().zip(&want).map(|(a, b)| a - b).collect();
        prop_assert!(frob(&diff) <= tol, "accumulated error {}", frob(&diff));
        prop_assert!(acc.rank <= m.min(n));

        // Cancel the accumulator with its own dense negation (A = −sum,
        // B = I): the recompressor collapses the rank back down instead
        // of letting it keep growing.
        let neg: Vec<f64> = got.iter().map(|v| -v).collect();
        let mut eye = vec![0.0; n * n];
        for j in 0..n {
            eye[j + j * n] = 1.0;
        }
        let before = acc.rank;
        lr_gemm_nt_acc_recompress(
            &mut acc,
            n,
            1.0,
            LrOp::Dense { a: &neg, ld: m },
            LrOp::Dense { a: &eye, ld: n },
            2.0 * tol,
            0.0,
        );
        prop_assert!(acc.rank <= before, "cancellation grew the rank");
        prop_assert!(frob(&acc.decompress()) <= 4.0 * tol, "cancelled accumulator norm {}", frob(&acc.decompress()));
    }
}
