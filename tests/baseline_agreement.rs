//! The PaStiX solver and the PSPASES-like multifrontal baseline must agree
//! numerically (same systems, same answers), and the baseline's parallel
//! time model must behave like Table 2's second rows.

use pastix::graph::{build_problem, canonical_solution, rhs_for_solution, ProblemId};
use pastix::machine::MachineModel;
use pastix::multifrontal::{multifrontal_llt, pspases_time, solve_llt_in_place, PspasesOptions};
use pastix::ordering::{nested_dissection, OrderingOptions};
use pastix::sched::{map_and_schedule, SchedOptions};
use pastix::symbolic::{analyze, AnalysisOptions};

#[test]
fn multifrontal_and_supernodal_agree_across_suite() {
    for id in [ProblemId::Quer, ProblemId::Oilpan, ProblemId::Thread] {
        let a = build_problem::<f64>(id, 0.008);
        let g = a.to_graph();
        let ord = nested_dissection(&g, &OrderingOptions::metis_like());
        let an = analyze(&g, &ord, &AnalysisOptions::default());
        let ap = a.permuted(&an.perm);
        let x_exact = canonical_solution::<f64>(a.n());
        let b = rhs_for_solution(&ap, &x_exact);

        let mf = multifrontal_llt(&an.symbol, &ap).unwrap();
        let mut x1 = b.clone();
        solve_llt_in_place(&an.symbol, &mf, &mut x1);

        let (x2, _) = pastix::solver::factor_and_solve(&an.symbol, &ap, &b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-7, "{}: {u} vs {v}", id.name());
        }
        assert!(ap.residual_norm(&x1, &b) < 1e-12);
    }
}

#[test]
fn pspases_model_scales_like_table2_baseline() {
    let a = build_problem::<f64>(ProblemId::Shipsec5, 0.02);
    let g = a.to_graph();
    let ord = nested_dissection(&g, &OrderingOptions::metis_like());
    let an = analyze(&g, &ord, &AnalysisOptions::default());
    let opts = PspasesOptions::default();
    let t1 = pspases_time(&an.symbol, &MachineModel::sp2(1), &opts).time;
    let t8 = pspases_time(&an.symbol, &MachineModel::sp2(8), &opts).time;
    let t64 = pspases_time(&an.symbol, &MachineModel::sp2(64), &opts).time;
    assert!(t8 < t1 * 0.5, "P=8 speedup too small: {t1} -> {t8}");
    assert!(t64 <= t8 * 1.1, "P=64 regressed hard: {t8} -> {t64}");
    assert!(t64 > t1 / 64.0, "speedup cannot be linear at P=64");
}

#[test]
fn pastix_competitive_with_baseline_at_moderate_procs() {
    // The paper's comparison: PaStiX (Scotch ordering, static fan-in
    // schedule) vs PSPASES (MeTiS ordering, multifrontal) — PaStiX should
    // win or tie at P ≤ 32 on a large shell problem.
    let a = build_problem::<f64>(ProblemId::Ship003, 0.03);
    let g = a.to_graph();

    let ord_sc = nested_dissection(&g, &OrderingOptions::scotch_like());
    let an_sc = analyze(&g, &ord_sc, &AnalysisOptions::default());
    let ord_me = nested_dissection(&g, &OrderingOptions::metis_like());
    let an_me = analyze(&g, &ord_me, &AnalysisOptions::default());

    for p in [8usize, 32] {
        let machine = MachineModel::sp2(p);
        let pastix_t = map_and_schedule(&an_sc.symbol, &machine, &SchedOptions::default())
            .schedule
            .makespan;
        let base_t = pspases_time(&an_me.symbol, &machine, &PspasesOptions::default()).time;
        assert!(
            pastix_t < base_t * 1.25,
            "P={p}: PaStiX {pastix_t} should be competitive with baseline {base_t}"
        );
    }
}
