//! Tests of the extension features beyond the paper's headline pipeline:
//! the distributed triangular solve, the SMP-node machine model (the
//! paper's announced future work), and the schedule memory accounting.

use pastix::graph::{build_problem, canonical_solution, rhs_for_solution, ProblemId};
use pastix::machine::MachineModel;
use pastix::ordering::{nested_dissection, OrderingOptions};
use pastix::sched::{map_and_schedule, memory_stats, validate_schedule, SchedOptions};
use pastix::solver::{
    solve_in_place, Plan, RefineOptions, SolverConfig,
};
use pastix::symbolic::{analyze, AnalysisOptions};

#[test]
fn distributed_solve_through_facade() {
    let a = build_problem::<f64>(ProblemId::Quer, 0.015);
    let cfg = SolverConfig::default();
    let plan = Plan::analyze(&a, &cfg);
    let run = plan.factorize(&a, &cfg).unwrap();
    let x_exact = canonical_solution::<f64>(a.n());
    let b = rhs_for_solution(&a, &x_exact);
    // Sequential sweeps over the same factor, as the reference.
    let perm = plan.permutation().unwrap();
    let mut xp = perm.apply_vec(&b);
    solve_in_place(plan.symbol(), &run.storage, &mut xp);
    let x_seq = perm.unapply_vec(&xp);
    // The distributed triangular solve is the plan-driven default.
    let x_dist = run.solve(&b);
    for (u, v) in x_seq.iter().zip(&x_dist) {
        assert!((u - v).abs() < 1e-9, "{u} vs {v}");
    }
    assert!(a.residual_norm(&x_dist, &b) < 1e-12);
}

#[test]
fn smp_model_schedules_validly_and_not_slower() {
    let a = build_problem::<f64>(ProblemId::Ship003, 0.02);
    let g = a.to_graph();
    let ord = nested_dissection(&g, &OrderingOptions::scotch_like());
    let an = analyze(&g, &ord, &AnalysisOptions::default());

    let flat = MachineModel::sp2(16);
    let smp = MachineModel::sp2_smp(16, 4);
    let m_flat = map_and_schedule(&an.symbol, &flat, &SchedOptions::default());
    let m_smp = map_and_schedule(&an.symbol, &smp, &SchedOptions::default());
    validate_schedule(&m_flat.graph, &m_flat.schedule, &flat).unwrap();
    validate_schedule(&m_smp.graph, &m_smp.schedule, &smp).unwrap();
    // Cheaper intra-node communication can only help the greedy mapper.
    assert!(
        m_smp.schedule.makespan <= m_flat.schedule.makespan * 1.02,
        "SMP {} vs flat {}",
        m_smp.schedule.makespan,
        m_flat.schedule.makespan
    );
}

#[test]
fn smp_numeric_run_still_correct() {
    // The SMP model changes the mapping; the threaded solver must still
    // produce a correct factor under it.
    let a = build_problem::<f64>(ProblemId::Oilpan, 0.01);
    let mut cfg = SolverConfig::default();
    cfg.analyze.machine = Some(MachineModel::sp2_smp(4, 2));
    let plan = Plan::analyze(&a, &cfg);
    let run = plan.factorize(&a, &cfg).unwrap();
    let x_exact = canonical_solution::<f64>(a.n());
    let b = rhs_for_solution(&a, &x_exact);
    let x = run.solve(&b);
    assert!(a.residual_norm(&x, &b) < 1e-12);
}

#[test]
fn memory_stats_account_for_every_region() {
    let a = build_problem::<f64>(ProblemId::Quer, 0.015);
    let g = a.to_graph();
    let ord = nested_dissection(&g, &OrderingOptions::scotch_like());
    let an = analyze(&g, &ord, &AnalysisOptions::default());
    let machine = MachineModel::sp2(8);
    let m = map_and_schedule(&an.symbol, &machine, &SchedOptions::default());
    let stats = memory_stats(&m.graph, &m.schedule);
    assert_eq!(stats.factor_scalars.len(), 8);
    // Every factor scalar lives somewhere: the sum over processors must be
    // at least the symbol's stored entry count (BDIV double-buffering can
    // push it above).
    let total: u64 = stats.factor_scalars.iter().sum();
    let stored = m.graph.split.symbol.nnz().stored_entries;
    assert!(total >= stored, "total {total} < stored {stored}");
    assert!(stats.max_total() >= total / 8);
    // On one processor there is no aggregation memory at all.
    let m1 = map_and_schedule(&an.symbol, &MachineModel::sp2(1), &SchedOptions::default());
    let s1 = memory_stats(&m1.graph, &m1.schedule);
    assert!(s1.aub_scalars_bound.iter().all(|&v| v == 0));
}

#[test]
fn memory_spreads_with_more_processors() {
    let a = build_problem::<f64>(ProblemId::Mt1, 0.01);
    let g = a.to_graph();
    let ord = nested_dissection(&g, &OrderingOptions::scotch_like());
    let an = analyze(&g, &ord, &AnalysisOptions::default());
    let m1 = map_and_schedule(&an.symbol, &MachineModel::sp2(1), &SchedOptions::default());
    let s1 = memory_stats(&m1.graph, &m1.schedule);
    let m8 = map_and_schedule(&an.symbol, &MachineModel::sp2(8), &SchedOptions::default());
    let s8 = memory_stats(&m8.graph, &m8.schedule);
    // The per-processor factor footprint must shrink substantially.
    let max1 = *s1.factor_scalars.iter().max().unwrap();
    let max8 = *s8.factor_scalars.iter().max().unwrap();
    assert!(
        max8 < max1 / 2,
        "8-proc max footprint {max8} vs 1-proc {max1}"
    );
}

#[test]
fn blocked_multi_rhs_through_facade() {
    let a = build_problem::<f64>(ProblemId::Ship001, 0.01);
    let n = a.n();
    let mut cfg = SolverConfig::default();
    cfg.analyze.procs = 2;
    let plan = Plan::analyze(&a, &cfg);
    let run = plan.factorize(&a, &cfg).unwrap();
    let nrhs = 3;
    let mut b = vec![0.0f64; n * nrhs];
    let mut exact = Vec::new();
    for r in 0..nrhs {
        let xe: Vec<f64> = (0..n).map(|i| ((i * (r + 2)) % 11) as f64 - 5.0).collect();
        let br = rhs_for_solution(&a, &xe);
        b[r * n..(r + 1) * n].copy_from_slice(&br);
        exact.push(xe);
    }
    let x = run.solve_panel(&b, nrhs);
    for r in 0..nrhs {
        let single = run.solve(&b[r * n..(r + 1) * n]);
        for i in 0..n {
            assert!((x[i + r * n] - single[i]).abs() < 1e-12);
            assert!((x[i + r * n] - exact[r][i]).abs() < 1e-8);
        }
    }
}

#[test]
fn iterative_refinement_never_degrades() {
    let a = build_problem::<f64>(ProblemId::Thread, 0.008);
    let mut cfg = SolverConfig::default();
    cfg.analyze.procs = 2;
    let plan = Plan::analyze(&a, &cfg);
    let run = plan.factorize(&a, &cfg).unwrap();
    let x_exact = canonical_solution::<f64>(a.n());
    let b = rhs_for_solution(&a, &x_exact);
    let x0 = run.solve(&b);
    let res0 = a.residual_norm(&x0, &b);
    let out = run.solve_refined(&a, &b, &RefineOptions { max_iter: 3, ..Default::default() });
    assert!(
        out.residual <= res0 * (1.0 + 1e-9),
        "refined {} worse than direct {res0}",
        out.residual
    );
    assert!(a.residual_norm(&out.x, &b) <= res0 * (1.0 + 1e-9));
}
