//! Stress tests in two tiers.
//!
//! The `*_fast` variants below run in the regular suite (tier-1): same
//! code paths as the large runs, downscaled so `cargo test` stays fast.
//! The paper-adjacent sizes stay `#[ignore]`d — run them with
//! `cargo test --release -p pastix-integration --test stress -- --ignored`.

use pastix::graph::{build_problem, canonical_solution, rhs_for_solution, ProblemId};
use pastix::machine::MachineModel;
use pastix::ordering::{nested_dissection, OrderingOptions};
use pastix::sched::{map_and_schedule, validate_schedule, SchedOptions};
use pastix::solver::{Plan, SolverConfig};
use pastix::symbolic::{analyze, AnalysisOptions};

#[test]
fn shipsec5_end_to_end_fast() {
    // Tier-1 variant of `quarter_scale_shipsec5_end_to_end`: same
    // pipeline, same assertions, downscaled problem.
    let a = build_problem::<f64>(ProblemId::Shipsec5, 0.05);
    let mut cfg = SolverConfig::default();
    cfg.analyze.procs = 2;
    cfg.analyze.sched.block_size = 32;
    let plan = Plan::analyze(&a, &cfg);
    let run = plan.factorize(&a, &cfg).unwrap();
    let x_exact = canonical_solution::<f64>(a.n());
    let b = rhs_for_solution(&a, &x_exact);
    let x = run.solve(&b);
    assert!(a.residual_norm(&x, &b) < 1e-12);
}

#[test]
fn full_suite_schedules_fast() {
    // Tier-1 variant of `full_suite_schedules_at_tenth_scale`: every
    // problem of the suite still flows through ordering → analysis →
    // mapping → validated schedule, at 3% scale for 16 processors.
    for id in ProblemId::ALL {
        let a = build_problem::<f64>(id, 0.03);
        let g = a.to_graph();
        let ord = nested_dissection(&g, &OrderingOptions::scotch_like());
        let an = analyze(&g, &ord, &AnalysisOptions::default());
        let machine = MachineModel::sp2(16);
        let m = map_and_schedule(&an.symbol, &machine, &SchedOptions::default());
        validate_schedule(&m.graph, &m.schedule, &machine)
            .unwrap_or_else(|e| panic!("{}: {e}", id.name()));
    }
}

#[test]
fn parallel_numeric_3d_solid_fast() {
    // Tier-1 variant of `parallel_numeric_on_large_3d_solid`, including
    // the distributed solve.
    let a = build_problem::<f64>(ProblemId::Mt1, 0.02);
    let cfg = SolverConfig::default();
    let plan = Plan::analyze(&a, &cfg);
    let run = plan.factorize(&a, &cfg).unwrap();
    let x_exact = canonical_solution::<f64>(a.n());
    let b = rhs_for_solution(&a, &x_exact);
    let x = run.solve(&b);
    assert!(a.residual_norm(&x, &b) < 1e-12);
}

#[test]
#[ignore = "large: ~1 minute in release"]
fn quarter_scale_shipsec5_end_to_end() {
    let a = build_problem::<f64>(ProblemId::Shipsec5, 0.25);
    assert!(a.n() > 30_000);
    let mut cfg = SolverConfig::default();
    cfg.analyze.procs = 2;
    cfg.analyze.sched.block_size = 64;
    let plan = Plan::analyze(&a, &cfg);
    let run = plan.factorize(&a, &cfg).unwrap();
    let x_exact = canonical_solution::<f64>(a.n());
    let b = rhs_for_solution(&a, &x_exact);
    let x = run.solve(&b);
    assert!(a.residual_norm(&x, &b) < 1e-12);
}

#[test]
#[ignore = "large: schedules the full suite for 64 procs"]
fn full_suite_schedules_at_tenth_scale() {
    for id in ProblemId::ALL {
        let a = build_problem::<f64>(id, 0.1);
        let g = a.to_graph();
        let ord = nested_dissection(&g, &OrderingOptions::scotch_like());
        let an = analyze(&g, &ord, &AnalysisOptions::default());
        let machine = MachineModel::sp2(64);
        let m = map_and_schedule(&an.symbol, &machine, &SchedOptions::default());
        validate_schedule(&m.graph, &m.schedule, &machine)
            .unwrap_or_else(|e| panic!("{}: {e}", id.name()));
    }
}

#[test]
#[ignore = "large: threaded factorization of a 3D solid"]
fn parallel_numeric_on_large_3d_solid() {
    let a = build_problem::<f64>(ProblemId::Mt1, 0.08);
    let cfg = SolverConfig::default();
    let plan = Plan::analyze(&a, &cfg);
    let run = plan.factorize(&a, &cfg).unwrap();
    let x_exact = canonical_solution::<f64>(a.n());
    let b = rhs_for_solution(&a, &x_exact);
    let x = run.solve(&b);
    assert!(a.residual_norm(&x, &b) < 1e-12);
}
