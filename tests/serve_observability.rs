//! Serving-layer observability: per-request tracing, the always-on
//! flight recorder, and the metrics exposition surface.
//!
//! Pins the production-observability contract end to end:
//!
//! * every request admitted to a traced [`RequestQueue`] appears in the
//!   exported Chrome trace as a parent `request` async span with nested
//!   stage children (`queue_wait`, `coalesce`, `analyze`/`factorize` on
//!   a miss, `solve`) and a flow arrow into the solver ranks;
//! * on the sim backend the exported trace is a byte-identical function
//!   of `(seed, policy)`;
//! * a forced rank panic and a watchdog trip each dump a black box that
//!   names the in-flight request ids;
//! * the Prometheus text exposition is pinned against a committed golden
//!   file (regenerate with `PASTIX_UPDATE_GOLDEN=1`), and the session's
//!   opt-in scrape endpoint serves the same rendering over HTTP;
//! * a traced wall-clock production run persists the task-calibration
//!   dotfile when (and only when) `SolverConfig::persist_calibration`
//!   opts in.

use pastix::graph::gen::{grid_spd, Stencil, ValueKind};
use pastix::graph::rhs_for_solution;
use pastix::runtime::sim::{FaultPlan, SchedPolicy};
use pastix::runtime::Backend;
use pastix::sched::SchedOptions;
use pastix::solver::{ChaosOptions, SolverConfig};
use pastix_serve::{RequestQueue, SessionOptions, SolverSession};
use pastix_trace::export::{chrome_trace, validate_chrome_trace};
use pastix_trace::metrics::MetricsRegistry;
use pastix_trace::{flight, TraceOptions};
use std::sync::Mutex;

/// Serializes tests that touch process-global state: the black-box dump
/// directory, the watchdog/calibration environment knobs. Poisoning is
/// ignored — a failed test must not cascade into the others.
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

fn global_lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn test_matrix() -> pastix::graph::SymCsc<f64> {
    grid_spd::<f64>(8, 8, 1, Stencil::Star, false, ValueKind::RandomSpd(31))
}

fn sim_opts(seed: u64, policy: SchedPolicy, max_panel: usize) -> SessionOptions {
    let mut topts = TraceOptions::deterministic();
    topts.sample_every = 1;
    SessionOptions {
        procs: 3,
        max_panel,
        sched: SchedOptions { block_size: 8, ..Default::default() },
        solver: SolverConfig::new()
            .with_backend(Backend::Sim(FaultPlan::builder(seed).policy(policy).build()))
            .with_trace(topts),
        ..Default::default()
    }
}

fn submit_requests(
    q: &mut RequestQueue<f64>,
    a: &pastix::graph::SymCsc<f64>,
    count: usize,
    t0: u64,
) -> Vec<u64> {
    let n = a.n();
    (0..count)
        .map(|r| {
            let xe: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 3 + r * 7) % 11) as f64).collect();
            q.submit(rhs_for_solution(a, &xe), t0 + 100 * r as u64)
        })
        .collect()
}

/// Events of phase `ph` on the serve category, as `(name, async id)`.
fn serve_events(j: &pastix_json::Json, ph: &str) -> Vec<(String, u64)> {
    j.get("traceEvents")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str().ok().map(str::to_string)).as_deref() == Some(ph))
        .filter(|e| e.get("cat").and_then(|c| c.as_str().ok().map(str::to_string)).as_deref() == Some("serve"))
        .map(|e| {
            (
                e.get("name").unwrap().as_str().unwrap().to_string(),
                e.get("id").unwrap().as_f64().unwrap() as u64,
            )
        })
        .collect()
}

/// Every admitted request shows up in the Chrome export as a parent
/// `request` span with its stage children under the same async id, and
/// dispatch draws flow arrows into the solver ranks.
#[test]
fn every_request_exports_parent_and_stage_spans() {
    let a = test_matrix();
    let mut session = SolverSession::<f64>::new(sim_opts(11, SchedPolicy::Uniform, 2));
    let mut q = RequestQueue::traced();
    let ids = submit_requests(&mut q, &a, 5, 0);
    let mut t = 1_000u64;
    while !q.is_empty() {
        q.serve_batch(&mut session, &a, t, t + 500).expect("serve batch");
        t += 1_000;
    }
    let log = q.take_trace();
    assert_eq!(log.ranks[0].rank, pastix_trace::SERVE_RANK);
    let j = chrome_trace(&log);
    validate_chrome_trace(&j).expect("exported trace must validate");

    let begins = serve_events(&j, "b");
    let ends = serve_events(&j, "e");
    for &id in &ids {
        for stage in ["request", "queue_wait", "coalesce", "solve"] {
            let k = (stage.to_string(), id);
            assert!(begins.contains(&k), "request {id}: missing {stage} begin");
            assert!(ends.contains(&k), "request {id}: missing {stage} end");
        }
    }
    // The first batch factorized (cache miss): its riders carry the
    // amortized analyze/factorize markers; later batches hit and don't.
    for stage in ["analyze", "factorize"] {
        assert!(begins.contains(&(stage.to_string(), ids[0])), "miss batch: missing {stage}");
        assert!(
            !begins.contains(&(stage.to_string(), ids[4])),
            "hit batch must not re-mark {stage}"
        );
    }
    // Dispatch→solver-rank causality: at least one flow arrow per batch.
    let evs = j.get("traceEvents").unwrap().as_arr().unwrap();
    let n_starts = evs
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str().ok().map(str::to_string)).as_deref() == Some("s"))
        .count();
    assert!(n_starts >= 3, "expected a flow arrow per batch, got {n_starts}");
}

/// On the sim backend the exported serving trace is a pure function of
/// `(seed, policy)`: two identical runs are byte-identical.
#[test]
fn serve_trace_byte_identical_per_seed_policy() {
    let a = test_matrix();
    let run = |seed: u64, policy: SchedPolicy| -> String {
        let mut session = SolverSession::<f64>::new(sim_opts(seed, policy, 4));
        let mut q = RequestQueue::traced();
        submit_requests(&mut q, &a, 6, 0);
        let mut t = 1_000u64;
        while !q.is_empty() {
            q.serve_batch(&mut session, &a, t, t + 500).expect("serve batch");
            t += 1_000;
        }
        chrome_trace(&q.take_trace()).compact()
    };
    for policy in [SchedPolicy::Uniform, SchedPolicy::DeliverLast] {
        assert_eq!(run(17, policy), run(17, policy), "trace must be deterministic per (seed, policy)");
    }
}

fn fresh_dump_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pastix-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dumps_with_reason(dir: &std::path::Path, reason: &str) -> Vec<pastix_json::Json> {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("blackbox-"))
        .filter_map(|e| std::fs::read_to_string(e.path()).ok())
        .filter_map(|s| pastix_json::Json::parse(&s).ok())
        .filter(|j| {
            j.get("reason").and_then(|r| r.as_str().ok().map(str::to_string)).as_deref() == Some(reason)
        })
        .collect()
}

fn in_flight_ids(dump: &pastix_json::Json) -> Vec<u64> {
    dump.get("requests_in_flight")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap() as u64)
        .collect()
}

/// A worker panic mid-factorization dumps a black box (via the panic
/// hook the session installs) that names the admitted-but-unfinished
/// request ids.
#[test]
fn forced_panic_dumps_blackbox_naming_in_flight_requests() {
    let _g = global_lock();
    let dir = fresh_dump_dir("panic");
    flight::set_blackbox_dir(Some(&dir));

    let a = test_matrix();
    let mut opts = sim_opts(13, SchedPolicy::Uniform, 4);
    opts.solver = opts.solver.with_chaos(ChaosOptions {
        panic_at: Some((0, 0)),
        ..Default::default()
    });
    let mut session = SolverSession::<f64>::new(opts);
    let mut q = RequestQueue::traced();
    let ids = submit_requests(&mut q, &a, 2, 0);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = q.serve_batch(&mut session, &a, 1_000, 2_000);
    }));
    flight::set_blackbox_dir(None);
    assert!(caught.is_err(), "injected panic must propagate");

    let dumps = dumps_with_reason(&dir, "panic");
    assert!(!dumps.is_empty(), "panic must leave a black-box dump in {}", dir.display());
    let named = dumps.iter().any(|d| {
        let inflight = in_flight_ids(d);
        ids.iter().all(|id| inflight.contains(id))
    });
    assert!(named, "black box must name the in-flight requests {ids:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A watchdog trip during `serve_batch` dumps a black box *before* the
/// batch's tickets are marked complete, so the dump names them as in
/// flight, and the session counts the trip.
#[test]
fn watchdog_trip_dumps_blackbox_naming_in_flight_requests() {
    let _g = global_lock();
    let dir = fresh_dump_dir("watchdog");
    flight::set_blackbox_dir(Some(&dir));
    // Hair-trigger gap threshold: any progress gap flags, so the trip is
    // deterministic regardless of problem size.
    std::env::set_var("PASTIX_WATCHDOG_GAP", "1,0.001");

    let a = test_matrix();
    let mut session =
        SolverSession::<f64>::new(sim_opts(7, SchedPolicy::StarveRank(1), 4));
    let mut q = RequestQueue::traced();
    let ids = submit_requests(&mut q, &a, 3, 0);
    q.serve_batch(&mut session, &a, 1_000, 2_000).expect("chaos serve");

    std::env::remove_var("PASTIX_WATCHDOG_GAP");
    flight::set_blackbox_dir(None);

    assert!(
        session.metrics().counter("serve.watchdog.trips") >= 1,
        "watchdog must trip under the hair-trigger threshold"
    );
    let dumps = dumps_with_reason(&dir, "watchdog_trip");
    assert!(!dumps.is_empty(), "trip must leave a black-box dump in {}", dir.display());
    let named = dumps.iter().any(|d| {
        let inflight = in_flight_ids(d);
        ids.iter().all(|id| inflight.contains(id))
    });
    assert!(named, "black box must name the in-flight requests {ids:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Golden-file pin of the Prometheus text exposition: a hand-built
/// registry covering all three metric types (with per-rank shards)
/// renders byte-identically to the committed artifact. Regenerate
/// deliberately with
/// `PASTIX_UPDATE_GOLDEN=1 cargo test -p pastix-integration prometheus`.
#[test]
fn prometheus_exposition_matches_golden_file() {
    let m = MetricsRegistry::new();
    m.add_counter("serve.requests", 48);
    m.add_counter("serve.cache.hits", 40);
    m.add_counter("serve.cache.misses", 8);
    m.add_counter_rank("solve.tasks", Some(0), 600);
    m.add_counter_rank("solve.tasks", Some(1), 668);
    m.set_gauge("serve.cache.resident_bytes", 3_866_624.0);
    m.set_gauge("serve.cache.entries", 2.0);
    for v in [900, 1_100, 1_500, 2_200, 3_700, 6_100, 9_900, 17_000] {
        m.observe("serve.queue_wait_ns", v);
    }
    for (rank, v) in [(0u32, 12_000u64), (0, 14_000), (1, 13_000), (1, 52_000)] {
        m.observe_rank("serve.solve_ns", Some(rank), v);
    }
    let body = m.snapshot().to_prometheus();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/prometheus_serve.txt");
    if std::env::var_os("PASTIX_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &body).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing — regenerate with PASTIX_UPDATE_GOLDEN=1");
    assert_eq!(
        body, golden,
        "Prometheus exposition drifted from the golden file; if the change \
         is intentional, regenerate with PASTIX_UPDATE_GOLDEN=1"
    );
}

/// The session's opt-in scrape endpoint serves the registry's Prometheus
/// rendering over plain HTTP.
#[test]
fn session_scrape_endpoint_serves_metrics() {
    use std::io::{Read, Write};
    let a = test_matrix();
    let mut opts = sim_opts(3, SchedPolicy::Uniform, 2);
    opts.metrics_addr = Some("127.0.0.1:0".to_string());
    let mut session = SolverSession::<f64>::new(opts);
    let b = rhs_for_solution(&a, &vec![1.0; a.n()]);
    session.solve(&a, &b).expect("solve");

    let addr = session.metrics_addr().expect("endpoint must be live");
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to scrape endpoint");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut resp = String::new();
    stream.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 200 OK"), "bad status line: {resp:.60}");
    assert!(resp.contains("text/plain; version=0.0.4"), "missing exposition content type");
    assert!(resp.contains("pastix_serve_solves"), "scrape body must carry session counters");
    assert!(resp.contains("pastix_serve_cache_misses"), "scrape body must carry cache counters");
}

/// A traced wall-clock production run persists the task-calibration
/// dotfile iff `persist_calibration` opts in; logical-clock (sim) traces
/// never do — their timestamps carry no rate information.
#[test]
fn traced_run_persists_calibration_dotfile_on_opt_in() {
    let _g = global_lock();
    // Large enough, with a mixed 1D/2D mapping, that every task class
    // (COMP1D, FACTOR, BDIV, BMOD) runs — a class that never ran fits a
    // zero rate and the persist path correctly refuses to write it.
    let a = grid_spd::<f64>(12, 12, 1, Stencil::Star, false, ValueKind::RandomSpd(31));
    let run = |persist: bool, wall: bool, tag: &str| -> usize {
        let dir = fresh_dump_dir(tag);
        std::env::set_var("PASTIX_BLOCKING_CACHE_DIR", &dir);
        let topts = if wall {
            TraceOptions::wall()
        } else {
            TraceOptions::deterministic()
        };
        let cfg = SolverConfig::new()
            .with_trace(topts)
            .with_persist_calibration(persist);
        let mut sched = SchedOptions { block_size: 8, ..Default::default() };
        sched.mapping.strategy = pastix::sched::DistStrategy::Mixed1d2d;
        sched.mapping.procs_2d_min = 2.0;
        sched.mapping.width_2d_min = 4;
        let opts = SessionOptions {
            procs: 4,
            max_panel: 2,
            sched,
            solver: cfg,
            ..Default::default()
        };
        let mut session = SolverSession::<f64>::new(opts);
        let b = rhs_for_solution(&a, &vec![1.0; a.n()]);
        session.solve(&a, &b).expect("solve");
        std::env::remove_var("PASTIX_BLOCKING_CACHE_DIR");
        let n = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".pastix-calibration-"))
            .count();
        let loaded = pastix::machine::load_calibration_in(&dir);
        if n > 0 {
            assert!(loaded.is_some(), "{tag}: persisted dotfile must parse back");
        }
        let _ = std::fs::remove_dir_all(&dir);
        n
    };
    assert_eq!(run(true, true, "cal-on"), 1, "opted-in wall-clock run must write the dotfile");
    assert_eq!(run(false, true, "cal-off"), 0, "without the opt-in nothing is written");
    assert_eq!(run(true, false, "cal-logical"), 0, "logical clocks must never calibrate");
}
