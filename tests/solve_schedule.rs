//! The scheduled solve DAG: predicted-vs-measured reconciliation and
//! trace determinism for the serving-path triangular solves.
//!
//! Mirrors `trace_observability.rs` for the solve side. On the simulation
//! backend with logical clocks the panel solve executes exactly the
//! per-rank task orders the level-set [`pastix::sched::SolveSchedule`]
//! predicts, so `build_solve_report` must reconcile ≥ 95% (coverage,
//! placement, and order) under every chaos scheduling policy — and the
//! deterministic trace must be a pure function of the fault plan's
//! `(seed, policy)` and the schedule digest: repeated runs compare
//! byte-identical through `TraceLog::canonical_bytes`.

use pastix::graph::gen::{grid_spd, Stencil, ValueKind};
use pastix::graph::rhs_for_solution;
use pastix::machine::MachineModel;
use pastix::ordering::{nested_dissection, OrderingOptions};
use pastix::runtime::sim::{FaultPlan, SchedPolicy};
use pastix::runtime::Backend;
use pastix::sched::{map_and_schedule, solve_schedule, DistStrategy, Mapping, SchedOptions};
use pastix::solver::{Plan, SolveRequest, SolverConfig, TraceOptions};
use pastix::symbolic::{analyze, AnalysisOptions};
use pastix::trace::report::build_solve_report;

const RECONCILE_MIN: f64 = 0.95;

fn setup(procs: usize) -> (pastix::graph::SymCsc<f64>, Mapping) {
    let a = grid_spd::<f64>(8, 8, 1, Stencil::Star, false, ValueKind::RandomSpd(7));
    let g = a.to_graph();
    let ord = nested_dissection(
        &g,
        &OrderingOptions {
            leaf_size: 8,
            ..Default::default()
        },
    );
    let an = analyze(&g, &ord, &AnalysisOptions::default());
    let machine = MachineModel::sp2(procs);
    let mut opts = SchedOptions::default();
    opts.block_size = 4;
    opts.mapping.strategy = DistStrategy::Mixed1d2d;
    opts.mapping.procs_2d_min = 2.0;
    opts.mapping.width_2d_min = 4;
    let mapping = map_and_schedule(&an.symbol, &machine, &opts);
    (a.permuted(&an.perm), mapping)
}

/// Every FwdSolve/BwdSolve span must be recorded: trace at full rate.
fn trace_all() -> TraceOptions {
    let mut t = TraceOptions::deterministic();
    t.sample_every = 1;
    t
}

fn all_policies(seed: u64, procs: usize) -> [SchedPolicy; 4] {
    [
        SchedPolicy::Uniform,
        SchedPolicy::StarveRank(seed as usize % procs),
        SchedPolicy::DeliverLast,
        SchedPolicy::FifoPerPair,
    ]
}

/// Traced panel solve under `plan`; returns `(solution, trace)`.
fn traced_solve(
    ap: &pastix::graph::SymCsc<f64>,
    mapping: &Mapping,
    plan: FaultPlan,
    nrhs: usize,
) -> (Vec<f64>, pastix::trace::TraceLog) {
    let cfg = SolverConfig::new()
        .with_backend(Backend::Sim(plan))
        .with_trace(trace_all());
    let pln = Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
    let run = pln.factorize(ap, &cfg).expect("sim factorization");
    let n = ap.n();
    let mut panel = vec![0.0f64; n * nrhs];
    for r in 0..nrhs {
        let xe: Vec<f64> = (0..n).map(|i| 1.0 + ((i + r * 17) % 11) as f64).collect();
        panel[r * n..(r + 1) * n].copy_from_slice(&rhs_for_solution(ap, &xe));
    }
    let out = run.solve_request(SolveRequest::panel(&panel, nrhs).traced());
    (out.x, out.trace)
}

/// Sim workers execute exactly the per-rank orders the level-set solve
/// schedule predicts, so the trace must reconcile ≥ 95% — under every
/// chaos policy, since chaos perturbs message timing, not task order.
#[test]
fn solve_trace_reconciles_against_solve_schedule_under_every_policy() {
    let procs = 3;
    let (ap, mapping) = setup(procs);
    let ssched = solve_schedule(&mapping.graph, &mapping.schedule);
    for seed in [3u64, 4] {
        for policy in all_policies(seed, procs) {
            let plan = FaultPlan::builder(seed).policy(policy).build();
            let (_, log) = traced_solve(&ap, &mapping, plan, 4);
            let report = build_solve_report(&ssched, &log);
            assert_eq!(
                report.schedule_digest,
                ssched.digest(),
                "report must carry the schedule digest"
            );
            assert_eq!(
                report.n_tasks,
                ssched.n_tasks(),
                "seed {seed} {policy:?}: every solve task must be predicted"
            );
            assert!(
                report.coverage == 1.0,
                "seed {seed} {policy:?}: every predicted task must be traced, got {:.4}",
                report.coverage
            );
            assert!(
                report.reconciliation >= RECONCILE_MIN,
                "seed {seed} {policy:?}: reconciliation {:.4} < {RECONCILE_MIN}",
                report.reconciliation
            );
        }
    }
}

/// Deterministic solve traces: for a fixed `(seed, policy)` and schedule
/// digest, the canonical byte encoding of the serving trace is identical
/// across repeated runs — the replay key the chaos harness prints is
/// sufficient to reproduce a serving incident exactly.
#[test]
fn solve_traces_are_byte_identical_for_fixed_seed_and_policy() {
    let procs = 3;
    let (ap, mapping) = setup(procs);
    let ssched = solve_schedule(&mapping.graph, &mapping.schedule);
    for seed in [21u64, 22] {
        for policy in all_policies(seed, procs) {
            let run = || {
                let plan = FaultPlan::builder(seed).policy(policy).build();
                let (x, log) = traced_solve(&ap, &mapping, plan, 3);
                (x, log.canonical_bytes(), log.fingerprint())
            };
            let (x1, b1, f1) = run();
            let (x2, b2, f2) = run();
            assert_eq!(
                b1, b2,
                "seed {seed} {policy:?} digest {:#018x}: traces must be byte-identical",
                ssched.digest()
            );
            assert_eq!(f1, f2, "fingerprint is a pure function of the bytes");
            assert_eq!(x1, x2, "sim solves are bitwise deterministic");
        }
    }
}
