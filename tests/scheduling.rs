//! Cross-crate tests of the partitioning + scheduling phase: validity of
//! every produced schedule, speedup/saturation shape, the 1D/2D switch,
//! and the fan-in communication accounting.

use pastix::graph::{build_problem, ProblemId};
use pastix::machine::MachineModel;
use pastix::ordering::{nested_dissection, OrderingOptions};
use pastix::sched::{
    comm_stats, map_and_schedule, sequential_cost, validate_schedule, DistStrategy, SchedOptions,
};
use pastix::symbolic::{analyze, Analysis, AnalysisOptions};

fn analyzed(id: ProblemId, scale: f64) -> Analysis {
    let a = build_problem::<f64>(id, scale);
    let g = a.to_graph();
    let ord = nested_dissection(&g, &OrderingOptions::scotch_like());
    analyze(&g, &ord, &AnalysisOptions::default())
}

#[test]
fn schedules_valid_across_suite_and_procs() {
    for id in [ProblemId::Quer, ProblemId::Ship003, ProblemId::Mt1] {
        let an = analyzed(id, 0.01);
        for p in [1usize, 4, 16, 64] {
            let machine = MachineModel::sp2(p);
            let m = map_and_schedule(&an.symbol, &machine, &SchedOptions::default());
            validate_schedule(&m.graph, &m.schedule, &machine)
                .unwrap_or_else(|e| panic!("{} P={p}: {e}", id.name()));
        }
    }
}

#[test]
fn speedup_shape_on_a_large_problem() {
    // The Table 2 signal: meaningful speedup to moderate P, saturation
    // after — measured on the biggest analog we test at this scale.
    let an = analyzed(ProblemId::Shipsec5, 0.03);
    let mut times = Vec::new();
    for p in [1usize, 4, 16, 64] {
        let machine = MachineModel::sp2(p);
        let m = map_and_schedule(&an.symbol, &machine, &SchedOptions::default());
        times.push(m.schedule.makespan);
    }
    assert!(times[1] < times[0] * 0.6, "P=4 speedup too small: {times:?}");
    assert!(times[2] < times[1], "P=16 regressed: {times:?}");
    // Sub-linear overall.
    assert!(times[3] > times[0] / 64.0, "super-linear smells wrong: {times:?}");
}

#[test]
fn one_proc_makespan_equals_sequential_cost() {
    let an = analyzed(ProblemId::Oilpan, 0.01);
    let machine = MachineModel::sp2(1);
    let m = map_and_schedule(&an.symbol, &machine, &SchedOptions::default());
    let seq = sequential_cost(&m.graph.split.symbol, &machine);
    // With one processor every task runs back-to-back; COMP1D-only split
    // makes the total exactly the sequential sum.
    assert!(
        (m.schedule.makespan - seq).abs() < 1e-9 * seq,
        "makespan {} vs sequential {seq}",
        m.schedule.makespan
    );
}

#[test]
fn mixed_beats_1d_at_scale() {
    // The paper's headline: at high processor counts the mixed 1D/2D
    // distribution outperforms 1D-only.
    let an = analyzed(ProblemId::Bmwcra1, 0.02);
    let machine = MachineModel::sp2(64);
    let mut o1 = SchedOptions::default();
    o1.mapping.strategy = DistStrategy::Only1d;
    let t1 = map_and_schedule(&an.symbol, &machine, &o1).schedule.makespan;
    let o2 = SchedOptions::default();
    let t2 = map_and_schedule(&an.symbol, &machine, &o2).schedule.makespan;
    assert!(
        t2 < t1 * 1.02,
        "mixed ({t2}) should not lose to 1D-only ({t1}) at P=64"
    );
}

#[test]
fn fanin_aggregation_reduces_messages() {
    let an = analyzed(ProblemId::Ship001, 0.02);
    for p in [4usize, 16] {
        let machine = MachineModel::sp2(p);
        let m = map_and_schedule(&an.symbol, &machine, &SchedOptions::default());
        let c = comm_stats(&m.graph, &m.schedule);
        assert!(c.messages_fanin <= c.messages_direct);
        if c.messages_direct > 50 {
            assert!(
                (c.messages_fanin as f64) < 0.9 * c.messages_direct as f64,
                "P={p}: aggregation saved too little ({} vs {})",
                c.messages_fanin,
                c.messages_direct
            );
        }
    }
}

#[test]
fn priorities_respect_tree_depth() {
    let an = analyzed(ProblemId::Quer, 0.01);
    let machine = MachineModel::sp2(4);
    let m = map_and_schedule(&an.symbol, &machine, &SchedOptions::default());
    // Deeper tasks have higher priority values; roots are priority 0.
    let min_pr = m.graph.priority.iter().min().unwrap();
    assert_eq!(*min_pr, 0);
    assert!(m.graph.priority.iter().max().unwrap() > &0);
}
