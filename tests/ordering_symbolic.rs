//! Cross-crate tests of the ordering → symbolic pipeline: fill quality,
//! structural invariants, and property-based checks on the analysis.

use pastix::graph::{build_problem, CsrGraph, Permutation, ProblemId};
use pastix::ordering::{nested_dissection, separator_is_valid, vertex_separator, BisectOptions, OrderingOptions};
use pastix::symbolic::{analyze, AnalysisOptions, NO_PARENT};
use proptest::prelude::*;

fn grid_graph(nx: usize, ny: usize) -> CsrGraph {
    let mut e = Vec::new();
    let id = |x: usize, y: usize| (x + nx * y) as u32;
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx {
                e.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < ny {
                e.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    CsrGraph::from_edges(nx * ny, &e)
}

#[test]
fn nd_beats_natural_ordering_on_grids() {
    // The entire point of the ordering phase: much less fill than the
    // natural (band) ordering on 2D grids of meaningful size.
    let g = grid_graph(40, 40);
    let natural = analyze(&g, &Permutation::identity(g.n()), &AnalysisOptions::default());
    let nd = analyze(
        &g,
        &nested_dissection(&g, &OrderingOptions::scotch_like()),
        &AnalysisOptions::default(),
    );
    assert!(
        (nd.scalar_nnz_offdiag as f64) < 0.6 * natural.scalar_nnz_offdiag as f64,
        "ND fill {} vs natural {}",
        nd.scalar_nnz_offdiag,
        natural.scalar_nnz_offdiag
    );
}

#[test]
fn halo_md_never_much_worse_than_plain_md_leaves() {
    // The paper's coupling: halo awareness should help (or at least not
    // hurt) the leaf orderings across the whole suite.
    let mut halo_wins = 0;
    let mut total = 0;
    for id in ProblemId::ALL {
        let a = build_problem::<f64>(id, 0.01);
        let g = a.to_graph();
        let hmd = analyze(
            &g,
            &nested_dissection(&g, &OrderingOptions::scotch_like()),
            &AnalysisOptions::default(),
        );
        let md = analyze(
            &g,
            &nested_dissection(&g, &OrderingOptions::metis_like()),
            &AnalysisOptions::default(),
        );
        total += 1;
        if hmd.scalar_nnz_offdiag <= md.scalar_nnz_offdiag {
            halo_wins += 1;
        }
        assert!(
            (hmd.scalar_nnz_offdiag as f64) < 1.15 * md.scalar_nnz_offdiag as f64,
            "{}: halo {} much worse than plain {}",
            id.name(),
            hmd.scalar_nnz_offdiag,
            md.scalar_nnz_offdiag
        );
    }
    assert!(
        halo_wins * 2 >= total,
        "halo MD should win at least half the suite ({halo_wins}/{total})"
    );
}

#[test]
fn analysis_invariants_across_suite() {
    for id in ProblemId::ALL {
        let a = build_problem::<f64>(id, 0.008);
        let g = a.to_graph();
        let ord = nested_dissection(&g, &OrderingOptions::scotch_like());
        assert!(ord.validate(), "{}: invalid permutation", id.name());
        let an = analyze(&g, &ord, &AnalysisOptions::default());
        an.symbol.validate().unwrap_or_else(|e| panic!("{}: {e}", id.name()));
        an.partition.validate(g.n()).unwrap();
        // Block etree well-formed.
        let bt = an.symbol.block_etree();
        for (k, &p) in bt.iter().enumerate() {
            assert!(p == NO_PARENT || (p as usize) > k);
        }
        // Symbol nnz ≥ scalar nnz (amalgamation only pads).
        assert!(an.symbol.nnz().nnz_offdiag >= an.scalar_nnz_offdiag);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn separator_valid_on_random_graphs(n in 6usize..60, edges in prop::collection::vec((0u32..60, 0u32..60), 5..150), seed in 0u64..1000) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .filter(|(u, v)| u != v)
            .collect();
        let g = CsrGraph::from_edges(n, &edges);
        let r = vertex_separator(&g, &BisectOptions { seed, ..Default::default() });
        prop_assert!(separator_is_valid(&g, &r.side));
        prop_assert_eq!(r.counts[0] + r.counts[1] + r.counts[2], n);
    }

    #[test]
    fn nd_permutation_valid_on_random_graphs(n in 2usize..80, edges in prop::collection::vec((0u32..80, 0u32..80), 0..200)) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .filter(|(u, v)| u != v)
            .collect();
        let g = CsrGraph::from_edges(n, &edges);
        let ord = nested_dissection(&g, &OrderingOptions { leaf_size: 10, ..Default::default() });
        prop_assert!(ord.validate());
    }

    #[test]
    fn analysis_valid_on_random_graphs(n in 2usize..50, edges in prop::collection::vec((0u32..50, 0u32..50), 0..120)) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .filter(|(u, v)| u != v)
            .collect();
        let g = CsrGraph::from_edges(n, &edges);
        let ord = nested_dissection(&g, &OrderingOptions { leaf_size: 8, ..Default::default() });
        let an = analyze(&g, &ord, &AnalysisOptions::default());
        prop_assert!(an.symbol.validate().is_ok());
        prop_assert!(an.perm.validate());
        // Scalar nnz_L at least the (symmetrized) input edges.
        prop_assert!(an.scalar_nnz_offdiag >= g.n_edges() as u64);
    }
}
