//! Matrix file IO: Harwell-Boeing RSA (the paper's input format) and
//! MatrixMarket roundtrips through real files, then a full solve from the
//! re-read matrix.

use pastix::graph::io::{read_matrix_market, read_path, read_rsa, write_matrix_market, write_rsa};
use pastix::graph::{build_problem, canonical_solution, rhs_for_solution, ProblemId};
use pastix::solver::{Plan, SolverConfig};
use std::fs::File;

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pastix-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn rsa_file_roundtrip_and_solve() {
    let a = build_problem::<f64>(ProblemId::Quer, 0.01);
    let path = tmp("quer.rsa");
    write_rsa(File::create(&path).unwrap(), &a, "QUER analog", "QUER").unwrap();
    let b = read_rsa(File::open(&path).unwrap()).unwrap();
    assert_eq!(a.n(), b.n());
    assert_eq!(a.nnz_stored(), b.nnz_stored());
    // Values survive to write precision.
    for j in (0..a.n()).step_by(37) {
        for (&i, &v) in a.rows_of(j).iter().zip(a.vals_of(j)) {
            let got = b.get(i as usize, j);
            assert!((v - got).abs() <= 1e-9 * v.abs().max(1.0));
        }
    }
    // And the re-read matrix still solves.
    let mut cfg = SolverConfig::default();
    cfg.analyze.procs = 2;
    let plan = Plan::analyze(&b, &cfg);
    let run = plan.factorize(&b, &cfg).unwrap();
    let x_exact = canonical_solution::<f64>(b.n());
    let rhs = rhs_for_solution(&b, &x_exact);
    let x = run.solve(&rhs);
    assert!(b.residual_norm(&x, &rhs) < 1e-11);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn matrix_market_file_roundtrip() {
    let a = build_problem::<f64>(ProblemId::Ship001, 0.008);
    let path = tmp("ship.mtx");
    write_matrix_market(File::create(&path).unwrap(), &a).unwrap();
    let b = read_matrix_market(File::open(&path).unwrap()).unwrap();
    assert_eq!(a, b);
    // Extension-based dispatch.
    let c = read_path(&path).unwrap();
    assert_eq!(a, c);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn read_path_dispatches_rsa() {
    let a = build_problem::<f64>(ProblemId::Thread, 0.006);
    let path = tmp("thread.rsa");
    write_rsa(File::create(&path).unwrap(), &a, "THREAD analog", "THRD").unwrap();
    let b = read_path(&path).unwrap();
    assert_eq!(a.n(), b.n());
    let _ = std::fs::remove_file(&path);
}
