//! Bitwise determinism of the parallel analyze phase.
//!
//! The contract: `Parallelism` changes only wall-clock time, never a bit
//! of any analyze artifact. Sequential and threaded runs must produce
//! identical permutations, identical block symbols, and identical
//! schedule digests, at every thread count. The grid test below is large
//! enough (6400 vertices) to take the parallel recursion, parallel
//! column-count, parallel block-symbolic, and parallel leaf-ordering
//! paths for real; the property test sweeps random graphs whose shapes
//! hit the sequential-fallback boundaries from every side.

use pastix::graph::{CsrGraph, Parallelism};
use pastix::ordering::{nested_dissection, OrderingOptions};
use pastix::sched::{map_and_schedule, SchedOptions};
use pastix::solver::{Plan, SolverConfig};
use pastix::symbolic::{analyze, AnalysisOptions};
use pastix_testsupport::grid_graph;
use proptest::prelude::*;

/// Full analyze pipeline (ordering → symbolic → mapping/scheduling) with
/// one parallelism setting; returns everything the determinism contract
/// covers.
fn analyze_with(g: &CsrGraph, par: Parallelism) -> (Vec<u32>, usize, usize, u64, u64) {
    let oopts = OrderingOptions { parallelism: par, ..Default::default() };
    let ord = nested_dissection(g, &oopts);
    let aopts = AnalysisOptions { parallelism: par, ..Default::default() };
    let an = analyze(g, &ord, &aopts);
    let sopts = SchedOptions { parallelism: par, ..Default::default() };
    let m = map_and_schedule(&an.symbol, &pastix::machine::MachineModel::sp2(4), &sopts);
    (
        ord.perm().to_vec(),
        an.symbol.n_cblks(),
        an.symbol.bloks.len(),
        an.scalar_nnz_offdiag,
        m.schedule.digest(),
    )
}

#[test]
fn grid_analyze_is_bitwise_identical_at_every_thread_count() {
    // 80×80: both nested-dissection halves exceed the parallel-recursion
    // cutoff and the supernode count exceeds the block-symbolic one.
    let g = grid_graph(80, 80);
    let seq = analyze_with(&g, Parallelism::Sequential);
    for par in [
        Parallelism::Threads(2),
        Parallelism::Threads(4),
        Parallelism::Threads(7),
        Parallelism::Auto,
    ] {
        let got = analyze_with(&g, par);
        assert_eq!(seq.0, got.0, "{par:?}: permutation differs");
        assert_eq!(seq.1, got.1, "{par:?}: supernode count differs");
        assert_eq!(seq.2, got.2, "{par:?}: block count differs");
        assert_eq!(seq.3, got.3, "{par:?}: NNZ_L differs");
        assert_eq!(seq.4, got.4, "{par:?}: schedule digest differs");
    }
}

#[test]
fn plan_analyze_is_bitwise_identical_at_every_thread_count() {
    // Same contract through the Plan entry path: the one `parallelism`
    // knob on `AnalyzeOptions` drives all three stages.
    let a = pastix::graph::gen::grid_spd::<f64>(
        40,
        40,
        1,
        pastix::graph::gen::Stencil::Star,
        false,
        pastix::graph::gen::ValueKind::Laplacian,
    );
    let mut cfg = SolverConfig::default();
    cfg.analyze.parallelism = Parallelism::Sequential;
    let seq = Plan::analyze(&a, &cfg);
    let seq_stats = seq.analyze_stats().unwrap();
    for par in [Parallelism::Threads(3), Parallelism::Auto] {
        cfg.analyze.parallelism = par;
        let p = Plan::analyze(&a, &cfg);
        assert_eq!(
            seq.permutation().unwrap().perm(),
            p.permutation().unwrap().perm(),
            "{par:?}: permutation differs"
        );
        assert_eq!(seq.symbol().cblks, p.symbol().cblks, "{par:?}: cblks differ");
        assert_eq!(seq.symbol().bloks, p.symbol().bloks, "{par:?}: bloks differ");
        assert_eq!(
            seq.schedule().unwrap().digest(),
            p.schedule().unwrap().digest(),
            "{par:?}: digest differs"
        );
        let stats = p.analyze_stats().unwrap();
        assert_eq!(seq_stats.scalar_nnz_offdiag, stats.scalar_nnz_offdiag);
        assert_eq!(seq_stats.scalar_opc.to_bits(), stats.scalar_opc.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random graphs (disconnected, self-looping inputs filtered, odd
    /// shapes) analyze identically at any thread count.
    #[test]
    fn random_graph_analyze_deterministic(
        n in 2usize..120,
        edges in prop::collection::vec((0u32..120, 0u32..120), 0..400),
        threads in 2usize..8,
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .filter(|(u, v)| u != v)
            .collect();
        let g = CsrGraph::from_edges(n, &edges);
        let seq = analyze_with(&g, Parallelism::Sequential);
        let par = analyze_with(&g, Parallelism::Threads(threads));
        prop_assert_eq!(&seq.0, &par.0, "permutation differs at {} threads", threads);
        prop_assert_eq!(seq.1, par.1);
        prop_assert_eq!(seq.2, par.2);
        prop_assert_eq!(seq.3, par.3);
        prop_assert_eq!(seq.4, par.4, "schedule digest differs at {} threads", threads);
    }
}
