//! Determinism and conservation invariants of the tracing layer.
//!
//! On the simulation backend a deterministic trace
//! (`TraceOptions::deterministic()`, logical clock) must be a pure
//! function of the fault plan's `(seed, policy)` and the schedule digest:
//! repeated runs compare **byte-identical** through
//! `TraceLog::canonical_bytes`. Separately, the communication counters
//! must conserve messages under every scheduling policy: every attempted
//! send is either received or reported dropped, so
//! `sends + send_drops == recvs + send_drops` collapses to
//! `sends == recvs` once the run quiesces (the solver retries reported
//! drops and deduplicates injected duplicates, but the counters see each
//! transport-level attempt exactly once).

use pastix::graph::gen::{grid_spd, Stencil, ValueKind};
use pastix::graph::{canonical_solution, rhs_for_solution};
use pastix::machine::MachineModel;
use pastix::ordering::{nested_dissection, OrderingOptions};
use pastix::runtime::sim::{FaultPlan, SchedPolicy};
use pastix::runtime::Backend;
use pastix::sched::{map_and_schedule, DistStrategy, Mapping, SchedOptions};
use pastix::solver::{
    MetricsRegistry, Plan, SolveRequest, SolverConfig, TraceOptions,
};
use pastix::symbolic::{analyze, AnalysisOptions};
use pastix::trace::export::{chrome_trace_with, validate_chrome_trace};
use pastix::trace::report::build_report;
use pastix::trace::watchdog::{analyze as watchdog_analyze, WatchdogOptions};

fn setup(procs: usize) -> (pastix::graph::SymCsc<f64>, Mapping) {
    let a = grid_spd::<f64>(8, 8, 1, Stencil::Star, false, ValueKind::RandomSpd(7));
    let g = a.to_graph();
    let ord = nested_dissection(
        &g,
        &OrderingOptions {
            leaf_size: 8,
            ..Default::default()
        },
    );
    let an = analyze(&g, &ord, &AnalysisOptions::default());
    let machine = MachineModel::sp2(procs);
    let mut opts = SchedOptions::default();
    opts.block_size = 4;
    opts.mapping.strategy = DistStrategy::Mixed1d2d;
    opts.mapping.procs_2d_min = 2.0;
    opts.mapping.width_2d_min = 4;
    let mapping = map_and_schedule(&an.symbol, &machine, &opts);
    (a.permuted(&an.perm), mapping)
}

/// A `perm: None` plan over the case's graph/schedule (inputs already in
/// elimination order).
fn plan_of(mapping: &Mapping) -> Plan {
    Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()))
}

fn all_policies(seed: u64, procs: usize) -> [SchedPolicy; 4] {
    [
        SchedPolicy::Uniform,
        SchedPolicy::StarveRank(seed as usize % procs),
        SchedPolicy::DeliverLast,
        SchedPolicy::FifoPerPair,
    ]
}

/// Deterministic traces: for a fixed `(seed, policy)` the canonical byte
/// encoding of the factorization trace — events, ordering, byte counts,
/// logical timestamps — is identical across repeats, and differs across
/// seeds (the interleaving genuinely changes).
#[test]
fn sim_traces_are_byte_identical_for_fixed_seed_and_policy() {
    let procs = 3;
    let (ap, mapping) = setup(procs);
    let pln = plan_of(&mapping);
    let mut fingerprints = Vec::new();
    for seed in [11u64, 12] {
        for policy in all_policies(seed, procs) {
            let plan = FaultPlan::builder(seed).policy(policy).build();
            let run = || {
                let cfg = SolverConfig::new()
                    .with_backend(Backend::Sim(plan))
                    .with_trace(TraceOptions::deterministic());
                pln.factorize(&ap, &cfg).unwrap().trace
            };
            let t1 = run();
            let t2 = run();
            assert!(t1.event_count() > 0, "trace must record events");
            assert_eq!(
                t1.canonical_bytes(),
                t2.canonical_bytes(),
                "seed {seed}, policy {policy:?}: trace not replayed byte-identically"
            );
            fingerprints.push(t1.fingerprint());
        }
    }
    // Different seeds under the same policy must not collapse to one
    // interleaving (fingerprints of seed 11 vs 12, Uniform).
    assert_ne!(
        fingerprints[0], fingerprints[4],
        "different seeds should yield different traces"
    );
}

/// The distributed solve's deterministic trace replays byte-identically
/// too (it shares the session/instrumentation machinery but a different
/// message enum and task classes).
#[test]
fn sim_solve_traces_are_byte_identical() {
    let procs = 3;
    let (ap, mapping) = setup(procs);
    let plan = FaultPlan::builder(23).policy(SchedPolicy::DeliverLast).build();
    let cfg = SolverConfig::new()
        .with_backend(Backend::Sim(plan))
        .with_trace(TraceOptions::deterministic());
    let f = plan_of(&mapping).factorize(&ap, &cfg).unwrap();
    let b = rhs_for_solution(&ap, &canonical_solution::<f64>(ap.n()));
    let solve = || {
        let out = f.solve_request(SolveRequest::single(&b).traced());
        (out.x, out.trace)
    };
    let (x1, t1) = solve();
    let (x2, t2) = solve();
    assert_eq!(x1, x2);
    assert!(t1.event_count() > 0);
    assert_eq!(t1.canonical_bytes(), t2.canonical_bytes());
}

/// Message conservation under all four scheduling policies, clean and
/// with reported-drop faults: at quiescence every accepted send was
/// received (`sends == recvs`, equivalently attempts == recvs + drops),
/// and under `drop_lossy` faults the drop counter is live. Byte counters
/// conserve the same way.
#[test]
fn comm_counters_conserve_messages_under_all_policies() {
    let procs = 4;
    let (ap, mapping) = setup(procs);
    let pln = plan_of(&mapping);
    for seed in [5u64, 6] {
        for policy in all_policies(seed, procs) {
            for drop_p in [0.0f64, 0.3] {
                let plan = FaultPlan::builder(seed)
                    .drop_lossy(drop_p)
                    .policy(policy)
                    .build();
                let cfg = SolverConfig::new()
                    .with_backend(Backend::Sim(plan))
                    .with_trace(TraceOptions::deterministic())
                    // Punishing cap: forces lossy AUB flush traffic so the
                    // drop/retry path is actually exercised.
                    .with_aub_memory_limit(Some(16))
                    .with_metrics(MetricsRegistry::new());
                let run = pln.factorize(&ap, &cfg).unwrap();
                let t = run.trace.comm_totals();
                let diag = format!("seed {seed}, policy {policy:?}, drop {drop_p}");
                assert!(t.sends > 0, "{diag}: no traffic recorded");
                assert_eq!(t.sends, t.recvs, "{diag}: messages not conserved: {t:?}");
                assert_eq!(t.send_bytes, t.recv_bytes, "{diag}: bytes not conserved");
                if drop_p > 0.0 {
                    assert!(t.send_drops > 0, "{diag}: faults injected but no drops seen");
                }
                // The registry mirrors the trace totals per rank.
                assert_eq!(run.metrics.counter("comm.sends"), t.sends, "{diag}");
                assert_eq!(run.metrics.counter("comm.recvs"), t.recvs, "{diag}");
                assert_eq!(run.metrics.counter("comm.send_drops"), t.send_drops, "{diag}");
            }
        }
    }
}

/// The stall watchdog must detect adversarial starvation and stay silent
/// on healthy interleavings. Under `StarveRank(v)` the sim never services
/// the victim while anything else can run, so either the victim's
/// progress heartbeats cluster after the rest of the machine has raced
/// ahead (a progress gap) or its mailbox visibly piles up while it sits
/// unserviced (a backlog peak) — the watchdog combines both signatures
/// and must name exactly the victim. Under `Uniform` the same problem,
/// same seeds, must produce no stall verdicts (the false-positive
/// guard). Gauges are sampled at every completion because the backlog
/// signal reads the mailbox-depth time series.
#[test]
fn watchdog_flags_starved_rank_and_stays_silent_on_uniform() {
    let procs = 4;
    // A larger grid than the shared `setup`: the watchdog's relative
    // thresholds (gap_frac, backlog_frac) are statistical and need
    // enough tasks per rank that one rank legitimately finishing its
    // local leaves before another starts doesn't look like a stall.
    let a = grid_spd::<f64>(14, 14, 1, Stencil::Star, false, ValueKind::RandomSpd(7));
    let g = a.to_graph();
    let ord = nested_dissection(
        &g,
        &OrderingOptions {
            leaf_size: 8,
            ..Default::default()
        },
    );
    let an = analyze(&g, &ord, &AnalysisOptions::default());
    let machine = MachineModel::sp2(procs);
    let mut opts = SchedOptions::default();
    opts.block_size = 4;
    opts.mapping.strategy = DistStrategy::Mixed1d2d;
    opts.mapping.procs_2d_min = 2.0;
    opts.mapping.width_2d_min = 4;
    let mapping = map_and_schedule(&an.symbol, &machine, &opts);
    let ap = a.permuted(&an.perm);
    let pln = plan_of(&mapping);
    let run = |seed: u64, policy: SchedPolicy| {
        let plan = FaultPlan::builder(seed).policy(policy).build();
        let mut topts = TraceOptions::deterministic();
        topts.sample_every = 1;
        let cfg = SolverConfig::new()
            .with_backend(Backend::Sim(plan))
            .with_trace(topts);
        pln.factorize(&ap, &cfg).unwrap().trace
    };
    let opts = WatchdogOptions::default();
    for seed in [3u64, 4, 5] {
        for victim in 0..procs {
            let log = run(seed, SchedPolicy::StarveRank(victim));
            let rep = watchdog_analyze(&log, &opts);
            assert_eq!(
                rep.stalled_ranks(),
                vec![victim as u32],
                "seed {seed}: StarveRank({victim}) must flag exactly the victim\n{}",
                rep.render()
            );
        }
        let log = run(seed, SchedPolicy::Uniform);
        let rep = watchdog_analyze(&log, &opts);
        assert!(
            !rep.any_stalled(),
            "seed {seed}: healthy Uniform run false-flagged\n{}",
            rep.render()
        );
    }
}

/// Golden-file pin of the Chrome trace-event export: for one fixed
/// `(seed, policy)` sim run under the logical clock, the exported JSON is
/// byte-identical to the committed artifact. Regenerate deliberately with
/// `PASTIX_UPDATE_GOLDEN=1 cargo test -p pastix-integration chrome_trace`.
/// The same export is schema-checked (every `B` closes with an `E`, every
/// flow `s` pairs with an `f`) and must carry span, flow and counter
/// events for every rank.
#[test]
fn chrome_trace_export_matches_golden_file() {
    let procs = 3;
    let (ap, mapping) = setup(procs);
    let plan = FaultPlan::builder(17).policy(SchedPolicy::Uniform).build();
    let mut topts = TraceOptions::deterministic();
    topts.sample_every = 1; // gauge samples on every rank, even tiny ones
    let cfg = SolverConfig::new()
        .with_backend(Backend::Sim(plan))
        .with_trace(topts);
    let run = plan_of(&mapping).factorize(&ap, &cfg).unwrap();
    let json = chrome_trace_with(&run.trace, &mapping.graph, &mapping.schedule);
    validate_chrome_trace(&json).expect("exported trace must satisfy the schema");

    // Every rank's track carries task spans, flow arrows and counters.
    let evs = json.get("traceEvents").unwrap().as_arr().unwrap();
    for r in 0..procs as u64 {
        let phases: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("tid").and_then(|t| t.as_f64().ok()) == Some(r as f64))
            .filter_map(|e| e.get("ph").and_then(|p| p.as_str().ok()))
            .collect();
        for ph in ["B", "C"] {
            assert!(phases.contains(&ph), "rank {r}: no {ph:?} events in export");
        }
        assert!(
            phases.contains(&"s") || phases.contains(&"f"),
            "rank {r}: no flow arrows in export"
        );
    }

    let bytes = json.compact();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/chrome_trace_sim_seed17_uniform.json"
    );
    if std::env::var_os("PASTIX_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &bytes).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing — regenerate with PASTIX_UPDATE_GOLDEN=1");
    assert_eq!(
        bytes, golden,
        "chrome trace export drifted from the golden file; if the change \
         is intentional, regenerate with PASTIX_UPDATE_GOLDEN=1"
    );
}

/// The post-run report joins the deterministic trace against the static
/// schedule: every scheduled task appears exactly once with a measured
/// span, per-rank windows decompose into compute + wait + idle, and the
/// predicted critical path maps onto measured spans.
#[test]
fn report_covers_every_scheduled_task_on_sim() {
    let procs = 3;
    let (ap, mapping) = setup(procs);
    let plan = FaultPlan::builder(41).build();
    let cfg = SolverConfig::new()
        .with_backend(Backend::Sim(plan))
        .with_trace(TraceOptions::deterministic());
    let run = plan_of(&mapping).factorize(&ap, &cfg).unwrap();
    let report = build_report(&mapping.graph, &mapping.schedule, &run.trace);
    assert_eq!(report.digest, mapping.schedule.digest());
    assert_eq!(
        report.tasks.len(),
        mapping.graph.n_tasks(),
        "every scheduled task must appear in the report"
    );
    for row in &report.tasks {
        assert!(
            row.measured_ns > 0,
            "task {} (proc {}) has no measured span",
            row.task,
            row.proc
        );
    }
    assert_eq!(report.ranks.len(), procs);
    for r in &report.ranks {
        assert!(
            r.compute_ns + r.wait_ns + r.idle_ns <= r.window_ns,
            "rank {} window decomposition exceeds the window",
            r.rank
        );
    }
    assert!(report.critical.predicted > 0.0);
    assert_eq!(
        report.critical.measured_tasks,
        report.critical.tasks.len(),
        "on the sim every critical-path task has a measured span"
    );
}
