//! Determinism and conservation invariants of the tracing layer.
//!
//! On the simulation backend a deterministic trace
//! (`TraceOptions::deterministic()`, logical clock) must be a pure
//! function of the fault plan's `(seed, policy)` and the schedule digest:
//! repeated runs compare **byte-identical** through
//! `TraceLog::canonical_bytes`. Separately, the communication counters
//! must conserve messages under every scheduling policy: every attempted
//! send is either received or reported dropped, so
//! `sends + send_drops == recvs + send_drops` collapses to
//! `sends == recvs` once the run quiesces (the solver retries reported
//! drops and deduplicates injected duplicates, but the counters see each
//! transport-level attempt exactly once).

use pastix::graph::gen::{grid_spd, Stencil, ValueKind};
use pastix::graph::{canonical_solution, rhs_for_solution};
use pastix::machine::MachineModel;
use pastix::ordering::{nested_dissection, OrderingOptions};
use pastix::runtime::sim::{FaultPlan, SchedPolicy};
use pastix::runtime::Backend;
use pastix::sched::{map_and_schedule, DistStrategy, Mapping, SchedOptions};
use pastix::solver::{
    factorize_parallel_with, solve_parallel_traced, MetricsRegistry, SolverConfig, TraceOptions,
};
use pastix::symbolic::{analyze, AnalysisOptions};
use pastix::trace::report::build_report;

fn setup(procs: usize) -> (pastix::graph::SymCsc<f64>, Mapping) {
    let a = grid_spd::<f64>(8, 8, 1, Stencil::Star, false, ValueKind::RandomSpd(7));
    let g = a.to_graph();
    let ord = nested_dissection(
        &g,
        &OrderingOptions {
            leaf_size: 8,
            ..Default::default()
        },
    );
    let an = analyze(&g, &ord, &AnalysisOptions::default());
    let machine = MachineModel::sp2(procs);
    let mut opts = SchedOptions::default();
    opts.block_size = 4;
    opts.mapping.strategy = DistStrategy::Mixed1d2d;
    opts.mapping.procs_2d_min = 2.0;
    opts.mapping.width_2d_min = 4;
    let mapping = map_and_schedule(&an.symbol, &machine, &opts);
    (a.permuted(&an.perm), mapping)
}

fn all_policies(seed: u64, procs: usize) -> [SchedPolicy; 4] {
    [
        SchedPolicy::Uniform,
        SchedPolicy::StarveRank(seed as usize % procs),
        SchedPolicy::DeliverLast,
        SchedPolicy::FifoPerPair,
    ]
}

/// Deterministic traces: for a fixed `(seed, policy)` the canonical byte
/// encoding of the factorization trace — events, ordering, byte counts,
/// logical timestamps — is identical across repeats, and differs across
/// seeds (the interleaving genuinely changes).
#[test]
fn sim_traces_are_byte_identical_for_fixed_seed_and_policy() {
    let procs = 3;
    let (ap, mapping) = setup(procs);
    let sym = &mapping.graph.split.symbol;
    let mut fingerprints = Vec::new();
    for seed in [11u64, 12] {
        for policy in all_policies(seed, procs) {
            let plan = FaultPlan::builder(seed).policy(policy).build();
            let run = || {
                let cfg = SolverConfig::new()
                    .with_backend(Backend::Sim(plan))
                    .with_trace(TraceOptions::deterministic());
                factorize_parallel_with(sym, &ap, &mapping.graph, &mapping.schedule, &cfg)
                    .unwrap()
                    .trace
            };
            let t1 = run();
            let t2 = run();
            assert!(t1.event_count() > 0, "trace must record events");
            assert_eq!(
                t1.canonical_bytes(),
                t2.canonical_bytes(),
                "seed {seed}, policy {policy:?}: trace not replayed byte-identically"
            );
            fingerprints.push(t1.fingerprint());
        }
    }
    // Different seeds under the same policy must not collapse to one
    // interleaving (fingerprints of seed 11 vs 12, Uniform).
    assert_ne!(
        fingerprints[0], fingerprints[4],
        "different seeds should yield different traces"
    );
}

/// The distributed solve's deterministic trace replays byte-identically
/// too (it shares the session/instrumentation machinery but a different
/// message enum and task classes).
#[test]
fn sim_solve_traces_are_byte_identical() {
    let procs = 3;
    let (ap, mapping) = setup(procs);
    let sym = &mapping.graph.split.symbol;
    let plan = FaultPlan::builder(23).policy(SchedPolicy::DeliverLast).build();
    let cfg = SolverConfig::new().with_backend(Backend::Sim(plan));
    let f = factorize_parallel_with(sym, &ap, &mapping.graph, &mapping.schedule, &cfg)
        .unwrap();
    let b = rhs_for_solution(&ap, &canonical_solution::<f64>(ap.n()));
    let tcfg = cfg.clone().with_trace(TraceOptions::deterministic());
    let (x1, t1) = solve_parallel_traced(sym, &f, &mapping.graph, &mapping.schedule, &b, &tcfg);
    let (x2, t2) = solve_parallel_traced(sym, &f, &mapping.graph, &mapping.schedule, &b, &tcfg);
    assert_eq!(x1, x2);
    assert!(t1.event_count() > 0);
    assert_eq!(t1.canonical_bytes(), t2.canonical_bytes());
}

/// Message conservation under all four scheduling policies, clean and
/// with reported-drop faults: at quiescence every accepted send was
/// received (`sends == recvs`, equivalently attempts == recvs + drops),
/// and under `drop_lossy` faults the drop counter is live. Byte counters
/// conserve the same way.
#[test]
fn comm_counters_conserve_messages_under_all_policies() {
    let procs = 4;
    let (ap, mapping) = setup(procs);
    let sym = &mapping.graph.split.symbol;
    for seed in [5u64, 6] {
        for policy in all_policies(seed, procs) {
            for drop_p in [0.0f64, 0.3] {
                let plan = FaultPlan::builder(seed)
                    .drop_lossy(drop_p)
                    .policy(policy)
                    .build();
                let cfg = SolverConfig::new()
                    .with_backend(Backend::Sim(plan))
                    .with_trace(TraceOptions::deterministic())
                    // Punishing cap: forces lossy AUB flush traffic so the
                    // drop/retry path is actually exercised.
                    .with_aub_memory_limit(Some(16))
                    .with_metrics(MetricsRegistry::new());
                let run =
                    factorize_parallel_with(sym, &ap, &mapping.graph, &mapping.schedule, &cfg)
                        .unwrap();
                let t = run.trace.comm_totals();
                let diag = format!("seed {seed}, policy {policy:?}, drop {drop_p}");
                assert!(t.sends > 0, "{diag}: no traffic recorded");
                assert_eq!(t.sends, t.recvs, "{diag}: messages not conserved: {t:?}");
                assert_eq!(t.send_bytes, t.recv_bytes, "{diag}: bytes not conserved");
                if drop_p > 0.0 {
                    assert!(t.send_drops > 0, "{diag}: faults injected but no drops seen");
                }
                // The registry mirrors the trace totals per rank.
                assert_eq!(run.metrics.counter("comm.sends"), t.sends, "{diag}");
                assert_eq!(run.metrics.counter("comm.recvs"), t.recvs, "{diag}");
                assert_eq!(run.metrics.counter("comm.send_drops"), t.send_drops, "{diag}");
            }
        }
    }
}

/// The post-run report joins the deterministic trace against the static
/// schedule: every scheduled task appears exactly once with a measured
/// span, per-rank windows decompose into compute + wait + idle, and the
/// predicted critical path maps onto measured spans.
#[test]
fn report_covers_every_scheduled_task_on_sim() {
    let procs = 3;
    let (ap, mapping) = setup(procs);
    let sym = &mapping.graph.split.symbol;
    let plan = FaultPlan::builder(41).build();
    let cfg = SolverConfig::new()
        .with_backend(Backend::Sim(plan))
        .with_trace(TraceOptions::deterministic());
    let run = factorize_parallel_with(sym, &ap, &mapping.graph, &mapping.schedule, &cfg).unwrap();
    let report = build_report(&mapping.graph, &mapping.schedule, &run.trace);
    assert_eq!(report.digest, mapping.schedule.digest());
    assert_eq!(
        report.tasks.len(),
        mapping.graph.n_tasks(),
        "every scheduled task must appear in the report"
    );
    for row in &report.tasks {
        assert!(
            row.measured_ns > 0,
            "task {} (proc {}) has no measured span",
            row.task,
            row.proc
        );
    }
    assert_eq!(report.ranks.len(), procs);
    for r in &report.ranks {
        assert!(
            r.compute_ns + r.wait_ns + r.idle_ns <= r.window_ns,
            "rank {} window decomposition exceeds the window",
            r.rank
        );
    }
    assert!(report.critical.predicted > 0.0);
    assert_eq!(
        report.critical.measured_tasks,
        report.critical.tasks.len(),
        "on the sim every critical-path task has a measured span"
    );
}
