//! Self-consistency suite for the `Plan` API on the deterministic sim
//! backend: every comparison is replayable per `(seed, policy)`, so the
//! bitwise claims are meaningful (no thread-timing reassociation).
//!
//! Three contracts are pinned here:
//!
//! 1. **Replay determinism** — the same `(seed, policy, strategy)` run
//!    produces bitwise-identical factors, solves, and trace digests.
//! 2. **Compression off = dense, bitwise** — a `CompressionConfig` with
//!    tolerance `0.0` routes through the classic dense engine unchanged.
//! 3. **Compression on is deterministic too** — the compressed SPMD path
//!    replays bitwise per `(seed, policy)` and actually shrinks the
//!    factor while still solving to the configured accuracy.

use pastix::graph::gen::{grid_spd, Stencil, ValueKind};
use pastix::graph::rhs_for_solution;
use pastix::machine::MachineModel;
use pastix::ordering::{nested_dissection, OrderingOptions};
use pastix::runtime::sim::{FaultPlan, SchedPolicy};
use pastix::runtime::Backend;
use pastix::sched::{map_and_schedule, DistStrategy, Mapping, SchedOptions};
use pastix::solver::{
    CompressionConfig, CompressionStrategy, FactorRun, Plan, SolveRequest, SolverConfig,
};
use pastix::symbolic::{analyze, AnalysisOptions, SymbolMatrix};

fn setup(procs: usize, strategy: DistStrategy) -> (pastix::graph::SymCsc<f64>, Mapping) {
    setup_grid(8, 8, 4, procs, strategy)
}

fn setup_grid(
    nx: usize,
    leaf: usize,
    block: usize,
    procs: usize,
    strategy: DistStrategy,
) -> (pastix::graph::SymCsc<f64>, Mapping) {
    let a = grid_spd::<f64>(nx, nx, 1, Stencil::Star, false, ValueKind::RandomSpd(13));
    let g = a.to_graph();
    let ord = nested_dissection(
        &g,
        &OrderingOptions {
            leaf_size: leaf,
            ..Default::default()
        },
    );
    let an = analyze(&g, &ord, &AnalysisOptions::default());
    let machine = MachineModel::sp2(procs);
    let mut opts = SchedOptions::default();
    opts.block_size = block;
    opts.mapping.strategy = strategy;
    opts.mapping.procs_2d_min = 2.0;
    opts.mapping.width_2d_min = block;
    let mapping = map_and_schedule(&an.symbol, &machine, &opts);
    (a.permuted(&an.perm), mapping)
}

fn all_policies(seed: u64, procs: usize) -> [SchedPolicy; 4] {
    [
        SchedPolicy::Uniform,
        SchedPolicy::StarveRank(seed as usize % procs),
        SchedPolicy::DeliverLast,
        SchedPolicy::FifoPerPair,
    ]
}

/// Bitwise comparison of two factor storages through the representation
/// dispatch: every structural entry of the lower triangle, compressed or
/// dense, must agree to the bit.
fn assert_storage_bits_eq(sym: &SymbolMatrix, a: &FactorRun<f64>, b: &FactorRun<f64>, diag: &str) {
    let n = sym.n;
    for j in 0..n {
        for i in j..n {
            let (x, y) = (a.storage.get(sym, i, j), b.storage.get(sym, i, j));
            assert!(
                x.to_bits() == y.to_bits(),
                "{diag}: factor entry ({i},{j}) differs: {x} vs {y}"
            );
        }
    }
}

/// The same `(seed, policy, strategy)` sim run replays the factorization
/// bitwise — panels, overlay, and schedule digest.
#[test]
fn sim_factorization_replays_bitwise() {
    for strategy in [DistStrategy::Only1d, DistStrategy::Mixed1d2d] {
        let procs = 3;
        let (ap, mapping) = setup(procs, strategy);
        let sym = &mapping.graph.split.symbol;
        let plan = Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
        for seed in [2u64, 3] {
            for policy in all_policies(seed, procs) {
                let fp = FaultPlan::builder(seed).policy(policy).build();
                let cfg = SolverConfig::new().with_backend(Backend::Sim(fp));
                let diag = format!("seed {seed}, policy {policy:?}, strategy {strategy:?}");

                let run_a = plan.factorize(&ap, &cfg).unwrap();
                let run_b = plan.factorize(&ap, &cfg).unwrap();
                assert_storage_bits_eq(sym, &run_a, &run_b, &diag);
                assert_eq!(
                    run_a.trace.digest, run_b.trace.digest,
                    "{diag}: schedule digests differ between replays"
                );
            }
        }
    }
}

/// A compression config with tolerance `0.0` is the dense engine, bitwise
/// — the low-rank plumbing must be invisible when disabled.
#[test]
fn zero_tolerance_compression_is_bitwise_dense() {
    for strategy in [DistStrategy::Only1d, DistStrategy::Mixed1d2d] {
        let procs = 3;
        let (ap, mapping) = setup(procs, strategy);
        let sym = &mapping.graph.split.symbol;
        let plan = Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
        let fp = FaultPlan::builder(5).policy(SchedPolicy::Uniform).build();
        let cfg = SolverConfig::new().with_backend(Backend::Sim(fp));
        let czero = cfg.clone().with_compression(
            CompressionConfig::with_tolerance(0.0)
                .min_block(2)
                .strategy(CompressionStrategy::MinimalMemory),
        );
        let diag = format!("strategy {strategy:?}");

        let dense = plan.factorize(&ap, &cfg).unwrap();
        let zero = plan.factorize(&ap, &czero).unwrap();
        assert!(!zero.storage.is_compressed(), "{diag}: tolerance 0 must stay dense");
        assert_storage_bits_eq(sym, &dense, &zero, &diag);
    }
}

/// The compressed SPMD factorization is just as replayable as the dense
/// one, actually compresses, and its solves meet the tolerance.
#[test]
fn compressed_sim_runs_replay_bitwise_and_solve() {
    // A grid large enough that its separator blocks genuinely compress at
    // the loose tolerance (the 8×8 grid's blocks are all near-full-rank).
    let procs = 3;
    let (ap, mapping) = setup_grid(20, 16, 8, procs, DistStrategy::Mixed1d2d);
    let sym = &mapping.graph.split.symbol;
    let plan = Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
    let n = ap.n();
    let xe: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.5).collect();
    let b = rhs_for_solution(&ap, &xe);
    for seed in [8u64, 9] {
        for policy in all_policies(seed, procs) {
            let fp = FaultPlan::builder(seed).policy(policy).build();
            let cfg = SolverConfig::new().with_backend(Backend::Sim(fp)).with_compression(
                CompressionConfig::with_tolerance(1e-2)
                    .min_block(2)
                    .strategy(CompressionStrategy::MinimalMemory),
            );
            let diag = format!("seed {seed}, policy {policy:?}");

            let run_a = plan.factorize(&ap, &cfg).unwrap();
            let run_b = plan.factorize(&ap, &cfg).unwrap();
            assert_storage_bits_eq(sym, &run_a, &run_b, &diag);
            assert!(run_a.storage.is_compressed(), "{diag}: nothing compressed");
            assert!(
                run_a.storage.factor_bytes() < run_a.storage.dense_factor_bytes(),
                "{diag}: compression did not shrink the factor"
            );

            // Solves on the compressed factor replay bitwise too; iterative
            // refinement recovers full accuracy from the truncated factor.
            let x1 = run_a.solve(&b);
            let x2 = run_a.solve(&b);
            assert!(
                x1.iter().zip(&x2).all(|(u, v)| u.to_bits() == v.to_bits()),
                "{diag}: compressed solve does not replay bitwise"
            );
            let refined = run_a.solve_refined(&ap, &b, &Default::default());
            assert!(
                refined.residual < 1e-9,
                "{diag}: refined residual {}",
                refined.residual
            );

            // Panel request: each column of a replicated panel equals the
            // single-RHS sweep bitwise.
            let nrhs = 2;
            let mut panel = vec![0.0f64; n * nrhs];
            for r in 0..nrhs {
                panel[r * n..(r + 1) * n].copy_from_slice(&b);
            }
            let out = run_a.solve_request(SolveRequest::panel(&panel, nrhs));
            for r in 0..nrhs {
                assert!(
                    out.x[r * n..(r + 1) * n]
                        .iter()
                        .zip(&x1)
                        .all(|(u, v)| u.to_bits() == v.to_bits()),
                    "{diag}: panel column {r} differs from the single-RHS solve"
                );
            }
        }
    }
}

/// The deprecated `Pastix` facade is a pure forwarder over `Plan::analyze`:
/// permutation, split symbol, and schedule digest must be bitwise
/// identical between the shim and a direct `Plan` run with the translated
/// options, and the scalar statistics must agree exactly.
#[test]
#[allow(deprecated)]
fn deprecated_facade_matches_plan_path_bitwise() {
    use pastix::{Pastix, PastixOptions};
    let a = grid_spd::<f64>(9, 8, 3, Stencil::Star, false, ValueKind::RandomSpd(21));
    for procs in [1usize, 4] {
        let opts = PastixOptions::with_procs(procs);
        let shim = Pastix::analyze(&a, &opts).unwrap();
        let cfg = SolverConfig::default().with_analyze(opts.to_analyze_options());
        let plan = Plan::analyze(&a, &cfg);

        assert_eq!(
            shim.permutation().perm(),
            plan.permutation().unwrap().perm(),
            "procs {procs}: permutations differ"
        );
        let (s1, s2) = (shim.plan().symbol(), plan.symbol());
        assert_eq!(s1.n, s2.n);
        assert_eq!(s1.cblks, s2.cblks, "procs {procs}: column blocks differ");
        assert_eq!(s1.bloks, s2.bloks, "procs {procs}: off-diagonal blocks differ");
        assert_eq!(
            shim.plan().schedule().unwrap().digest(),
            plan.schedule().unwrap().digest(),
            "procs {procs}: schedule digests differ"
        );
        let stats = plan.analyze_stats().unwrap();
        assert_eq!(shim.nnz_l(), stats.scalar_nnz_offdiag);
        assert_eq!(shim.opc().to_bits(), stats.scalar_opc.to_bits());
        assert_eq!(
            shim.predicted_time().to_bits(),
            plan.schedule().unwrap().makespan.to_bits()
        );
    }
}
