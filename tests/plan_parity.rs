//! API-parity suite for the Plan migration: the deprecated one-release
//! shims (`factorize_parallel*`, `solve_parallel*`, `solve_panel_parallel*`)
//! must produce **bitwise-identical** results to the `Plan` API, because
//! both paths drive the very same engines. Runs on the deterministic sim
//! backend so every comparison is replayable per `(seed, policy)` and the
//! bitwise claim is meaningful (no thread-timing reassociation).
//!
//! This is the contract that makes migrating off the shims mechanical:
//! nothing about the numbers, traces, or schedule digests changes — only
//! the call shape.

#![allow(deprecated)]

use pastix::graph::gen::{grid_spd, Stencil, ValueKind};
use pastix::graph::rhs_for_solution;
use pastix::machine::MachineModel;
use pastix::ordering::{nested_dissection, OrderingOptions};
use pastix::runtime::sim::{FaultPlan, SchedPolicy};
use pastix::runtime::Backend;
use pastix::sched::{map_and_schedule, DistStrategy, Mapping, SchedOptions};
use pastix::solver::{
    factorize_parallel, factorize_parallel_with, solve_panel_parallel_traced, solve_parallel,
    solve_parallel_with, Plan, SolveRequest, SolverConfig,
};
use pastix::symbolic::{analyze, AnalysisOptions};

fn setup(procs: usize, strategy: DistStrategy) -> (pastix::graph::SymCsc<f64>, Mapping) {
    let a = grid_spd::<f64>(8, 8, 1, Stencil::Star, false, ValueKind::RandomSpd(13));
    let g = a.to_graph();
    let ord = nested_dissection(
        &g,
        &OrderingOptions {
            leaf_size: 8,
            ..Default::default()
        },
    );
    let an = analyze(&g, &ord, &AnalysisOptions::default());
    let machine = MachineModel::sp2(procs);
    let mut opts = SchedOptions::default();
    opts.block_size = 4;
    opts.mapping.strategy = strategy;
    opts.mapping.procs_2d_min = 2.0;
    opts.mapping.width_2d_min = 4;
    let mapping = map_and_schedule(&an.symbol, &machine, &opts);
    (a.permuted(&an.perm), mapping)
}

fn all_policies(seed: u64, procs: usize) -> [SchedPolicy; 4] {
    [
        SchedPolicy::Uniform,
        SchedPolicy::StarveRank(seed as usize % procs),
        SchedPolicy::DeliverLast,
        SchedPolicy::FifoPerPair,
    ]
}

fn assert_bitwise_eq(a: &[Vec<f64>], b: &[Vec<f64>], what: &str, diag: &str) {
    for (pa, pb) in a.iter().zip(b) {
        assert!(
            pa.iter().zip(pb).all(|(x, y)| x.to_bits() == y.to_bits()),
            "{diag}: {what} differ between shim and Plan API"
        );
    }
}

/// Shim factorization == `Plan::factorize`, bitwise, per `(seed, policy)`
/// and strategy — including the trace digest both runs stamp.
#[test]
fn shim_factorization_is_bitwise_identical_to_plan() {
    for strategy in [DistStrategy::Only1d, DistStrategy::Mixed1d2d] {
        let procs = 3;
        let (ap, mapping) = setup(procs, strategy);
        let sym = &mapping.graph.split.symbol;
        let plan = Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
        for seed in [2u64, 3] {
            for policy in all_policies(seed, procs) {
                let fp = FaultPlan::builder(seed).policy(policy).build();
                let cfg = SolverConfig::new().with_backend(Backend::Sim(fp));
                let diag = format!("seed {seed}, policy {policy:?}, strategy {strategy:?}");

                let shim =
                    factorize_parallel_with(sym, &ap, &mapping.graph, &mapping.schedule, &cfg)
                        .unwrap();
                let via_plan = plan.factorize(&ap, &cfg).unwrap();
                assert_bitwise_eq(&shim.panels, &via_plan.panels, "factor panels", &diag);
                assert_eq!(
                    shim.trace.digest, via_plan.trace.digest,
                    "{diag}: schedule digests differ"
                );
            }
        }
    }
}

/// The no-config shim (`factorize_parallel`) == the Plan API under the
/// default config (threads). The thread backend is not bitwise-stable
/// across runs, so this case pins the call-shape equivalence on the sim
/// backend via the `_with` shim and checks the plain shim solves at all.
#[test]
fn plain_shim_still_factorizes() {
    let (ap, mapping) = setup(2, DistStrategy::Mixed1d2d);
    let sym = &mapping.graph.split.symbol;
    let st = factorize_parallel(sym, &ap, &mapping.graph, &mapping.schedule).unwrap();
    let b = rhs_for_solution(&ap, &vec![1.0; ap.n()]);
    let x = solve_parallel(sym, &st, &mapping.graph, &mapping.schedule, &b);
    assert!(ap.residual_norm(&x, &b) < 1e-12);
}

/// Shim solves == `FactorRun::solve_request`, bitwise, single-RHS and
/// panel, traced and untraced, per `(seed, policy)`.
#[test]
fn shim_solves_are_bitwise_identical_to_solve_request() {
    let procs = 3;
    let (ap, mapping) = setup(procs, DistStrategy::Mixed1d2d);
    let sym = &mapping.graph.split.symbol;
    let plan = Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
    let n = ap.n();
    let nrhs = 3;
    let mut panel = vec![0.0f64; n * nrhs];
    for r in 0..nrhs {
        let xe: Vec<f64> = (0..n).map(|i| 1.0 + ((i + r * 7) % 5) as f64).collect();
        panel[r * n..(r + 1) * n].copy_from_slice(&rhs_for_solution(&ap, &xe));
    }
    for seed in [8u64, 9] {
        for policy in all_policies(seed, procs) {
            let fp = FaultPlan::builder(seed).policy(policy).build();
            let cfg = SolverConfig::new().with_backend(Backend::Sim(fp));
            let diag = format!("seed {seed}, policy {policy:?}");
            let run = plan.factorize(&ap, &cfg).unwrap();

            // Single RHS.
            let b = &panel[..n];
            let x_shim =
                solve_parallel_with(sym, &run.storage, &mapping.graph, &mapping.schedule, b, &cfg);
            let x_plan = run.solve(b);
            assert!(
                x_shim.iter().zip(&x_plan).all(|(u, v)| u.to_bits() == v.to_bits()),
                "{diag}: single-RHS solve differs between shim and Plan API"
            );

            // Panel, traced: solutions and canonical trace bytes agree.
            let tcfg = cfg.clone().with_trace(pastix::trace::TraceOptions::deterministic());
            let trun = plan.factorize(&ap, &tcfg).unwrap();
            let (xp_shim, t_shim) = solve_panel_parallel_traced(
                sym,
                &trun.storage,
                &mapping.graph,
                &mapping.schedule,
                &panel,
                nrhs,
                &tcfg,
            );
            let out = trun.solve_request(SolveRequest::panel(&panel, nrhs).traced());
            assert!(
                xp_shim.iter().zip(&out.x).all(|(u, v)| u.to_bits() == v.to_bits()),
                "{diag}: panel solve differs between shim and Plan API"
            );
            assert_eq!(
                t_shim.canonical_bytes(),
                out.trace.canonical_bytes(),
                "{diag}: solve traces differ between shim and Plan API"
            );
        }
    }
}
