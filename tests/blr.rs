//! End-to-end block-low-rank coverage across execution backends: the
//! tolerance sweep trading factor bytes for accuracy (recovered by
//! iterative refinement), strategy parity, the disabled-compression
//! invariants, and the published `lowrank.*` metrics. Bitwise replay
//! claims for the compressed path live in `plan_parity.rs` on the sim
//! backend; this suite runs the real thread backends, so accuracy is
//! asserted through residuals.

use pastix::graph::gen::{grid_spd, Stencil, ValueKind};
use pastix::graph::rhs_for_solution;
use pastix::machine::MachineModel;
use pastix::ordering::{nested_dissection, OrderingOptions};
use pastix::runtime::{Backend, DynamicOptions};
use pastix::sched::{map_and_schedule, DistStrategy, Mapping, SchedOptions};
use pastix::solver::{CompressionConfig, CompressionStrategy, Plan, SolverConfig};
use pastix::symbolic::{analyze, AnalysisOptions};

const PROCS: usize = 3;

/// A grid problem whose separator blocks genuinely compress at loose
/// tolerances (small grids stay near full rank and the sweep would be
/// vacuous).
fn setup() -> (pastix::graph::SymCsc<f64>, Mapping) {
    let a = grid_spd::<f64>(24, 24, 1, Stencil::Star, false, ValueKind::RandomSpd(17));
    let g = a.to_graph();
    let ord = nested_dissection(
        &g,
        &OrderingOptions {
            leaf_size: 16,
            ..Default::default()
        },
    );
    let an = analyze(&g, &ord, &AnalysisOptions::default());
    let machine = MachineModel::sp2(PROCS);
    let mut opts = SchedOptions::default();
    opts.block_size = 8;
    opts.mapping.strategy = DistStrategy::Mixed1d2d;
    opts.mapping.procs_2d_min = 2.0;
    opts.mapping.width_2d_min = 8;
    let mapping = map_and_schedule(&an.symbol, &machine, &opts);
    (a.permuted(&an.perm), mapping)
}

fn backends() -> [(Backend, &'static str); 2] {
    [
        (Backend::Threads, "threads"),
        (
            Backend::Dynamic(DynamicOptions::new().with_workers(PROCS)),
            "dynamic",
        ),
    ]
}

/// Tightening the sweep: looser tolerances must never cost more bytes,
/// the loosest level must actually engage, and iterative refinement
/// recovers full accuracy at every level.
#[test]
fn tolerance_sweep_trades_bytes_for_accuracy() {
    let (ap, mapping) = setup();
    let plan = Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
    let n = ap.n();
    let xe: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.25).collect();
    let b = rhs_for_solution(&ap, &xe);

    for (backend, name) in backends() {
        let dense = plan
            .factorize(&ap, &SolverConfig::new().with_backend(backend))
            .unwrap();
        let dense_bytes = dense.storage.factor_bytes();
        assert_eq!(dense_bytes, dense.storage.dense_factor_bytes());

        let mut prev_bytes = dense_bytes;
        for tol in [1e-8, 1e-4, 1e-2] {
            let cfg = SolverConfig::new().with_backend(backend).with_compression(
                CompressionConfig::with_tolerance(tol)
                    .min_block(2)
                    .strategy(CompressionStrategy::MinimalMemory),
            );
            let run = plan.factorize(&ap, &cfg).unwrap();
            let bytes = run.storage.factor_bytes();
            let diag = format!("backend {name}, tolerance {tol:e}");
            assert!(
                bytes <= prev_bytes,
                "{diag}: loosening the tolerance grew the factor ({bytes} > {prev_bytes})"
            );
            prev_bytes = bytes;

            let refined = run.solve_refined(&ap, &b, &Default::default());
            assert!(
                refined.residual < 1e-8,
                "{diag}: refined residual {}",
                refined.residual
            );

            // The registry mirrors the storage accounting exactly.
            assert_eq!(
                cfg.metrics.counter("lowrank.bytes_saved"),
                dense_bytes - bytes,
                "{diag}: bytes_saved counter disagrees with the storage"
            );
            if run.storage.is_compressed() {
                assert!(cfg.metrics.counter("lowrank.compressed_blocks") > 0, "{diag}");
                assert_eq!(cfg.metrics.gauge("lowrank.factor_bytes"), Some(bytes as f64), "{diag}");
            }
        }
        assert!(
            prev_bytes < dense_bytes,
            "backend {name}: the loosest tolerance never engaged compression"
        );
    }
}

/// Both compression strategies produce a usable factor at the same
/// tolerance: each compresses, each solves to full accuracy after
/// refinement. (They need not agree bitwise — just-in-time compression
/// feeds truncated panels into downstream updates, the minimal-memory
/// post-pass does not.)
#[test]
fn both_strategies_compress_and_solve() {
    let (ap, mapping) = setup();
    let plan = Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
    let n = ap.n();
    let xe: Vec<f64> = (0..n).map(|i| 0.5 + (i % 3) as f64).collect();
    let b = rhs_for_solution(&ap, &xe);

    for strategy in [CompressionStrategy::JustInTime, CompressionStrategy::MinimalMemory] {
        let cfg = SolverConfig::new().with_compression(
            CompressionConfig::with_tolerance(1e-2)
                .min_block(2)
                .strategy(strategy),
        );
        let run = plan.factorize(&ap, &cfg).unwrap();
        let diag = format!("strategy {strategy:?}");
        assert!(run.storage.is_compressed(), "{diag}: nothing compressed");
        assert!(
            run.storage.factor_bytes() < run.storage.dense_factor_bytes(),
            "{diag}: no bytes saved"
        );
        let refined = run.solve_refined(&ap, &b, &Default::default());
        assert!(refined.residual < 1e-8, "{diag}: refined residual {}", refined.residual);
    }
}

/// Disabled compression (tolerance `0.0` or a default config) leaves the
/// storage dense on every backend: no overlay, identical byte accounting,
/// zero metrics.
#[test]
fn zero_tolerance_stays_dense_on_every_backend() {
    let (ap, mapping) = setup();
    let plan = Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
    for (backend, name) in backends() {
        let cfg = SolverConfig::new().with_backend(backend).with_compression(
            CompressionConfig::with_tolerance(0.0)
                .min_block(2)
                .strategy(CompressionStrategy::MinimalMemory),
        );
        let run = plan.factorize(&ap, &cfg).unwrap();
        assert!(!run.storage.is_compressed(), "backend {name}: tolerance 0 compressed");
        assert_eq!(run.storage.factor_bytes(), run.storage.dense_factor_bytes());
        assert_eq!(cfg.metrics.counter("lowrank.compressed_blocks"), 0);
        assert_eq!(cfg.metrics.counter("lowrank.bytes_saved"), 0);
    }
}
