//! Seeded chaos suite for the fan-in/fan-both solver on the deterministic
//! simulation runtime.
//!
//! Every execution here is a pure function of its printed `(seed, policy)`
//! pair: the simulator serializes the logical processors and lets a seeded
//! RNG pick among the actions the [`SchedPolicy`] leaves enabled, so any
//! failure this suite ever finds is replayed exactly by re-running with
//! the same fault plan (see README § Testing). Failure diagnostics print
//! the replayable `(seed, policy, schedule digest)` triple.
//!
//! Scaling knobs:
//! * `PASTIX_CHAOS_SEEDS` — total seeded interleavings of the agreement
//!   sweeps (default 216; CI smoke uses 50).
//! * `PASTIX_CHAOS_POLICY` — scheduling policy of the main sweep:
//!   `uniform` (default), `starve` (victim = seed % procs),
//!   `deliver-last`, or `fifo`. CI runs the sweep once per policy.

use pastix::graph::gen::{grid_spd, Stencil, ValueKind};
use pastix::graph::{canonical_solution, rhs_for_solution, SymCsc};
use pastix::machine::MachineModel;
use pastix::ordering::{nested_dissection, OrderingOptions};
use pastix::runtime::sim::{run_sim_spmd, FaultPlan, SchedPolicy, SimRng};
use pastix::runtime::{Backend, TaggedMailbox};
use pastix::sched::{map_and_schedule, DistStrategy, Mapping, SchedOptions, TaskKind};
use pastix::solver::{
    factorize_sequential, solve_in_place, ChaosOptions, DynamicOptions, FactorStorage, Plan,
    SolverConfig,
};
use pastix::symbolic::{analyze, AnalysisOptions};

/// One prepared problem × processor-count case with its sequential
/// reference factor and solution.
struct Case {
    name: &'static str,
    procs: usize,
    ap: SymCsc<f64>,
    mapping: Mapping,
    /// `perm: None` plan over the same graph/schedule: `ap` is already in
    /// elimination order.
    plan: Plan,
    seq: FactorStorage<f64>,
    b: Vec<f64>,
    x_seq: Vec<f64>,
}

impl Case {
    /// The replayable failure triple plus the builder call reproducing the
    /// plan — everything a developer needs to replay a red run.
    fn diag(&self, plan: &FaultPlan) -> String {
        format!(
            "[chaos seed {}, policy {:?}, schedule digest {:#018x}, problem {}, procs {}] — \
             replay: FaultPlan::builder({}).drop_lossy({:?}).duplicate_lossy({:?})\
             .policy(SchedPolicy::{:?}).build()",
            plan.seed,
            plan.policy,
            self.mapping.schedule.digest(),
            self.name,
            self.procs,
            plan.seed,
            plan.drop_lossy,
            plan.duplicate_lossy,
            plan.policy
        )
    }

    /// Simulated factorize + solve under `opts`, checked entry-for-entry
    /// against the sequential references.
    fn check_against_sequential(&self, opts: &SolverConfig, diag: &str) {
        let par = self
            .plan
            .factorize(&self.ap, opts)
            .unwrap_or_else(|e| panic!("{diag}: factorization failed: {e:?}"));
        let mut max_diff = 0.0f64;
        for (pa, pb) in par.panels.iter().zip(&self.seq.panels) {
            for (x, y) in pa.iter().zip(pb) {
                max_diff = max_diff.max((x - y).abs());
            }
        }
        assert!(max_diff < 1e-8, "{diag}: factor deviation {max_diff}");
        let x_par = par.solve(&self.b);
        for (u, v) in x_par.iter().zip(&self.x_seq) {
            assert!(
                (u - v).abs() < 1e-9,
                "{diag}: solve deviates: parallel {u} vs sequential {v}"
            );
        }
        let res = self.ap.residual_norm(&x_par, &self.b);
        assert!(res < 1e-12, "{diag}: residual {res}");
    }
}

fn build_case(
    name: &'static str,
    (nx, ny, nz): (usize, usize, usize),
    strategy: DistStrategy,
    block: usize,
    procs: usize,
) -> Case {
    let a = grid_spd::<f64>(nx, ny, nz, Stencil::Star, false, ValueKind::RandomSpd(97));
    let g = a.to_graph();
    let ord = nested_dissection(
        &g,
        &OrderingOptions {
            leaf_size: 8,
            ..Default::default()
        },
    );
    let an = analyze(&g, &ord, &AnalysisOptions::default());
    let machine = MachineModel::sp2(procs);
    let mut opts = SchedOptions::default();
    opts.block_size = block;
    opts.mapping.strategy = strategy;
    opts.mapping.procs_2d_min = 2.0;
    opts.mapping.width_2d_min = 4;
    let mapping = map_and_schedule(&an.symbol, &machine, &opts);
    let ap = a.permuted(&an.perm);
    let sym = &mapping.graph.split.symbol;
    let mut seq = FactorStorage::zeros(sym);
    seq.scatter(sym, &ap);
    factorize_sequential(sym, &mut seq).unwrap();
    let x_exact = canonical_solution::<f64>(ap.n());
    let b = rhs_for_solution(&ap, &x_exact);
    let mut x_seq = b.clone();
    solve_in_place(sym, &seq, &mut x_seq);
    let plan = Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
    Case {
        name,
        procs,
        ap,
        mapping,
        plan,
        seq,
        b,
        x_seq,
    }
}

type ProblemSpec = (&'static str, (usize, usize, usize), DistStrategy, usize);

/// The 3 problems × 3 processor counts matrix of the sweep.
fn build_matrix() -> Vec<Case> {
    let problems: [ProblemSpec; 3] = [
        ("grid6x6-1d", (6, 6, 1), DistStrategy::Only1d, 4),
        ("grid8x8-mixed", (8, 8, 1), DistStrategy::Mixed1d2d, 4),
        ("grid3x3x3-mixed", (3, 3, 3), DistStrategy::Mixed1d2d, 4),
    ];
    let mut cases = Vec::new();
    for &(name, dims, strategy, block) in &problems {
        for procs in [2usize, 3, 4] {
            cases.push(build_case(name, dims, strategy, block, procs));
        }
    }
    cases
}

fn seed_budget(default_total: usize) -> usize {
    std::env::var("PASTIX_CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_total)
        .max(1)
}

/// Resolves `PASTIX_CHAOS_POLICY` for one `(seed, procs)` point of the
/// sweep; `starve` picks its victim from the seed so the whole sweep does
/// not fixate on one rank.
fn sweep_policy(seed: u64, procs: usize) -> SchedPolicy {
    match std::env::var("PASTIX_CHAOS_POLICY").ok().as_deref() {
        None | Some("uniform") => SchedPolicy::Uniform,
        Some("starve") => SchedPolicy::StarveRank(seed as usize % procs),
        Some("deliver-last") => SchedPolicy::DeliverLast,
        Some("fifo") => SchedPolicy::FifoPerPair,
        Some(other) => panic!(
            "unknown PASTIX_CHAOS_POLICY {other:?} (use uniform | starve | deliver-last | fifo)"
        ),
    }
}

/// (a) The agreement sweep: across seeds × problems × proc counts, the
/// simulated factorization and distributed solve must match the
/// sequential solver entry for entry. `PASTIX_CHAOS_POLICY` reruns the
/// whole sweep under an adversarial scheduling policy.
#[test]
fn chaos_factorization_and_solve_agree_with_sequential() {
    let cases = build_matrix();
    let total = seed_budget(216);
    for i in 0..total {
        let case = &cases[i % cases.len()];
        let seed = i as u64;
        let plan = FaultPlan::builder(seed)
            .policy(sweep_policy(seed, case.procs))
            .build();
        let opts = SolverConfig {
            backend: Backend::Sim(plan),
            ..Default::default()
        };
        case.check_against_sequential(&opts, &case.diag(&plan));
    }
}

/// (a') The adversarial agreement sweep: the same seed budget split across
/// `StarveRank` and `DeliverLast`, independent of `PASTIX_CHAOS_POLICY` —
/// starving one rank or always delivering the freshest message must never
/// change what the solver computes.
#[test]
fn chaos_adversarial_policies_agree_with_sequential() {
    let cases = build_matrix();
    let total = seed_budget(216);
    for i in 0..total {
        let case = &cases[i % cases.len()];
        let seed = 0xADE_0000 + i as u64;
        let policy = if i % 2 == 0 {
            SchedPolicy::StarveRank(seed as usize % case.procs)
        } else {
            SchedPolicy::DeliverLast
        };
        let plan = FaultPlan::builder(seed).policy(policy).build();
        let opts = SolverConfig {
            backend: Backend::Sim(plan),
            ..Default::default()
        };
        case.check_against_sequential(&opts, &case.diag(&plan));
    }
}

/// (a'') Fan-Both partial aggregation under a punishing memory cap, with
/// lossy faults (drops reported to the sender, duplicate deliveries) and
/// every scheduling policy: AUB flushes are retried on drop and deduped on
/// duplication, so the factorization stays exact.
#[test]
fn chaos_fan_both_lossy_under_every_policy() {
    let cases = [
        build_case("grid8x8-mixed", (8, 8, 1), DistStrategy::Mixed1d2d, 4, 3),
        build_case("grid3x3x3-mixed", (3, 3, 3), DistStrategy::Mixed1d2d, 4, 4),
    ];
    let per_policy = seed_budget(216).div_ceil(27).max(4);
    for (c, case) in cases.iter().enumerate() {
        for p in 0..4usize {
            for i in 0..per_policy {
                let seed = 0xFB_0000 + (((c * 4 + p) * per_policy + i) as u64);
                let policy = match p {
                    0 => SchedPolicy::Uniform,
                    1 => SchedPolicy::StarveRank(seed as usize % case.procs),
                    2 => SchedPolicy::DeliverLast,
                    _ => SchedPolicy::FifoPerPair,
                };
                let plan = FaultPlan::builder(seed)
                    .drop_lossy(0.25)
                    .duplicate_lossy(0.25)
                    .policy(policy)
                    .build();
                let opts = SolverConfig {
                    backend: Backend::Sim(plan),
                    // Punishing cap: forces many partial AUB flushes, so
                    // drops/duplicates hit the aggregation path itself.
                    aub_memory_limit: Some(16),
                    ..Default::default()
                };
                case.check_against_sequential(&opts, &case.diag(&plan));
            }
        }
    }
}

/// (a''') The `Backend::Dynamic` agreement sweep: the work-stealing DAG
/// executor, run under its deterministic sim serialization with every
/// scheduling policy (and both with and without priority hints), must
/// reproduce the sequential factor and solution within the same
/// tolerances as the SPMD backends. Dynamic execution accumulates
/// contributions in a data-dependent order, so agreement is entrywise
/// within tolerance rather than bitwise.
#[test]
fn chaos_dynamic_backend_agrees_with_sequential_under_every_policy() {
    let cases = build_matrix();
    let per_policy = seed_budget(216).div_ceil(27).max(4);
    for (p, base_policy) in [
        SchedPolicy::Uniform,
        SchedPolicy::StarveRank(0),
        SchedPolicy::DeliverLast,
        SchedPolicy::FifoPerPair,
    ]
    .into_iter()
    .enumerate()
    {
        for i in 0..per_policy {
            let case = &cases[(p * per_policy + i) % cases.len()];
            let seed = 0xD1A_0000 + ((p * per_policy + i) as u64);
            let policy = match base_policy {
                SchedPolicy::StarveRank(_) => SchedPolicy::StarveRank(seed as usize % case.procs),
                other => other,
            };
            let plan = FaultPlan::builder(seed).policy(policy).build();
            let dopts = DynamicOptions::new()
                .with_workers(case.procs)
                .with_priorities(i % 2 == 1)
                .with_sim(plan);
            let opts = SolverConfig {
                backend: Backend::Dynamic(dopts),
                ..Default::default()
            };
            case.check_against_sequential(&opts, &format!("[dynamic] {}", case.diag(&plan)));
        }
    }
}

/// `Backend::Dynamic` on real worker threads (no sim serialization), both
/// with and without the static schedule's placement/priority hints.
#[test]
fn dynamic_backend_on_threads_agrees_with_sequential() {
    let cases = build_matrix();
    for (i, case) in cases.iter().enumerate() {
        let dopts = DynamicOptions::new()
            .with_workers(case.procs)
            .with_priorities(i % 2 == 0);
        let opts = SolverConfig {
            backend: Backend::Dynamic(dopts),
            ..Default::default()
        };
        let diag = format!("[dynamic threads, problem {}, procs {}]", case.name, case.procs);
        case.check_against_sequential(&opts, &diag);
    }
}

/// A schedule-free plan (`analyze.static_schedule = false` shape): only
/// `Backend::Dynamic` can run it, and it still agrees with sequential.
#[test]
fn dynamic_backend_runs_scheduleless_plans() {
    let case = build_case("grid8x8-mixed", (8, 8, 1), DistStrategy::Mixed1d2d, 4, 3);
    let bare = Plan::from_parts(None, case.mapping.graph.clone(), None);
    let opts = SolverConfig {
        backend: Backend::Dynamic(DynamicOptions::new().with_workers(3)),
        ..Default::default()
    };
    let run = bare.factorize(&case.ap, &opts).unwrap();
    let mut max_diff = 0.0f64;
    for (pa, pb) in run.panels.iter().zip(&case.seq.panels) {
        for (x, y) in pa.iter().zip(pb) {
            max_diff = max_diff.max((x - y).abs());
        }
    }
    assert!(max_diff < 1e-8, "scheduleless dynamic factor deviation {max_diff}");
    let x = run.solve(&case.b);
    assert!(case.ap.residual_norm(&x, &case.b) < 1e-12);
}

/// Zero-pivot injection aborts the dynamic executor cleanly under every
/// sim policy — the error surfaces, nothing deadlocks.
#[test]
fn chaos_dynamic_zero_pivot_aborts_cleanly() {
    let case = build_case("grid8x8-mixed", (8, 8, 1), DistStrategy::Mixed1d2d, 4, 3);
    let graph = &case.mapping.graph;
    let candidates: Vec<u32> = (0..graph.n_tasks() as u32)
        .filter(|&t| {
            matches!(
                graph.kinds[t as usize],
                TaskKind::Comp1d { .. } | TaskKind::Factor { .. }
            )
        })
        .collect();
    for (p, policy) in [
        SchedPolicy::Uniform,
        SchedPolicy::StarveRank(1),
        SchedPolicy::DeliverLast,
        SchedPolicy::FifoPerPair,
    ]
    .into_iter()
    .enumerate()
    {
        let seed = 0x00DE_ADD1_u64 + p as u64;
        let mut rng = SimRng::new(seed);
        let victim = candidates[rng.below(candidates.len())];
        let plan = FaultPlan::builder(seed).policy(policy).build();
        let opts = SolverConfig {
            backend: Backend::Dynamic(DynamicOptions::new().with_sim(plan)),
            chaos: ChaosOptions {
                zero_pivot_task: Some(victim),
                ..Default::default()
            },
            ..Default::default()
        };
        let res = case.plan.factorize(&case.ap, &opts);
        assert!(
            res.is_err(),
            "[dynamic] {}: injected zero pivot at task {victim} was not reported",
            case.diag(&plan)
        );
    }
}

/// The replay guarantee itself: same `(seed, policy)` → bit-identical
/// factor and solution, including under an adversarial policy with lossy
/// faults enabled.
#[test]
fn chaos_same_seed_replays_identically() {
    let case = build_case("grid8x8-mixed", (8, 8, 1), DistStrategy::Mixed1d2d, 4, 3);
    let plans = [
        FaultPlan::builder(1).build(),
        FaultPlan::builder(17).policy(SchedPolicy::DeliverLast).build(),
        FaultPlan::builder(4242)
            .drop_lossy(0.3)
            .duplicate_lossy(0.3)
            .policy(SchedPolicy::StarveRank(2))
            .build(),
    ];
    for plan in plans {
        let opts = SolverConfig {
            backend: Backend::Sim(plan),
            ..Default::default()
        };
        let run = || {
            let f = case.plan.factorize(&case.ap, &opts).unwrap();
            let x = f.solve(&case.b);
            (f, x)
        };
        let (f1, x1) = run();
        let (f2, x2) = run();
        // Bit-identical, not approximately equal: the execution replayed.
        assert_eq!(
            x1,
            x2,
            "{}: solve not replayed bit-identically",
            case.diag(&plan)
        );
        for (pa, pb) in f1.panels.iter().zip(&f2.panels) {
            assert!(
                pa.iter().zip(pb).all(|(a, b)| a.to_bits() == b.to_bits()),
                "{}: factor not replayed bit-identically",
                case.diag(&plan)
            );
        }
    }
}

/// (b) Abort propagation: an injected zero pivot at a seed-chosen task
/// must terminate every interleaving cleanly under every scheduling
/// policy — every worker unwinds with the error, nobody deadlocks (a sim
/// deadlock panics with the `(seed, policy)` pair).
#[test]
fn chaos_zero_pivot_abort_always_terminates_cleanly() {
    let cases = build_matrix();
    let total = seed_budget(216).div_ceil(4).max(24);
    for i in 0..total {
        let case = &cases[i % cases.len()];
        let seed = 0x5EED_0000 + i as u64;
        // Seed-pick a factorization-bearing task (COMP1D or FACTOR head).
        let graph = &case.mapping.graph;
        let candidates: Vec<u32> = (0..graph.n_tasks() as u32)
            .filter(|&t| {
                matches!(
                    graph.kinds[t as usize],
                    TaskKind::Comp1d { .. } | TaskKind::Factor { .. }
                )
            })
            .collect();
        let mut rng = SimRng::new(seed);
        let victim = candidates[rng.below(candidates.len())];
        let policy = match i % 4 {
            0 => SchedPolicy::Uniform,
            1 => SchedPolicy::StarveRank(seed as usize % case.procs),
            2 => SchedPolicy::DeliverLast,
            _ => SchedPolicy::FifoPerPair,
        };
        let plan = FaultPlan::builder(seed).policy(policy).build();
        let opts = SolverConfig {
            backend: Backend::Sim(plan),
            chaos: ChaosOptions {
                zero_pivot_task: Some(victim),
                ..Default::default()
            },
            ..Default::default()
        };
        let res = case.plan.factorize(&case.ap, &opts);
        assert!(
            res.is_err(),
            "{}: injected zero pivot at task {victim} was not reported",
            case.diag(&plan)
        );
    }
}

/// (b') Crash injection: a worker panicking mid-schedule must unwind the
/// whole simulated machine and surface the original panic — never hang
/// the other workers.
#[test]
fn chaos_worker_panic_unwinds_whole_machine() {
    let case = build_case("grid8x8-mixed", (8, 8, 1), DistStrategy::Mixed1d2d, 4, 4);
    for i in 0..12u64 {
        let seed = 0xDEAD_0000 + i;
        let mut rng = SimRng::new(seed);
        let rank = rng.below(case.procs) as u32;
        let n_local = case.mapping.schedule.proc_tasks[rank as usize].len();
        if n_local == 0 {
            continue;
        }
        let idx = rng.below(n_local);
        let plan = FaultPlan::builder(seed).build();
        let opts = SolverConfig {
            backend: Backend::Sim(plan),
            chaos: ChaosOptions {
                panic_at: Some((rank, idx)),
                ..Default::default()
            },
            ..Default::default()
        };
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = case.plan.factorize(&case.ap, &opts);
        }));
        let payload = caught.expect_err("injected panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| {
                payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .unwrap_or_default()
            });
        assert!(
            msg.contains("chaos: injected panic"),
            "{}: expected the injected panic, got: {msg:?}",
            case.diag(&plan)
        );
    }
}

/// (c) TaggedMailbox exactly-once buffering: under maximal reordering,
/// every reliable message is delivered exactly once through the pool, in
/// the key order the receiver demands, and the pool drains to empty.
#[test]
fn chaos_tagged_mailbox_exactly_once_under_max_reorder() {
    const PROCS: usize = 4;
    const TAGS: u32 = 8;
    let total = seed_budget(216).div_ceil(3).max(40);
    for i in 0..total {
        let seed = 0x7A66_0000 + i as u64;
        let plan = FaultPlan::builder(seed).build();
        let results = run_sim_spmd::<(u32, u32), u64, _>(PROCS, &plan, |ctx| {
            let me = ctx.rank();
            // Everyone sends TAGS messages to everyone else (reliable
            // channel: exactly-once is the invariant under test).
            for q in 0..PROCS {
                if q != me {
                    for tag in 0..TAGS {
                        ctx.send(q, (tag, (me as u32) << 16 | tag));
                    }
                }
            }
            // Demand (sender, tag) keys in a seed-scrambled order the
            // senders certainly did not follow.
            let mut keys: Vec<(usize, u32)> = (0..PROCS)
                .filter(|&q| q != me)
                .flat_map(|q| (0..TAGS).map(move |t| (q, t)))
                .collect();
            let mut rng = SimRng::new(plan.seed ^ me as u64);
            for j in (1..keys.len()).rev() {
                keys.swap(j, rng.below(j + 1));
            }
            let mut mb = TaggedMailbox::<(usize, u32), (u32, u32)>::new();
            let mut seen = std::collections::HashSet::new();
            let mut sum = 0u64;
            for key in keys {
                let env = mb.recv_key(&ctx, &key, |m| ((m.1 >> 16) as usize, m.0));
                assert_eq!(env.from, key.0, "sender mismatch for {key:?}");
                assert_eq!(env.msg.0, key.1, "tag mismatch for {key:?}");
                assert!(seen.insert(key), "duplicate delivery of {key:?}");
                sum += env.msg.1 as u64;
            }
            assert_eq!(mb.buffered(), 0, "pool must drain to empty");
            assert!(ctx.try_recv().is_none(), "stray message after drain");
            sum
        });
        // Every rank received exactly the same multiset of payloads.
        let expect: u64 = (0..PROCS as u64)
            .map(|q| (0..TAGS as u64).map(|t| (q << 16) | t).sum::<u64>())
            .sum::<u64>();
        for (me, &got) in results.iter().enumerate() {
            let mine: u64 = (0..TAGS as u64).map(|t| ((me as u64) << 16) | t).sum();
            assert_eq!(got, expect - mine, "rank {me}, seed {seed}");
        }
    }
}

/// Duplicate-delivery fault: with `duplicate_lossy = 1.0` every lossy
/// message arrives exactly twice — the buffering pool must hand back both
/// copies (it buffers envelopes, it does not deduplicate), and a receiver
/// that counts arrivals can verify at-least-once semantics exactly.
#[test]
fn chaos_duplicate_lossy_delivers_exactly_twice() {
    const TAGS: u32 = 6;
    for i in 0..20u64 {
        let seed = 0xD0_0000 + i;
        let plan = FaultPlan::builder(seed).duplicate_lossy(1.0).build();
        let results = run_sim_spmd::<u32, Vec<u32>, _>(2, &plan, |ctx| {
            if ctx.rank() == 0 {
                for tag in 0..TAGS {
                    assert!(ctx.send_lossy(1, tag));
                }
                return vec![];
            }
            let mut counts = vec![0u32; TAGS as usize];
            for _ in 0..2 * TAGS {
                let env = ctx.recv();
                counts[env.msg as usize] += 1;
            }
            assert!(ctx.try_recv().is_none(), "more than two copies in flight");
            counts
        });
        assert_eq!(results[1], vec![2u32; TAGS as usize], "seed {seed}");
    }
}

/// Drop fault: with `drop_lossy = 1.0` every lossy send reports the drop
/// to the sender (`false`) and nothing ever arrives — the sender-visible
/// outcome the solver's abort protocol relies on.
#[test]
fn chaos_dropped_lossy_reports_to_sender() {
    for i in 0..20u64 {
        let seed = 0xD60_0000 + i;
        let plan = FaultPlan::builder(seed).drop_lossy(1.0).build();
        let results = run_sim_spmd::<u32, bool, _>(2, &plan, |ctx| {
            if ctx.rank() == 0 {
                (0..8).all(|t| !ctx.send_lossy(1, t))
            } else {
                ctx.try_recv().is_none()
            }
        });
        assert_eq!(results, vec![true, true], "seed {seed}");
    }
}


/// (g) Paper-adjacent stress sweep: the same agreement check at grid sizes
/// and processor counts an order of magnitude past the smoke matrix —
/// deeper elimination trees, wider 2D blocks, and 6–8 logical processors
/// stress the AUB aggregation and fan-both routing paths the small grids
/// barely touch. Every seed runs under all four `SchedPolicy` variants.
/// Too slow for the per-push smoke lane; run it on demand with
/// `cargo test --release -p pastix-integration --test sim_chaos -- --ignored`.
#[test]
#[ignore = "paper-adjacent sizes; minutes in release — see CI stress job"]
fn chaos_stress_paper_adjacent_sizes() {
    let problems: [ProblemSpec; 3] = [
        ("grid16x16-mixed", (16, 16, 1), DistStrategy::Mixed1d2d, 8),
        ("grid24x10-mixed", (24, 10, 1), DistStrategy::Mixed1d2d, 8),
        ("grid6x6x6-mixed", (6, 6, 6), DistStrategy::Mixed1d2d, 8),
    ];
    let seeds_per_point = seed_budget(216).div_ceil(72).max(2);
    for (pi, &(name, dims, strategy, block)) in problems.iter().enumerate() {
        for (ci, procs) in [6usize, 8].into_iter().enumerate() {
            let case = build_case(name, dims, strategy, block, procs);
            for p in 0..4usize {
                for i in 0..seeds_per_point {
                    let seed =
                        0x57E_0000 + ((((pi * 2 + ci) * 4 + p) * seeds_per_point + i) as u64);
                    let policy = match p {
                        0 => SchedPolicy::Uniform,
                        1 => SchedPolicy::StarveRank(seed as usize % case.procs),
                        2 => SchedPolicy::DeliverLast,
                        _ => SchedPolicy::FifoPerPair,
                    };
                    let plan = FaultPlan::builder(seed)
                        .drop_lossy(0.1)
                        .duplicate_lossy(0.1)
                        .policy(policy)
                        .build();
                    let opts = SolverConfig {
                        backend: Backend::Sim(plan),
                        aub_memory_limit: Some(64),
                        ..Default::default()
                    };
                    case.check_against_sequential(&opts, &case.diag(&plan));
                }
            }
        }
    }
}
