//! Serving-layer correctness: batched multi-RHS panel solves must agree
//! entrywise with independent single-RHS solves, on both execution
//! backends, across every chaos scheduling policy.
//!
//! The panel solve shares one message protocol across all `k` coalesced
//! right-hand sides and runs GEMM-shaped trailing updates instead of `k`
//! GEMVs, so nothing about its arithmetic is per-column — these tests pin
//! the invariant that batching is purely an execution-shape change, never
//! a numerics change. The reference is the sequential
//! `solve_in_place` sweep over the same factor, column by column.

use pastix::graph::gen::{grid_spd, Stencil, ValueKind};
use pastix::graph::rhs_for_solution;
use pastix::machine::MachineModel;
use pastix::ordering::{nested_dissection, OrderingOptions};
use pastix::runtime::sim::{FaultPlan, SchedPolicy};
use pastix::runtime::Backend;
use pastix::sched::{map_and_schedule, DistStrategy, Mapping, SchedOptions};
use pastix::solver::{solve_in_place, Plan, SolverConfig};
use pastix::symbolic::{analyze, AnalysisOptions};
use pastix_serve::{RequestQueue, SessionOptions, SolverSession};

const WIDTHS: [usize; 4] = [1, 3, 8, 32];

fn setup(procs: usize) -> (pastix::graph::SymCsc<f64>, Mapping) {
    let a = grid_spd::<f64>(9, 9, 1, Stencil::Star, false, ValueKind::RandomSpd(23));
    let g = a.to_graph();
    let ord = nested_dissection(
        &g,
        &OrderingOptions {
            leaf_size: 8,
            ..Default::default()
        },
    );
    let an = analyze(&g, &ord, &AnalysisOptions::default());
    let machine = MachineModel::sp2(procs);
    let mut opts = SchedOptions::default();
    opts.block_size = 8;
    opts.mapping.strategy = DistStrategy::Mixed1d2d;
    opts.mapping.procs_2d_min = 2.0;
    opts.mapping.width_2d_min = 4;
    let mapping = map_and_schedule(&an.symbol, &machine, &opts);
    (a.permuted(&an.perm), mapping)
}

/// Deterministic `n × k` RHS panel (column-major) with distinct columns.
fn rhs_panel(a: &pastix::graph::SymCsc<f64>, k: usize) -> Vec<f64> {
    let n = a.n();
    let mut panel = vec![0.0f64; n * k];
    for r in 0..k {
        let xe: Vec<f64> = (0..n)
            .map(|i| 1.0 + ((i * 5 + r * 11) % 13) as f64 - 6.0)
            .collect();
        panel[r * n..(r + 1) * n].copy_from_slice(&rhs_for_solution(a, &xe));
    }
    panel
}

/// Batched panel solve vs k independent sequential solves over the same
/// factor, entrywise.
fn assert_panel_agrees(cfg: &SolverConfig, tol: f64, label: &str) {
    let procs = 4;
    let (ap, mapping) = setup(procs);
    let sym = &mapping.graph.split.symbol;
    let plan = Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
    let run = plan
        .factorize(&ap, cfg)
        .unwrap_or_else(|e| panic!("{label}: factorization failed: {e:?}"));
    let n = ap.n();
    for k in WIDTHS {
        let panel = rhs_panel(&ap, k);
        let x = run.solve_panel(&panel, k);
        for r in 0..k {
            let mut xr = panel[r * n..(r + 1) * n].to_vec();
            solve_in_place(sym, &run.storage, &mut xr);
            for (i, (u, v)) in x[r * n..(r + 1) * n].iter().zip(&xr).enumerate() {
                assert!(
                    (u - v).abs() <= tol * v.abs().max(1.0),
                    "{label}: k={k} col {r} row {i}: batched {u} vs sequential {v}"
                );
            }
        }
    }
}

#[test]
fn panel_solve_agrees_with_sequential_on_threads() {
    // The threads backend sums fan-in contributions in arrival order, so
    // agreement with the sequential sweep is to rounding, not bitwise.
    assert_panel_agrees(&SolverConfig::default(), 1e-10, "threads");
}

#[test]
fn panel_solve_agrees_with_sequential_under_every_chaos_policy() {
    for (seed, policy) in [
        (31u64, SchedPolicy::Uniform),
        (32, SchedPolicy::StarveRank(1)),
        (33, SchedPolicy::DeliverLast),
        (34, SchedPolicy::FifoPerPair),
    ] {
        let plan = FaultPlan::builder(seed)
            .policy(policy)
            .drop_lossy(0.10)
            .duplicate_lossy(0.05)
            .build();
        let cfg = SolverConfig::new().with_backend(Backend::Sim(plan));
        assert_panel_agrees(&cfg, 1e-10, &format!("sim seed {seed} policy {policy:?}"));
    }
}

/// The full serving stack — fingerprint, cache, queue coalescing, panel
/// solve, permutation round-trip — returns each request's own solution on
/// both backends.
#[test]
fn session_serves_coalesced_batches_on_both_backends() {
    let a = grid_spd::<f64>(9, 9, 1, Stencil::Star, false, ValueKind::RandomSpd(23));
    let n = a.n();
    let backends = [
        ("threads", SolverConfig::default()),
        (
            "sim",
            SolverConfig::new()
                .with_backend(Backend::Sim(FaultPlan::builder(5).build())),
        ),
    ];
    for (label, cfg) in backends {
        let opts = SessionOptions {
            procs: 3,
            max_panel: 8,
            sched: SchedOptions {
                block_size: 8,
                ..Default::default()
            },
            solver: cfg,
            ..Default::default()
        };
        let mut session = SolverSession::<f64>::new(opts);
        let mut q = RequestQueue::new();
        let mut exact = Vec::new();
        for r in 0..13usize {
            let xe: Vec<f64> = (0..n).map(|i| ((i * 3 + r * 7) % 9) as f64 - 4.0).collect();
            q.submit(rhs_for_solution(&a, &xe), r as u64);
            exact.push(xe);
        }
        let mut done = Vec::new();
        while !q.is_empty() {
            done.extend(q.serve_batch(&mut session, &a, 500, 1_000).unwrap());
        }
        assert_eq!(done.len(), 13, "{label}: all requests served");
        // max_panel = 8 → widths 8 then 5.
        assert_eq!(done[0].batch, 8, "{label}");
        assert_eq!(done[12].batch, 5, "{label}");
        for c in &done {
            let xe = &exact[c.id as usize];
            for (i, (u, v)) in c.x.iter().zip(xe).enumerate() {
                assert!(
                    (u - v).abs() < 1e-8,
                    "{label}: request {} row {i}: {u} vs exact {v}",
                    c.id
                );
            }
        }
        assert_eq!(session.metrics().counter("serve.cache.misses"), 1, "{label}");
        assert_eq!(session.metrics().counter("serve.cache.hits"), 1, "{label}");
    }
}
