//! End-to-end pipeline tests through the public facade: every generator
//! family, real solves, statistics coherence, and the complex-symmetric
//! path the paper motivates LDLᵀ with.

use pastix::graph::gen::{grid_spd, plate_spd, shell_spd, solid_spd, thread_spd, Stencil, ValueKind};
use pastix::graph::{build_problem, canonical_solution, rhs_for_solution, ProblemId, SymCsc};
use pastix::kernels::Complex64;
use pastix::{Pastix, PastixOptions};

fn solve_and_check(a: &SymCsc<f64>, opts: &PastixOptions, tol: f64) {
    let solver = Pastix::analyze(a, opts).expect("analysis");
    let f = solver.factorize(a).expect("factorize");
    let x_exact = canonical_solution::<f64>(a.n());
    let b = rhs_for_solution(a, &x_exact);
    let x = f.solve(&b);
    let res = a.residual_norm(&x, &b);
    assert!(res < tol, "residual {res} on n = {}", a.n());
}

#[test]
fn every_generator_family_solves() {
    let opts = PastixOptions::with_procs(2);
    for a in [
        plate_spd::<f64>(15, 12, Stencil::Star, ValueKind::Laplacian),
        plate_spd::<f64>(12, 12, Stencil::Box, ValueKind::RandomSpd(1)),
        solid_spd::<f64>(7, 6, 5, Stencil::Star, ValueKind::RandomSpd(2)),
        shell_spd::<f64>(16, 12, 1, Stencil::Box, ValueKind::RandomSpd(3)),
        thread_spd::<f64>(10, 4, 8, ValueKind::RandomSpd(4)),
        grid_spd::<f64>(30, 5, 1, Stencil::Star, true, ValueKind::Laplacian),
    ] {
        solve_and_check(&a, &opts, 1e-12);
    }
}

#[test]
fn every_paper_analog_solves_at_tiny_scale() {
    let mut opts = PastixOptions::with_procs(2);
    opts.sched.block_size = 32;
    for id in ProblemId::ALL {
        let a = build_problem::<f64>(id, 0.01);
        solve_and_check(&a, &opts, 1e-11);
    }
}

#[test]
fn statistics_are_coherent() {
    let a = build_problem::<f64>(ProblemId::Quer, 0.02);
    let solver = Pastix::analyze(&a, &PastixOptions::with_procs(4)).unwrap();
    // Fill never shrinks the pattern.
    assert!(solver.nnz_l() >= a.nnz_offdiag() as u64);
    // OPC at least n (one op per pivot) and consistent with the symbol.
    assert!(solver.opc() >= a.n() as f64);
    let sym_opc = solver.mapping().graph.split.symbol.opc();
    assert!(sym_opc >= solver.opc() * 0.99, "block OPC {sym_opc} < scalar {}", solver.opc());
    // Schedule covers all tasks.
    let total: usize = solver
        .mapping()
        .schedule
        .proc_tasks
        .iter()
        .map(|v| v.len())
        .sum();
    assert_eq!(total, solver.mapping().graph.n_tasks());
}

#[test]
fn complex_symmetric_end_to_end() {
    // Complex symmetric (non-Hermitian) system on a shell pattern.
    let re = shell_spd::<f64>(10, 8, 1, Stencil::Star, ValueKind::RandomSpd(7));
    let n = re.n();
    let mut tr = Vec::new();
    for j in 0..n {
        for (&i, &v) in re.rows_of(j).iter().zip(re.vals_of(j)) {
            let im = if i as usize == j { 0.4 } else { -0.07 * v };
            tr.push((i, j as u32, Complex64::new(v, im)));
        }
    }
    let a = SymCsc::<Complex64>::from_triplets(n, &tr);
    let solver = Pastix::analyze(&a, &PastixOptions::with_procs(2)).unwrap();
    let f = solver.factorize(&a).unwrap();
    let x_exact = canonical_solution::<Complex64>(n);
    let b = rhs_for_solution(&a, &x_exact);
    let x = f.solve(&b);
    assert!(a.residual_norm(&x, &b) < 1e-12);
}

#[test]
fn deterministic_across_runs() {
    let a = build_problem::<f64>(ProblemId::Oilpan, 0.01);
    let opts = PastixOptions::with_procs(4);
    let s1 = Pastix::analyze(&a, &opts).unwrap();
    let s2 = Pastix::analyze(&a, &opts).unwrap();
    assert_eq!(s1.permutation().perm(), s2.permutation().perm());
    assert_eq!(s1.mapping().schedule.task_proc, s2.mapping().schedule.task_proc);
    assert_eq!(s1.predicted_time(), s2.predicted_time());
}

#[test]
fn sequential_and_parallel_numeric_agree_through_facade() {
    let a = build_problem::<f64>(ProblemId::Ship001, 0.015);
    let x_exact = canonical_solution::<f64>(a.n());
    let b = rhs_for_solution(&a, &x_exact);

    let mut seq_opts = PastixOptions::with_procs(4);
    seq_opts.parallel_numeric = false;
    let s1 = Pastix::analyze(&a, &seq_opts).unwrap();
    let x1 = s1.factorize(&a).unwrap().solve(&b);

    let par_opts = PastixOptions::with_procs(4);
    let s2 = Pastix::analyze(&a, &par_opts).unwrap();
    let x2 = s2.factorize(&a).unwrap().solve(&b);

    for (u, v) in x1.iter().zip(&x2) {
        assert!((u - v).abs() < 1e-9, "{u} vs {v}");
    }
}
