//! End-to-end pipeline tests through the public entry path (`Plan`):
//! every generator family, real solves, statistics coherence, and the
//! complex-symmetric path the paper motivates LDLᵀ with.

use pastix::graph::gen::{grid_spd, plate_spd, shell_spd, solid_spd, thread_spd, Stencil, ValueKind};
use pastix::graph::{build_problem, canonical_solution, rhs_for_solution, ProblemId, SymCsc};
use pastix::kernels::Complex64;
use pastix::solver::{Plan, SolverConfig};

fn cfg_for(procs: usize) -> SolverConfig {
    let mut cfg = SolverConfig::default();
    cfg.analyze.procs = procs;
    cfg
}

fn solve_and_check(a: &SymCsc<f64>, cfg: &SolverConfig, tol: f64) {
    let plan = Plan::analyze(a, cfg);
    let run = plan.factorize(a, cfg).expect("factorize");
    let x_exact = canonical_solution::<f64>(a.n());
    let b = rhs_for_solution(a, &x_exact);
    let x = run.solve(&b);
    let res = a.residual_norm(&x, &b);
    assert!(res < tol, "residual {res} on n = {}", a.n());
}

#[test]
fn every_generator_family_solves() {
    let cfg = cfg_for(2);
    for a in [
        plate_spd::<f64>(15, 12, Stencil::Star, ValueKind::Laplacian),
        plate_spd::<f64>(12, 12, Stencil::Box, ValueKind::RandomSpd(1)),
        solid_spd::<f64>(7, 6, 5, Stencil::Star, ValueKind::RandomSpd(2)),
        shell_spd::<f64>(16, 12, 1, Stencil::Box, ValueKind::RandomSpd(3)),
        thread_spd::<f64>(10, 4, 8, ValueKind::RandomSpd(4)),
        grid_spd::<f64>(30, 5, 1, Stencil::Star, true, ValueKind::Laplacian),
    ] {
        solve_and_check(&a, &cfg, 1e-12);
    }
}

#[test]
fn every_paper_analog_solves_at_tiny_scale() {
    let mut cfg = cfg_for(2);
    cfg.analyze.sched.block_size = 32;
    for id in ProblemId::ALL {
        let a = build_problem::<f64>(id, 0.01);
        solve_and_check(&a, &cfg, 1e-11);
    }
}

#[test]
fn statistics_are_coherent() {
    let a = build_problem::<f64>(ProblemId::Quer, 0.02);
    let plan = Plan::analyze(&a, &cfg_for(4));
    let stats = plan.analyze_stats().expect("analyzed plans carry stats");
    // Fill never shrinks the pattern.
    assert!(stats.scalar_nnz_offdiag >= a.nnz_offdiag() as u64);
    // OPC at least n (one op per pivot) and consistent with the symbol.
    assert!(stats.scalar_opc >= a.n() as f64);
    let sym_opc = plan.symbol().opc();
    assert!(
        sym_opc >= stats.scalar_opc * 0.99,
        "block OPC {sym_opc} < scalar {}",
        stats.scalar_opc
    );
    // Schedule covers all tasks.
    let schedule = plan.schedule().expect("static schedule");
    let total: usize = schedule.proc_tasks.iter().map(|v| v.len()).sum();
    assert_eq!(total, plan.graph().n_tasks());
}

#[test]
fn complex_symmetric_end_to_end() {
    // Complex symmetric (non-Hermitian) system on a shell pattern.
    let re = shell_spd::<f64>(10, 8, 1, Stencil::Star, ValueKind::RandomSpd(7));
    let n = re.n();
    let mut tr = Vec::new();
    for j in 0..n {
        for (&i, &v) in re.rows_of(j).iter().zip(re.vals_of(j)) {
            let im = if i as usize == j { 0.4 } else { -0.07 * v };
            tr.push((i, j as u32, Complex64::new(v, im)));
        }
    }
    let a = SymCsc::<Complex64>::from_triplets(n, &tr);
    let cfg = cfg_for(2);
    let plan = Plan::analyze(&a, &cfg);
    let run = plan.factorize(&a, &cfg).unwrap();
    let x_exact = canonical_solution::<Complex64>(n);
    let b = rhs_for_solution(&a, &x_exact);
    let x = run.solve(&b);
    assert!(a.residual_norm(&x, &b) < 1e-12);
}

#[test]
fn deterministic_across_runs() {
    let a = build_problem::<f64>(ProblemId::Oilpan, 0.01);
    let cfg = cfg_for(4);
    let p1 = Plan::analyze(&a, &cfg);
    let p2 = Plan::analyze(&a, &cfg);
    assert_eq!(p1.permutation().unwrap().perm(), p2.permutation().unwrap().perm());
    let (s1, s2) = (p1.schedule().unwrap(), p2.schedule().unwrap());
    assert_eq!(s1.task_proc, s2.task_proc);
    assert_eq!(s1.makespan, s2.makespan);
    assert_eq!(s1.digest(), s2.digest());
}

#[test]
fn sequential_and_parallel_numeric_agree_through_facade() {
    let a = build_problem::<f64>(ProblemId::Ship001, 0.015);
    let x_exact = canonical_solution::<f64>(a.n());
    let b = rhs_for_solution(&a, &x_exact);

    // Sequential reference: factor outside the backend, solve via the
    // same plan surface.
    let cfg = cfg_for(4);
    let plan = Plan::analyze(&a, &cfg);
    let ap = a.permuted(plan.permutation().unwrap());
    let sym = plan.symbol();
    let mut st = pastix::solver::FactorStorage::zeros(sym);
    st.scatter(sym, &ap);
    pastix::solver::factorize_sequential(sym, &mut st).unwrap();
    let seq_run = pastix::solver::run_from_storage(st, &plan, &cfg);
    let x1 = seq_run.solve(&b);

    // Threaded fan-in path.
    let x2 = plan.factorize(&a, &cfg).unwrap().solve(&b);

    for (u, v) in x1.iter().zip(&x2) {
        assert!((u - v).abs() < 1e-9, "{u} vs {v}");
    }
}
