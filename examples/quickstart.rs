//! Quickstart: solve a sparse SPD system end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 3D Laplacian-like SPD matrix, runs the full PaStiX pipeline
//! (ordering → block symbolic factorization → static 1D/2D scheduling →
//! threaded fan-in numeric factorization) and solves `A·x = b`.

use pastix::graph::gen::{grid_spd, Stencil, ValueKind};
use pastix::graph::{canonical_solution, rhs_for_solution};
use pastix::solver::{Plan, SolverConfig};

fn main() {
    // 1. A sparse SPD system: 20×20×10 grid, 7-point stencil.
    let a = grid_spd::<f64>(20, 20, 10, Stencil::Star, false, ValueKind::RandomSpd(1));
    println!("matrix: n = {}, stored nnz = {}", a.n(), a.nnz_stored());

    // 2. Analyze: ordering + symbolic + static schedule for 4 processors.
    let mut cfg = SolverConfig::default();
    cfg.analyze.procs = 4;
    cfg.analyze.sched.block_size = 64;
    let plan = Plan::analyze(&a, &cfg);
    let stats = plan.analyze_stats().expect("analyzed plans carry stats");
    println!(
        "factor:  NNZ_L = {}, OPC = {:.3e}, column blocks = {}",
        stats.scalar_nnz_offdiag,
        stats.scalar_opc,
        plan.symbol().n_cblks()
    );
    println!(
        "schedule: {} tasks, predicted parallel factorization {:.4} s on the SP2 model",
        plan.graph().n_tasks(),
        plan.schedule().expect("static schedule").makespan
    );

    // 3. Factorize (threaded fan-in solver) and solve.
    let x_exact = canonical_solution::<f64>(a.n());
    let b = rhs_for_solution(&a, &x_exact);
    let run = plan.factorize(&a, &cfg).expect("factorization failed");
    let x = run.solve(&b);

    // 4. Check the answer.
    let residual = a.residual_norm(&x, &b);
    let max_err = x
        .iter()
        .zip(&x_exact)
        .map(|(xi, ei)| (xi - ei).abs())
        .fold(0.0f64, f64::max);
    println!("solve:   scaled residual = {residual:.2e}, max |x - x_exact| = {max_err:.2e}");
    assert!(residual < 1e-12);
    println!("OK");
}
