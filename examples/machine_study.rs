//! Machine study: how the static schedule adapts to the interconnect.
//!
//! ```sh
//! cargo run --release --example machine_study
//! ```
//!
//! The greedy mapper prices every placement against the machine model, so
//! changing the network *changes the schedule*: on a slow network it
//! consolidates work (fewer, larger ownership regions, fewer messages); on
//! a fast one it spreads aggressively. This example sweeps the latency and
//! bandwidth of the modeled SP2 switch by powers of ten and reports what
//! the scheduler did with the very same task graph.

use pastix::graph::{build_problem, ProblemId};
use pastix::machine::{MachineModel, NetworkModel};
use pastix::ordering::{nested_dissection, OrderingOptions};
use pastix::sched::{comm_stats, map_and_schedule, SchedOptions};
use pastix::symbolic::{analyze, AnalysisOptions};

fn main() {
    let a = build_problem::<f64>(ProblemId::Ship003, 0.05);
    let g = a.to_graph();
    let ord = nested_dissection(&g, &OrderingOptions::scotch_like());
    let an = analyze(&g, &ord, &AnalysisOptions::default());
    let p = 16;
    println!(
        "SHIP003 analog, n = {}, {} supernodes, {p} processors",
        a.n(),
        an.symbol.n_cblks()
    );
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>12}",
        "net speed", "makespan(s)", "messages", "util", "x-proc edges"
    );
    let base = NetworkModel::sp2_switch();
    for (label, lat_mul, bw_mul) in [
        ("100x fast", 0.01, 100.0),
        ("10x fast", 0.1, 10.0),
        ("SP2", 1.0, 1.0),
        ("10x slow", 10.0, 0.1),
        ("100x slow", 100.0, 0.01),
    ] {
        let machine = MachineModel {
            net: NetworkModel {
                latency: base.latency * lat_mul,
                bandwidth: base.bandwidth * bw_mul,
            },
            ..MachineModel::sp2(p)
        };
        let m = map_and_schedule(&an.symbol, &machine, &SchedOptions::default());
        let c = comm_stats(&m.graph, &m.schedule);
        // Cross-processor dependency edges (how spread the mapping is).
        let mut xedges = 0u64;
        for t in 0..m.graph.n_tasks() {
            let tq = m.schedule.task_proc[t];
            for (src, _) in m.graph.in_edges(t) {
                if m.schedule.task_proc[src as usize] != tq {
                    xedges += 1;
                }
            }
        }
        println!(
            "{:>10} {:>12.4} {:>12} {:>9.0}% {:>12}",
            label,
            m.schedule.makespan,
            c.messages_fanin,
            m.schedule.utilization(&m.graph) * 100.0,
            xedges
        );
    }
    println!("\nReading: the proportional mapping pins the subtree work to its candidate");
    println!("processors regardless of the network, so the edge counts barely move — what");
    println!("the cost-aware greedy phase buys is *graceful degradation*: even a 100x");
    println!("slower switch only stretches the makespan by the unavoidable transfer time");
    println!("instead of stalling the pipeline (utilization absorbs the hit).");
}
