//! Structural-analysis scenario: the workload class the paper's
//! experiments come from (ship hulls, oil pans — PARASOL-style meshes).
//!
//! ```sh
//! cargo run --release --example structural_analysis
//! ```
//!
//! Builds the SHIP001 analog (a cylindrical shell mesh), walks through
//! every phase explicitly, prints per-phase statistics, runs the threaded
//! fan-in factorization and compares the real run against the schedule's
//! prediction under the local in-process machine model.

use pastix::graph::{build_problem, canonical_solution, rhs_for_solution, ProblemId};
use pastix::machine::{measure_in_process_network, MachineModel};
use pastix::ordering::{nested_dissection, OrderingOptions};
use pastix::sched::{comm_stats, map_and_schedule, SchedOptions};
use pastix::solver::{solve_in_place, Plan, SolverConfig};
use pastix::symbolic::{analyze, AnalysisOptions};
use std::time::Instant;

fn main() {
    let scale = 0.1;
    println!("== SHIP001 analog (cylindrical shell), scale {scale} ==");
    let a = build_problem::<f64>(ProblemId::Ship001, scale);
    println!("matrix: n = {}, NNZ_A = {}", a.n(), a.nnz_offdiag());

    // Phase 1: ordering.
    let t0 = Instant::now();
    let g = a.to_graph();
    let ord = nested_dissection(&g, &OrderingOptions::scotch_like());
    println!("ordering: {:.3} s (nested dissection + halo minimum degree)", t0.elapsed().as_secs_f64());

    // Phase 2: block symbolic factorization.
    let t0 = Instant::now();
    let an = analyze(&g, &ord, &AnalysisOptions::default());
    println!(
        "symbolic: {:.3} s — {} supernodes, NNZ_L = {}, OPC = {:.3e}, fill ratio = {:.1}",
        t0.elapsed().as_secs_f64(),
        an.symbol.n_cblks(),
        an.scalar_nnz_offdiag,
        an.scalar_opc,
        an.scalar_nnz_offdiag as f64 / a.nnz_offdiag() as f64
    );
    let sh = an.symbol.shape();
    println!(
        "blocks:   {} bloks, widest cblk {} (mean {:.1}), tallest blok {} (mean {:.1})",
        sh.n_bloks, sh.max_width, sh.mean_width, sh.max_blok_rows, sh.mean_blok_rows
    );

    // Phase 3: repartitioning + static scheduling for the *local* machine
    // (2 physical cores modeled with a measured in-process network).
    let n_procs = 2;
    let machine = MachineModel {
        net: measure_in_process_network(),
        ..MachineModel::sp2(n_procs)
    };
    let t0 = Instant::now();
    let sched_opts = SchedOptions {
        block_size: 64,
        ..Default::default()
    };
    let mapping = map_and_schedule(&an.symbol, &machine, &sched_opts);
    println!(
        "schedule: {:.3} s — {} tasks on {} procs, predicted makespan {:.4} s, utilization {:.0}%",
        t0.elapsed().as_secs_f64(),
        mapping.graph.n_tasks(),
        n_procs,
        mapping.schedule.makespan,
        mapping.schedule.utilization(&mapping.graph) * 100.0
    );
    let cs = comm_stats(&mapping.graph, &mapping.schedule);
    println!(
        "comm:     {} AUB/factor messages (vs {} without fan-in aggregation)",
        cs.messages_fanin, cs.messages_direct
    );

    // Phase 4: numeric factorization on threads + solve.
    let ap = a.permuted(&an.perm);
    let sym = &mapping.graph.split.symbol;
    let plan = Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
    let t0 = Instant::now();
    let storage = plan.factorize(&ap, &SolverConfig::default()).expect("factorization failed");
    let t_fact = t0.elapsed().as_secs_f64();
    println!("numeric:  {:.3} s measured on {} threads (prediction above is for the modeled machine)", t_fact, n_procs);

    let x_exact = canonical_solution::<f64>(a.n());
    let b_perm = rhs_for_solution(&ap, &an.perm.apply_vec(&x_exact));
    let mut x = b_perm.clone();
    let t0 = Instant::now();
    solve_in_place(sym, &storage, &mut x);
    println!("solve:    {:.4} s, residual = {:.2e}", t0.elapsed().as_secs_f64(), ap.residual_norm(&x, &b_perm));
}
