//! Scheduling explorer: a look inside the paper's core contribution.
//!
//! ```sh
//! cargo run --release --example scheduling_explorer
//! ```
//!
//! For one problem, shows how the proportional mapping assigns candidate
//! processors and picks 1D vs 2D per supernode, then prints the greedy
//! schedule as a per-processor summary and a coarse text Gantt chart.

use pastix::graph::{build_problem, ProblemId};
use pastix::machine::MachineModel;
use pastix::ordering::{nested_dissection, OrderingOptions};
use pastix::sched::{analyze_schedule, map_and_schedule, SchedOptions, TaskKind};
use pastix::symbolic::{analyze, AnalysisOptions};

fn main() {
    let a = build_problem::<f64>(ProblemId::Oilpan, 0.05);
    let g = a.to_graph();
    let ord = nested_dissection(&g, &OrderingOptions::scotch_like());
    let an = analyze(&g, &ord, &AnalysisOptions::default());
    let n_procs = 8;
    let machine = MachineModel::sp2(n_procs);
    let sched_opts = SchedOptions {
        block_size: 64,
        ..Default::default()
    };
    let mapping = map_and_schedule(&an.symbol, &machine, &sched_opts);

    println!("== OILPAN analog, {} columns, {} supernodes, {} procs ==", a.n(), an.symbol.n_cblks(), n_procs);

    // Candidate sets of the topmost supernodes.
    println!("\nTop of the block elimination tree (candidate intervals, 1D/2D choice):");
    let ns = an.symbol.n_cblks();
    let cand = &mapping.candidates;
    let show = 8.min(ns);
    for k in (ns - show)..ns {
        println!(
            "  cblk {:>5}  width {:>4}  depth {:>2}  candidates [{:>6.2}, {:>6.2})  {}",
            k,
            an.symbol.cblks[k].width(),
            cand.depth[k],
            cand.lo[k],
            cand.hi[k],
            if cand.is_2d[k] { "2D" } else { "1D" }
        );
    }
    let n2d = cand.is_2d.iter().filter(|&&b| b).count();
    println!("  ({n2d} of {ns} supernodes distributed 2D)");

    // Task mix.
    let mut counts = [0usize; 4];
    for k in &mapping.graph.kinds {
        match k {
            TaskKind::Comp1d { .. } => counts[0] += 1,
            TaskKind::Factor { .. } => counts[1] += 1,
            TaskKind::Bdiv { .. } => counts[2] += 1,
            TaskKind::Bmod { .. } => counts[3] += 1,
        }
    }
    println!(
        "\nTask graph: {} tasks — COMP1D {}, FACTOR {}, BDIV {}, BMOD {}",
        mapping.graph.n_tasks(),
        counts[0],
        counts[1],
        counts[2],
        counts[3]
    );

    // Per-processor summary.
    let busy = mapping.schedule.busy_time(&mapping.graph);
    println!("\nPer-processor schedule (makespan {:.4} s):", mapping.schedule.makespan);
    for p in 0..n_procs {
        println!(
            "  P{p}: {:>5} tasks, busy {:.4} s ({:.0}% of makespan)",
            mapping.schedule.proc_tasks[p].len(),
            busy[p],
            busy[p] / mapping.schedule.makespan * 100.0
        );
    }

    // Coarse text Gantt: 60 columns of makespan, '#' = busy.
    println!("\nGantt ('#' busy, '.' idle):");
    let cols = 60usize;
    let dt = mapping.schedule.makespan / cols as f64;
    for p in 0..n_procs {
        let mut row = vec!['.'; cols];
        for &t in &mapping.schedule.proc_tasks[p] {
            let t = t as usize;
            let c0 = (mapping.schedule.start[t] / dt) as usize;
            let c1 = ((mapping.schedule.end[t] / dt).ceil() as usize).min(cols);
            for cell in row.iter_mut().take(c1).skip(c0.min(cols - 1)) {
                *cell = '#';
            }
        }
        println!("  P{p} |{}|", row.into_iter().collect::<String>());
    }
    println!(
        "\nOverall utilization {:.0}%",
        mapping.schedule.utilization(&mapping.graph) * 100.0
    );
    let an_s = analyze_schedule(&mapping.graph, &mapping.schedule);
    println!(
        "Total work {:.4} s, critical path {:.4} s, lower bound on {} procs {:.4} s",
        an_s.total_work, an_s.critical_path, n_procs, an_s.lower_bound
    );
    println!(
        "Schedule quality: {:.0}% of the provable optimum",
        an_s.quality * 100.0
    );
}
