//! Complex symmetric systems — the reason PaStiX uses `L·D·Lᵀ`.
//!
//! ```sh
//! cargo run --release --example complex_symmetric
//! ```
//!
//! The paper (§1): *"we use LDLᵀ factorization in order to solve sparse
//! systems with complex coefficients"*. A complex *symmetric* matrix
//! (`A = Aᵀ`, not Hermitian — e.g. from time-harmonic wave problems with
//! absorbing boundaries) has no Cholesky factorization, but `L·D·Lᵀ`
//! without pivoting applies verbatim with the unconjugated transpose.
//! This example builds such a system (a damped Helmholtz-like operator on
//! a 3D grid), runs the identical pipeline the real-valued examples use,
//! and checks the solution.

use pastix::graph::gen::{grid_spd, Stencil, ValueKind};
use pastix::graph::{canonical_solution, rhs_for_solution, SymCsc};
use pastix::kernels::Complex64;
use pastix::solver::{Plan, SolverConfig};

fn main() {
    // Real SPD stiffness pattern …
    let k_re = grid_spd::<f64>(12, 12, 6, Stencil::Star, false, ValueKind::RandomSpd(9));
    let n = k_re.n();
    // … shifted into a complex symmetric operator K + i·(σM): damping on
    // the diagonal, a small complex perturbation on the couplings.
    let mut tr = Vec::with_capacity(k_re.nnz_stored());
    for j in 0..n {
        for (&i, &v) in k_re.rows_of(j).iter().zip(k_re.vals_of(j)) {
            let im = if i as usize == j { 0.8 } else { 0.02 * v };
            tr.push((i, j as u32, Complex64::new(v, im)));
        }
    }
    let a = SymCsc::<Complex64>::from_triplets(n, &tr);
    println!("complex symmetric system: n = {n}, nnz = {}", a.nnz_stored());
    assert_eq!(a.get(5, 17), a.get(17, 5), "symmetric, not Hermitian");

    let cfg = SolverConfig::default(); // analyze + factorize for 4 procs
    let plan = Plan::analyze(&a, &cfg);
    let stats = plan.analyze_stats().expect("analyzed plans carry stats");
    println!(
        "NNZ_L = {}, OPC = {:.3e} (complex ops), predicted factorization {:.4} s",
        stats.scalar_nnz_offdiag,
        stats.scalar_opc,
        plan.schedule().expect("static schedule").makespan
    );

    let run = plan.factorize(&a, &cfg).expect("factorization (no pivoting!)");
    let x_exact = canonical_solution::<Complex64>(n);
    let b = rhs_for_solution(&a, &x_exact);
    let x = run.solve(&b);
    let res = a.residual_norm(&x, &b);
    let max_err = x
        .iter()
        .zip(&x_exact)
        .map(|(u, v)| (*u - *v).abs())
        .fold(0.0f64, f64::max);
    println!("residual = {res:.2e}, max |x − x_exact| = {max_err:.2e}");
    assert!(res < 1e-12);
    println!("OK — the LDLᵀ pipeline handles complex symmetric systems unchanged.");
}
