//! Ordering comparison: how much the fill-reducing ordering matters, and
//! how the paper's Scotch-like coupling (ND + halo MD) compares with the
//! MeTiS-like variant (ND + plain MD) and simpler strategies.
//!
//! ```sh
//! cargo run --release --example ordering_compare
//! ```

use pastix::graph::{build_problem, Permutation, ProblemId};
use pastix::ordering::{nested_dissection, pure_min_degree, reverse_cuthill_mckee, OrderingOptions};
use pastix::symbolic::{analyze, AnalysisOptions};

fn main() {
    println!(
        "{:<10} {:>8} | {:>12} {:>12} {:>12} {:>12} {:>12}  (NNZ_L)",
        "Problem", "n", "natural", "RCM", "min degree", "ND+MD", "ND+HaloMD"
    );
    for id in [ProblemId::Quer, ProblemId::Ship001, ProblemId::Thread] {
        let a = build_problem::<f64>(id, 0.03);
        let g = a.to_graph();
        let natural = analyze(&g, &Permutation::identity(g.n()), &AnalysisOptions::default());
        let rcm = analyze(&g, &reverse_cuthill_mckee(&g), &AnalysisOptions::default());
        let md = analyze(&g, &pure_min_degree(&g), &AnalysisOptions::default());
        let nd_md = analyze(
            &g,
            &nested_dissection(&g, &OrderingOptions::metis_like()),
            &AnalysisOptions::default(),
        );
        let nd_hmd = analyze(
            &g,
            &nested_dissection(&g, &OrderingOptions::scotch_like()),
            &AnalysisOptions::default(),
        );
        println!(
            "{:<10} {:>8} | {:>12} {:>12} {:>12} {:>12} {:>12}",
            id.name(),
            a.n(),
            natural.scalar_nnz_offdiag,
            rcm.scalar_nnz_offdiag,
            md.scalar_nnz_offdiag,
            nd_md.scalar_nnz_offdiag,
            nd_hmd.scalar_nnz_offdiag,
        );
        println!(
            "{:<10} {:>8} | {:>12.2e} {:>12.2e} {:>12.2e} {:>12.2e} {:>12.2e}  (OPC)",
            "",
            "",
            natural.scalar_opc,
            rcm.scalar_opc,
            md.scalar_opc,
            nd_md.scalar_opc,
            nd_hmd.scalar_opc,
        );
    }
    println!("\nExpected shape: natural ≳ RCM ≫ pure MD ≳ ND variants; halo-MD ≤ plain-MD leaves.");
}
