//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the `pastix-bench` benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter` —
//! as a plain min-of-samples timing harness that prints one line per
//! bench. No statistics, plots, or baselines; the point is that the
//! bench targets compile and produce usable numbers offline.

use std::fmt::Display;
use std::time::Instant;

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per bench.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Times a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named group sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets this group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one bench of the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Times one bench parameterized by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_bench(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of a parameterized bench.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Passed to each bench closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: usize,
    best: Option<f64>,
    total_iters: u64,
}

impl Bencher {
    /// Runs `f` once per sample (after one warmup call), keeping the
    /// minimum observed wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warmup
        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            best = best.min(t0.elapsed().as_secs_f64());
            self.total_iters += 1;
        }
        self.best = Some(best);
    }
}

fn run_bench(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        best: None,
        total_iters: 0,
    };
    f(&mut b);
    match b.best {
        Some(t) => println!("bench {label:<48} min {:>12} ({} iters)", format_time(t), b.total_iters),
        None => println!("bench {label:<48} (no measurement)"),
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Re-export matching `criterion::black_box` (benches also use
/// `std::hint::black_box` directly).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a bench group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut count = 0u32;
        g.bench_function("f", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        g.finish();
        // warmup + 2 samples
        assert_eq!(count, 3);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("a", 7).label, "a/7");
        assert_eq!(BenchmarkId::from_parameter(64).label, "64");
    }
}
