//! Offline stand-in for `proptest`.
//!
//! The workspace builds in containers without crates.io access, so this
//! crate reimplements the subset of proptest the test suites rely on:
//!
//! - the `proptest! { #![proptest_config(..)] #[test] fn f(x in strat) {..} }`
//!   macro form,
//! - range strategies over integers and floats, tuple strategies, and
//!   `prop::collection::vec`,
//! - `prop_assert!` / `prop_assert_eq!`.
//!
//! Cases are generated from a seed derived deterministically from the
//! test's module path and name, so every run replays the same inputs
//! (report a failure by test name; there is no shrinking). That trades
//! proptest's exploration-and-shrinking machinery for reproducibility,
//! which is what a CI tier wants anyway.

/// Deterministic generator handed to strategies.
pub mod test_runner {
    /// SplitMix64 stream used to drive all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator for one `(test, case)` pair.
        pub fn for_case(test_path: &str, case: u32) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// The subset of proptest's config the macro honors.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident . $i:tt),+ ))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy generating `Vec`s of values of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span > 1 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    /// `prop::collection::vec(..)` paths resolve through this alias.
    pub use crate as prop;
}

/// The main macro: a deterministic, non-shrinking re-implementation of
/// `proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident ( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

/// Assertion that reports the failing expression (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Equality assertion with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            panic!(
                "prop_assert_eq failed: {} != {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            panic!($($fmt)+);
        }
    }};
}

/// Inequality assertion with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            panic!(
                "prop_assert_ne failed: {} == {} (both {:?})",
                stringify!($a),
                stringify!($b),
                __a
            );
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 1usize..30, f in -2.0f64..2.0) {
            prop_assert!((1..30).contains(&n));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_strategy_sizes(v in collection::vec((0u32..10, 0.0f64..1.0), 3..9)) {
            prop_assert!(v.len() >= 3 && v.len() < 9);
            for (a, b) in v {
                prop_assert!(a < 10);
                prop_assert!((0.0..1.0).contains(&b));
            }
        }

        #[test]
        fn tuple_destructuring((a, b, c) in (0usize..5, 0usize..5, 0usize..5)) {
            prop_assert!(a < 5 && b < 5 && c < 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = crate::test_runner::TestRng::for_case("x::y", 3);
        let mut r2 = crate::test_runner::TestRng::for_case("x::y", 3);
        assert_eq!(r1.next_u64(), r2.next_u64());
        let mut r3 = crate::test_runner::TestRng::for_case("x::y", 4);
        assert_ne!(r1.next_u64(), r3.next_u64());
    }
}
