//! Offline stand-in for `rayon`.
//!
//! The workspace uses two shapes of parallelism: the fork-join of nested
//! dissection ([`join`]) and bounded fan-out over disjoint chunks of work
//! ([`scope`]). Instead of a work-stealing pool, each spawned branch runs
//! on a scoped OS thread — bounded by a global budget so deep recursions
//! and wide fan-outs degrade to sequential execution instead of spawning
//! thousands of threads. [`current_num_threads`] reports the host's
//! available parallelism so callers can size their fan-out.

use std::sync::atomic::{AtomicUsize, Ordering};

static ACTIVE_SPAWNS: AtomicUsize = AtomicUsize::new(0);

/// Maximum concurrently outstanding spawned branches before [`join`] and
/// [`Scope::spawn`] fall back to running closures inline.
const SPAWN_BUDGET: usize = 48;

/// Number of threads the "pool" would use — the host's available
/// parallelism (1 if it cannot be queried).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs the two closures, potentially in parallel, and returns both
/// results. Panics in either closure propagate.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if ACTIVE_SPAWNS.load(Ordering::Relaxed) >= SPAWN_BUDGET {
        return (oper_a(), oper_b());
    }
    ACTIVE_SPAWNS.fetch_add(1, Ordering::Relaxed);
    let out = std::thread::scope(|s| {
        let hb = s.spawn(oper_b);
        let ra = oper_a();
        let rb = match hb.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    });
    ACTIVE_SPAWNS.fetch_sub(1, Ordering::Relaxed);
    out
}

/// Task scope handed to the [`scope`] closure; [`Scope::spawn`] schedules
/// a task that is guaranteed to complete before [`scope`] returns.
pub struct Scope<'s, 'env: 's> {
    inner: &'s std::thread::Scope<'s, 'env>,
}

impl<'s, 'env> Scope<'s, 'env> {
    /// Spawns `body` into the scope. Over the global budget the body runs
    /// inline on the calling thread — same completion guarantee, no
    /// thread. Panics in spawned tasks propagate when the scope closes.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'s, 'env>) + Send + 's,
    {
        if ACTIVE_SPAWNS.load(Ordering::Relaxed) >= SPAWN_BUDGET {
            body(self);
            return;
        }
        ACTIVE_SPAWNS.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner;
        inner.spawn(move || {
            let scope = Scope { inner };
            body(&scope);
            ACTIVE_SPAWNS.fetch_sub(1, Ordering::Relaxed);
        });
    }
}

/// Creates a scope in which tasks can be [`Scope::spawn`]ed; all spawned
/// tasks finish before `scope` returns. Panics in spawned tasks propagate.
pub fn scope<'env, F, R>(body: F) -> R
where
    F: for<'s> FnOnce(&Scope<'s, 'env>) -> R + Send,
    R: Send,
{
    std::thread::scope(|s| {
        let sc = Scope { inner: s };
        body(&sc)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn nested_joins_respect_budget() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
        assert_eq!(ACTIVE_SPAWNS.load(Ordering::Relaxed), 0);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        let _ = join(|| 1, || panic!("boom"));
    }

    #[test]
    fn scope_runs_all_spawns() {
        use std::sync::atomic::AtomicU32;
        let hits = AtomicU32::new(0);
        scope(|s| {
            for _ in 0..20 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn scope_spawns_write_disjoint_slices() {
        let mut data = vec![0u32; 64];
        scope(|s| {
            for (i, chunk) in data.chunks_mut(16).enumerate() {
                s.spawn(move |_| {
                    for (j, x) in chunk.iter_mut().enumerate() {
                        *x = (i * 16 + j) as u32;
                    }
                });
            }
        });
        let want: Vec<u32> = (0..64).collect();
        assert_eq!(data, want);
    }

    #[test]
    fn scope_spawn_can_nest() {
        use std::sync::atomic::AtomicU32;
        let hits = AtomicU32::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn scope_returns_value() {
        let v = scope(|_| 41 + 1);
        assert_eq!(v, 42);
    }

    #[test]
    #[should_panic]
    fn scope_panics_propagate() {
        scope(|s| {
            s.spawn(|_| panic!("spawned boom"));
        });
    }

    #[test]
    fn num_threads_positive() {
        assert!(current_num_threads() >= 1);
    }
}
