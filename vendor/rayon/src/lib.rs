//! Offline stand-in for `rayon`.
//!
//! Only [`join`] is used by this workspace (the fork-join shape of nested
//! dissection). Instead of a work-stealing pool, each join spawns one
//! scoped thread for the second closure — bounded by a global budget so
//! deep recursions degrade to sequential execution instead of spawning
//! thousands of OS threads.

use std::sync::atomic::{AtomicUsize, Ordering};

static ACTIVE_SPAWNS: AtomicUsize = AtomicUsize::new(0);

/// Maximum concurrently outstanding spawned branches before [`join`]
/// falls back to running both closures sequentially.
const SPAWN_BUDGET: usize = 48;

/// Runs the two closures, potentially in parallel, and returns both
/// results. Panics in either closure propagate.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if ACTIVE_SPAWNS.load(Ordering::Relaxed) >= SPAWN_BUDGET {
        return (oper_a(), oper_b());
    }
    ACTIVE_SPAWNS.fetch_add(1, Ordering::Relaxed);
    let out = std::thread::scope(|s| {
        let hb = s.spawn(oper_b);
        let ra = oper_a();
        let rb = match hb.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    });
    ACTIVE_SPAWNS.fetch_sub(1, Ordering::Relaxed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn nested_joins_respect_budget() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
        assert_eq!(ACTIVE_SPAWNS.load(Ordering::Relaxed), 0);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        let _ = join(|| 1, || panic!("boom"));
    }
}
