//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in containers without network access to
//! crates.io, so the handful of `rand` APIs actually used — seeded
//! [`rngs::SmallRng`], [`Rng::gen_range`] over integer and float ranges,
//! and [`SeedableRng::seed_from_u64`] — are reimplemented here on top of
//! SplitMix64. The value *streams* differ from upstream `rand`, which is
//! fine for this repository: seeds only pick reproducible test matrices
//! and tie-breaks, nothing depends on upstream's exact sequences.

use std::ops::{Range, RangeInclusive};

/// Core of a random number generator: a 64-bit output stream.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministically seeds the generator.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from a range (mirrors upstream's
/// `SampleUniform`; a single blanket `SampleRange` impl per range shape is
/// what lets `gen_range(0.5..1.5)` infer `f64` through literal fallback).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`.
    fn sample_in<G: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut G) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<G: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut G) -> Self {
                let span = if inclusive {
                    assert!(lo <= hi, "empty range");
                    (hi as i128).wrapping_sub(lo as i128) as u128 + 1
                } else {
                    assert!(lo < hi, "empty range");
                    (hi as i128).wrapping_sub(lo as i128) as u128
                };
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_int_uniform!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleUniform for f64 {
    fn sample_in<G: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut G) -> Self {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_in<G: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut G) -> Self {
        let u = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        lo + u * (hi - lo)
    }
}

/// Sampling within a range, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Draws one value of the range using `rng`.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing sampling interface (blanket-implemented for every
/// [`RngCore`], exactly like upstream).
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// A uniform `f64` in `[0, 1)` (the only `gen` instantiation used).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}
impl<G: RngCore + ?Sized> Rng for G {}

/// Types drawable "from the standard distribution".
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}
impl Standard for f64 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for u64 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, seedable generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    /// Alias used by code written against `StdRng`.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = r.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = r.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut acc = 0.0;
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            acc += v;
        }
        assert!((acc / 1000.0 - 0.5).abs() < 0.1);
    }
}
