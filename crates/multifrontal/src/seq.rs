//! Sequential multifrontal Cholesky (`L·Lᵀ`) factorization.
//!
//! The numeric core of the PSPASES-like baseline: processing supernodes in
//! postorder, each supernode assembles a dense *frontal matrix* from its
//! `A` columns and the update matrices of its children (extended-add),
//! partially factors the first `width` columns with a Cholesky step, and
//! passes the Schur complement (its own update matrix) up the supernodal
//! elimination tree. The factor panels land in the same
//! [`FactorStorage`] layout as the supernodal solver, so the triangular
//! solves can be validated against the same harness.

use pastix_graph::SymCsc;
use pastix_kernels::factor::FactorError;
use pastix_kernels::{gemm_nn_acc, gemm_nt_acc, solve_lower, solve_lower_trans, Scalar};
use pastix_solver::storage::FactorStorage;
use pastix_symbolic::{SymbolMatrix, NO_PARENT};

/// A dense frontal matrix: global row ids plus column-major storage of
/// order `rows.len()`.
struct Front<T> {
    /// Global row indices (the supernode's columns first, then its
    /// off-diagonal structure rows, ascending within each part).
    rows: Vec<u32>,
    /// Column-major `nr × nr` buffer (only the lower triangle is used).
    data: Vec<T>,
}

/// Factorizes `a` (already permuted into the symbol's elimination order)
/// by the multifrontal method; returns the Cholesky factor in panel form.
pub fn multifrontal_llt<T: Scalar>(
    sym: &SymbolMatrix,
    a: &SymCsc<T>,
) -> Result<FactorStorage<T>, FactorError> {
    let ns = sym.n_cblks();
    let mut storage = FactorStorage::zeros(sym);
    let parent = sym.block_etree();
    // Children updates waiting for each supernode (the multifrontal stack).
    let mut pending: Vec<Vec<Front<T>>> = (0..ns).map(|_| Vec::new()).collect();

    for k in 0..ns {
        let cb = &sym.cblks[k];
        let w = cb.width();
        // Global rows of the front.
        let mut rows: Vec<u32> = (cb.fcol..=cb.lcol).collect();
        for b in sym.off_bloks_of(k) {
            for r in b.frow..=b.lrow {
                rows.push(r);
            }
        }
        let nr = rows.len();
        let mut data = vec![T::zero(); nr * nr];
        // Global row → front position.
        let pos_of = |row: u32| -> usize {
            match rows.binary_search(&row) {
                Ok(p) => p,
                Err(_) => panic!("row {row} missing from front of cblk {k}"),
            }
        };
        // Assemble A columns.
        for (local, j) in (cb.fcol..=cb.lcol).enumerate() {
            for (&i, &v) in a.rows_of(j as usize).iter().zip(a.vals_of(j as usize)) {
                let p = pos_of(i);
                data[p + local * nr] = v;
            }
        }
        // Extended-add of the children updates.
        for child in pending[k].drain(..) {
            let cn = child.rows.len();
            for cj in 0..cn {
                let tj = pos_of(child.rows[cj]);
                for ci in cj..cn {
                    let ti = pos_of(child.rows[ci]);
                    let (lo, hi) = if ti >= tj { (tj, ti) } else { (ti, tj) };
                    data[hi + lo * nr] += child.data[ci + cj * cn];
                }
            }
        }
        // Partial dense Cholesky of the first w columns (full height —
        // each eliminated column updates the remaining panel columns down
        // to the bottom of the front).
        partial_llt_front(nr, w, &mut data)
            .map_err(|FactorError::ZeroPivot(i)| FactorError::ZeroPivot(cb.fcol as usize + i))?;
        let below = nr - w;
        if below > 0 {
            // Schur complement: U -= L_off · L_offᵀ (the full square write
            // keeps the kernel simple; the upper half is never read).
            let (panel_cols, trailing) = data.split_at_mut(w * nr);
            gemm_nt_acc(
                below,
                below,
                w,
                -T::one(),
                &panel_cols[w..],
                nr,
                &panel_cols[w..],
                nr,
                &mut trailing[w..],
                nr,
            );
        }
        // Ship the factored panel columns into storage.
        {
            let lda = storage.layout.panel_rows(k);
            let panel = &mut storage.panels[k];
            for col in 0..w {
                for row in col..nr {
                    panel[row + col * lda] = data[row + col * nr];
                }
            }
        }
        // Extract the update matrix and push it to the parent.
        let p = parent[k];
        if p != NO_PARENT && below > 0 {
            let up_rows: Vec<u32> = rows[w..].to_vec();
            let mut up = vec![T::zero(); below * below];
            for cj in 0..below {
                for ci in cj..below {
                    up[ci + cj * below] = data[(w + ci) + (w + cj) * nr];
                }
            }
            pending[p as usize].push(Front {
                rows: up_rows,
                data: up,
            });
        }
    }
    Ok(storage)
}

/// Right-looking Cholesky of the first `w` columns of an `nr × nr` front:
/// each pivot scales and updates its column over the *full* front height,
/// leaving the trailing `(nr−w)²` block untouched (the Schur complement is
/// applied separately at GEMM speed).
fn partial_llt_front<T: Scalar>(nr: usize, w: usize, data: &mut [T]) -> Result<(), FactorError> {
    for j in 0..w {
        let d = data[j + j * nr];
        if d == T::zero() || !d.is_finite() {
            return Err(FactorError::ZeroPivot(j));
        }
        let l = d.sqrt();
        if l == T::zero() || !l.is_finite() {
            return Err(FactorError::ZeroPivot(j));
        }
        data[j + j * nr] = l;
        let linv = l.recip();
        for i in (j + 1)..nr {
            data[i + j * nr] *= linv;
        }
        for j2 in (j + 1)..w {
            let s = data[j2 + j * nr];
            if s == T::zero() {
                continue;
            }
            let (src, dst) = {
                let (left, right) = data.split_at_mut(j2 * nr);
                (&left[j * nr + j2..j * nr + nr], &mut right[j2..nr])
            };
            for (dv, &sv) in dst.iter_mut().zip(src) {
                *dv -= sv * s;
            }
        }
    }
    Ok(())
}

/// Solves `A·x = b` in place with a Cholesky factor in panel storage:
/// `L·y = b` then `Lᵀ·x = y` (non-unit diagonal).
pub fn solve_llt_in_place<T: Scalar>(sym: &SymbolMatrix, storage: &FactorStorage<T>, x: &mut [T]) {
    assert_eq!(x.len(), sym.n);
    let layout = &storage.layout;
    let mut xk: Vec<T> = Vec::new();
    for k in 0..sym.n_cblks() {
        let cb = &sym.cblks[k];
        let w = cb.width();
        let lda = layout.panel_rows(k);
        let panel = &storage.panels[k];
        let fcol = cb.fcol as usize;
        solve_lower(w, panel, lda, &mut x[fcol..fcol + w], 1, w);
        if lda == w {
            continue;
        }
        xk.clear();
        xk.extend_from_slice(&x[fcol..fcol + w]);
        for b in cb.blok_start + 1..cb.blok_end {
            let blok = &sym.bloks[b];
            let hb = blok.nrows();
            let fr = blok.frow as usize;
            gemm_nn_acc(
                hb,
                1,
                w,
                -T::one(),
                &panel[layout.panel_row[b] as usize..],
                lda,
                &xk,
                w,
                &mut x[fr..fr + hb],
                hb,
            );
        }
    }
    for k in (0..sym.n_cblks()).rev() {
        let cb = &sym.cblks[k];
        let w = cb.width();
        let lda = layout.panel_rows(k);
        let panel = &storage.panels[k];
        let fcol = cb.fcol as usize;
        for b in cb.blok_start + 1..cb.blok_end {
            let blok = &sym.bloks[b];
            let hb = blok.nrows();
            let fr = blok.frow as usize;
            let prow = layout.panel_row[b] as usize;
            for t in 0..w {
                let mut acc = T::zero();
                let col = &panel[prow + t * lda..prow + t * lda + hb];
                for (rr, &l) in col.iter().enumerate() {
                    acc += l * x[fr + rr];
                }
                x[fcol + t] -= acc;
            }
        }
        solve_lower_trans(w, panel, lda, &mut x[fcol..fcol + w], 1, w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastix_graph::gen::{grid_spd, Stencil, ValueKind};
    use pastix_graph::{canonical_solution, rhs_for_solution};
    use pastix_ordering::{nested_dissection, OrderingOptions};
    use pastix_symbolic::{analyze, AnalysisOptions};

    fn pipeline(nx: usize, ny: usize, nz: usize) -> (SymCsc<f64>, SymbolMatrix) {
        pastix_testsupport::grid_pipeline(nx, ny, nz, 8, 33)
    }

    #[test]
    fn multifrontal_solves_spd_systems() {
        for (nx, ny, nz) in [(5, 5, 1), (7, 4, 1), (4, 4, 3)] {
            let (ap, sym) = pipeline(nx, ny, nz);
            let x_exact = canonical_solution::<f64>(ap.n());
            let b = rhs_for_solution(&ap, &x_exact);
            let storage = multifrontal_llt(&sym, &ap).unwrap();
            let mut x = b.clone();
            solve_llt_in_place(&sym, &storage, &mut x);
            let res = ap.residual_norm(&x, &b);
            assert!(res < 1e-12, "residual {res} on {nx}x{ny}x{nz}");
        }
    }

    #[test]
    fn multifrontal_matches_supernodal_ldlt_factor() {
        // L_chol(i,j) = L_ldlt(i,j) * sqrt(d_j); compare via the solved
        // solution instead (cheaper and equally binding).
        let (ap, sym) = pipeline(6, 6, 1);
        let x_exact = canonical_solution::<f64>(ap.n());
        let b = rhs_for_solution(&ap, &x_exact);
        let mf = multifrontal_llt(&sym, &ap).unwrap();
        let mut x1 = b.clone();
        solve_llt_in_place(&sym, &mf, &mut x1);
        let (x2, _) = pastix_solver::factor_and_solve(&sym, &ap, &b).unwrap();
        for (a_, b_) in x1.iter().zip(&x2) {
            assert!((a_ - b_).abs() < 1e-8, "{a_} vs {b_}");
        }
    }

    #[test]
    fn multifrontal_complex_symmetric() {
        use pastix_kernels::Complex64;
        // Complex symmetric with dominant real diagonal: the complex
        // Cholesky (principal square roots) exists along this pivot order.
        let re = grid_spd::<f64>(4, 4, 1, Stencil::Star, false, ValueKind::RandomSpd(8));
        let n = re.n();
        let mut tr = Vec::new();
        for j in 0..n {
            for (&i, &v) in re.rows_of(j).iter().zip(re.vals_of(j)) {
                let im = if i as usize == j { 0.2 } else { 0.03 * v };
                tr.push((i, j as u32, Complex64::new(v, im)));
            }
        }
        let a = SymCsc::<Complex64>::from_triplets(n, &tr);
        let g = a.to_graph();
        let ord = nested_dissection(&g, &OrderingOptions { leaf_size: 6, ..Default::default() });
        let an = analyze(&g, &ord, &AnalysisOptions::default());
        let ap = a.permuted(&an.perm);
        let x_exact = canonical_solution::<Complex64>(n);
        let b = rhs_for_solution(&ap, &x_exact);
        let st = multifrontal_llt(&an.symbol, &ap).unwrap();
        let mut x = b.clone();
        solve_llt_in_place(&an.symbol, &st, &mut x);
        assert!(ap.residual_norm(&x, &b) < 1e-10);
    }

    #[test]
    fn indefinite_matrix_fails_cholesky() {
        // A diagonally *negative* matrix has no real Cholesky factor.
        let n = 4;
        let mut triplets: Vec<(u32, u32, f64)> = Vec::new();
        for i in 0..n as u32 {
            triplets.push((i, i, -1.0));
        }
        triplets.push((1, 0, 0.1));
        let a = SymCsc::from_triplets(n, &triplets);
        let g = a.to_graph();
        let an = analyze(&g, &pastix_graph::Permutation::identity(n), &AnalysisOptions::default());
        let ap = a.permuted(&an.perm);
        // sqrt(-1) is NaN → flagged as a bad pivot.
        assert!(multifrontal_llt(&an.symbol, &ap).is_err());
    }
}
