//! # pastix-multifrontal
//!
//! The baseline the paper compares against: a PSPASES-like multifrontal
//! Cholesky (`L·Lᵀ`) solver.
//!
//! * [`seq`] — sequential multifrontal factorization (frontal matrices,
//!   extended-add, update-matrix stack) and the `L·Lᵀ` triangular solves,
//!   sharing the panel storage of the supernodal solver so both can be
//!   validated with the same harness;
//! * [`model`] — the subtree-to-subcube parallel time model used to
//!   regenerate the PSPASES rows of Table 2 on the calibrated machine
//!   model.

#![warn(missing_docs)]

pub mod model;
pub mod seq;

pub use model::{
    front_cost, front_costs, pspases_from_costs, pspases_time, pspases_time_distributed,
    PspasesOptions, PspasesPrediction,
};
pub use seq::{multifrontal_llt, solve_llt_in_place};
