//! Parallel time model of the PSPASES-like multifrontal baseline.
//!
//! PSPASES (Joshi, Karypis, Kumar, Gupta, Gustavson) distributes the
//! elimination forest by *subtree-to-subcube* mapping: disjoint subtrees go
//! to disjoint processor groups, and the dense frontal computations of the
//! upper supernodes run on their whole group with a 2D cyclic layout.
//! The model below prices exactly that structure against the same machine
//! model the PaStiX scheduler uses:
//!
//! * a supernode on a group of `q` processors factors its front at
//!   `q`-fold speed, degraded by a per-level 2D-cyclic efficiency term;
//! * passing an update matrix up the tree costs one alpha–beta transfer of
//!   its triangle per merging step, plus a `log₂ q` redistribution factor
//!   inside the group;
//! * disjoint sibling subtrees run concurrently (their groups are
//!   disjoint), so the completion time is a max/plus recursion over the
//!   tree — no resource contention needs to be simulated.
//!
//! The model intentionally gives the baseline its real advantages — the
//! more BLAS-efficient `L·Lᵀ` kernels (ESSL's 1.07 s vs 1.27 s at order
//! 1024 in the paper) — while charging it the synchronous redistribution
//! overheads that static fan-in scheduling avoids; Table 2's shape (PaStiX
//! ahead up to ≈32–64 processors, the gap closing at the scalability
//! limit) emerges from exactly this trade-off.

use pastix_kernels::model::KernelClass;
use pastix_machine::MachineModel;
use pastix_symbolic::{SymbolMatrix, NO_PARENT};

/// Tunables of the baseline model.
#[derive(Debug, Clone)]
pub struct PspasesOptions {
    /// Parallel efficiency of a 2D-cyclic dense partial factorization on
    /// `q` processors: `eff = 1 / (1 + overhead · log₂ q)`.
    pub cyclic_overhead: f64,
    /// Extra per-front synchronization rounds (barriers) charged `log₂ q`
    /// latencies each.
    pub sync_rounds: f64,
}

impl Default for PspasesOptions {
    fn default() -> Self {
        Self {
            cyclic_overhead: 0.12,
            sync_rounds: 2.0,
        }
    }
}

/// Sequential model cost of one front's computations: assembly (copy of
/// the update triangles), partial `L·Lᵀ` of the `w` leading columns over
/// the full height, and the Schur-complement GEMM.
pub fn front_cost(sym: &SymbolMatrix, k: usize, m: &MachineModel) -> f64 {
    let w = sym.cblks[k].width();
    let h = sym.offrows(k);
    let mut t = m.kernel_time(KernelClass::FactorLlt, w, w, w);
    if h > 0 {
        t += m.kernel_time(KernelClass::TrsmPanel, h, w, w);
        t += m.kernel_time(KernelClass::GemmNt, h, h, w);
    }
    // Assembly traffic: touching the update triangle once (charged at the
    // scale-kernel's per-entry rate).
    t += m.kernel_time(KernelClass::ScaleCols, h.max(1), h.max(1), 1) * 0.5;
    t
}

/// Result of the model evaluation.
#[derive(Debug, Clone, Copy)]
pub struct PspasesPrediction {
    /// Predicted parallel factorization time in seconds.
    pub time: f64,
    /// Predicted sequential (1 processor) time.
    pub seq_time: f64,
}

/// Sequential model costs of every front, in column-block order. This is
/// the embarrassingly parallel part of the model evaluation — see
/// [`pspases_time_distributed`] for the version that splits it across the
/// runtime's logical processors.
pub fn front_costs(sym: &SymbolMatrix, machine: &MachineModel) -> Vec<f64> {
    (0..sym.n_cblks()).map(|k| front_cost(sym, k, machine)).collect()
}

/// Evaluates the subtree-to-subcube max/plus recursion.
pub fn pspases_time(sym: &SymbolMatrix, machine: &MachineModel, opts: &PspasesOptions) -> PspasesPrediction {
    pspases_from_costs(sym, machine, opts, &front_costs(sym, machine))
}

/// [`pspases_time`] from precomputed per-front costs (`costs[k]` must be
/// [`front_cost`] of column block `k`).
pub fn pspases_from_costs(
    sym: &SymbolMatrix,
    machine: &MachineModel,
    opts: &PspasesOptions,
    costs: &[f64],
) -> PspasesPrediction {
    let ns = sym.n_cblks();
    assert_eq!(costs.len(), ns);
    let parent = sym.block_etree();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); ns];
    let mut roots: Vec<u32> = Vec::new();
    for k in 0..ns {
        match parent[k] {
            NO_PARENT => roots.push(k as u32),
            p => children[p as usize].push(k as u32),
        }
    }
    // Subtree workloads for the proportional subcube split.
    let mut subtree = vec![0.0f64; ns];
    let mut seq_total = 0.0;
    for k in 0..ns {
        let c = costs[k];
        subtree[k] += c;
        seq_total += c;
        if parent[k] != NO_PARENT {
            subtree[parent[k] as usize] += subtree[k];
        }
    }
    // Processor shares, top down (fractional groups, floor ≥ 1 proc
    // equivalent: a share below 1 just runs sequentially interleaved, which
    // the max/plus recursion prices by inflating its time 1/share).
    let mut share = vec![0.0f64; ns];
    let p_total = machine.n_procs as f64;
    let root_sum: f64 = roots.iter().map(|&r| subtree[r as usize]).sum();
    for &r in &roots {
        share[r as usize] = if root_sum > 0.0 {
            p_total * subtree[r as usize] / root_sum
        } else {
            p_total / roots.len() as f64
        };
    }
    for k in (0..ns).rev() {
        let kids = &children[k];
        if kids.is_empty() {
            continue;
        }
        let total: f64 = kids.iter().map(|&c| subtree[c as usize]).sum();
        for &c in kids {
            share[c as usize] = if total > 0.0 {
                share[k] * subtree[c as usize] / total
            } else {
                share[k] / kids.len() as f64
            };
        }
    }
    // Max/plus completion times, bottom up.
    let mut completion = vec![0.0f64; ns];
    for k in 0..ns {
        let q = share[k].max(1e-6);
        let eff_procs = if q <= 1.0 {
            q
        } else {
            q / (1.0 + opts.cyclic_overhead * q.log2())
        };
        let t_front = costs[k] / eff_procs;
        // Synchronization inside the group.
        let sync = if q > 1.0 {
            opts.sync_rounds * q.log2() * machine.net.latency
        } else {
            0.0
        };
        // Children completions plus their update-matrix transfers.
        let mut ready = 0.0f64;
        for &c in &children[k] {
            let c = c as usize;
            let hup = sym.offrows(c);
            let scalars = hup * (hup + 1) / 2;
            // The update triangle is redistributed into the parent group;
            // a group confined to a single processor pays nothing.
            let transfer = if share[k] > 1.0 {
                machine.net.transfer_time(scalars * machine.bytes_per_scalar)
                    * (1.0 + share[k].log2().max(0.0) * 0.5)
            } else {
                0.0
            };
            ready = ready.max(completion[c] + transfer);
        }
        completion[k] = ready + t_front + sync;
    }
    let time = roots
        .iter()
        .map(|&r| completion[r as usize])
        .fold(0.0, f64::max);
    PspasesPrediction {
        time,
        seq_time: seq_total,
    }
}

/// SPMD evaluation of the PSPASES model on the message-passing runtime:
/// every rank prices a strided subset of the fronts, the per-front cost
/// vectors are elementwise-summed with `all_reduce`, rank 0 runs the
/// max/plus recursion, and the prediction is `broadcast` back; a final
/// `barrier` fences the evaluation off from whatever the caller does next
/// on the same channel.
///
/// Must be invoked from every rank of a [`pastix_runtime`] SPMD region
/// whose message type is `CollMsg<Vec<f64>>` (see
/// [`pastix_runtime::run_spmd_with`]); each rank gets the identical
/// prediction, equal to [`pspases_time`] up to floating-point summation
/// order. On the simulation backend this is the collectives' heaviest
/// in-tree consumer, which is exactly why the chaos suite drives it under
/// fault injection.
pub fn pspases_time_distributed<C>(
    ctx: &C,
    sym: &SymbolMatrix,
    machine: &MachineModel,
    opts: &PspasesOptions,
) -> PspasesPrediction
where
    C: pastix_runtime::Comm<pastix_runtime::collective::CollMsg<Vec<f64>>> + ?Sized,
{
    use pastix_runtime::collective::Collectives;
    let ns = sym.n_cblks();
    let rank = ctx.rank();
    let p = ctx.n_procs();
    let mut mine = vec![0.0f64; ns];
    let mut k = rank;
    while k < ns {
        mine[k] = front_cost(sym, k, machine);
        k += p;
    }
    let mut coll = Collectives::new();
    let costs = coll.all_reduce(ctx, 0, mine, |mut a, b| {
        for (x, y) in a.iter_mut().zip(&b) {
            *x += *y;
        }
        a
    });
    let prediction = if rank == 0 {
        let pred = pspases_from_costs(sym, machine, opts, &costs);
        coll.broadcast(ctx, 1, 0, Some(vec![pred.time, pred.seq_time]))
    } else {
        coll.broadcast(ctx, 1, 0, None)
    };
    coll.barrier(ctx, 2, Vec::new());
    PspasesPrediction {
        time: prediction[0],
        seq_time: prediction[1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symbol(nx: usize) -> SymbolMatrix {
        pastix_testsupport::grid_symbol(nx, nx, 16)
    }

    #[test]
    fn one_proc_time_is_sequential() {
        let sym = symbol(20);
        let m = MachineModel::sp2(1);
        let p = pspases_time(&sym, &m, &PspasesOptions::default());
        // Chains still serialize: time == sum over the critical path ==
        // total when everything shares one processor.
        assert!((p.time - p.seq_time).abs() < 1e-9 * p.seq_time.max(1e-12));
    }

    #[test]
    fn speedup_grows_then_saturates() {
        // 40x40: big enough that 16 procs sit at saturation rather than
        // past it. On a 32x32 grid the correctly-amalgamated symbol (the
        // padding accumulation fix shrank it to ~500 supernodes) leaves
        // too little tree parallelism and 16 procs genuinely regress
        // ~20% over 4 — real saturation behavior, not model error.
        let sym = symbol(40);
        let t1 = pspases_time(&sym, &MachineModel::sp2(1), &PspasesOptions::default()).time;
        let t4 = pspases_time(&sym, &MachineModel::sp2(4), &PspasesOptions::default()).time;
        let t16 = pspases_time(&sym, &MachineModel::sp2(16), &PspasesOptions::default()).time;
        assert!(t4 < t1, "4-proc should beat 1-proc");
        assert!(t16 < t4 * 1.05, "16-proc should not regress much");
        let s16 = t1 / t16;
        assert!(s16 < 16.0, "speedup must be sublinear, got {s16}");
    }

    #[test]
    fn overhead_knob_slows_parallel_fronts() {
        let sym = symbol(24);
        let machine = MachineModel::sp2(16);
        let fast = pspases_time(&sym, &machine, &PspasesOptions { cyclic_overhead: 0.0, sync_rounds: 0.0 });
        let slow = pspases_time(&sym, &machine, &PspasesOptions { cyclic_overhead: 0.5, sync_rounds: 8.0 });
        assert!(slow.time > fast.time, "{} !> {}", slow.time, fast.time);
        // Sequential total unaffected by parallel overheads.
        assert!((slow.seq_time - fast.seq_time).abs() < 1e-12);
    }

    #[test]
    fn front_cost_positive() {
        let sym = symbol(12);
        let m = MachineModel::sp2(4);
        for k in 0..sym.n_cblks() {
            assert!(front_cost(&sym, k, &m) > 0.0);
        }
    }

    #[test]
    fn distributed_model_matches_sequential_on_threads() {
        use pastix_runtime::collective::CollMsg;
        use pastix_runtime::{run_spmd_with, Backend};
        let sym = symbol(20);
        let machine = MachineModel::sp2(8);
        let opts = PspasesOptions::default();
        let want = pspases_time(&sym, &machine, &opts);
        let got = run_spmd_with::<CollMsg<Vec<f64>>, PspasesPrediction, _>(
            &Backend::Threads,
            4,
            |ctx| pspases_time_distributed(ctx, &sym, &machine, &opts),
        );
        for pred in got {
            assert!((pred.time - want.time).abs() < 1e-12 * want.time.max(1.0));
            assert!((pred.seq_time - want.seq_time).abs() < 1e-9 * want.seq_time.max(1.0));
        }
    }

    #[test]
    fn distributed_model_survives_sim_chaos() {
        use pastix_runtime::collective::CollMsg;
        use pastix_runtime::sim::{FaultPlan, SchedPolicy};
        use pastix_runtime::{run_spmd_with, Backend};
        let sym = symbol(16);
        let machine = MachineModel::sp2(8);
        let opts = PspasesOptions::default();
        let want = pspases_time(&sym, &machine, &opts);
        for policy in [
            SchedPolicy::Uniform,
            SchedPolicy::StarveRank(0),
            SchedPolicy::DeliverLast,
            SchedPolicy::FifoPerPair,
        ] {
            for seed in 0..5 {
                let plan = FaultPlan::builder(seed)
                    .drop_lossy(0.25)
                    .duplicate_lossy(0.25)
                    .policy(policy)
                    .build();
                let got = run_spmd_with::<CollMsg<Vec<f64>>, PspasesPrediction, _>(
                    &Backend::Sim(plan),
                    3,
                    |ctx| pspases_time_distributed(ctx, &sym, &machine, &opts),
                );
                for pred in got {
                    assert!(
                        (pred.time - want.time).abs() < 1e-12 * want.time.max(1.0),
                        "seed {seed} policy {policy:?}"
                    );
                }
            }
        }
    }
}
