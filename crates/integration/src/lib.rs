//! Integration-test host crate: the tests live in the repository-level `tests/` directory (see Cargo.toml `[[test]]` entries).
