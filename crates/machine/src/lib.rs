//! # pastix-machine
//!
//! The target-machine model that drives the static scheduler: the BLAS
//! time model (from `pastix-kernels`) plus the communication network model,
//! with automatic calibration and JSON persistence.
//!
//! *"We estimate the workload and message passing latency by using a BLAS
//! and communication network time model, which is automatically calibrated
//! on the target architecture"* (paper, §2). The default instance models
//! the paper's testbed: an IBM SP2 with 120 MHz Power2SC thin nodes
//! (480 MFlop/s peak) and its high-performance switch.

#![warn(missing_docs)]

use pastix_json::{obj, Json, JsonError};
use pastix_kernels::model::{calibrate_blas_model, BlasModel, KernelClass};
use pastix_kernels::pack::{self, BlockSizes};
use std::io::{Read, Write};
use std::sync::OnceLock;
use std::time::Instant;

/// Linear (alpha–beta) communication model: sending `bytes` costs
/// `latency + bytes / bandwidth` seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Per-message startup latency in seconds.
    pub latency: f64,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth: f64,
}

impl NetworkModel {
    /// Time to ship a message of `bytes` between two distinct processors.
    #[inline]
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// The IBM SP2 high-performance switch of the paper's experiments:
    /// ≈40 µs MPI latency, ≈35 MB/s sustained bandwidth (user-space MPI on
    /// the TB3 adapter era).
    pub fn sp2_switch() -> Self {
        Self {
            latency: 40e-6,
            bandwidth: 35e6,
        }
    }

    /// A loopback-style model for in-process experiments (threads passing
    /// buffers): sub-microsecond latency, memcpy-class bandwidth.
    pub fn in_process() -> Self {
        Self {
            latency: 0.5e-6,
            bandwidth: 4e9,
        }
    }

    /// JSON form.
    pub fn to_json(&self) -> Json {
        obj([
            ("latency", Json::Num(self.latency)),
            ("bandwidth", Json::Num(self.bandwidth)),
        ])
    }

    /// Parses the JSON form produced by [`NetworkModel::to_json`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            latency: v.field("latency")?.as_f64()?,
            bandwidth: v.field("bandwidth")?.as_f64()?,
        })
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::sp2_switch()
    }
}

/// Task-kind indices of a [`TaskCalibration`] (the scheduler's four
/// block-computation kinds, in task-graph order).
pub mod task_kind {
    /// `COMP1D` (1D supernode update).
    pub const COMP1D: usize = 0;
    /// `FACTOR` (2D diagonal-block factorization).
    pub const FACTOR: usize = 1;
    /// `BDIV` (2D panel solve).
    pub const BDIV: usize = 2;
    /// `BMOD` (2D contribution product).
    pub const BMOD: usize = 3;
    /// Number of calibrated task kinds.
    pub const COUNT: usize = 4;
}

/// Measured per-task-kind execution rates, fed back from a traced run
/// (the `class_stats` of `pastix-trace`'s report) into the cost model —
/// the closed calibration loop.
///
/// The absolute rates are ns per model-second; what the cost functions
/// apply is the **relative** factor ([`TaskCalibration::relative`]): each
/// kind's rate normalized by the measured-work-weighted mean, so
/// calibration reshapes the cost ratios *between* kinds (the part the
/// static schedule is sensitive to) without changing the overall unit of
/// model seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCalibration {
    /// Measured ns per model-second, indexed by [`task_kind`]; 0 marks a
    /// kind the calibrating run never measured (its factor stays 1).
    pub ns_per_cost: [f64; task_kind::COUNT],
}

impl TaskCalibration {
    /// Relative cost factors: `rate / weighted-mean-rate` per kind, 1.0
    /// for unmeasured kinds.
    pub fn relative(&self) -> [f64; task_kind::COUNT] {
        let (mut sum, mut cnt) = (0.0f64, 0u32);
        for &r in &self.ns_per_cost {
            if r > 0.0 {
                sum += r;
                cnt += 1;
            }
        }
        if cnt == 0 {
            return [1.0; task_kind::COUNT];
        }
        let mean = sum / cnt as f64;
        let mut out = [1.0; task_kind::COUNT];
        for (o, &r) in out.iter_mut().zip(&self.ns_per_cost) {
            if r > 0.0 && mean > 0.0 {
                *o = r / mean;
            }
        }
        out
    }

    /// Dotfile form: the four rates, space-separated.
    pub fn render(&self) -> String {
        let r = &self.ns_per_cost;
        format!("{:e} {:e} {:e} {:e}\n", r[0], r[1], r[2], r[3])
    }

    /// Parses [`TaskCalibration::render`]'s form (also accepts commas, the
    /// `PASTIX_CALIBRATION` environment syntax). Rejects negatives, NaN,
    /// and wrong arity.
    pub fn parse(text: &str) -> Option<Self> {
        let mut rates = [0.0f64; task_kind::COUNT];
        let mut n = 0usize;
        for tok in text.split(|c: char| c.is_whitespace() || c == ',').filter(|t| !t.is_empty()) {
            if n >= task_kind::COUNT {
                return None;
            }
            let v: f64 = tok.parse().ok()?;
            if !v.is_finite() || v < 0.0 {
                return None;
            }
            rates[n] = v;
            n += 1;
        }
        if n != task_kind::COUNT {
            return None;
        }
        Some(Self { ns_per_cost: rates })
    }
}

/// The complete machine model used by the mapper/scheduler.
///
/// ```
/// use pastix_machine::MachineModel;
/// use pastix_kernels::model::KernelClass;
/// let m = MachineModel::sp2(16);
/// // Pricing a 64³ GEMM and a 32 KB transfer on the modeled SP2:
/// assert!(m.kernel_time(KernelClass::GemmNt, 64, 64, 64) > 0.0);
/// assert!(m.comm_time(0, 1, 64 * 64) > m.net.latency);
/// assert_eq!(m.comm_time(3, 3, 1000), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    /// Number of processors of the target machine.
    pub n_procs: usize,
    /// Dense kernel time model.
    pub blas: BlasModel,
    /// Interconnect model.
    pub net: NetworkModel,
    /// Bytes per scalar shipped in messages (8 for `f64`, 16 for complex).
    pub bytes_per_scalar: usize,
    /// Processors per SMP node (1 = pure distributed memory, the paper's
    /// SP2). The paper's perspectives announce *"a modified version of our
    /// strategy to take into account architectures based on SMP nodes"*:
    /// with `procs_per_node > 1`, transfers between processors of the same
    /// node use [`MachineModel::intra_node`] instead of the switch, and the
    /// greedy scheduler automatically clusters communicating tasks on
    /// nodes because it sees the cheaper costs. JSON written before the
    /// SMP extension omits this field; loading defaults it to 1.
    pub procs_per_node: usize,
    /// Intra-node (shared-memory) transfer model, used when
    /// `procs_per_node > 1` (defaulted on load of pre-SMP JSON).
    pub intra_node: NetworkModel,
    /// Optional per-task-kind calibration measured by a traced run (see
    /// [`TaskCalibration`]); `None` (and pre-calibration JSON) means all
    /// task kinds are priced by the raw BLAS model.
    pub task_calibration: Option<TaskCalibration>,
}

impl MachineModel {
    /// A `p`-node model of the paper's IBM SP2.
    pub fn sp2(n_procs: usize) -> Self {
        Self {
            n_procs,
            blas: BlasModel::power2sc(),
            net: NetworkModel::sp2_switch(),
            bytes_per_scalar: 8,
            procs_per_node: 1,
            intra_node: NetworkModel::in_process(),
            task_calibration: None,
        }
    }

    /// An SMP-cluster variant of the SP2 model: `n_procs` processors packed
    /// `procs_per_node` to a shared-memory node (the architecture the
    /// paper's conclusion announces as future work).
    pub fn sp2_smp(n_procs: usize, procs_per_node: usize) -> Self {
        Self {
            procs_per_node: procs_per_node.max(1),
            ..Self::sp2(n_procs)
        }
    }

    /// A model of this very machine: calibrates the BLAS model by timing
    /// the native kernels and measures an in-process transfer model.
    pub fn calibrated_local(n_procs: usize) -> Self {
        let blas = calibrate_blas_model(&[8, 24, 64, 128], 3);
        let net = measure_in_process_network();
        Self {
            n_procs,
            blas,
            net,
            bytes_per_scalar: 8,
            procs_per_node: 1,
            intra_node: NetworkModel::in_process(),
            task_calibration: None,
        }
    }

    /// Returns the model with `cal` installed (builder style).
    pub fn with_task_calibration(mut self, cal: TaskCalibration) -> Self {
        self.task_calibration = Some(cal);
        self
    }

    /// The relative cost factor of task kind `kind` (a [`task_kind`]
    /// index): 1.0 when uncalibrated. The scheduler's cost functions
    /// multiply their modeled task time by this.
    #[inline]
    pub fn task_scale(&self, kind: usize) -> f64 {
        match &self.task_calibration {
            Some(c) if kind < task_kind::COUNT => c.relative()[kind],
            _ => 1.0,
        }
    }

    /// SMP node of a processor under this model.
    #[inline]
    pub fn node_of(&self, proc: usize) -> usize {
        proc / self.procs_per_node.max(1)
    }

    /// Predicted time of a kernel instance (delegates to the BLAS model).
    #[inline]
    pub fn kernel_time(&self, class: KernelClass, m: usize, n: usize, k: usize) -> f64 {
        self.blas.cost(class, m, n, k)
    }

    /// Predicted time to move `n_scalars` matrix entries between two
    /// distinct processors: zero within a processor, the intra-node model
    /// within an SMP node, the switch otherwise.
    #[inline]
    pub fn comm_time(&self, from: usize, to: usize, n_scalars: usize) -> f64 {
        if from == to {
            0.0
        } else if self.procs_per_node > 1 && self.node_of(from) == self.node_of(to) {
            self.intra_node.transfer_time(n_scalars * self.bytes_per_scalar)
        } else {
            self.net.transfer_time(n_scalars * self.bytes_per_scalar)
        }
    }

    /// JSON form.
    pub fn to_json(&self) -> Json {
        obj([
            ("n_procs", Json::Num(self.n_procs as f64)),
            ("blas", self.blas.to_json()),
            ("net", self.net.to_json()),
            ("bytes_per_scalar", Json::Num(self.bytes_per_scalar as f64)),
            ("procs_per_node", Json::Num(self.procs_per_node as f64)),
            ("intra_node", self.intra_node.to_json()),
            (
                "task_calibration",
                match &self.task_calibration {
                    Some(c) => {
                        Json::Arr(c.ns_per_cost.iter().map(|&r| Json::Num(r)).collect())
                    }
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Parses the JSON form produced by [`MachineModel::to_json`]. The
    /// SMP fields (`procs_per_node`, `intra_node`) are optional so models
    /// serialized before the SMP extension still load.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            n_procs: v.field("n_procs")?.as_usize()?,
            blas: BlasModel::from_json(v.field("blas")?)?,
            net: NetworkModel::from_json(v.field("net")?)?,
            bytes_per_scalar: v.field("bytes_per_scalar")?.as_usize()?,
            procs_per_node: match v.get("procs_per_node") {
                Some(f) => f.as_usize()?,
                None => 1,
            },
            intra_node: match v.get("intra_node") {
                Some(f) => NetworkModel::from_json(f)?,
                None => NetworkModel::in_process(),
            },
            task_calibration: match v.get("task_calibration") {
                Some(Json::Null) | None => None,
                Some(f) => Some(TaskCalibration { ns_per_cost: f.as_f64_array()? }),
            },
        })
    }

    /// Serializes to pretty JSON.
    pub fn save<W: Write>(&self, mut w: W) -> Result<(), std::io::Error> {
        w.write_all(self.to_json().pretty().as_bytes())
    }

    /// Deserializes from JSON.
    pub fn load<R: Read>(mut r: R) -> Result<Self, std::io::Error> {
        let mut text = String::new();
        r.read_to_string(&mut text)?;
        let v = Json::parse(&text).map_err(std::io::Error::other)?;
        Self::from_json(&v).map_err(std::io::Error::other)
    }
}

impl Default for MachineModel {
    fn default() -> Self {
        Self::sp2(16)
    }
}

/// How many times the timed blocking sweep has actually run in this
/// process. The cache layers in front of it ([`probe_blocking`],
/// [`resolve_blocking_in`]) exist to keep this at most 1 per machine —
/// the at-most-once test asserts through this counter.
pub fn probe_runs() -> u64 {
    PROBE_RUNS.load(std::sync::atomic::Ordering::Relaxed)
}

static PROBE_RUNS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Cache key of the blocking calibration: the result depends on the CPU
/// architecture and core count, nothing else this crate can observe.
fn blocking_cache_key() -> String {
    format!(
        "{}-{}cpu",
        std::env::consts::ARCH,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    )
}

fn parse_blocking(text: &str) -> Option<BlockSizes> {
    let mut it = text.trim().split('x');
    let mc = it.next()?.trim().parse().ok()?;
    let kc = it.next()?.trim().parse().ok()?;
    let nc = it.next()?.trim().parse().ok()?;
    if it.next().is_some() || mc == 0 || kc == 0 || nc == 0 {
        return None;
    }
    Some(BlockSizes { mc, kc, nc }.sanitized())
}

/// The timed sweep itself: times a representative `C += A·Bᵀ` under a
/// handful of candidate `MC×KC×NC` tilings and returns the fastest.
/// ~10⁸ flops; every call is counted in [`probe_runs`].
fn timed_blocking_sweep() -> BlockSizes {
    PROBE_RUNS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let candidates = [
        BlockSizes { mc: 64, kc: 128, nc: 1024 },
        BlockSizes { mc: 128, kc: 224, nc: 2048 },
        BlockSizes { mc: 128, kc: 256, nc: 4096 },
        BlockSizes { mc: 192, kc: 256, nc: 2048 },
    ];
    // A shape of the solver's own flavor: a tall contribution product
    // with a supernode-width inner dimension.
    let (m, n, k) = (384usize, 256usize, 192usize);
    let a: Vec<f64> = (0..m * k).map(|i| (i % 17) as f64 * 0.25 - 2.0).collect();
    let b: Vec<f64> = (0..n * k).map(|i| (i % 11) as f64 * 0.5 - 2.5).collect();
    let mut best = candidates[0];
    let mut best_t = f64::INFINITY;
    for cand in candidates {
        let mut c = vec![0.0f64; m * n];
        // Warm the instruction path and the pack buffers once.
        pack::gemm_nt_acc_packed_with(cand, m, n, k, 1.0, &a, m, &b, n, &mut c, m);
        let reps = 3;
        let t0 = Instant::now();
        for _ in 0..reps {
            pack::gemm_nt_acc_packed_with(cand, m, n, k, 1.0, &a, m, &b, n, &mut c, m);
        }
        let dt = t0.elapsed().as_secs_f64() / reps as f64;
        if dt < best_t {
            best_t = dt;
            best = cand;
        }
    }
    best
}

/// Resolves the blocking constants with the persistent cache rooted at
/// `cache_dir`, without touching the process-wide memo (that layer is
/// [`probe_blocking`]). Resolution order:
///
/// 1. `PASTIX_BLOCKING=MCxKCxNC` in the environment — an explicit operator
///    override, never persisted;
/// 2. the dotfile `.pastix-blocking-<arch>-<n>cpu` under `cache_dir`,
///    written by a previous run on this machine;
/// 3. the timed sweep, whose winner is persisted to that dotfile
///    (best-effort: an unwritable directory costs a re-probe next process,
///    nothing else).
pub fn resolve_blocking_in(cache_dir: &std::path::Path) -> BlockSizes {
    if let Some(bs) = std::env::var("PASTIX_BLOCKING")
        .ok()
        .as_deref()
        .and_then(parse_blocking)
    {
        return bs;
    }
    let dotfile = cache_dir.join(format!(".pastix-blocking-{}", blocking_cache_key()));
    if let Some(bs) = std::fs::read_to_string(&dotfile)
        .ok()
        .as_deref()
        .and_then(parse_blocking)
    {
        return bs;
    }
    let best = timed_blocking_sweep();
    let _ = std::fs::create_dir_all(cache_dir);
    let _ = std::fs::write(&dotfile, format!("{}x{}x{}\n", best.mc, best.kc, best.nc));
    best
}

fn calibration_dotfile(cache_dir: &std::path::Path) -> std::path::PathBuf {
    cache_dir.join(format!(".pastix-calibration-{}", blocking_cache_key()))
}

/// Loads the persisted per-task-kind calibration, mirroring the blocking
/// probe's cache discipline:
///
/// 1. `PASTIX_CALIBRATION=c1d,fac,bdiv,bmod` in the environment — an
///    explicit operator override, never persisted;
/// 2. the dotfile `.pastix-calibration-<arch>-<n>cpu` under `cache_dir`,
///    written by [`store_calibration_in`] after a traced run.
///
/// `None` (no source, or garbage in either) means "uncalibrated" — the
/// cost model falls back to factor 1 everywhere, it never panics.
pub fn load_calibration_in(cache_dir: &std::path::Path) -> Option<TaskCalibration> {
    if let Some(c) = std::env::var("PASTIX_CALIBRATION")
        .ok()
        .as_deref()
        .and_then(TaskCalibration::parse)
    {
        return Some(c);
    }
    std::fs::read_to_string(calibration_dotfile(cache_dir))
        .ok()
        .as_deref()
        .and_then(TaskCalibration::parse)
}

/// Persists `cal` to the calibration dotfile under `cache_dir`
/// (best-effort, like the blocking cache: an unwritable directory means
/// the next process runs uncalibrated, nothing else).
pub fn store_calibration_in(cache_dir: &std::path::Path, cal: &TaskCalibration) {
    let _ = std::fs::create_dir_all(cache_dir);
    let _ = std::fs::write(calibration_dotfile(cache_dir), cal.render());
}

/// Directory of the persistent machine caches (blocking probe and task
/// calibration dotfiles): `PASTIX_BLOCKING_CACHE_DIR` if set, else the
/// Cargo target dir (`CARGO_TARGET_DIR`, or `target/` when that exists
/// beneath the current directory), else the system temp dir.
pub fn cache_dir() -> std::path::PathBuf {
    if let Ok(d) = std::env::var("PASTIX_BLOCKING_CACHE_DIR") {
        return d.into();
    }
    if let Ok(d) = std::env::var("CARGO_TARGET_DIR") {
        return d.into();
    }
    let target = std::path::Path::new("target");
    if target.is_dir() {
        return target.to_path_buf();
    }
    std::env::temp_dir()
}

/// One-shot runtime calibration of the packed GEMM blocking constants on
/// *this* machine, and installation of the winner via
/// [`pastix_kernels::pack::configure_blocking`] (for `f64`, and a
/// half-sized derivation for 16-byte scalars whose elements take twice the
/// cache space). The timed sweep runs **at most once per machine**, not
/// once per process: the winner is memoized in-process (`OnceLock`) and
/// persisted under a machine cache key (see [`resolve_blocking_in`]), and
/// `PASTIX_BLOCKING=MCxKCxNC` skips probing entirely. Solvers work fine
/// without calling this — the per-width defaults are sane — but the bench
/// harness and long-running services call it once at startup.
pub fn probe_blocking() -> BlockSizes {
    static PROBE: OnceLock<BlockSizes> = OnceLock::new();
    *PROBE.get_or_init(|| {
        let best = resolve_blocking_in(&cache_dir());
        pack::configure_blocking(8, best);
        pack::configure_blocking(
            16,
            BlockSizes {
                mc: best.mc / 2,
                kc: best.kc / 2,
                nc: best.nc / 2,
            },
        );
        best
    })
}

/// Measures an in-process "network": the cost of handing a buffer between
/// threads through a channel, fitted to the alpha–beta form from two
/// message sizes.
pub fn measure_in_process_network() -> NetworkModel {
    let time_send = |bytes: usize, reps: usize| -> f64 {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<u8>>(1);
        let handle = std::thread::spawn(move || {
            let mut sink = 0u8;
            while let Ok(v) = rx.recv() {
                sink ^= v.first().copied().unwrap_or(0);
            }
            sink
        });
        let payload = vec![1u8; bytes];
        let t0 = Instant::now();
        for _ in 0..reps {
            tx.send(payload.clone()).unwrap();
        }
        drop(tx);
        let _ = handle.join();
        t0.elapsed().as_secs_f64() / reps as f64
    };
    let small = 256usize;
    let big = 1 << 20;
    let t_small = time_send(small, 200);
    let t_big = time_send(big, 30);
    let bw = (big - small) as f64 / (t_big - t_small).max(1e-12);
    let lat = (t_small - small as f64 / bw).max(1e-9);
    NetworkModel {
        latency: lat,
        bandwidth: bw.max(1e6),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastix_kernels::model::BlasModel;

    #[test]
    fn transfer_time_monotone() {
        let n = NetworkModel::sp2_switch();
        assert!(n.transfer_time(1000) < n.transfer_time(100_000));
        assert!(n.transfer_time(0) == n.latency);
    }

    #[test]
    fn intra_processor_comm_is_free() {
        let m = MachineModel::sp2(4);
        assert_eq!(m.comm_time(2, 2, 1000), 0.0);
        assert!(m.comm_time(1, 2, 1000) > 0.0);
    }

    #[test]
    fn smp_nodes_make_local_comm_cheap() {
        let m = MachineModel::sp2_smp(8, 4);
        assert_eq!(m.node_of(3), 0);
        assert_eq!(m.node_of(4), 1);
        let intra = m.comm_time(0, 3, 4096);
        let inter = m.comm_time(0, 4, 4096);
        assert!(intra < inter / 10.0, "intra {intra} vs inter {inter}");
        // Pure distributed-memory model unaffected.
        let flat = MachineModel::sp2(8);
        assert_eq!(flat.comm_time(0, 3, 4096), flat.comm_time(0, 4, 4096));
    }

    #[test]
    fn sp2_absolute_scale_sanity() {
        // Shipping a 64x64 block (32 KB) over the SP2 switch: latency 40 µs
        // + ~0.94 ms — of the same order as computing on it, which is what
        // makes the scheduling problem interesting.
        let m = MachineModel::sp2(16);
        let t = m.comm_time(0, 1, 64 * 64);
        assert!(t > 5e-4 && t < 5e-3, "t = {t}");
    }

    #[test]
    fn json_roundtrip() {
        let m = MachineModel::sp2(32);
        let mut buf = Vec::new();
        m.save(&mut buf).unwrap();
        let m2 = MachineModel::load(&buf[..]).unwrap();
        // JSON float printing can lose an ULP; compare predictions.
        assert_eq!(m.n_procs, m2.n_procs);
        assert_eq!(m.bytes_per_scalar, m2.bytes_per_scalar);
        for (m_, n_, k_) in [(8, 8, 8), (64, 64, 64), (300, 50, 64)] {
            for c in [KernelClass::GemmNt, KernelClass::TrsmPanel, KernelClass::FactorLdlt] {
                let a = m.kernel_time(c, m_, n_, k_);
                let b = m2.kernel_time(c, m_, n_, k_);
                assert!((a - b).abs() <= 1e-12 * a.abs().max(1e-15));
            }
        }
        assert!((m.net.latency - m2.net.latency).abs() < 1e-12);
    }

    #[test]
    fn kernel_time_delegation() {
        let m = MachineModel::sp2(1);
        assert!(m.kernel_time(KernelClass::GemmNt, 64, 64, 64) > 0.0);
    }

    #[test]
    fn json_without_smp_fields_loads_with_defaults() {
        // A model serialized before the SMP extension (no procs_per_node /
        // intra_node) must still load — from_json defaults fill the gap.
        let legacy = r#"{
            "n_procs": 4,
            "blas": BLAS,
            "net": {"latency": 4e-5, "bandwidth": 3.5e7},
            "bytes_per_scalar": 8
        }"#;
        let blas = BlasModel::power2sc().to_json().compact();
        let json = legacy.replace("BLAS", &blas);
        let m = MachineModel::from_json(&pastix_json::Json::parse(&json).unwrap()).unwrap();
        assert_eq!(m.procs_per_node, 1);
        assert_eq!(m.comm_time(0, 1, 100), m.net.transfer_time(800));
    }

    #[test]
    fn node_of_handles_degenerate_node_size() {
        let mut m = MachineModel::sp2(4);
        m.procs_per_node = 0; // defensive: treated as 1
        assert_eq!(m.node_of(3), 3);
    }

    // Serializes every test that can run the timed sweep or mutate the
    // probe-related environment, so the `probe_runs()` deltas are exact.
    static PROBE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn probe_blocking_is_one_shot_and_legal() {
        let _serial = PROBE_LOCK.lock().unwrap();
        let first = probe_blocking();
        assert_eq!(first, probe_blocking(), "probe must cache its winner");
        let bs = first.sanitized();
        assert_eq!(bs, first, "installed blocking must already be sanitized");
        // The f64 slot now serves the probe's winner.
        assert_eq!(pastix_kernels::blocking_for::<f64>(), first);
    }

    #[test]
    fn blocking_sweep_runs_at_most_once_per_cache_key() {
        let _serial = PROBE_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("pastix-blk-cold-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r0 = probe_runs();
        let a = resolve_blocking_in(&dir);
        assert_eq!(probe_runs(), r0 + 1, "cold cache must pay the sweep once");
        let b = resolve_blocking_in(&dir);
        assert_eq!(probe_runs(), r0 + 1, "dotfile hit must skip the sweep");
        assert_eq!(a, b, "cached winner must round-trip through the dotfile");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn blocking_cache_honors_dotfile_and_env_override() {
        let _serial = PROBE_LOCK.lock().unwrap();
        // Pre-seeded dotfile: no sweep, exact value back.
        let dir = std::env::temp_dir().join(format!("pastix-blk-seed-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let key = format!(
            "{}-{}cpu",
            std::env::consts::ARCH,
            std::thread::available_parallelism().map_or(1, |n| n.get())
        );
        std::fs::write(dir.join(format!(".pastix-blocking-{key}")), "64x128x1024").unwrap();
        let r0 = probe_runs();
        assert_eq!(
            resolve_blocking_in(&dir),
            BlockSizes { mc: 64, kc: 128, nc: 1024 }
        );
        assert_eq!(probe_runs(), r0, "seeded dotfile must skip the sweep");
        // Env override wins over everything and is never persisted.
        std::env::set_var("PASTIX_BLOCKING", "128x96x512");
        let got = resolve_blocking_in(&dir);
        std::env::remove_var("PASTIX_BLOCKING");
        assert_eq!(got, BlockSizes { mc: 128, kc: 96, nc: 512 });
        assert_eq!(probe_runs(), r0);
        // Garbage in the dotfile falls through to the sweep rather than
        // panicking or installing nonsense.
        std::fs::write(dir.join(format!(".pastix-blocking-{key}")), "not-a-size").unwrap();
        let swept = resolve_blocking_in(&dir);
        assert_eq!(probe_runs(), r0 + 1);
        assert_eq!(swept, swept.sanitized());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn calibration_relative_normalizes_and_defaults() {
        let c = TaskCalibration { ns_per_cost: [2e9, 4e9, 0.0, 6e9] };
        let rel = c.relative();
        // Mean over measured kinds is 4e9; unmeasured BDIV stays 1.
        assert!((rel[0] - 0.5).abs() < 1e-12);
        assert!((rel[1] - 1.0).abs() < 1e-12);
        assert!((rel[2] - 1.0).abs() < 1e-12);
        assert!((rel[3] - 1.5).abs() < 1e-12);
        // Uncalibrated model scales by 1 everywhere.
        let m = MachineModel::sp2(4);
        for k in 0..task_kind::COUNT {
            assert_eq!(m.task_scale(k), 1.0);
        }
        let m = m.with_task_calibration(c);
        assert!((m.task_scale(task_kind::BMOD) - 1.5).abs() < 1e-12);
        assert_eq!(m.task_scale(99), 1.0, "out-of-range kind is inert");
    }

    #[test]
    fn calibration_parse_render_round_trip() {
        let c = TaskCalibration { ns_per_cost: [1.5e9, 2.25e9, 3.125e8, 0.0] };
        let back = TaskCalibration::parse(&c.render()).unwrap();
        for (a, b) in c.ns_per_cost.iter().zip(back.ns_per_cost) {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
        }
        // Env syntax (commas) parses too; garbage does not.
        assert!(TaskCalibration::parse("1,2,3,4").is_some());
        assert!(TaskCalibration::parse("1 2 3").is_none());
        assert!(TaskCalibration::parse("1 2 3 4 5").is_none());
        assert!(TaskCalibration::parse("1 -2 3 4").is_none());
        assert!(TaskCalibration::parse("1 nan 3 4").is_none());
    }

    #[test]
    fn calibrated_model_json_round_trips() {
        let m = MachineModel::sp2(8)
            .with_task_calibration(TaskCalibration { ns_per_cost: [1e9, 2e9, 3e9, 4e9] });
        let mut buf = Vec::new();
        m.save(&mut buf).unwrap();
        let m2 = MachineModel::load(&buf[..]).unwrap();
        let c2 = m2.task_calibration.expect("calibration survives JSON");
        for (a, b) in [1e9, 2e9, 3e9, 4e9].iter().zip(c2.ns_per_cost) {
            assert!((a - b).abs() <= 1e-3);
        }
        // Pre-calibration JSON (no field) loads as uncalibrated — covered
        // by json_without_smp_fields_loads_with_defaults's legacy blob.
    }

    #[test]
    fn calibration_dotfile_round_trip_and_env_override() {
        let _serial = PROBE_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("pastix-calib-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(load_calibration_in(&dir).is_none(), "cold cache is uncalibrated");
        let cal = TaskCalibration { ns_per_cost: [1e9, 2e9, 3e9, 4e9] };
        store_calibration_in(&dir, &cal);
        let back = load_calibration_in(&dir).expect("dotfile loads");
        for (a, b) in cal.ns_per_cost.iter().zip(back.ns_per_cost) {
            assert!((a - b).abs() <= 1e-3);
        }
        // Env override wins over the dotfile.
        std::env::set_var("PASTIX_CALIBRATION", "5e9,5e9,5e9,5e9");
        let over = load_calibration_in(&dir).unwrap();
        std::env::remove_var("PASTIX_CALIBRATION");
        assert_eq!(over.ns_per_cost, [5e9; 4]);
        // Garbage in the dotfile degrades to uncalibrated.
        std::fs::write(calibration_dotfile(&dir), "broken").unwrap();
        assert!(load_calibration_in(&dir).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_process_measurement_produces_sane_numbers() {
        let n = measure_in_process_network();
        assert!(n.latency > 0.0 && n.latency < 1e-2, "latency {}", n.latency);
        assert!(n.bandwidth > 1e6, "bandwidth {}", n.bandwidth);
    }
}
