//! `Backend::Dynamic` benchmark and acceptance gate: the work-stealing
//! DAG executor vs the static SPMD schedule on the same task graph.
//!
//! Three engines run per problem on real threads:
//!
//! * **static** — the fan-in SPMD engine driven by the static schedule;
//! * **dynamic** — the work-stealing executor, placement hints only;
//! * **dynamic+prio** — same, with the static schedule's start times as
//!   task priorities (the "static mapping supplies initial placement and
//!   priority" mode of the Plan API).
//!
//! Before any timing, correctness gates run: every engine's factor must
//! match the sequential reference entrywise (≤ 1e-8 relative) and solve
//! to a ≤ 1e-12 residual, and the dynamic engine must pass a seeded sim
//! sweep under all four chaos scheduling policies.
//!
//! Writes `BENCH_dynamic.json` at the repository root. Exits non-zero if
//! any agreement gate fails or if dynamic+prio falls below 0.9× the
//! static engine's throughput on the largest problem (Shipsec5 analog).
//! `--quick` shrinks scale and reps for CI.

use pastix_bench::{prepare, scale, schedule_for, scotch_ordering};
use pastix_graph::{canonical_solution, rhs_for_solution, ProblemId};
use pastix_json::{obj, Json};
use pastix_runtime::sim::{FaultPlan, SchedPolicy};
use pastix_runtime::Backend;
use pastix_sched::SchedOptions;
use pastix_solver::{
    factorize_sequential, DynamicOptions, FactorStorage, Plan, SolverConfig,
};
use std::time::Instant;

const PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dynamic.json");

/// Entrywise factor agreement vs the sequential reference.
const FACTOR_RTOL: f64 = 1e-8;
/// Residual of the distributed solve.
const RESIDUAL_MAX: f64 = 1e-12;
/// Acceptance: dynamic+prio wall time may exceed static by at most 1/0.9.
const TARGET_RATIO: f64 = 0.9;

struct EngineResult {
    label: &'static str,
    best_s: f64,
    steals: u64,
}

fn max_factor_dev(run: &FactorStorage<f64>, seq: &FactorStorage<f64>) -> f64 {
    let mut max_dev = 0.0f64;
    for (pa, pb) in run.panels.iter().zip(&seq.panels) {
        for (x, y) in pa.iter().zip(pb) {
            max_dev = max_dev.max((x - y).abs() / x.abs().max(1.0));
        }
    }
    max_dev
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = if quick { "quick" } else { "full" };
    println!("bench_dynamic ({mode}) — static schedule vs work-stealing executor");

    let sc = if quick { 0.02 } else { scale() };
    let reps = if quick { 1 } else { 3 };
    let procs = 4;
    let ids: &[ProblemId] = if quick {
        &[ProblemId::Shipsec5]
    } else {
        &[ProblemId::Ship001, ProblemId::Shipsec5]
    };

    let mut rows = Vec::new();
    let mut failed = false;
    let mut headline_ratio = f64::NAN;

    for &id in ids {
        let prep = prepare(id, sc, &scotch_ordering());
        let mut sopts = SchedOptions::default();
        sopts.block_size = if quick { 16 } else { 32 };
        let mapping = schedule_for(&prep, procs, &sopts);
        let ap = prep.matrix.permuted(&prep.analysis.perm);
        let sym = &mapping.graph.split.symbol;
        let plan = Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
        println!(
            "\nproblem {} n={} tasks={} procs={procs} digest={:#018x}",
            id.name(),
            ap.n(),
            mapping.graph.n_tasks(),
            mapping.schedule.digest()
        );

        // Sequential reference for the agreement gates.
        let mut seq = FactorStorage::zeros(sym);
        seq.scatter(sym, &ap);
        factorize_sequential(sym, &mut seq).expect("sequential reference failed");
        let b = rhs_for_solution(&ap, &canonical_solution::<f64>(ap.n()));

        let backends: [(&'static str, Backend); 3] = [
            ("static", Backend::Threads),
            (
                "dynamic",
                Backend::Dynamic(DynamicOptions::new().with_workers(procs)),
            ),
            (
                "dynamic+prio",
                Backend::Dynamic(
                    DynamicOptions::new().with_workers(procs).with_priorities(true),
                ),
            ),
        ];

        let mut results = Vec::new();
        for (label, backend) in backends {
            let cfg = SolverConfig::new().with_backend(backend);
            // Correctness gate on the timed configuration.
            let run = plan.factorize(&ap, &cfg).expect("factorization failed");
            let dev = max_factor_dev(&run.storage, &seq);
            let x = run.solve(&b);
            let res = ap.residual_norm(&x, &b);
            let agree = dev <= FACTOR_RTOL && res <= RESIDUAL_MAX;
            println!(
                "  [{label:>12}] factor dev {dev:.2e} residual {res:.2e} — {}",
                if agree { "agrees with sequential" } else { "DISAGREES" }
            );
            failed |= !agree;

            // Timing: warm-up already done (the gate run), then best-of.
            let mut best = f64::INFINITY;
            let mut steals = 0u64;
            for _ in 0..reps {
                let t0 = Instant::now();
                let timed = plan.factorize(&ap, &cfg).expect("factorization failed");
                best = best.min(t0.elapsed().as_secs_f64());
                steals = steals.max(timed.metrics.counter("dynamic.steals"));
            }
            results.push(EngineResult { label, best_s: best, steals });
        }

        // Seeded chaos sweep: the dynamic executor's sim serialization
        // must agree with sequential under every scheduling policy.
        let policies = [
            SchedPolicy::Uniform,
            SchedPolicy::StarveRank(1),
            SchedPolicy::DeliverLast,
            SchedPolicy::FifoPerPair,
        ];
        let sweep_seeds: u64 = if quick { 1 } else { 2 };
        let mut sim_ok = true;
        for (p, policy) in policies.into_iter().enumerate() {
            for s in 0..sweep_seeds {
                let seed = 0xBE_0000 + (p as u64) * sweep_seeds + s;
                let fp = FaultPlan::builder(seed).policy(policy).build();
                let dopts = DynamicOptions::new()
                    .with_workers(procs)
                    .with_priorities(s % 2 == 1)
                    .with_sim(fp);
                let cfg = SolverConfig::new().with_backend(Backend::Dynamic(dopts));
                let run = plan.factorize(&ap, &cfg).expect("sim dynamic factorization failed");
                let dev = max_factor_dev(&run.storage, &seq);
                let res = ap.residual_norm(&run.solve(&b), &b);
                if dev > FACTOR_RTOL || res > RESIDUAL_MAX {
                    eprintln!(
                        "  [sim {policy:?} seed {seed}] DISAGREES: dev {dev:.2e} res {res:.2e}"
                    );
                    sim_ok = false;
                }
            }
        }
        println!(
            "  sim chaos sweep ({} policies × {sweep_seeds} seeds): {}",
            policies.len(),
            if sim_ok { "all agree with sequential" } else { "FAILED" }
        );
        failed |= !sim_ok;

        let t_static = results[0].best_s;
        for r in &results {
            println!(
                "  [{:>12}] best {:.4} s  ({:.2}x static{})",
                r.label,
                r.best_s,
                t_static / r.best_s,
                if r.steals > 0 {
                    format!(", {} steals", r.steals)
                } else {
                    String::new()
                }
            );
        }
        let ratio = t_static / results[2].best_s;
        if id == ProblemId::Shipsec5 {
            headline_ratio = ratio;
        }
        rows.push(obj([
            ("problem", Json::Str(id.name().to_string())),
            ("n", Json::Num(ap.n() as f64)),
            ("tasks", Json::Num(mapping.graph.n_tasks() as f64)),
            ("procs", Json::Num(procs as f64)),
            ("t_static_s", Json::Num(results[0].best_s)),
            ("t_dynamic_s", Json::Num(results[1].best_s)),
            ("t_dynamic_prio_s", Json::Num(results[2].best_s)),
            ("dynamic_prio_vs_static", Json::Num(ratio)),
            ("steals_dynamic", Json::Num(results[1].steals as f64)),
            ("steals_dynamic_prio", Json::Num(results[2].steals as f64)),
            ("sim_sweep_ok", Json::Bool(sim_ok)),
        ]));
    }

    let j = obj([
        ("bench", Json::Str("dynamic".to_string())),
        ("mode", Json::Str(mode.to_string())),
        ("scale", Json::Num(sc)),
        ("reps", Json::Num(reps as f64)),
        ("target_ratio", Json::Num(TARGET_RATIO)),
        ("headline_ratio", Json::Num(headline_ratio)),
        ("problems", Json::Arr(rows)),
    ]);
    std::fs::write(PATH, j.pretty()).expect("write BENCH_dynamic.json");
    println!("\nwrote {PATH}");

    let perf_ok = headline_ratio >= TARGET_RATIO;
    println!(
        "acceptance (dynamic+prio ≥ {TARGET_RATIO}× static throughput on Shipsec5): \
         {headline_ratio:.2}x — {}",
        if perf_ok { "MET" } else { "NOT MET" }
    );
    println!(
        "acceptance (all engines agree with sequential, incl. sim chaos sweep): {}",
        if failed { "NOT MET" } else { "MET" }
    );
    if failed || !perf_ok {
        eprintln!("FAIL: bench_dynamic gates not met");
        std::process::exit(1);
    }
}
