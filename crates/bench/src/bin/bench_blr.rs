//! Block-low-rank benchmark and acceptance gate: compressed vs dense
//! factorization on the paper problems.
//!
//! Per problem, the dense thread-backend factorization is the baseline;
//! each tolerance level then factorizes with BLR compression
//! (minimal-memory strategy) and reports the factor memory ratio, the
//! factorization speedup vs dense, and the refined-solve residual.
//!
//! Gates, checked before timing matters:
//!
//! * **memory** — at the loosest swept tolerance (`1e-2`) the Shipsec5
//!   factor must fit in ≤ 0.8× the dense bytes. (The per-block relative
//!   tolerance means tight-tolerance compression engages with separator
//!   size: at the paper's full 180k-dof Shipsec5 the `1e-8` level is the
//!   interesting one, but the CI-scale analogs only develop numerically
//!   deficient blocks at loose tolerances, so the gate rides the level
//!   that actually exercises the machinery.)
//! * **accuracy** — every tolerance level's refined solve must reach a
//!   ≤ 1e-8 scaled backward error;
//! * **tolerance 0 is off** — on the deterministic sim backend, a
//!   `CompressionConfig` with tolerance `0.0` must be bitwise-identical
//!   to the dense path;
//! * **chaos** — the seeded sim sweep (all four scheduling policies)
//!   stays green with compression enabled on both the static SPMD and
//!   the dynamic work-stealing backends: each run replays bitwise and
//!   refines to ≤ 1e-8.
//!
//! Writes `BENCH_blr.json` at the repository root; exits non-zero when
//! any gate fails. `--quick` shrinks scale and reps for CI.

use pastix_bench::{prepare, scale, schedule_for, scotch_ordering};
use pastix_graph::{canonical_solution, rhs_for_solution, ProblemId};
use pastix_json::{obj, Json};
use pastix_runtime::sim::{FaultPlan, SchedPolicy};
use pastix_runtime::Backend;
use pastix_sched::SchedOptions;
use pastix_solver::{
    CompressionConfig, CompressionStrategy, DynamicOptions, FactorRun, Plan, SolverConfig,
};
use std::time::Instant;

const PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_blr.json");

/// Tolerance sweep reported per problem (tightest first).
const TOLERANCES: [f64; 3] = [1e-8, 1e-4, 1e-2];
/// Memory gate at the loosest swept tolerance on the headline problem.
const MEM_RATIO_MAX: f64 = 0.8;
/// Refined-solve accuracy gate for every tolerance level.
const RESIDUAL_MAX: f64 = 1e-8;

fn blr_cfg(tol: f64) -> CompressionConfig {
    CompressionConfig::with_tolerance(tol)
        .min_block(2)
        .strategy(CompressionStrategy::MinimalMemory)
}

fn factor_bits(run: &FactorRun<f64>) -> Vec<u64> {
    run.storage.panels.iter().flat_map(|p| p.iter().map(|v| v.to_bits())).collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = if quick { "quick" } else { "full" };
    println!("bench_blr ({mode}) — block-low-rank compression vs dense factorization");

    let sc = if quick { 0.03 } else { scale() };
    let reps = if quick { 1 } else { 3 };
    let procs = 4;
    let ids: &[ProblemId] = if quick {
        &[ProblemId::Shipsec5]
    } else {
        &[ProblemId::Ship001, ProblemId::Shipsec5]
    };

    let mut rows = Vec::new();
    let mut failed = false;
    let mut headline_ratio = f64::NAN;

    for &id in ids {
        let prep = prepare(id, sc, &scotch_ordering());
        let mut sopts = SchedOptions::default();
        // Bigger blocks than the other benches: low-rank deficiency is a
        // property of block size, and small bloks never pay for a U/V pair.
        sopts.block_size = if quick { 48 } else { 64 };
        let mapping = schedule_for(&prep, procs, &sopts);
        let ap = prep.matrix.permuted(&prep.analysis.perm);
        let plan = Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
        let b = rhs_for_solution(&ap, &canonical_solution::<f64>(ap.n()));
        println!(
            "\nproblem {} n={} tasks={} procs={procs}",
            id.name(),
            ap.n(),
            mapping.graph.n_tasks()
        );

        // Dense baseline (threads backend): bytes and best-of wall time.
        let dense_cfg = SolverConfig::new();
        let dense = plan.factorize(&ap, &dense_cfg).expect("dense factorization failed");
        let dense_bytes = dense.storage.dense_factor_bytes();
        let mut t_dense = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            plan.factorize(&ap, &dense_cfg).expect("dense factorization failed");
            t_dense = t_dense.min(t0.elapsed().as_secs_f64());
        }
        println!("  [dense] {:.1} KiB, best {:.4} s", dense_bytes as f64 / 1024.0, t_dense);

        // Tolerance sweep: memory ratio, speedup, refined residual.
        let mut tol_rows = Vec::new();
        for tol in TOLERANCES {
            let cfg = SolverConfig::new().with_compression(blr_cfg(tol));
            let run = plan.factorize(&ap, &cfg).expect("BLR factorization failed");
            let bytes = run.storage.factor_bytes();
            let ratio = bytes as f64 / dense_bytes as f64;
            let refined = run.solve_refined(&ap, &b, &Default::default());
            let mut t_blr = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                plan.factorize(&ap, &cfg).expect("BLR factorization failed");
                t_blr = t_blr.min(t0.elapsed().as_secs_f64());
            }
            let blocks = cfg.metrics.counter("lowrank.compressed_blocks");
            println!(
                "  [tol {tol:>5.0e}] mem {ratio:.2}x dense, {blocks} blocks compressed, \
                 best {t_blr:.4} s ({:.2}x dense), refined residual {:.2e} ({} iters)",
                t_dense / t_blr,
                refined.residual,
                refined.iterations
            );
            let acc_ok = refined.residual <= RESIDUAL_MAX;
            if !acc_ok {
                eprintln!("  FAIL: refined residual {:.2e} > {RESIDUAL_MAX:.0e}", refined.residual);
            }
            failed |= !acc_ok;
            if id == ProblemId::Shipsec5 && tol == TOLERANCES[TOLERANCES.len() - 1] {
                headline_ratio = ratio;
            }
            tol_rows.push(obj([
                ("tolerance", Json::Num(tol)),
                ("factor_bytes", Json::Num(bytes as f64)),
                ("mem_ratio", Json::Num(ratio)),
                ("t_blr_s", Json::Num(t_blr)),
                ("speedup_vs_dense", Json::Num(t_dense / t_blr)),
                ("refined_residual", Json::Num(refined.residual)),
                ("refine_iterations", Json::Num(refined.iterations as f64)),
                ("compressed_blocks", Json::Num(blocks as f64)),
            ]));
        }

        // Tolerance 0 must be the dense path, bitwise — on the sim
        // backend so the comparison is replayable.
        let fp = FaultPlan::builder(0xB1).policy(SchedPolicy::Uniform).build();
        let sim_dense = plan
            .factorize(&ap, &SolverConfig::new().with_backend(Backend::Sim(fp)))
            .expect("sim dense failed");
        let sim_zero = plan
            .factorize(
                &ap,
                &SolverConfig::new().with_backend(Backend::Sim(fp)).with_compression(blr_cfg(0.0)),
            )
            .expect("sim tol-0 failed");
        let zero_ok = !sim_zero.storage.is_compressed()
            && factor_bits(&sim_dense) == factor_bits(&sim_zero);
        println!(
            "  tolerance 0 vs dense (sim backend): {}",
            if zero_ok { "bitwise identical" } else { "DIFFERS" }
        );
        failed |= !zero_ok;

        // Chaos sweep with compression enabled: static SPMD sim and the
        // dynamic executor's sim serialization, all four policies. Each
        // configuration must replay bitwise and refine to the gate.
        let policies = [
            SchedPolicy::Uniform,
            SchedPolicy::StarveRank(1),
            SchedPolicy::DeliverLast,
            SchedPolicy::FifoPerPair,
        ];
        let mut sweep_ok = true;
        for (p, policy) in policies.into_iter().enumerate() {
            let seed = 0xB12_000 + p as u64;
            let fp = FaultPlan::builder(seed).policy(policy).build();
            let cfgs = [
                (
                    "static",
                    SolverConfig::new()
                        .with_backend(Backend::Sim(fp))
                        .with_compression(blr_cfg(TOLERANCES[0])),
                ),
                (
                    "dynamic",
                    SolverConfig::new()
                        .with_backend(Backend::Dynamic(
                            DynamicOptions::new().with_workers(procs).with_sim(fp),
                        ))
                        .with_compression(blr_cfg(TOLERANCES[0])),
                ),
            ];
            for (label, cfg) in cfgs {
                let r1 = plan.factorize(&ap, &cfg).expect("chaos factorization failed");
                let r2 = plan.factorize(&ap, &cfg).expect("chaos factorization failed");
                let replay = factor_bits(&r1) == factor_bits(&r2);
                let refined = r1.solve_refined(&ap, &b, &Default::default());
                if !replay || refined.residual > RESIDUAL_MAX {
                    eprintln!(
                        "  [chaos {label} {policy:?}] replay {replay}, residual {:.2e} — FAIL",
                        refined.residual
                    );
                    sweep_ok = false;
                }
            }
        }
        println!(
            "  chaos sweep with compression ({} policies × static+dynamic): {}",
            policies.len(),
            if sweep_ok { "green" } else { "FAILED" }
        );
        failed |= !sweep_ok;

        rows.push(obj([
            ("problem", Json::Str(id.name().to_string())),
            ("n", Json::Num(ap.n() as f64)),
            ("procs", Json::Num(procs as f64)),
            ("dense_bytes", Json::Num(dense_bytes as f64)),
            ("t_dense_s", Json::Num(t_dense)),
            ("zero_tolerance_bitwise", Json::Bool(zero_ok)),
            ("chaos_sweep_ok", Json::Bool(sweep_ok)),
            ("tolerances", Json::Arr(tol_rows)),
        ]));
    }

    let j = obj([
        ("bench", Json::Str("blr".to_string())),
        ("mode", Json::Str(mode.to_string())),
        ("scale", Json::Num(sc)),
        ("reps", Json::Num(reps as f64)),
        ("mem_ratio_max", Json::Num(MEM_RATIO_MAX)),
        ("residual_max", Json::Num(RESIDUAL_MAX)),
        ("headline_mem_ratio", Json::Num(headline_ratio)),
        ("problems", Json::Arr(rows)),
    ]);
    std::fs::write(PATH, j.pretty()).expect("write BENCH_blr.json");
    println!("\nwrote {PATH}");

    let mem_ok = headline_ratio <= MEM_RATIO_MAX;
    println!(
        "acceptance (Shipsec5 @ {:.0e} factor memory ≤ {MEM_RATIO_MAX}× dense): \
         {headline_ratio:.2}x — {}",
        TOLERANCES[TOLERANCES.len() - 1],
        if mem_ok { "MET" } else { "NOT MET" }
    );
    println!(
        "acceptance (refined residual ≤ {RESIDUAL_MAX:.0e}, tol-0 bitwise, chaos green): {}",
        if failed { "NOT MET" } else { "MET" }
    );
    if failed || !mem_ok {
        eprintln!("FAIL: bench_blr gates not met");
        std::process::exit(1);
    }
}
