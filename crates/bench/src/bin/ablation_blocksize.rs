//! Ablation **A2**: the BLAS blocking size (the paper fixes 64).
//!
//! Sweeps the splitting width and reports task count and predicted
//! makespan: small blocks expose concurrency but drown in per-call
//! overheads and messages; large blocks starve the processors. The sweet
//! spot near 64 on the SP2 model is the reproduced signal.

use pastix_bench::{prepare, problems, scale, schedule_for};
use pastix_sched::SchedOptions;

fn main() {
    let scale = scale();
    println!("Ablation A2 — blocking size sweep (P = 16, scale {scale})");
    println!(
        "{:<10} {:>6} {:>8} {:>12} {:>12}",
        "Problem", "block", "tasks", "makespan(s)", "util"
    );
    for id in problems() {
        let prep = prepare(id, scale, &pastix_bench::scotch_ordering());
        for block in [16usize, 32, 64, 128] {
            let mut opts = SchedOptions::default();
            opts.block_size = block;
            let m = schedule_for(&prep, 16, &opts);
            println!(
                "{:<10} {:>6} {:>8} {:>12.3} {:>11.1}%",
                id.name(),
                block,
                m.graph.n_tasks(),
                m.schedule.makespan,
                m.schedule.utilization(&m.graph) * 100.0
            );
        }
    }
}
