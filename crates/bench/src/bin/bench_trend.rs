//! Benchmark trend over the committed history: walks `git log` for the
//! `BENCH_*.json` reports that ride with the code, parses each committed
//! revision, and prints per-file trend tables (newest first) so a
//! performance regression shows up as a break in the series.
//!
//! Strictly an observability artifact: the process always exits 0 on
//! readable repositories and degrades gracefully on shallow clones or
//! checkouts without git (it reports what it could not do and moves on).
//! CI runs it non-gating and uploads the output.

use pastix_json::Json;
use std::process::Command;

/// The committed reports and the headline metrics to trend for each:
/// `(file, [(json_key, column_label)])`.
const TRACKED: &[(&str, &[(&str, &str)])] = &[
    (
        "BENCH_factorize.json",
        &[
            ("shipsec5_speedup", "shipsec5-speedup"),
            ("tracing_overhead_shipsec5", "trace-overhead"),
        ],
    ),
    ("BENCH_kernels.json", &[]),
    (
        "BENCH_trace.json",
        &[
            ("reconciliation", "reconciliation"),
            ("model_scale_ns_per_cost", "model-scale"),
        ],
    ),
    (
        "BENCH_blr.json",
        &[("headline_mem_ratio", "blr-mem-ratio")],
    ),
    (
        "BENCH_analyze.json",
        &[("headline_speedup", "analyze-speedup")],
    ),
    (
        "BENCH_serve.json",
        &[
            ("latency_p50_ns", "lat-p50"),
            ("latency_p99_ns", "lat-p99"),
            ("queue_wait_p99_ns", "qwait-p99"),
            ("solve_p99_ns", "solve-p99"),
            ("cache_hit_rate", "hit-rate"),
            ("observability_overhead_frac", "obs-ovh"),
        ],
    ),
];

/// How many revisions per file to walk at most.
const MAX_REVS: usize = 20;

fn git(args: &[&str]) -> Option<String> {
    let out = Command::new("git").args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    String::from_utf8(out.stdout).ok()
}

/// Mean over the per-case `speedup` fields of a kernels report — the
/// derived headline when no scalar metric is committed at the top level.
fn kernels_mean_speedup(j: &Json) -> Option<f64> {
    let cases = j.get("cases")?.as_arr().ok()?;
    let mut sum = 0.0;
    let mut n = 0usize;
    for c in cases {
        if let Some(s) = c.get("speedup").and_then(|v| v.as_f64().ok()) {
            sum += s;
            n += 1;
        }
    }
    (n > 0).then(|| sum / n as f64)
}

fn trend_file(file: &str, metrics: &[(&str, &str)]) {
    let Some(log) = git(&["log", "--format=%H %cs %s", &format!("--max-count={MAX_REVS}"), "--", file])
    else {
        println!("{file}: git log unavailable (shallow clone or no git) — skipped");
        return;
    };
    if log.trim().is_empty() {
        println!("{file}: no committed history yet");
        return;
    }
    println!("== {file} ==");
    let labels: Vec<&str> = if metrics.is_empty() {
        vec!["mean-speedup"]
    } else {
        metrics.iter().map(|&(_, l)| l).collect()
    };
    print!("{:<12} {:<11}", "commit", "date");
    for l in &labels {
        print!(" {l:>16}");
    }
    println!("  subject");
    for line in log.lines() {
        let mut parts = line.splitn(3, ' ');
        let (Some(hash), Some(date)) = (parts.next(), parts.next()) else {
            continue;
        };
        let subject = parts.next().unwrap_or("");
        let Some(body) = git(&["show", &format!("{hash}:{file}")]) else {
            // The commit predates the file or the object is missing
            // (shallow clone): fine, the series just ends here.
            continue;
        };
        let Ok(j) = Json::parse(&body) else {
            println!("{:<12} {:<11} {:>16}  {}", &hash[..12.min(hash.len())], date, "unparseable", subject);
            continue;
        };
        print!("{:<12} {:<11}", &hash[..12.min(hash.len())], date);
        if metrics.is_empty() {
            match kernels_mean_speedup(&j) {
                Some(v) => print!(" {v:>16.3}"),
                None => print!(" {:>16}", "-"),
            }
        } else {
            for &(key, _) in metrics {
                match j.get(key).and_then(|v| v.as_f64().ok()) {
                    Some(v) => print!(" {v:>16.4}"),
                    None => print!(" {:>16}", "-"),
                }
            }
        }
        let subject = if subject.len() > 44 { &subject[..44] } else { subject };
        println!("  {subject}");
    }
    println!();
}

fn main() {
    println!("bench_trend — committed BENCH_*.json history (newest first)\n");
    if git(&["rev-parse", "--git-dir"]).is_none() {
        println!("not a git checkout — nothing to trend");
        return;
    }
    for &(file, metrics) in TRACKED {
        trend_file(file, metrics);
    }
}
