//! Analyze-phase benchmark and acceptance gate: parallel vs sequential
//! pre-processing (ordering → block symbolic factorization → mapping +
//! static scheduling) through `Plan::analyze`.
//!
//! Two gates run per problem:
//!
//! * **determinism (unconditional)** — every `Parallelism` setting must
//!   produce a bitwise-identical `Permutation`, block symbol, and
//!   `Schedule::digest()`, and identical scalar `NNZ_L`/`OPC`. A parallel
//!   analyze that changes any output bit is a bug, whatever the speedup.
//! * **speedup (hardware-gated)** — on machines with ≥ 4 CPUs, the
//!   threaded analyze of the largest problem (Shipsec5 analog) must reach
//!   ≥ 1.5× the sequential wall time. On smaller machines (CI smoke runs
//!   on 1–2 cores) the measurement is still taken and reported, but the
//!   ratio gate is skipped — there is no parallel speedup to measure
//!   without parallel hardware.
//!
//! Writes `BENCH_analyze.json` at the repository root; exits non-zero if
//! any active gate fails. `--quick` shrinks scale and reps for CI.

use pastix_bench::scale;
use pastix_graph::{build_problem, Parallelism, ProblemId};
use pastix_json::{obj, Json};
use pastix_solver::{Plan, SolverConfig};
use std::time::Instant;

const PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_analyze.json");

/// Speedup the threaded analyze must reach on the headline problem when
/// the hardware can parallelize at all (≥ `MIN_CPUS_FOR_GATE` CPUs).
const TARGET_SPEEDUP: f64 = 1.5;
const MIN_CPUS_FOR_GATE: usize = 4;

struct Artifacts {
    perm: Vec<u32>,
    cblks_ends: Vec<u32>,
    blok_rows: Vec<(u32, u32, u32)>,
    digest: u64,
    nnz_l: u64,
    opc: f64,
}

fn analyze_once(
    a: &pastix_graph::SymCsc<f64>,
    par: Parallelism,
    procs: usize,
) -> (Artifacts, f64) {
    let mut cfg = SolverConfig::default();
    cfg.analyze.procs = procs;
    cfg.analyze.parallelism = par;
    let t0 = Instant::now();
    let plan = Plan::analyze(a, &cfg);
    let wall = t0.elapsed().as_secs_f64();
    let sym = plan.symbol();
    let stats = plan.analyze_stats().expect("analyzed plans carry stats");
    (
        Artifacts {
            perm: plan.permutation().unwrap().perm().to_vec(),
            cblks_ends: sym.cblks.iter().map(|c| c.lcol).collect(),
            blok_rows: sym.bloks.iter().map(|b| (b.frow, b.lrow, b.fcblk)).collect(),
            digest: plan.schedule().expect("static schedule").digest(),
            nnz_l: stats.scalar_nnz_offdiag,
            opc: stats.scalar_opc,
        },
        wall,
    )
}

fn same_bits(a: &Artifacts, b: &Artifacts) -> bool {
    a.perm == b.perm
        && a.cblks_ends == b.cblks_ends
        && a.blok_rows == b.blok_rows
        && a.digest == b.digest
        && a.nnz_l == b.nnz_l
        && a.opc.to_bits() == b.opc.to_bits()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = if quick { "quick" } else { "full" };
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let par_threads = cpus.max(4);
    println!(
        "bench_analyze ({mode}) — parallel vs sequential analyze, {cpus} CPUs, \
         Threads({par_threads}) for the timed parallel run"
    );

    let sc = if quick { 0.02 } else { scale() };
    let reps = if quick { 2 } else { 3 };
    let procs = 4;
    let ids: &[ProblemId] = if quick {
        &[ProblemId::Shipsec5]
    } else {
        &[ProblemId::Ship001, ProblemId::Shipsec5]
    };

    let mut rows = Vec::new();
    let mut determinism_ok = true;
    let mut headline_speedup = f64::NAN;

    for &id in ids {
        let a = build_problem::<f64>(id, sc);
        println!("\nproblem {} n={} nnz={}", id.name(), a.n(), a.nnz_stored());

        // Reference: one sequential run pins the artifacts.
        let (seq_ref, _) = analyze_once(&a, Parallelism::Sequential, procs);

        // Determinism gate, unconditional: several thread counts plus
        // Auto must reproduce the sequential artifacts bitwise.
        let mut bitwise_ok = true;
        for par in [
            Parallelism::Threads(2),
            Parallelism::Threads(par_threads),
            Parallelism::Auto,
        ] {
            let (art, _) = analyze_once(&a, par, procs);
            if !same_bits(&seq_ref, &art) {
                eprintln!("  [{par:?}] DIFFERS from sequential analyze");
                bitwise_ok = false;
            }
        }
        println!(
            "  determinism (perm/symbol/digest/NNZ_L/OPC across thread counts): {}",
            if bitwise_ok { "bitwise identical" } else { "FAILED" }
        );
        determinism_ok &= bitwise_ok;

        // Timing: best-of-reps for each setting (first gate runs above
        // doubled as warm-up).
        let mut t_seq = f64::INFINITY;
        let mut t_par = f64::INFINITY;
        for _ in 0..reps {
            t_seq = t_seq.min(analyze_once(&a, Parallelism::Sequential, procs).1);
            t_par = t_par.min(analyze_once(&a, Parallelism::Threads(par_threads), procs).1);
        }
        let speedup = t_seq / t_par;
        println!(
            "  sequential {t_seq:.4} s, Threads({par_threads}) {t_par:.4} s — {speedup:.2}x"
        );
        if id == ProblemId::Shipsec5 {
            headline_speedup = speedup;
        }

        rows.push(obj([
            ("problem", Json::Str(id.name().to_string())),
            ("n", Json::Num(a.n() as f64)),
            ("nnz_l", Json::Num(seq_ref.nnz_l as f64)),
            ("opc", Json::Num(seq_ref.opc)),
            ("t_seq_s", Json::Num(t_seq)),
            ("t_par_s", Json::Num(t_par)),
            ("speedup", Json::Num(speedup)),
            ("bitwise_identical", Json::Bool(bitwise_ok)),
        ]));
    }

    let gate_active = cpus >= MIN_CPUS_FOR_GATE;
    let j = obj([
        ("bench", Json::Str("analyze".to_string())),
        ("mode", Json::Str(mode.to_string())),
        ("scale", Json::Num(sc)),
        ("reps", Json::Num(reps as f64)),
        ("cpus", Json::Num(cpus as f64)),
        ("par_threads", Json::Num(par_threads as f64)),
        ("target_speedup", Json::Num(TARGET_SPEEDUP)),
        ("speedup_gate_active", Json::Bool(gate_active)),
        ("headline_speedup", Json::Num(headline_speedup)),
        ("determinism_ok", Json::Bool(determinism_ok)),
        ("problems", Json::Arr(rows)),
    ]);
    std::fs::write(PATH, j.pretty()).expect("write BENCH_analyze.json");
    println!("\nwrote {PATH}");

    println!(
        "acceptance (analyze artifacts bitwise identical at every thread count): {}",
        if determinism_ok { "MET" } else { "NOT MET" }
    );
    let mut failed = !determinism_ok;
    if gate_active {
        let perf_ok = headline_speedup >= TARGET_SPEEDUP;
        println!(
            "acceptance (parallel analyze ≥ {TARGET_SPEEDUP}x sequential on Shipsec5, \
             {cpus} CPUs): {headline_speedup:.2}x — {}",
            if perf_ok { "MET" } else { "NOT MET" }
        );
        failed |= !perf_ok;
    } else {
        println!(
            "acceptance (speedup): SKIPPED — {cpus} CPU(s) < {MIN_CPUS_FOR_GATE}, no parallel \
             hardware to measure against (measured {headline_speedup:.2}x, reported only)"
        );
    }
    if failed {
        eprintln!("FAIL: bench_analyze gates not met");
        std::process::exit(1);
    }
}
