//! Persistent hot-path benchmark: packed cache-blocked kernels vs the seed
//! axpy reference, at both the microkernel level and the sequential
//! supernodal factorization level.
//!
//! Writes two JSON reports at the repository root so before/after numbers
//! ride with the code:
//!
//! * `BENCH_kernels.json` — `gemm_nt_acc` reference vs packed over a grid
//!   of panel-shaped `(m, n, k)` cases;
//! * `BENCH_factorize.json` — sequential LDLᵀ wall time and Gflop/s per
//!   problem under [`KernelMode::Reference`] vs [`KernelMode::Auto`] (the
//!   packed path above the dispatch threshold), with a factor checksum per
//!   mode.
//!
//! The process exits non-zero if the two modes' factor checksums diverge
//! beyond round-off — the packed path must be a pure reassociation of the
//! reference arithmetic, never a different answer. `--quick` shrinks reps
//! and problem scale for CI; `PASTIX_SCALE` / `PASTIX_PROBLEMS` apply to
//! the full run as in the other binaries.

use pastix_bench::{gflops, prepare, scale, scotch_ordering};
use pastix_graph::ProblemId;
use pastix_json::{num_arr, obj, Json};
use pastix_kernels::gemm::{gemm_nt_acc, gemm_nt_acc_ref};
use pastix_kernels::{blocking_for, KernelMode};
use pastix_machine::probe_blocking;
use pastix_solver::{factorize_sequential, FactorStorage};
use pastix_trace::TraceOptions;
use std::time::Instant;

const KERNELS_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
const FACTORIZE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_factorize.json");

/// Checksum gate: the packed path reassociates sums, so per-entry
/// round-off differs, but the aggregate must agree to far better than
/// this.
const CHECKSUM_RTOL: f64 = 1e-7;

/// Acceptance target from the issue: packed sequential factorization
/// throughput on the largest problem vs the seed axpy path.
const TARGET_SPEEDUP: f64 = 1.3;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = if quick { "quick" } else { "full" };
    println!("bench_hotpath ({mode}) — packed kernels vs seed axpy reference");

    // Install the probed blocking before any packed timing.
    let bs = probe_blocking();
    println!("probed f64 blocking: mc={} kc={} nc={}", bs.mc, bs.kc, bs.nc);

    let kernels = bench_kernels(quick);
    std::fs::write(KERNELS_PATH, kernels.pretty()).expect("write BENCH_kernels.json");
    println!("wrote {KERNELS_PATH}");

    let (factorize, checksums_ok) = bench_factorize(quick);
    std::fs::write(FACTORIZE_PATH, factorize.pretty()).expect("write BENCH_factorize.json");
    println!("wrote {FACTORIZE_PATH}");

    if !checksums_ok {
        eprintln!("FAIL: packed/reference factor checksums diverged (see BENCH_factorize.json)");
        std::process::exit(1);
    }
}

/// Times one `gemm_nt_acc` case for `reps` repetitions, returning seconds
/// for the whole batch. `C` is reused across reps (accumulation does not
/// change the flop count).
fn time_gemm(
    f: impl Fn(usize, usize, usize, f64, &[f64], usize, &[f64], usize, &mut [f64], usize),
    m: usize,
    n: usize,
    k: usize,
    reps: usize,
) -> f64 {
    let a: Vec<f64> = (0..m * k).map(|i| ((i * 37 + 11) % 101) as f64 * 0.013 - 0.6).collect();
    let b: Vec<f64> = (0..n * k).map(|i| ((i * 53 + 7) % 97) as f64 * 0.017 - 0.8).collect();
    let mut c = vec![0.0f64; m * n];
    // Warm-up outside the clock.
    f(m, n, k, 1.0, &a, m, &b, n, &mut c, m);
    let t0 = Instant::now();
    for _ in 0..reps {
        f(m, n, k, 1.0, &a, m, &b, n, &mut c, m);
    }
    let dt = t0.elapsed().as_secs_f64();
    assert!(c.iter().all(|x| x.is_finite()), "kernel produced non-finite values");
    dt
}

fn bench_kernels(quick: bool) -> Json {
    // Panel-shaped cases: tall update panels, wide rank-k blocks, and one
    // large square as the asymptotic point.
    let cases: &[(usize, usize, usize)] = &[
        (64, 64, 64),
        (192, 96, 128),
        (256, 64, 192),
        (512, 128, 128),
        (384, 384, 384),
    ];
    let cases = if quick { &cases[..3] } else { cases };
    let target_madds: f64 = if quick { 4e7 } else { 6e8 };

    let mut rows = Vec::new();
    println!("{:>5} {:>5} {:>5} {:>6}  {:>10} {:>10} {:>8}", "m", "n", "k", "reps", "ref GF/s", "pack GF/s", "speedup");
    for &(m, n, k) in cases {
        let madds = (m * n * k) as f64;
        let reps = ((target_madds / madds).ceil() as usize).max(3);
        let flops = 2.0 * madds * reps as f64;
        let t_ref = time_gemm(gemm_nt_acc_ref::<f64>, m, n, k, reps);
        let t_pack = {
            let _mode = KernelMode::Packed.scoped();
            time_gemm(gemm_nt_acc::<f64>, m, n, k, reps)
        };
        let (gf_ref, gf_pack) = (gflops(flops, t_ref), gflops(flops, t_pack));
        let speedup = t_ref / t_pack;
        println!("{m:>5} {n:>5} {k:>5} {reps:>6}  {gf_ref:>10.2} {gf_pack:>10.2} {speedup:>7.2}x");
        rows.push(obj([
            ("m", Json::Num(m as f64)),
            ("n", Json::Num(n as f64)),
            ("k", Json::Num(k as f64)),
            ("reps", Json::Num(reps as f64)),
            ("ref_seconds", Json::Num(t_ref)),
            ("packed_seconds", Json::Num(t_pack)),
            ("ref_gflops", Json::Num(gf_ref)),
            ("packed_gflops", Json::Num(gf_pack)),
            ("speedup", Json::Num(speedup)),
        ]));
    }
    let bs = blocking_for::<f64>();
    obj([
        ("bench", Json::Str("gemm_nt_acc packed vs reference".into())),
        ("mode", Json::Str(if quick { "quick" } else { "full" }.into())),
        ("elem", Json::Str("f64".into())),
        ("blocking", num_arr([bs.mc as f64, bs.kc as f64, bs.nc as f64])),
        ("cases", Json::Arr(rows)),
    ])
}

/// Sum of entry magnitudes over every factor panel: a single scalar that
/// any arithmetic divergence between kernel paths would move.
fn factor_checksum(st: &FactorStorage<f64>) -> f64 {
    st.panels.iter().flatten().map(|x| x.abs()).sum()
}

/// Best-of-`reps` sequential factorization time under the current kernel
/// mode, plus the checksum of the last factor.
fn time_factorize(
    sym: &pastix_symbolic::SymbolMatrix,
    ap: &pastix_graph::SymCsc<f64>,
    reps: usize,
) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut checksum = 0.0;
    for _ in 0..reps {
        let mut st = FactorStorage::zeros(sym);
        st.scatter(sym, ap);
        let t0 = Instant::now();
        factorize_sequential(sym, &mut st).expect("factorization failed");
        best = best.min(t0.elapsed().as_secs_f64());
        checksum = factor_checksum(&st);
    }
    (best, checksum)
}

/// Tracing overhead, measured **paired**: untraced and traced reps
/// alternate in one loop so both sides see the same cache, frequency and
/// allocator state (a sequential before/after comparison confounds the
/// tracer with machine drift). Returns `(overhead_fraction, events)` from
/// the best rep of each side.
fn measure_trace_overhead(
    sym: &pastix_symbolic::SymbolMatrix,
    ap: &pastix_graph::SymCsc<f64>,
    reps: usize,
) -> (f64, u64) {
    let mut best_plain = f64::INFINITY;
    let mut best_traced = f64::INFINITY;
    let mut events = 0u64;
    let topts = TraceOptions::wall();
    for _ in 0..reps {
        let mut st = FactorStorage::zeros(sym);
        st.scatter(sym, ap);
        let t0 = Instant::now();
        factorize_sequential(sym, &mut st).expect("factorization failed");
        best_plain = best_plain.min(t0.elapsed().as_secs_f64());

        let mut st = FactorStorage::zeros(sym);
        st.scatter(sym, ap);
        let session = pastix_trace::begin_rank(0, &topts);
        let t0 = Instant::now();
        factorize_sequential(sym, &mut st).expect("factorization failed");
        best_traced = best_traced.min(t0.elapsed().as_secs_f64());
        if let Some(rt) = session.finish() {
            events = rt.events.len() as u64 + rt.dropped_events;
        }
    }
    (best_traced / best_plain - 1.0, events)
}

/// Acceptance target from the issue: with tracing enabled the hot path may
/// regress by at most this fraction vs tracing disabled.
const TRACE_OVERHEAD_LIMIT: f64 = 0.02;

fn bench_factorize(quick: bool) -> (Json, bool) {
    let sc = if quick { 0.02 } else { scale() };
    let reps = if quick { 1 } else { 3 };
    let ids: Vec<ProblemId> = if quick {
        vec![ProblemId::Shipsec5]
    } else {
        vec![ProblemId::Ship001, ProblemId::Shipsec5]
    };

    let mut rows = Vec::new();
    let mut ok = true;
    let mut largest_speedup = 0.0;
    let mut trace_overhead = 0.0;
    let mut trace_events = 0u64;
    println!();
    println!("sequential LDLᵀ, scale {sc}, best of {reps}");
    println!("{:<10} {:>8} {:>10} {:>10} {:>9} {:>9} {:>8}", "Name", "n", "ref s", "packed s", "ref GF/s", "pk GF/s", "speedup");
    for id in ids {
        let prep = prepare(id, sc, &scotch_ordering());
        let sym = &prep.analysis.symbol;
        let ap = prep.matrix.permuted(&prep.analysis.perm);
        let opc = prep.analysis.scalar_opc;

        let (t_ref, ck_ref) = {
            let _mode = KernelMode::Reference.scoped();
            time_factorize(sym, &ap, reps)
        };
        let (t_pack, ck_pack) = time_factorize(sym, &ap, reps);

        let speedup = t_ref / t_pack;
        let rel = (ck_ref - ck_pack).abs() / ck_ref.abs().max(1.0);
        if rel > CHECKSUM_RTOL {
            ok = false;
            eprintln!("{}: checksum divergence {rel:.3e} (ref {ck_ref}, packed {ck_pack})", id.name());
        }
        if id == ProblemId::Shipsec5 {
            largest_speedup = speedup;
            // Tracing-overhead gate: paired untraced/traced reps of the
            // same packed factorization (drift-free comparison). More reps
            // than the headline timing — this ratio is the gate.
            let (ov, ev) = measure_trace_overhead(sym, &ap, reps.max(5));
            trace_overhead = ov;
            trace_events = ev;
        }
        println!(
            "{:<10} {:>8} {:>10.3} {:>10.3} {:>9.2} {:>9.2} {:>7.2}x",
            id.name(), ap.n(), t_ref, t_pack, gflops(opc, t_ref), gflops(opc, t_pack), speedup
        );
        rows.push(obj([
            ("name", Json::Str(id.name().into())),
            ("n", Json::Num(ap.n() as f64)),
            ("opc", Json::Num(opc)),
            ("ref_seconds", Json::Num(t_ref)),
            ("packed_seconds", Json::Num(t_pack)),
            ("ref_gflops", Json::Num(gflops(opc, t_ref))),
            ("packed_gflops", Json::Num(gflops(opc, t_pack))),
            ("speedup", Json::Num(speedup)),
            ("checksum_ref", Json::Num(ck_ref)),
            ("checksum_packed", Json::Num(ck_pack)),
            ("checksum_rel_err", Json::Num(rel)),
        ]));
    }
    println!();
    let verdict = if largest_speedup >= TARGET_SPEEDUP { "MET" } else { "NOT MET" };
    println!("acceptance (SHIPSEC5 ≥ {TARGET_SPEEDUP}x): {largest_speedup:.2}x — {verdict}");
    let trace_ok = trace_overhead < TRACE_OVERHEAD_LIMIT;
    println!(
        "tracing overhead (SHIPSEC5, {} events, < {:.0}%): {:+.2}% — {}",
        trace_events,
        TRACE_OVERHEAD_LIMIT * 100.0,
        trace_overhead * 100.0,
        if trace_ok { "MET" } else { "NOT MET" }
    );
    let report = obj([
        ("bench", Json::Str("sequential LDLt, packed vs reference kernels".into())),
        ("mode", Json::Str(if quick { "quick" } else { "full" }.into())),
        ("scale", Json::Num(sc)),
        ("reps", Json::Num(reps as f64)),
        ("problems", Json::Arr(rows)),
        ("shipsec5_speedup", Json::Num(largest_speedup)),
        ("target_speedup", Json::Num(TARGET_SPEEDUP)),
        ("tracing_overhead_shipsec5", Json::Num(trace_overhead)),
        ("tracing_overhead_limit", Json::Num(TRACE_OVERHEAD_LIMIT)),
        ("tracing_events_shipsec5", Json::Num(trace_events as f64)),
        ("tracing_overhead_ok", Json::Bool(trace_ok)),
        ("checksums_ok", Json::Bool(ok)),
    ]);
    (report, ok)
}
