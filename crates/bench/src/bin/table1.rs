//! Regenerates **Table 1** of the paper: description of the test problems.
//!
//! Columns: problem name, matrix order, `NNZ_A` (off-diagonal terms of the
//! triangular part of `A`), then `NNZ_L` and `OPC` under the Scotch-like
//! ordering (ND + halo minimum degree) and under the MeTiS-like ordering
//! (ND + plain minimum degree), all from scalar column symbolic
//! factorization exactly as in the paper.
//!
//! `PASTIX_SCALE` (default 0.05) sizes the synthetic analogs relative to
//! the original matrices; the absolute values therefore differ from the
//! paper's, but the *relationships* — which problems are fill-heavy, how
//! the two orderings compare — are the reproduced signal.

use pastix_bench::{metis_ordering, prepare, problems, scale, sci};

fn main() {
    let scale = scale();
    println!("Table 1 — test problem description (synthetic analogs, scale {scale})");
    println!(
        "{:<10} {:>9} {:>12} | {:>12} {:>12} | {:>12} {:>12}",
        "Name", "Columns", "NNZ_A", "NNZ_L(Sc)", "OPC(Sc)", "NNZ_L(Me)", "OPC(Me)"
    );
    for id in problems() {
        let sc = prepare(id, scale, &pastix_bench::scotch_ordering());
        let me = prepare(id, scale, &metis_ordering());
        println!(
            "{:<10} {:>9} {:>12} | {:>12} {:>12} | {:>12} {:>12}",
            id.name(),
            sc.matrix.n(),
            sc.matrix.nnz_offdiag(),
            sc.analysis.scalar_nnz_offdiag,
            sci(sc.analysis.scalar_opc),
            me.analysis.scalar_nnz_offdiag,
            sci(me.analysis.scalar_opc),
        );
    }
    println!();
    println!(
        "(paper columns at scale 1.0 for reference: {})",
        pastix_graph::ProblemId::ALL
            .iter()
            .map(|p| format!("{}={}", p.name(), p.paper_columns()))
            .collect::<Vec<_>>()
            .join(" ")
    );
}
