//! Factorization-as-a-service benchmark: the serving layer under an
//! open-loop arrival process.
//!
//! Four segments, all on the Shipsec5 analog:
//!
//! 1. **Agreement + batching throughput** (threads backend): a k=8
//!    multi-RHS panel solve must agree entrywise with 8 independent
//!    single-RHS solves (gated, ≤ 1e-7 relative) and complete at least
//!    2× faster than serving the same 8 requests one at a time (gated).
//! 2. **Open-loop serving**: deterministic arrivals against a virtual
//!    clock; reports solves/sec and p50/p99 request latency out of the
//!    session's metrics histograms.
//! 3. **Cache behavior**: three distinct matrices through a
//!    capacity-2 session; reports the hit rate and eviction count.
//! 4. **Scheduled-solve reconciliation** (sim backend, logical clocks):
//!    the traced panel solve must reconcile ≥ 95% against the level-set
//!    solve schedule (gated); a chaos `StarveRank` run feeds the
//!    watchdog (thresholds from `PASTIX_WATCHDOG_GAP` /
//!    `PASTIX_WATCHDOG_BACKLOG`) so stalled serving ranks are named.
//!
//! Outputs `BENCH_serve.json` at the repo root and the serve trace
//! reconciliation report at `target/serve_trace.json` (CI artifacts).
//! `--quick` shrinks the problem for CI.

use pastix_bench::{prepare, scale, scotch_ordering};
use pastix_graph::{ProblemId, SymCsc};
use pastix_json::{obj, Json};
use pastix_runtime::sim::{FaultPlan, SchedPolicy};
use pastix_runtime::Backend;
use pastix_sched::SchedOptions;
use pastix_serve::{unpack_completions, RequestQueue, SessionOptions, SolverSession};
use pastix_solver::SolverConfig;
use pastix_trace::report::build_solve_report;
use pastix_trace::watchdog::{analyze as watchdog_analyze, WatchdogOptions};
use pastix_trace::TraceOptions;
use std::time::Instant;

const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
const TRACE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/serve_trace.json");

/// Agreement gate: batched vs single-RHS entrywise relative error.
const AGREE_TOL: f64 = 1e-7;
/// Throughput gate: batched k=8 must beat one-at-a-time by this factor.
const SPEEDUP_MIN: f64 = 2.0;
/// Reconciliation gate for the scheduled solve trace.
const RECONCILE_MIN: f64 = 0.95;
/// Panel width of the gated throughput comparison.
const K: usize = 8;

fn session_opts(procs: usize, block: usize, solver: SolverConfig) -> SessionOptions {
    SessionOptions {
        procs,
        max_panel: K,
        sched: SchedOptions { block_size: block, ..Default::default() },
        solver,
        ..Default::default()
    }
}

/// Deterministic request stream: RHS r of order n.
fn request_rhs(a: &SymCsc<f64>, r: usize) -> Vec<f64> {
    let n = a.n();
    let xe: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 7 + r * 13) % 17) as f64 * 0.125).collect();
    pastix_graph::rhs_for_solution(a, &xe)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = if quick { "quick" } else { "full" };
    println!("bench_serve ({mode}) — factorization-as-a-service on Shipsec5");

    let sc = if quick { 0.02 } else { scale() };
    let procs = 4;
    let block = if quick { 16 } else { 32 };
    let prep = prepare(ProblemId::Shipsec5, sc, &scotch_ordering());
    let a = prep.matrix.clone();
    let n = a.n();
    println!("problem {} n={n} procs={procs}", prep.id.name());

    // ---- segment 1: agreement + batching throughput (threads) ----
    let mut session = SolverSession::<f64>::new(session_opts(procs, block, SolverConfig::default()));
    session.get_or_factorize(&a).expect("factorization failed");
    let rhs: Vec<Vec<f64>> = (0..K).map(|r| request_rhs(&a, r)).collect();
    let mut panel = vec![0.0f64; n * K];
    for (r, b) in rhs.iter().enumerate() {
        panel[r * n..(r + 1) * n].copy_from_slice(b);
    }

    // Warm both paths once, then time best-of-3.
    let singles: Vec<Vec<f64>> =
        rhs.iter().map(|b| session.solve(&a, b).expect("single solve")).collect();
    let (batched, _) = session.solve_panel(&a, &panel, K).expect("panel solve");
    let mut max_rel = 0.0f64;
    for (r, x1) in singles.iter().enumerate() {
        for (u, v) in batched[r * n..(r + 1) * n].iter().zip(x1) {
            let rel = (u - v).abs() / v.abs().max(1.0);
            max_rel = max_rel.max(rel);
        }
    }
    let resid = (0..K)
        .map(|r| a.residual_norm(&batched[r * n..(r + 1) * n], &rhs[r]))
        .fold(0.0f64, f64::max);
    let agree_ok = max_rel <= AGREE_TOL && resid < 1e-9;
    println!(
        "agreement: batched k={K} vs singles max rel err {max_rel:.2e}, worst residual {resid:.2e} — {}",
        if agree_ok { "MET" } else { "NOT MET" }
    );

    let time_best = |mut f: Box<dyn FnMut() + '_>| -> u64 {
        let mut best = u64::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_nanos() as u64);
        }
        best
    };
    let one_at_a_time_ns = {
        let s = &mut session;
        let a = &a;
        let rhs = &rhs;
        time_best(Box::new(move || {
            for b in rhs {
                let _ = s.solve(a, b).expect("single solve");
            }
        }))
    };
    let batched_ns = {
        let s = &mut session;
        let a = &a;
        let panel = &panel;
        time_best(Box::new(move || {
            let _ = s.solve_panel(a, panel, K).expect("panel solve");
        }))
    };
    let speedup = one_at_a_time_ns as f64 / batched_ns.max(1) as f64;
    let speedup_ok = speedup >= SPEEDUP_MIN;
    println!(
        "throughput: {K} singles {:.3} ms vs one k={K} panel {:.3} ms — batched {speedup:.2}x ({})",
        one_at_a_time_ns as f64 / 1e6,
        batched_ns as f64 / 1e6,
        if speedup_ok { "MET" } else { "NOT MET" }
    );

    // ---- segment 2: open-loop serving against a virtual clock ----
    let n_requests = if quick { 48 } else { 256 };
    // Deterministic arrivals: mean spacing well below the batched solve
    // time, so the queue actually coalesces.
    let mean_gap_ns = (batched_ns / K as u64 / 2).max(1);
    let arrivals: Vec<u64> = (0..n_requests)
        .scan(0u64, |t, i| {
            *t += mean_gap_ns * ((i * 31 + 7) % 23 + 12) as u64 / 23;
            Some(*t)
        })
        .collect();
    let mut q = RequestQueue::new();
    let mut now = 0u64;
    let mut next = 0usize;
    let mut served = 0usize;
    let mut batches = 0usize;
    let t_serve0 = Instant::now();
    while next < arrivals.len() || !q.is_empty() {
        if q.is_empty() {
            now = now.max(arrivals[next]);
        }
        while next < arrivals.len() && arrivals[next] <= now {
            q.submit(request_rhs(&a, next), arrivals[next]);
            next += 1;
        }
        let batch = q.take_batch(session.options().max_panel);
        if batch.is_empty() {
            continue;
        }
        let nrhs = batch.len();
        let bp = pastix_serve::pack_panel(&batch, n);
        let t0 = Instant::now();
        let (x, _) = session.solve_panel(&a, &bp, nrhs).expect("panel solve");
        now += t0.elapsed().as_nanos() as u64;
        let done = unpack_completions(&batch, &x, n, now);
        let m = session.metrics();
        m.add_counter("serve.requests", nrhs as u64);
        m.add_counter("serve.batches", 1);
        m.observe("serve.batch_width", nrhs as u64);
        for c in &done {
            m.observe("serve.latency_ns", c.latency_ns);
        }
        served += done.len();
        batches += 1;
    }
    let wall_serving_ns = t_serve0.elapsed().as_nanos().max(1) as u64;
    let virtual_span_s = now as f64 / 1e9;
    let solves_per_sec = served as f64 / virtual_span_s.max(1e-12);
    let lat = session.metrics().histogram("serve.latency_ns").expect("latency histogram");
    let (p50, p99) = (lat.quantile(0.5), lat.quantile(0.99));
    let mean_width = session.metrics().histogram("serve.batch_width").map(|h| h.mean()).unwrap_or(0.0);
    println!(
        "open loop: {served} requests in {batches} batches (mean width {mean_width:.2}) — {solves_per_sec:.1} solves/s, latency p50 {:.3} ms p99 {:.3} ms (virtual clock; wall {:.0} ms)",
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
        wall_serving_ns as f64 / 1e6,
    );

    // ---- segment 3: cache behavior across matrices ----
    let mut cache_session =
        SolverSession::<f64>::new(SessionOptions { capacity: 2, ..session_opts(procs, block, SolverConfig::default()) });
    // Three distinct fingerprints: the serving matrix plus two numeric
    // variants (same structure, different values — distinct factors).
    let variant = |shift: f64| {
        let mut m = a.clone();
        m.make_diag_dominant(shift);
        m
    };
    // (`prepare` already shifts by 1.0, so 1.0 would reproduce `a` exactly
    // — the fingerprint would correctly coalesce them into one entry.)
    let (m1, m2, m3) = (a.clone(), variant(0.5), variant(1.5));
    for m in [&m1, &m2, &m1, &m2, &m3, &m1] {
        let b = request_rhs(m, 0);
        let _ = cache_session.solve(m, &b).expect("cache segment solve");
    }
    let cm = cache_session.metrics();
    let (hits, misses, evictions) =
        (cm.counter("serve.cache.hits"), cm.counter("serve.cache.misses"), cm.counter("serve.cache.evictions"));
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    println!(
        "cache: {hits} hits / {misses} misses (rate {:.0}%), {evictions} evictions, resident {} entries / {:.1} MiB",
        hit_rate * 100.0,
        cache_session.len(),
        cache_session.resident_bytes() as f64 / (1024.0 * 1024.0),
    );

    // ---- segment 4: scheduled solve reconciliation + watchdog (sim) ----
    let mut topts = TraceOptions::deterministic();
    topts.sample_every = 1;
    let sim_cfg = SolverConfig::new()
        .with_backend(Backend::Sim(FaultPlan::builder(1).build()))
        .with_trace(topts);
    let mut sim_session = SolverSession::<f64>::new(session_opts(procs, block, sim_cfg));
    let cached = sim_session.get_or_factorize(&a).expect("sim factorization");
    let (_, log) = sim_session.solve_panel(&a, &panel, K).expect("sim panel solve");
    let report = build_solve_report(&cached.ssched, &log);
    println!("{}", report.render());
    let reconcile_ok = report.reconciliation >= RECONCILE_MIN;
    println!(
        "reconciliation gate (≥ {:.0}%): {}",
        RECONCILE_MIN * 100.0,
        if reconcile_ok { "MET" } else { "NOT MET" }
    );

    // Chaos serving run: starve a rank, let the watchdog name it. The
    // solve DAG's tasks are far finer-grained than factorization panels,
    // so the library defaults (tuned on factorization chaos runs) are too
    // coarse here: a starved rank shows up as mailbox backlog, not as a
    // progress gap — downstream ranks blocked on its output post the
    // larger gaps. This is exactly the "unusual problem shape" case the
    // watchdog docs route through the env knobs, so exercise that path.
    let chaos_cfg = SolverConfig::new()
        .with_backend(Backend::Sim(
            FaultPlan::builder(7).policy(SchedPolicy::StarveRank(1)).build(),
        ))
        .with_trace(topts);
    let mut chaos_session = SolverSession::<f64>::new(session_opts(procs, block, chaos_cfg));
    chaos_session.get_or_factorize(&a).expect("chaos factorization");
    let (_, chaos_log) = chaos_session.solve_panel(&a, &panel, K).expect("chaos panel solve");
    std::env::set_var("PASTIX_WATCHDOG_BACKLOG", "8,0.2");
    let wd = watchdog_analyze(&chaos_log, &WatchdogOptions::from_env());
    std::env::remove_var("PASTIX_WATCHDOG_BACKLOG");
    print!("{}", wd.render());
    let stalled = wd.stalled_ranks();
    println!(
        "watchdog (StarveRank(1), PASTIX_WATCHDOG_BACKLOG=8,0.2): stalled ranks {:?}",
        stalled
    );

    // ---- artifacts ----
    let j = obj([
        ("problem", Json::Str(prep.id.name().to_string())),
        ("n", Json::Num(n as f64)),
        ("procs", Json::Num(procs as f64)),
        ("panel_width", Json::Num(K as f64)),
        ("agreement_max_rel_err", Json::Num(max_rel)),
        ("agreement_worst_residual", Json::Num(resid)),
        ("one_at_a_time_ns", Json::Num(one_at_a_time_ns as f64)),
        ("batched_panel_ns", Json::Num(batched_ns as f64)),
        ("batched_speedup", Json::Num(speedup)),
        ("open_loop_requests", Json::Num(served as f64)),
        ("open_loop_batches", Json::Num(batches as f64)),
        ("open_loop_mean_batch_width", Json::Num(mean_width)),
        ("solves_per_sec", Json::Num(solves_per_sec)),
        ("latency_p50_ns", Json::Num(p50 as f64)),
        ("latency_p99_ns", Json::Num(p99 as f64)),
        ("cache_hits", Json::Num(hits as f64)),
        ("cache_misses", Json::Num(misses as f64)),
        ("cache_evictions", Json::Num(evictions as f64)),
        ("cache_hit_rate", Json::Num(hit_rate)),
        ("solve_reconciliation", Json::Num(report.reconciliation)),
        ("solve_trace_fingerprint", Json::Str(format!("{:#018x}", log.fingerprint()))),
        (
            "watchdog_stalled_ranks",
            Json::Arr(stalled.iter().map(|&r| Json::Num(r as f64)).collect()),
        ),
    ]);
    std::fs::write(OUT_PATH, j.pretty()).expect("write BENCH_serve.json");
    println!("wrote {OUT_PATH}");
    std::fs::write(TRACE_PATH, report.to_json().pretty()).expect("write serve_trace.json");
    println!("wrote {TRACE_PATH}");

    if !(agree_ok && speedup_ok && reconcile_ok) {
        eprintln!("FAIL: serving gates not met (agreement {agree_ok}, speedup {speedup_ok}, reconciliation {reconcile_ok})");
        std::process::exit(1);
    }
}
