//! Factorization-as-a-service benchmark: the serving layer under an
//! open-loop arrival process, with its observability surface gated.
//!
//! Six segments, all on the Shipsec5 analog:
//!
//! 1. **Agreement + batching throughput** (threads backend): a k=8
//!    multi-RHS panel solve must agree entrywise with 8 independent
//!    single-RHS solves (gated, ≤ 1e-7 relative) and complete at least
//!    2× faster than serving the same 8 requests one at a time (gated).
//! 2. **Open-loop serving**: deterministic arrivals against a virtual
//!    clock through `RequestQueue::serve_batch`; reports solves/sec and
//!    p50/p99 latency for each stage (end-to-end, queue wait, solve) out
//!    of the session's metrics histograms.
//! 3. **Cache behavior**: three distinct matrices through a
//!    capacity-2 session; reports the hit rate and eviction count.
//! 4. **Observability overhead** (gated): the same batch workload with
//!    the flight recorder disabled + an untraced queue vs. both on must
//!    cost < 2% extra (paired best-of timing).
//! 5. **Scheduled-solve reconciliation** (sim backend, logical clocks):
//!    the traced panel solve must reconcile ≥ 95% against the level-set
//!    solve schedule (gated); a chaos `StarveRank` run served through a
//!    traced queue trips the in-queue watchdog
//!    (`PASTIX_WATCHDOG_BACKLOG=8,0.2`) and must leave a black-box dump
//!    naming the batch's tickets as in flight (gated).
//! 6. **Trace determinism** (gated): two identical traced serving runs
//!    on the sim backend must export byte-identical Chrome traces.
//!
//! Outputs `BENCH_serve.json` at the repo root and the serve trace
//! reconciliation report at `target/serve_trace.json` (CI artifacts).
//! `--quick` shrinks the problem for CI.

use pastix_bench::{prepare, scale, scotch_ordering};
use pastix_graph::{ProblemId, SymCsc};
use pastix_json::{obj, Json};
use pastix_runtime::sim::{FaultPlan, SchedPolicy};
use pastix_runtime::Backend;
use pastix_sched::SchedOptions;
use pastix_serve::{RequestQueue, SessionOptions, SolverSession};
use pastix_solver::SolverConfig;
use pastix_trace::export::chrome_trace;
use pastix_trace::flight;
use pastix_trace::report::build_solve_report;
use pastix_trace::watchdog::{analyze as watchdog_analyze, WatchdogOptions};
use pastix_trace::TraceOptions;
use std::path::Path;
use std::time::Instant;

const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
const TRACE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/serve_trace.json");
const BLACKBOX_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target");

/// Agreement gate: batched vs single-RHS entrywise relative error.
const AGREE_TOL: f64 = 1e-7;
/// Throughput gate: batched k=8 must beat one-at-a-time by this factor.
const SPEEDUP_MIN: f64 = 2.0;
/// Reconciliation gate for the scheduled solve trace.
const RECONCILE_MIN: f64 = 0.95;
/// Observability gate: flight recorder + request tracing overhead.
const OVERHEAD_MAX: f64 = 0.02;
/// Panel width of the gated throughput comparison.
const K: usize = 8;

fn session_opts(procs: usize, block: usize, solver: SolverConfig) -> SessionOptions {
    SessionOptions {
        procs,
        max_panel: K,
        sched: SchedOptions { block_size: block, ..Default::default() },
        solver,
        ..Default::default()
    }
}

/// Deterministic request stream: RHS r of order n.
fn request_rhs(a: &SymCsc<f64>, r: usize) -> Vec<f64> {
    let n = a.n();
    let xe: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 7 + r * 13) % 17) as f64 * 0.125).collect();
    pastix_graph::rhs_for_solution(a, &xe)
}

/// Black-box dump files currently in the target directory.
fn blackbox_files() -> Vec<String> {
    std::fs::read_dir(BLACKBOX_DIR)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter_map(|e| e.file_name().into_string().ok())
                .filter(|n| n.starts_with("blackbox-") && n.ends_with(".json"))
                .collect()
        })
        .unwrap_or_default()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = if quick { "quick" } else { "full" };
    println!("bench_serve ({mode}) — factorization-as-a-service on Shipsec5");

    let sc = if quick { 0.02 } else { scale() };
    let procs = 4;
    let block = if quick { 16 } else { 32 };
    let prep = prepare(ProblemId::Shipsec5, sc, &scotch_ordering());
    let a = prep.matrix.clone();
    let n = a.n();
    println!("problem {} n={n} procs={procs}", prep.id.name());

    // ---- segment 1: agreement + batching throughput (threads) ----
    let mut session = SolverSession::<f64>::new(session_opts(procs, block, SolverConfig::default()));
    session.get_or_factorize(&a).expect("factorization failed");
    let rhs: Vec<Vec<f64>> = (0..K).map(|r| request_rhs(&a, r)).collect();
    let mut panel = vec![0.0f64; n * K];
    for (r, b) in rhs.iter().enumerate() {
        panel[r * n..(r + 1) * n].copy_from_slice(b);
    }

    // Warm both paths once, then time best-of-3.
    let singles: Vec<Vec<f64>> =
        rhs.iter().map(|b| session.solve(&a, b).expect("single solve")).collect();
    let (batched, _) = session.solve_panel(&a, &panel, K).expect("panel solve");
    let mut max_rel = 0.0f64;
    for (r, x1) in singles.iter().enumerate() {
        for (u, v) in batched[r * n..(r + 1) * n].iter().zip(x1) {
            let rel = (u - v).abs() / v.abs().max(1.0);
            max_rel = max_rel.max(rel);
        }
    }
    let resid = (0..K)
        .map(|r| a.residual_norm(&batched[r * n..(r + 1) * n], &rhs[r]))
        .fold(0.0f64, f64::max);
    let agree_ok = max_rel <= AGREE_TOL && resid < 1e-9;
    println!(
        "agreement: batched k={K} vs singles max rel err {max_rel:.2e}, worst residual {resid:.2e} — {}",
        if agree_ok { "MET" } else { "NOT MET" }
    );

    let time_best = |mut f: Box<dyn FnMut() + '_>| -> u64 {
        let mut best = u64::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_nanos() as u64);
        }
        best
    };
    let one_at_a_time_ns = {
        let s = &mut session;
        let a = &a;
        let rhs = &rhs;
        time_best(Box::new(move || {
            for b in rhs {
                let _ = s.solve(a, b).expect("single solve");
            }
        }))
    };
    let batched_ns = {
        let s = &mut session;
        let a = &a;
        let panel = &panel;
        time_best(Box::new(move || {
            let _ = s.solve_panel(a, panel, K).expect("panel solve");
        }))
    };
    let speedup = one_at_a_time_ns as f64 / batched_ns.max(1) as f64;
    let speedup_ok = speedup >= SPEEDUP_MIN;
    println!(
        "throughput: {K} singles {:.3} ms vs one k={K} panel {:.3} ms — batched {speedup:.2}x ({})",
        one_at_a_time_ns as f64 / 1e6,
        batched_ns as f64 / 1e6,
        if speedup_ok { "MET" } else { "NOT MET" }
    );

    // ---- segment 2: open-loop serving against a virtual clock ----
    let n_requests = if quick { 48 } else { 256 };
    // Deterministic arrivals: mean spacing well below the batched solve
    // time, so the queue actually coalesces.
    let mean_gap_ns = (batched_ns / K as u64 / 2).max(1);
    let arrivals: Vec<u64> = (0..n_requests)
        .scan(0u64, |t, i| {
            *t += mean_gap_ns * ((i * 31 + 7) % 23 + 12) as u64 / 23;
            Some(*t)
        })
        .collect();
    let mut q = RequestQueue::new();
    let mut now = 0u64;
    let mut next = 0usize;
    let mut served = 0usize;
    let mut batches = 0usize;
    let t_serve0 = Instant::now();
    while next < arrivals.len() || !q.is_empty() {
        if q.is_empty() {
            now = now.max(arrivals[next]);
        }
        while next < arrivals.len() && arrivals[next] <= now {
            q.submit(request_rhs(&a, next), arrivals[next]);
            next += 1;
        }
        let width = q.len().min(session.options().max_panel);
        if width == 0 {
            continue;
        }
        // Virtual solve cost: the measured k=K panel time, pro-rated to
        // this batch's width. serve_batch splits each ticket's latency at
        // the dispatch timestamp into queue-wait and solve.
        let cost = (batched_ns * width as u64 / K as u64).max(1);
        let done = q.serve_batch(&mut session, &a, now, now + cost).expect("serve batch");
        now += cost;
        served += done.len();
        batches += 1;
    }
    let wall_serving_ns = t_serve0.elapsed().as_nanos().max(1) as u64;
    let virtual_span_s = now as f64 / 1e9;
    let solves_per_sec = served as f64 / virtual_span_s.max(1e-12);
    let m = session.metrics();
    let lat = m.histogram("serve.latency_ns").expect("latency histogram");
    let qw = m.histogram("serve.queue_wait_ns").expect("queue-wait histogram");
    let sv = m.histogram("serve.solve_ns").expect("solve histogram");
    let (p50, p99) = (lat.quantile(0.5), lat.quantile(0.99));
    let (qw50, qw99) = (qw.quantile(0.5), qw.quantile(0.99));
    let (sv50, sv99) = (sv.quantile(0.5), sv.quantile(0.99));
    let mean_width = m.histogram("serve.batch_width").map(|h| h.mean()).unwrap_or(0.0);
    let (ol_hits, ol_misses) = (m.counter("serve.cache.hits"), m.counter("serve.cache.misses"));
    let ol_hit_rate = ol_hits as f64 / (ol_hits + ol_misses).max(1) as f64;
    println!(
        "open loop: {served} requests in {batches} batches (mean width {mean_width:.2}) — {solves_per_sec:.1} solves/s (virtual clock; wall {:.0} ms)",
        wall_serving_ns as f64 / 1e6,
    );
    println!(
        "  stage latency (ms): end-to-end p50 {:.3} p99 {:.3} | queue-wait p50 {:.3} p99 {:.3} | solve p50 {:.3} p99 {:.3} | cache hit rate {:.0}%",
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
        qw50 as f64 / 1e6,
        qw99 as f64 / 1e6,
        sv50 as f64 / 1e6,
        sv99 as f64 / 1e6,
        ol_hit_rate * 100.0,
    );

    // ---- segment 3: cache behavior across matrices ----
    let mut cache_session =
        SolverSession::<f64>::new(SessionOptions { capacity: 2, ..session_opts(procs, block, SolverConfig::default()) });
    // Three distinct fingerprints: the serving matrix plus two numeric
    // variants (same structure, different values — distinct factors).
    let variant = |shift: f64| {
        let mut m = a.clone();
        m.make_diag_dominant(shift);
        m
    };
    // (`prepare` already shifts by 1.0, so 1.0 would reproduce `a` exactly
    // — the fingerprint would correctly coalesce them into one entry.)
    let (m1, m2, m3) = (a.clone(), variant(0.5), variant(1.5));
    for m in [&m1, &m2, &m1, &m2, &m3, &m1] {
        let b = request_rhs(m, 0);
        let _ = cache_session.solve(m, &b).expect("cache segment solve");
    }
    let cm = cache_session.metrics();
    let (hits, misses, evictions) =
        (cm.counter("serve.cache.hits"), cm.counter("serve.cache.misses"), cm.counter("serve.cache.evictions"));
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    println!(
        "cache: {hits} hits / {misses} misses (rate {:.0}%), {evictions} evictions, resident {} entries / {:.1} MiB",
        hit_rate * 100.0,
        cache_session.len(),
        cache_session.resident_bytes() as f64 / (1024.0 * 1024.0),
    );

    // ---- segment 4: observability overhead gate ----
    // The same warm-cache batch workload, paired: flight recorder off +
    // untraced queue vs. both on. Every rep times both variants back to
    // back; best-of filters scheduler noise. The gate carries a small
    // absolute floor so quick-mode runs (sub-ms solves) don't flake on
    // timer granularity.
    let reps = if quick { 5 } else { 7 };
    let obs_requests = 2 * K;
    let mut base_ns = u64::MAX;
    let mut inst_ns = u64::MAX;
    for _ in 0..reps {
        for traced in [false, true] {
            flight::set_enabled(traced);
            let mut oq = if traced { RequestQueue::traced() } else { RequestQueue::new() };
            let t0 = Instant::now();
            for r in 0..obs_requests {
                oq.submit(request_rhs(&a, r), r as u64 * 1_000);
            }
            let mut t = obs_requests as u64 * 1_000;
            while !oq.is_empty() {
                oq.serve_batch(&mut session, &a, t, t + 1_000).expect("overhead serve");
                t += 2_000;
            }
            let ns = t0.elapsed().as_nanos() as u64;
            if traced {
                inst_ns = inst_ns.min(ns);
            } else {
                base_ns = base_ns.min(ns);
            }
        }
    }
    flight::set_enabled(true);
    let overhead = inst_ns as f64 / base_ns.max(1) as f64 - 1.0;
    let overhead_ok =
        inst_ns <= base_ns + (base_ns as f64 * OVERHEAD_MAX) as u64 + 10_000;
    println!(
        "observability overhead: baseline {:.3} ms vs flight+tracing {:.3} ms — {:+.2}% (gate < {:.0}%): {}",
        base_ns as f64 / 1e6,
        inst_ns as f64 / 1e6,
        overhead * 100.0,
        OVERHEAD_MAX * 100.0,
        if overhead_ok { "MET" } else { "NOT MET" }
    );

    // ---- segment 5: scheduled solve reconciliation + watchdog (sim) ----
    let mut topts = TraceOptions::deterministic();
    topts.sample_every = 1;
    let sim_cfg = SolverConfig::new()
        .with_backend(Backend::Sim(FaultPlan::builder(1).build()))
        .with_trace(topts);
    let mut sim_session = SolverSession::<f64>::new(session_opts(procs, block, sim_cfg));
    let cached = sim_session.get_or_factorize(&a).expect("sim factorization");
    let (_, log) = sim_session.solve_panel(&a, &panel, K).expect("sim panel solve");
    let report = build_solve_report(&cached.ssched, &log);
    println!("{}", report.render());
    let reconcile_ok = report.reconciliation >= RECONCILE_MIN;
    println!(
        "reconciliation gate (≥ {:.0}%): {}",
        RECONCILE_MIN * 100.0,
        if reconcile_ok { "MET" } else { "NOT MET" }
    );

    // Chaos serving run: starve a rank, let the watchdog name it. The
    // solve DAG's tasks are far finer-grained than factorization panels,
    // so the library defaults (tuned on factorization chaos runs) are too
    // coarse here: a starved rank shows up as mailbox backlog, not as a
    // progress gap — downstream ranks blocked on its output post the
    // larger gaps. This is exactly the "unusual problem shape" case the
    // watchdog docs route through the env knobs, so exercise that path.
    let chaos_cfg = SolverConfig::new()
        .with_backend(Backend::Sim(
            FaultPlan::builder(7).policy(SchedPolicy::StarveRank(1)).build(),
        ))
        .with_trace(topts);
    let mut chaos_session = SolverSession::<f64>::new(session_opts(procs, block, chaos_cfg));
    chaos_session.get_or_factorize(&a).expect("chaos factorization");
    let (_, chaos_log) = chaos_session.solve_panel(&a, &panel, K).expect("chaos panel solve");
    std::env::set_var("PASTIX_WATCHDOG_BACKLOG", "8,0.2");
    let wd = watchdog_analyze(&chaos_log, &WatchdogOptions::from_env());
    print!("{}", wd.render());
    let stalled = wd.stalled_ranks();
    println!(
        "watchdog (StarveRank(1), PASTIX_WATCHDOG_BACKLOG=8,0.2): stalled ranks {:?}",
        stalled
    );
    // Now the same chaos solve through a traced queue: serve_batch runs
    // the watchdog on the fresh solve trace before the batch's tickets
    // leave the flight ring, so a trip dumps a black box that names them
    // as in flight. The gap knob here is deliberately hair-trigger (any
    // progress gap flags) so the trip→dump plumbing is exercised
    // deterministically at every problem scale — the realistic
    // StarveRank detection is the report above.
    flight::set_blackbox_dir(Some(Path::new(BLACKBOX_DIR)));
    let before = blackbox_files();
    std::env::set_var("PASTIX_WATCHDOG_GAP", "1,0.001");
    let mut cq = RequestQueue::traced();
    for (r, b) in rhs.iter().enumerate() {
        cq.submit(b.clone(), r as u64 * 100);
    }
    cq.serve_batch(&mut chaos_session, &a, 1_000, 2_000).expect("chaos serve");
    std::env::remove_var("PASTIX_WATCHDOG_GAP");
    std::env::remove_var("PASTIX_WATCHDOG_BACKLOG");
    let trips = chaos_session.metrics().counter("serve.watchdog.trips");
    let new_dump = blackbox_files().into_iter().find(|f| !before.contains(f));
    let blackbox_ok = trips >= 1 && new_dump.is_some();
    println!(
        "flight recorder: {trips} watchdog trip(s), black box {} — {}",
        new_dump.as_deref().unwrap_or("MISSING"),
        if blackbox_ok { "MET" } else { "NOT MET" }
    );

    // ---- segment 6: trace determinism on the sim backend ----
    // Two identical traced serving runs (same seed, policy, request
    // stream, virtual timestamps) must export byte-identical Chrome
    // traces — the request spans ride the virtual clock and the solve
    // spans ride the sim backend's logical clocks.
    let traced_run = || -> String {
        let cfg = SolverConfig::new()
            .with_backend(Backend::Sim(FaultPlan::builder(1).build()))
            .with_trace(topts);
        let mut s = SolverSession::<f64>::new(session_opts(procs, block, cfg));
        let mut tq = RequestQueue::traced();
        for (r, b) in rhs.iter().enumerate() {
            tq.submit(b.clone(), r as u64 * 50);
        }
        tq.serve_batch(&mut s, &a, 500, 1_500).expect("traced serve");
        for (r, b) in rhs.iter().enumerate() {
            tq.submit(b.clone(), 2_000 + r as u64 * 50);
        }
        tq.serve_batch(&mut s, &a, 2_500, 3_500).expect("traced serve");
        chrome_trace(&tq.take_trace()).compact()
    };
    let (run1, run2) = (traced_run(), traced_run());
    let identical_ok = run1 == run2;
    println!(
        "trace determinism: two traced serving runs export {} bytes — {}",
        run1.len(),
        if identical_ok { "byte-identical: MET" } else { "DIVERGENT: NOT MET" }
    );

    // ---- artifacts ----
    let j = obj([
        ("problem", Json::Str(prep.id.name().to_string())),
        ("n", Json::Num(n as f64)),
        ("procs", Json::Num(procs as f64)),
        ("panel_width", Json::Num(K as f64)),
        ("agreement_max_rel_err", Json::Num(max_rel)),
        ("agreement_worst_residual", Json::Num(resid)),
        ("one_at_a_time_ns", Json::Num(one_at_a_time_ns as f64)),
        ("batched_panel_ns", Json::Num(batched_ns as f64)),
        ("batched_speedup", Json::Num(speedup)),
        ("open_loop_requests", Json::Num(served as f64)),
        ("open_loop_batches", Json::Num(batches as f64)),
        ("open_loop_mean_batch_width", Json::Num(mean_width)),
        ("open_loop_cache_hit_rate", Json::Num(ol_hit_rate)),
        ("solves_per_sec", Json::Num(solves_per_sec)),
        ("latency_p50_ns", Json::Num(p50 as f64)),
        ("latency_p99_ns", Json::Num(p99 as f64)),
        ("queue_wait_p50_ns", Json::Num(qw50 as f64)),
        ("queue_wait_p99_ns", Json::Num(qw99 as f64)),
        ("solve_p50_ns", Json::Num(sv50 as f64)),
        ("solve_p99_ns", Json::Num(sv99 as f64)),
        ("observability_overhead_frac", Json::Num(overhead)),
        ("cache_hits", Json::Num(hits as f64)),
        ("cache_misses", Json::Num(misses as f64)),
        ("cache_evictions", Json::Num(evictions as f64)),
        ("cache_hit_rate", Json::Num(hit_rate)),
        ("solve_reconciliation", Json::Num(report.reconciliation)),
        ("solve_trace_fingerprint", Json::Str(format!("{:#018x}", log.fingerprint()))),
        ("watchdog_trips", Json::Num(trips as f64)),
        ("trace_byte_identical", Json::Num(if identical_ok { 1.0 } else { 0.0 })),
        (
            "watchdog_stalled_ranks",
            Json::Arr(stalled.iter().map(|&r| Json::Num(r as f64)).collect()),
        ),
    ]);
    std::fs::write(OUT_PATH, j.pretty()).expect("write BENCH_serve.json");
    println!("wrote {OUT_PATH}");
    std::fs::write(TRACE_PATH, report.to_json().pretty()).expect("write serve_trace.json");
    println!("wrote {TRACE_PATH}");

    if !(agree_ok && speedup_ok && reconcile_ok && overhead_ok && blackbox_ok && identical_ok) {
        eprintln!(
            "FAIL: serving gates not met (agreement {agree_ok}, speedup {speedup_ok}, reconciliation {reconcile_ok}, overhead {overhead_ok}, blackbox {blackbox_ok}, trace determinism {identical_ok})"
        );
        std::process::exit(1);
    }
}
