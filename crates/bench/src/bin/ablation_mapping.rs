//! Ablation: the value of the paper's central device — **mapping by
//! simulation** — against a classical block-cyclic static mapping over the
//! same candidate sets, same task graph, same machine model.
//!
//! Both mappings produce valid schedules that could drive the solver; the
//! only difference is the policy: the greedy mapper simulates the parallel
//! factorization with the calibrated BLAS + network model and places each
//! task where it completes soonest, while the cyclic baseline deals tasks
//! round-robin, blind to costs and dependencies.

use pastix_bench::{prepare, problems, scale, schedule_for};
use pastix_machine::MachineModel;
use pastix_sched::{cyclic_schedule, validate_schedule, SchedOptions};

fn main() {
    let scale = scale();
    println!("Ablation — greedy mapping-by-simulation vs block-cyclic mapping (scale {scale})");
    println!(
        "{:<10} {:>4} {:>12} {:>12} {:>8}",
        "Problem", "P", "cyclic (s)", "greedy (s)", "gain"
    );
    for id in problems() {
        let prep = prepare(id, scale, &pastix_bench::scotch_ordering());
        for p in [4usize, 16, 64] {
            let opts = SchedOptions::default();
            let m = schedule_for(&prep, p, &opts);
            let machine = MachineModel::sp2(p);
            let cyc = cyclic_schedule(&m.graph, &machine);
            validate_schedule(&m.graph, &cyc, &machine).expect("cyclic schedule invalid");
            println!(
                "{:<10} {:>4} {:>12.4} {:>12.4} {:>7.2}x",
                id.name(),
                p,
                cyc.makespan,
                m.schedule.makespan,
                cyc.makespan / m.schedule.makespan.max(1e-12)
            );
        }
    }
    println!("\nExpected shape: the simulation-driven mapping wins, increasingly so with P.");
}
