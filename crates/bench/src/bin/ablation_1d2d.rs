//! Ablation **A1**: the paper's contribution (mixed 1D/2D distribution)
//! against the authors' own EuroPAR'99 baseline (1D everywhere).
//!
//! For each problem and processor count, prints the predicted makespan of
//! the static schedule under both strategies and the mixed-over-1D gain.
//! The expected shape: indistinguishable at small `P` (nothing goes 2D),
//! growing advantage for the mixed strategy as `P` reaches 16–64, where
//! the top separators otherwise serialize.

use pastix_bench::{prepare, problems, scale, schedule_for};
use pastix_sched::{DistStrategy, SchedOptions};

fn main() {
    let scale = scale();
    println!("Ablation A1 — mixed 1D/2D vs 1D-only static schedules (scale {scale})");
    println!(
        "{:<10} {:>5} {:>12} {:>12} {:>8}",
        "Problem", "P", "1D-only (s)", "mixed (s)", "gain"
    );
    for id in problems() {
        let prep = prepare(id, scale, &pastix_bench::scotch_ordering());
        for p in [4usize, 16, 64] {
            let mut only1d = SchedOptions::default();
            only1d.mapping.strategy = DistStrategy::Only1d;
            let t1 = schedule_for(&prep, p, &only1d).schedule.makespan;
            let mixed = SchedOptions::default();
            let t2 = schedule_for(&prep, p, &mixed).schedule.makespan;
            println!(
                "{:<10} {:>5} {:>12.3} {:>12.3} {:>7.2}x",
                id.name(),
                p,
                t1,
                t2,
                t1 / t2.max(1e-12)
            );
        }
    }
}
