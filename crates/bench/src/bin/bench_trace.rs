//! Trace-driven schedule validation and the closed calibration loop:
//! runs the parallel fan-in factorization on the deterministic simulation
//! backend with wall-clock tracing, joins the recorded trace against the
//! static schedule's predictions, feeds the measured per-task-kind rates
//! back into the machine model, and re-runs to show the calibrated
//! schedule prices its tasks at least as well as the uncalibrated one.
//!
//! Outputs:
//!
//! * `BENCH_trace.json` — the calibrated run's full report (per-rank
//!   compute/wait/idle split, critical-path pricing, top tasks, the
//!   headline `reconciliation` and `model_scale_ns_per_cost` keys the
//!   trend walker reads) plus the uncalibrated baseline report and both
//!   `prediction_fit` numbers side by side;
//! * `target/trace.json` — the uncalibrated run's timeline as Chrome
//!   trace-event JSON (open in Perfetto or `chrome://tracing`; uploaded
//!   as a CI artifact);
//! * an ASCII Gantt chart and human tables on stdout.
//!
//! The process exits non-zero if either run fails to **reconcile** (the
//! trace span must account for ≥ 95% of the wall time — anything less
//! means the tracer is losing events), or if calibration *worsens* the
//! prediction fit beyond timing noise: the second run's schedule is built
//! from costs scaled by the first run's measured per-class
//! `ns_per_cost`, persisted through the same target-dir dotfile
//! discipline as the blocking probe. `--quick` shrinks the problem for
//! CI.

use pastix_bench::{prepare, scale, scotch_ordering};
use pastix_graph::ProblemId;
use pastix_machine::{
    cache_dir, load_calibration_in, store_calibration_in, task_kind, MachineModel,
    TaskCalibration,
};
use pastix_runtime::sim::FaultPlan;
use pastix_runtime::Backend;
use pastix_sched::{map_and_schedule, SchedOptions};
use pastix_solver::{Plan, SolverConfig};
use pastix_trace::export::{chrome_trace_with, render_gantt};
use pastix_trace::report::{build_report, TraceReport};
use pastix_trace::TraceOptions;

const TRACE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
const TIMELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/trace.json");

/// Acceptance: the trace span must cover at least this fraction of the
/// wall time (and cannot exceed it — the span is measured inside it).
const RECONCILE_MIN: f64 = 0.95;

/// Acceptance: the calibrated run's prediction fit may trail the
/// uncalibrated one by at most this much (wall-clock timing noise); any
/// real regression means the feedback loop is mis-scaling task kinds.
const FIT_NOISE: f64 = 0.02;

struct Pass {
    report: TraceReport,
    timeline: pastix_json::Json,
    gantt: String,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = if quick { "quick" } else { "full" };
    println!("bench_trace ({mode}) — task trace vs static schedule, sim backend");

    let sc = if quick { 0.02 } else { scale() };
    let procs = 4;
    let prep = prepare(ProblemId::Shipsec5, sc, &scotch_ordering());
    let mut sopts = SchedOptions::default();
    sopts.block_size = if quick { 16 } else { 32 };
    let ap = prep.matrix.permuted(&prep.analysis.perm);

    let run_pass = |machine: &MachineModel| -> Pass {
        let mapping = map_and_schedule(&prep.analysis.symbol, machine, &sopts);
        println!(
            "problem {} n={} procs={procs} tasks={} digest={:#018x}",
            prep.id.name(),
            ap.n(),
            mapping.graph.n_tasks(),
            mapping.schedule.digest()
        );
        let cfg = SolverConfig::new()
            .with_backend(Backend::Sim(FaultPlan::builder(1).build()))
            .with_trace(TraceOptions::wall());
        let plan =
            Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
        let run = plan.factorize(&ap, &cfg).expect("factorization failed");
        Pass {
            report: build_report(&mapping.graph, &mapping.schedule, &run.trace),
            timeline: chrome_trace_with(&run.trace, &mapping.graph, &mapping.schedule),
            gantt: render_gantt(&run.trace, 72),
        }
    };

    // Pass 1: the raw BLAS model prices every task kind with factor 1.
    println!("\n== pass 1: uncalibrated ==");
    let uncal = run_pass(&MachineModel::sp2(procs));
    print!("{}", uncal.report.render_tables(15));
    print!("{}", uncal.gantt);

    // The timeline artifact comes from the uncalibrated pass: it is the
    // run an operator would be diagnosing when deciding to calibrate.
    std::fs::write(TIMELINE_PATH, uncal.timeline.compact()).expect("write trace.json");
    println!("wrote {TIMELINE_PATH} (open in Perfetto / chrome://tracing)");
    println!();

    // Close the loop: persist the measured per-class rates through the
    // machine-cache dotfile and reload them the way a fresh process would.
    let cs = &uncal.report.class_stats;
    let cal = TaskCalibration {
        ns_per_cost: [
            cs[task_kind::COMP1D].ns_per_cost(),
            cs[task_kind::FACTOR].ns_per_cost(),
            cs[task_kind::BDIV].ns_per_cost(),
            cs[task_kind::BMOD].ns_per_cost(),
        ],
    };
    let dir = cache_dir();
    store_calibration_in(&dir, &cal);
    let loaded = load_calibration_in(&dir).unwrap_or(cal);
    let rel = loaded.relative();
    println!(
        "calibration (dotfile under {}): relative factors comp1d={:.3} factor={:.3} bdiv={:.3} bmod={:.3}",
        dir.display(),
        rel[0],
        rel[1],
        rel[2],
        rel[3]
    );

    // Pass 2: same problem, schedule rebuilt from the calibrated model.
    println!("\n== pass 2: calibrated ==");
    let cal_pass = run_pass(&MachineModel::sp2(procs).with_task_calibration(loaded));
    print!("{}", cal_pass.report.render_tables(15));
    print!("{}", cal_pass.gantt);

    let fit0 = uncal.report.prediction_fit;
    let fit1 = cal_pass.report.prediction_fit;
    println!(
        "\nprediction fit: uncalibrated {:.2}% -> calibrated {:.2}% ({:+.2} pts)",
        fit0 * 100.0,
        fit1 * 100.0,
        (fit1 - fit0) * 100.0
    );

    // One file carries both runs; the calibrated report's headline keys
    // stay top-level for the bench_trend walker.
    let mut j = cal_pass.report.to_json(50);
    if let pastix_json::Json::Obj(pairs) = &mut j {
        pairs.push((
            "prediction_fit_uncalibrated".to_string(),
            pastix_json::Json::Num(fit0),
        ));
        pairs.push((
            "prediction_fit_calibrated".to_string(),
            pastix_json::Json::Num(fit1),
        ));
        pairs.push((
            "calibration_ns_per_cost".to_string(),
            pastix_json::Json::Arr(
                loaded.ns_per_cost.iter().map(|&r| pastix_json::Json::Num(r)).collect(),
            ),
        ));
        pairs.push(("uncalibrated".to_string(), uncal.report.to_json(25)));
    }
    std::fs::write(TRACE_PATH, j.pretty()).expect("write BENCH_trace.json");
    println!("wrote {TRACE_PATH}");

    let mut failed = false;
    for (name, rep) in [("uncalibrated", &uncal.report), ("calibrated", &cal_pass.report)] {
        let ok = rep.reconciliation >= RECONCILE_MIN && rep.reconciliation <= 1.0;
        println!(
            "reconciliation [{name}] (trace span / wall ≥ {:.0}%): {:.2}% — {}",
            RECONCILE_MIN * 100.0,
            rep.reconciliation * 100.0,
            if ok { "MET" } else { "NOT MET" }
        );
        failed |= !ok;
    }
    let fit_ok = fit1 + FIT_NOISE >= fit0;
    println!(
        "calibration gate (calibrated fit ≥ uncalibrated − {FIT_NOISE}): {}",
        if fit_ok { "MET" } else { "NOT MET" }
    );
    failed |= !fit_ok;
    if failed {
        eprintln!("FAIL: trace does not reconcile or calibration regressed the fit");
        std::process::exit(1);
    }
}
