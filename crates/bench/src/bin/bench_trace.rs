//! Trace-driven schedule validation: runs the parallel fan-in
//! factorization on the deterministic simulation backend with wall-clock
//! tracing, joins the recorded trace against the static schedule's
//! predictions, and writes the predicted-vs-measured report.
//!
//! Outputs:
//!
//! * `BENCH_trace.json` — the full [`TraceReport`] (per-rank
//!   compute/wait/idle split, critical-path pricing, top tasks by measured
//!   time, reconciliation ratio);
//! * human tables on stdout.
//!
//! The process exits non-zero if the trace fails to **reconcile**: the
//! trace's span (first-to-last event across all ranks, shared epoch) must
//! account for at least 95% of the run's wall time — anything less means
//! the tracer is losing events or the session windows do not cover the
//! run. `--quick` shrinks the problem for CI.

use pastix_bench::{prepare, scale, scotch_ordering};
use pastix_graph::ProblemId;
use pastix_machine::MachineModel;
use pastix_runtime::Backend;
use pastix_sched::{map_and_schedule, SchedOptions};
use pastix_solver::{factorize_parallel_with, SolverConfig};
use pastix_trace::report::build_report;
use pastix_trace::TraceOptions;
use pastix_runtime::sim::FaultPlan;

const TRACE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");

/// Acceptance: the trace span must cover at least this fraction of the
/// wall time (and cannot exceed it — the span is measured inside it).
const RECONCILE_MIN: f64 = 0.95;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = if quick { "quick" } else { "full" };
    println!("bench_trace ({mode}) — task trace vs static schedule, sim backend");

    let sc = if quick { 0.02 } else { scale() };
    let procs = 4;
    let prep = prepare(ProblemId::Shipsec5, sc, &scotch_ordering());
    let machine = MachineModel::sp2(procs);
    let mut sopts = SchedOptions::default();
    sopts.block_size = if quick { 16 } else { 32 };
    let mapping = map_and_schedule(&prep.analysis.symbol, &machine, &sopts);
    let ap = prep.matrix.permuted(&prep.analysis.perm);
    let sym = &mapping.graph.split.symbol;
    println!(
        "problem {} n={} procs={procs} tasks={} digest={:#018x}",
        prep.id.name(),
        ap.n(),
        mapping.graph.n_tasks(),
        mapping.schedule.digest()
    );

    let cfg = SolverConfig::new()
        .with_backend(Backend::Sim(FaultPlan::builder(1).build()))
        .with_trace(TraceOptions::wall());
    let run = factorize_parallel_with(sym, &ap, &mapping.graph, &mapping.schedule, &cfg)
        .expect("factorization failed");
    let report = build_report(&mapping.graph, &mapping.schedule, &run.trace);

    print!("{}", report.render_tables(15));
    std::fs::write(TRACE_PATH, report.to_json(50).pretty()).expect("write BENCH_trace.json");
    println!("wrote {TRACE_PATH}");

    let ok = report.reconciliation >= RECONCILE_MIN && report.reconciliation <= 1.0;
    println!(
        "reconciliation (trace span / wall ≥ {:.0}%): {:.2}% — {}",
        RECONCILE_MIN * 100.0,
        report.reconciliation * 100.0,
        if ok { "MET" } else { "NOT MET" }
    );
    if !ok {
        eprintln!("FAIL: trace does not reconcile with wall time");
        std::process::exit(1);
    }
}
