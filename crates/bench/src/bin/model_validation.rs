//! Model validation: does the static schedule's prediction match reality?
//!
//! The paper's whole design rests on the premise that a calibrated BLAS +
//! network time model predicts the parallel factorization well enough to
//! schedule it statically. This binary closes that loop **on this very
//! machine**: it calibrates the model against the native kernels and the
//! in-process channel transport, schedules for 2 logical processors (the
//! physical cores available here), runs the threaded fan-in factorization
//! for real, and compares measured wall time with the predicted makespan.
//!
//! Expect agreement within a small factor, not equality: the model prices
//! kernels in isolation (warm caches), and the host timeshares two cores
//! with the OS. The *ordering* across problems and the predicted/measured
//! ratio stability are the meaningful signals.

use pastix_bench::{prepare, scale};
use pastix_graph::ProblemId;
use pastix_machine::{measure_in_process_network, MachineModel};
use pastix_kernels::calibrate_blas_model;
use pastix_sched::{map_and_schedule, SchedOptions};
use pastix_solver::{Plan, SolverConfig};
use std::time::Instant;

fn main() {
    let scale = scale();
    println!("Calibrating the model on this host...");
    let machine = MachineModel {
        n_procs: 2,
        blas: calibrate_blas_model(&[8, 24, 64, 128], 3),
        net: measure_in_process_network(),
        ..MachineModel::sp2(2)
    };
    println!(
        "{:<10} {:>8} {:>14} {:>14} {:>8}",
        "Problem", "n", "predicted (s)", "measured (s)", "ratio"
    );
    for id in [
        ProblemId::Ship001,
        ProblemId::Quer,
        ProblemId::Oilpan,
        ProblemId::Thread,
        ProblemId::Ship003,
    ] {
        let prep = prepare(id, scale, &pastix_bench::scotch_ordering());
        let mapping = map_and_schedule(&prep.analysis.symbol, &machine, &SchedOptions::default());
        let ap = prep.matrix.permuted(&prep.analysis.perm);
        let plan = Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
        let cfg = SolverConfig::default();
        // Warm-up once (thread spawn, page faults), then time the best of 3.
        let _ = plan.factorize(&ap, &cfg).unwrap();
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            let _ = plan.factorize(&ap, &cfg).unwrap();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let predicted = mapping.schedule.makespan;
        println!(
            "{:<10} {:>8} {:>14.4} {:>14.4} {:>8.2}",
            id.name(),
            prep.matrix.n(),
            predicted,
            best,
            best / predicted.max(1e-12)
        );
    }
    println!("\nA stable measured/predicted ratio across problems means the model ranks");
    println!("schedules correctly — which is all the static mapper needs from it.");
}
