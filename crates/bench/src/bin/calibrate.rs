//! The automatic calibration step of the paper: fits the multi-variable
//! polynomial BLAS time model by timing this crate's own kernels on the
//! host, measures the in-process transfer model, prints a
//! predicted-vs-measured table, and saves the machine model as JSON
//! (`target/machine-calibrated.json`) for reuse by other binaries.

use pastix_kernels::gemm::gemm_nt_acc;
use pastix_kernels::model::{calibrate_blas_model, KernelClass};
use pastix_machine::{measure_in_process_network, MachineModel};
use std::time::Instant;

fn main() {
    println!("Calibrating the BLAS time model on this host (sizes 8..192)...");
    let blas = calibrate_blas_model(&[8, 16, 32, 64, 128, 192], 3);
    let net = measure_in_process_network();
    let machine = MachineModel {
        blas,
        net,
        ..MachineModel::sp2(2)
    };

    println!("\nGEMM C += A·Bᵀ — predicted vs measured (seconds):");
    println!("{:>5} {:>5} {:>5} {:>12} {:>12} {:>8}", "m", "n", "k", "predicted", "measured", "ratio");
    for &(m, n, k) in &[(16usize, 16usize, 16usize), (48, 48, 48), (96, 96, 96), (160, 64, 64), (64, 160, 96)] {
        let a = vec![1.0f64; m * k];
        let b = vec![1.0f64; n * k];
        let mut c = vec![0.0f64; m * n];
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            gemm_nt_acc(m, n, k, -1.0, &a, m, &b, n, &mut c, m);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let pred = machine.kernel_time(KernelClass::GemmNt, m, n, k);
        println!(
            "{:>5} {:>5} {:>5} {:>12.3e} {:>12.3e} {:>8.2}",
            m,
            n,
            k,
            pred,
            best,
            pred / best.max(1e-12)
        );
    }

    println!("\nIn-process network model: latency {:.2e} s, bandwidth {:.2e} B/s", net.latency, net.bandwidth);

    let path = std::path::Path::new("target/machine-calibrated.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::File::create(path) {
        Ok(f) => {
            machine.save(f).expect("failed to serialize model");
            println!("Saved calibrated machine model to {}", path.display());
        }
        Err(e) => println!("(could not save model: {e})"),
    }
}
