//! CLI: solve a system from a matrix file — the tool a downstream user of
//! the original PaStiX would reach for first.
//!
//! ```sh
//! cargo run --release -p pastix-bench --bin solve_file -- MATRIX [PROCS]
//! ```
//!
//! `MATRIX` is a Harwell-Boeing RSA (`.rsa`, `.rua`, `.hb`) or MatrixMarket
//! (`.mtx`, `.mm`) symmetric file; `PROCS` (default 2) is the number of
//! logical processors for the analysis and the threaded factorization.
//! A right-hand side with known solution `x(i) = 1 + i mod 7 − 3(i mod 3)`
//! is generated, and the scaled residual reported. The predicted schedule
//! timeline is written next to the input as `<matrix>.timeline.csv`.

use pastix::graph::io::read_path;
use pastix::graph::{canonical_solution, rhs_for_solution};
use pastix::solver::{Plan, SolverConfig};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: solve_file MATRIX [PROCS]");
        std::process::exit(2);
    };
    let procs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let path = PathBuf::from(path);

    let t0 = Instant::now();
    let a = match read_path(&path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("failed to read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    println!(
        "read {}: n = {}, nnz = {} ({:.3} s)",
        path.display(),
        a.n(),
        a.nnz_stored(),
        t0.elapsed().as_secs_f64()
    );

    let mut cfg = SolverConfig::default();
    cfg.analyze.procs = procs;
    let t0 = Instant::now();
    let plan = Plan::analyze(&a, &cfg);
    let stats = plan.analyze_stats().expect("analyzed plans carry stats");
    let schedule = plan.schedule().expect("static schedule");
    println!(
        "analysis: {:.3} s — NNZ_L = {}, OPC = {:.3e}, {} tasks on {procs} procs, predicted {:.4} s",
        t0.elapsed().as_secs_f64(),
        stats.scalar_nnz_offdiag,
        stats.scalar_opc,
        plan.graph().n_tasks(),
        schedule.makespan
    );

    let timeline = path.with_extension("timeline.csv");
    if let Ok(f) = std::fs::File::create(&timeline) {
        if schedule.write_timeline_csv(plan.graph(), f).is_ok() {
            println!("timeline: wrote {}", timeline.display());
        }
    }

    let t0 = Instant::now();
    let run = match plan.factorize(&a, &cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("factorization failed: {e}");
            eprintln!("(the solver is pivoting-free; the matrix must be SPD or");
            eprintln!(" complex symmetric with a stable elimination order)");
            std::process::exit(1);
        }
    };
    println!("factorize: {:.3} s on {procs} threads", t0.elapsed().as_secs_f64());

    let x_exact = canonical_solution::<f64>(a.n());
    let b = rhs_for_solution(&a, &x_exact);
    let t0 = Instant::now();
    let x = run.solve(&b);
    println!(
        "solve: {:.4} s, scaled residual = {:.2e}",
        t0.elapsed().as_secs_f64(),
        a.residual_norm(&x, &b)
    );
}
