//! Speedup curves with per-P lower-bound ceilings: for each problem and
//! processor count, the predicted PaStiX speedup over its own 1-processor
//! time, next to the ceiling `T₁ / max(critical path, work/P)` computed on
//! *that* P's task graph (the 1D/2D switch and the splitting change the
//! graph with P, so each P has its own bound). Shows *why* the curves of
//! Table 2 flatten where they do — the small problems hit their
//! dependency-structure ceiling, not a communication wall.

use pastix_bench::{prepare, problems, scale, schedule_for, TABLE2_PROCS};
use pastix_sched::analyze_schedule;

fn main() {
    let scale = scale();
    println!("Speedup curves, 'achieved/ceiling' per processor count (scale {scale})");
    println!(
        "{:<10} {}",
        "Problem",
        TABLE2_PROCS
            .iter()
            .map(|p| format!("{p:>14}"))
            .collect::<String>()
    );
    for id in problems() {
        let prep = prepare(id, scale, &pastix_bench::scotch_ordering());
        let sched_opts = pastix_bench::default_sched();
        let t1 = schedule_for(&prep, 1, &sched_opts).schedule.makespan;
        let mut row = String::new();
        for &p in &TABLE2_PROCS {
            let m = schedule_for(&prep, p, &sched_opts);
            let a = analyze_schedule(&m.graph, &m.schedule);
            let achieved = t1 / m.schedule.makespan;
            let ceiling = t1 / a.lower_bound;
            row.push_str(&format!("{achieved:>7.2}/{ceiling:<6.1}"));
        }
        println!("{:<10} {}", id.name(), row);
    }
    println!("\nceiling = T1 / max(critical path, work/P) of that P's own task graph:");
    println!("no schedule of that graph can exceed it (communication ignored).");
}
