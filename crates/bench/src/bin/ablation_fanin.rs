//! Ablation **A3**: fan-in total local aggregation vs direct sends.
//!
//! §2 of the paper: processors communicate *"using only aggregated update
//! blocks"*; this binary quantifies what that buys by replaying each
//! schedule's communication with and without aggregation (message counts
//! and scalar volumes). The expected shape: aggregation divides the
//! message count by a growing factor as `P` rises, at the price of a
//! bounded volume overhead (AUBs ship whole target regions).

use pastix_bench::{prepare, problems, scale, schedule_for};
use pastix_sched::{comm_stats, SchedOptions};

fn main() {
    let scale = scale();
    println!("Ablation A3 — fan-in aggregation vs direct contribution sends (scale {scale})");
    println!(
        "{:<10} {:>4} {:>12} {:>12} {:>8} {:>14} {:>14}",
        "Problem", "P", "msgs direct", "msgs fan-in", "ratio", "vol direct", "vol fan-in"
    );
    for id in problems() {
        let prep = prepare(id, scale, &pastix_bench::scotch_ordering());
        for p in [4usize, 16, 64] {
            let m = schedule_for(&prep, p, &SchedOptions::default());
            let c = comm_stats(&m.graph, &m.schedule);
            println!(
                "{:<10} {:>4} {:>12} {:>12} {:>7.2}x {:>14} {:>14}",
                id.name(),
                p,
                c.messages_direct,
                c.messages_fanin,
                c.messages_direct as f64 / c.messages_fanin.max(1) as f64,
                c.scalars_direct,
                c.scalars_fanin
            );
        }
    }
}
