//! Validates **Figure 1** (the parallel factorization algorithm) as an
//! executable artifact: runs the threaded fan-in solver for several
//! processor counts and checks that the distributed factor matches the
//! sequential reference and solves the system to machine precision.
//!
//! This replaces "does the pseudo-code work?" with a machine-checked
//! statement. `PASTIX_SCALE` sizes the problem (default 0.05; the check
//! uses one shell-type and one solid-type analog).

use pastix_bench::{prepare, scale, schedule_for};
use pastix_graph::{canonical_solution, rhs_for_solution, ProblemId};
use pastix_sched::SchedOptions;
use pastix_solver::{
    factorize_sequential, solve_in_place, FactorStorage, Plan, SolverConfig,
};

fn main() {
    let scale = (scale() * 0.5).min(0.05); // keep the numeric runs snappy
    println!("Figure 1 validation — fan-in solver vs sequential reference (scale {scale})");
    println!(
        "{:<10} {:>6} {:>7} {:>14} {:>14} {:>10}",
        "Problem", "procs", "tasks", "max |Δfactor|", "residual", "verdict"
    );
    for id in [ProblemId::Ship001, ProblemId::Oilpan] {
        let prep = prepare(id, scale, &pastix_bench::scotch_ordering());
        for p in [1usize, 2, 4, 8, 16] {
            let mut sched_opts = SchedOptions::default();
            sched_opts.block_size = 32;
            sched_opts.mapping.width_2d_min = 32;
            sched_opts.mapping.procs_2d_min = 2.0;
            let mapping = schedule_for(&prep, p, &sched_opts);
            let sym = &mapping.graph.split.symbol;
            let ap = prep.matrix.permuted(&prep.analysis.perm);

            let plan =
                Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
            let par = plan
                .factorize(&ap, &SolverConfig::default())
                .expect("parallel factorization failed");
            let mut seq = FactorStorage::zeros(sym);
            seq.scatter(sym, &ap);
            factorize_sequential(sym, &mut seq).expect("sequential factorization failed");

            let mut max_diff = 0.0f64;
            for (pa, pb) in par.panels.iter().zip(&seq.panels) {
                for (a, b) in pa.iter().zip(pb) {
                    max_diff = max_diff.max((a - b).abs());
                }
            }
            let x_exact = canonical_solution::<f64>(ap.n());
            let b = rhs_for_solution(&ap, &x_exact);
            let mut x = b.clone();
            solve_in_place(sym, &par, &mut x);
            let res = ap.residual_norm(&x, &b);
            let ok = max_diff < 1e-8 && res < 1e-12;
            println!(
                "{:<10} {:>6} {:>7} {:>14.2e} {:>14.2e} {:>10}",
                id.name(),
                p,
                mapping.graph.n_tasks(),
                max_diff,
                res,
                if ok { "OK" } else { "FAIL" }
            );
            assert!(ok, "validation failed for {} on {p} procs", id.name());
        }
    }
    println!("\nAll fan-in runs reproduce the sequential factor and solve to machine precision.");
}
