//! Reproduces the paper's dense-kernel remark (§3): *"for a dense
//! 1024×1024 matrix on one Power2SC node, the ESSL LLᵀ factorization time
//! is 1.07 s whereas the ESSL LDLᵀ factorization time is 1.27 s"* — the
//! reason PSPASES enjoys an intrinsic per-node advantage over the LDLᵀ
//! PaStiX uses for complex-capable factorization.
//!
//! Prints measured times of this crate's native kernels on the host CPU,
//! the LLᵀ/LDLᵀ ratio (the portable signal), and the SP2 machine model's
//! prediction next to the paper's numbers.

use pastix_kernels::dense::deterministic_spd;
use pastix_kernels::model::KernelClass;
use pastix_kernels::{ldlt_factor_blocked, llt_factor_blocked, BlasModel};
use std::time::Instant;

fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let n = 1024;
    let nb = 64;
    let base = deterministic_spd(n, 42);
    println!("Dense {n}x{n} factorization, blocking {nb} (host CPU, best of 3):");

    let t_llt = time_best(3, || {
        let mut a = base.clone();
        llt_factor_blocked(n, a.as_mut_slice(), n, nb).unwrap();
    });
    let mut work = Vec::new();
    let t_ldlt = time_best(3, || {
        let mut a = base.clone();
        ldlt_factor_blocked(n, a.as_mut_slice(), n, nb, &mut work).unwrap();
    });
    println!("  measured  LLT : {t_llt:.3} s");
    println!("  measured  LDLT: {t_ldlt:.3} s");
    println!("  measured  ratio LLT/LDLT: {:.3}", t_llt / t_ldlt);

    let model = BlasModel::power2sc();
    let m_llt = model.cost(KernelClass::FactorLlt, n, n, n);
    let m_ldlt = model.cost(KernelClass::FactorLdlt, n, n, n);
    println!("\nSP2 Power2SC model prediction:");
    println!("  model LLT : {m_llt:.3} s   (paper ESSL: 1.07 s)");
    println!("  model LDLT: {m_ldlt:.3} s   (paper ESSL: 1.27 s)");
    println!("  model ratio LLT/LDLT: {:.3} (paper: {:.3})", m_llt / m_ldlt, 1.07 / 1.27);

    assert!(
        t_llt < t_ldlt,
        "LLT should beat LDLT (the cheaper trailing update)"
    );
    println!("\nShape reproduced: LLT is cheaper than LDLT at this size.");
}
