//! Regenerates **Table 2** of the paper: parallel factorization performance
//! (time in seconds, Gflop/s in parentheses) for PaStiX vs the
//! PSPASES-like multifrontal baseline on 1–64 processors of the modeled
//! IBM SP2.
//!
//! As in the paper, PaStiX runs with the Scotch-like ordering and the
//! baseline with the MeTiS-like one, both with blocking size 64. Times are
//! produced by the same machinery the original mapper used: the static
//! scheduler *is* a discrete-event simulation of the parallel
//! factorization over the calibrated BLAS + network model, so its makespan
//! is the predicted run time; the baseline is priced by the
//! subtree-to-subcube max/plus model. (Absolute numbers depend on the
//! synthetic analogs and the model constants; the reproduced signal is the
//! *shape*: who wins, by what factor, and where scalability saturates.)

use pastix_bench::{
    default_sched, gflops, metis_ordering, prepare, problems, scale, schedule_for, TABLE2_PROCS,
};
use pastix_machine::MachineModel;
use pastix_multifrontal::{pspases_time, PspasesOptions};

fn main() {
    let scale = scale();
    println!("Table 2 — factorization performance (time s, Gflop/s), scale {scale}");
    let header: Vec<String> = TABLE2_PROCS.iter().map(|p| format!("{p:>15}")).collect();
    println!("{:<10} {}", "Name", header.join(""));
    let sched_opts = default_sched();
    for id in problems() {
        let sc = prepare(id, scale, &pastix_bench::scotch_ordering());
        let me = prepare(id, scale, &metis_ordering());
        let opc_sc = sc.analysis.scalar_opc;
        let opc_me = me.analysis.scalar_opc;
        let mut pastix_row = String::new();
        let mut pspases_row = String::new();
        for &p in &TABLE2_PROCS {
            let mapping = schedule_for(&sc, p, &sched_opts);
            let t = mapping.schedule.makespan;
            pastix_row.push_str(&format!("{:>8.2} ({:4.2})", t, gflops(opc_sc, t)));
            let machine = MachineModel::sp2(p);
            let base = pspases_time(&me.analysis.symbol, &machine, &PspasesOptions::default());
            pspases_row.push_str(&format!("{:>8.2} ({:4.2})", base.time, gflops(opc_me, base.time)));
        }
        println!("{:<10} {}", id.name(), pastix_row);
        println!("{:<10} {}", "", pspases_row);
    }
    println!();
    println!("First line per problem: PaStiX (static 1D/2D fan-in schedule, Scotch-like ordering).");
    println!("Second line: PSPASES-like multifrontal baseline (MeTiS-like ordering).");
}
