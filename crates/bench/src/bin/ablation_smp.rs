//! Ablation: SMP-node-aware scheduling (the paper's announced future
//! work — "a modified version of our strategy to take into account
//! architectures based on SMP nodes").
//!
//! The machine model groups processors into shared-memory nodes with
//! near-free intra-node transfers; the greedy scheduler sees those costs
//! and clusters communicating tasks onto nodes by itself. This binary
//! compares the predicted makespan of a flat 32-processor SP2 against
//! SMP-clustered variants of the same 32 processors.

use pastix_bench::{prepare, problems, scale};
use pastix_machine::MachineModel;
use pastix_sched::{comm_stats, map_and_schedule, SchedOptions};

fn main() {
    let scale = scale();
    let p = 32usize;
    println!("Ablation SMP — {p} processors, nodes of 1/2/4/8 (scale {scale})");
    println!(
        "{:<10} {:>6} {:>12} {:>14} {:>14}",
        "Problem", "node", "makespan(s)", "inter msgs", "intra-ish msgs"
    );
    for id in problems() {
        let prep = prepare(id, scale, &pastix_bench::scotch_ordering());
        for node in [1usize, 2, 4, 8] {
            let machine = MachineModel::sp2_smp(p, node);
            let m = map_and_schedule(&prep.analysis.symbol, &machine, &SchedOptions::default());
            let c = comm_stats(&m.graph, &m.schedule);
            // Count cross-node vs intra-node fan-in messages.
            let mut inter = 0u64;
            let mut intra = 0u64;
            for t in 0..m.graph.n_tasks() {
                let tq = m.schedule.task_proc[t] as usize;
                for (src, _) in m.graph.in_edges(t) {
                    let sq = m.schedule.task_proc[src as usize] as usize;
                    if sq != tq {
                        if machine.node_of(sq) == machine.node_of(tq) {
                            intra += 1;
                        } else {
                            inter += 1;
                        }
                    }
                }
            }
            let _ = c;
            println!(
                "{:<10} {:>6} {:>12.4} {:>14} {:>14}",
                id.name(),
                node,
                m.schedule.makespan,
                inter,
                intra
            );
        }
    }
    println!("\nExpected shape: larger nodes → shorter predicted makespan and a growing");
    println!("fraction of edges kept inside a node by the cost-aware greedy mapper.");
}
