//! Shared harness of the benchmark binaries: problem construction, pipeline
//! runs and table formatting for regenerating the paper's tables/figures.
//!
//! Every binary accepts the environment variable `PASTIX_SCALE` (default
//! `0.05`): the fraction of each paper matrix's original column count used
//! when generating its synthetic analog. `PASTIX_PROBLEMS` (comma-separated
//! names) restricts the suite.

use pastix_graph::{build_problem, ProblemId, SymCsc};
use pastix_machine::MachineModel;
use pastix_ordering::{nested_dissection, OrderingOptions};
use pastix_sched::{map_and_schedule, MappingOptions, Mapping, SchedOptions};
use pastix_symbolic::{analyze, Analysis, AnalysisOptions};

/// Scale factor for the problem suite, from `PASTIX_SCALE`.
pub fn scale() -> f64 {
    std::env::var("PASTIX_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05)
}

/// The problems to run, from `PASTIX_PROBLEMS` (default: all ten).
pub fn problems() -> Vec<ProblemId> {
    match std::env::var("PASTIX_PROBLEMS") {
        Ok(s) => s
            .split(',')
            .filter_map(|t| ProblemId::from_name(t.trim()))
            .collect(),
        Err(_) => ProblemId::ALL.to_vec(),
    }
}

/// The processor counts of Table 2.
pub const TABLE2_PROCS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// A fully analyzed problem under one ordering strategy.
pub struct PreparedProblem {
    /// Which paper matrix this is the analog of.
    pub id: ProblemId,
    /// The generated matrix.
    pub matrix: SymCsc<f64>,
    /// Symbolic analysis (ordering + symbol).
    pub analysis: Analysis,
}

/// Builds and analyzes one problem with the given ordering options.
pub fn prepare(id: ProblemId, scale: f64, ordering: &OrderingOptions) -> PreparedProblem {
    let matrix = build_problem::<f64>(id, scale);
    let g = matrix.to_graph();
    let ord = nested_dissection(&g, ordering);
    let analysis = analyze(&g, &ord, &AnalysisOptions::default());
    PreparedProblem {
        id,
        matrix,
        analysis,
    }
}

/// Scotch-like ordering preset (the PaStiX side of the tables).
pub fn scotch_ordering() -> OrderingOptions {
    OrderingOptions::scotch_like()
}

/// MeTiS-like ordering preset (the PSPASES side of the tables).
pub fn metis_ordering() -> OrderingOptions {
    OrderingOptions::metis_like()
}

/// Maps and schedules a prepared problem for `p` SP2-model processors,
/// returning the mapping (whose makespan is the predicted Table 2 time).
pub fn schedule_for(prep: &PreparedProblem, p: usize, sched: &SchedOptions) -> Mapping {
    let machine = MachineModel::sp2(p);
    map_and_schedule(&prep.analysis.symbol, &machine, sched)
}

/// The scheduling options used throughout the tables (paper: blocking 64).
pub fn default_sched() -> SchedOptions {
    SchedOptions {
        block_size: 64,
        mapping: MappingOptions::default(),
        ..Default::default()
    }
}

/// Formats a float in the paper's compact `x.xxe+yy` style.
pub fn sci(x: f64) -> String {
    format!("{x:.2e}")
}

/// Gigaflop rate from an operation count and a time.
pub fn gflops(opc: f64, time: f64) -> f64 {
    if time <= 0.0 {
        0.0
    } else {
        opc / time / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_small_problem() {
        let prep = prepare(ProblemId::Quer, 0.01, &scotch_ordering());
        assert!(prep.matrix.n() > 100);
        prep.analysis.symbol.validate().unwrap();
    }

    #[test]
    fn schedule_small_problem() {
        let prep = prepare(ProblemId::Thread, 0.01, &scotch_ordering());
        let mut sopts = default_sched();
        sopts.block_size = 32;
        let m = schedule_for(&prep, 4, &sopts);
        assert!(m.schedule.makespan > 0.0);
    }

    #[test]
    fn problem_filter_parses_names() {
        // Direct parse path (the env-var plumbing is a thin wrapper).
        let picked: Vec<_> = "ship001, THREAD ,nope"
            .split(',')
            .filter_map(|t| pastix_graph::ProblemId::from_name(t.trim()))
            .collect();
        assert_eq!(picked, vec![pastix_graph::ProblemId::Ship001, pastix_graph::ProblemId::Thread]);
    }

    #[test]
    fn table2_procs_match_paper() {
        assert_eq!(TABLE2_PROCS, [1, 2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn formatting() {
        assert_eq!(sci(1234.5), "1.23e3");
        assert!(gflops(2e9, 1.0) == 2.0);
        assert_eq!(gflops(1.0, 0.0), 0.0);
    }
}
