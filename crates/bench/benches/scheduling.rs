//! Criterion benches of the mapping + scheduling phase itself (the cost of
//! computing the static schedule, which the paper runs as a pre-process).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pastix_bench::{prepare, scotch_ordering};
use pastix_graph::ProblemId;
use pastix_machine::MachineModel;
use pastix_sched::{build_task_graph, greedy_schedule, map_and_schedule, proportional_mapping, SchedOptions};
use pastix_symbolic::split_symbol;
use std::hint::black_box;

fn bench_scheduling(c: &mut Criterion) {
    let prep = prepare(ProblemId::Oilpan, 0.03, &scotch_ordering());
    let sym = &prep.analysis.symbol;
    let mut group = c.benchmark_group("scheduling_oilpan_3pct");
    group.sample_size(10);
    for &p in &[4usize, 16, 64] {
        let machine = MachineModel::sp2(p);
        group.bench_with_input(BenchmarkId::new("map_and_schedule", p), &p, |b, _| {
            b.iter(|| black_box(map_and_schedule(sym, &machine, &SchedOptions::default())))
        });
    }
    let machine = MachineModel::sp2(16);
    group.bench_function("proportional_mapping_only", |b| {
        b.iter(|| black_box(proportional_mapping(sym, &machine, &Default::default())))
    });
    group.bench_function("greedy_only", |b| {
        let cand = proportional_mapping(sym, &machine, &Default::default());
        let split = split_symbol(sym, 64);
        let graph = build_task_graph(split, &cand, &machine);
        b.iter(|| black_box(greedy_schedule(&graph, &machine)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_scheduling
}
criterion_main!(benches);
