//! Criterion benches of the symbolic phase: elimination tree, column
//! counts, block symbolic factorization and splitting.

use criterion::{criterion_group, criterion_main, Criterion};
use pastix_graph::{build_problem, ProblemId};
use pastix_ordering::{nested_dissection, OrderingOptions};
use pastix_symbolic::{
    amalgamate, analyze, block_symbolic, col_counts, etree, fundamental_supernodes, split_symbol,
    AmalgamationOptions, AnalysisOptions,
};
use std::hint::black_box;

fn bench_symbolic(c: &mut Criterion) {
    let a = build_problem::<f64>(ProblemId::Ship001, 0.05);
    let g = a.to_graph();
    let ord = nested_dissection(&g, &OrderingOptions::scotch_like());
    let gp = g.permuted(&ord);
    let parent = etree(&gp);
    let counts = col_counts(&gp, &parent);
    let fund = fundamental_supernodes(&parent, &counts);
    let part = amalgamate(&fund, &AmalgamationOptions::default());
    let sym = block_symbolic(&gp, &part);

    let mut group = c.benchmark_group("symbolic_ship001_5pct");
    group.sample_size(10);
    group.bench_function("etree", |b| b.iter(|| black_box(etree(&gp))));
    group.bench_function("col_counts", |b| b.iter(|| black_box(col_counts(&gp, &parent))));
    group.bench_function("block_symbolic", |b| b.iter(|| black_box(block_symbolic(&gp, &part))));
    group.bench_function("split_64", |b| b.iter(|| black_box(split_symbol(&sym, 64))));
    group.bench_function("full_analyze", |b| {
        b.iter(|| black_box(analyze(&g, &ord, &AnalysisOptions::default())))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_symbolic
}
criterion_main!(benches);
