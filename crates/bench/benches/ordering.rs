//! Criterion benches of the ordering phase: nested dissection (both leaf
//! modes) and the raw vertex separator on problem-suite graphs.

use criterion::{criterion_group, criterion_main, Criterion};
use pastix_graph::{build_problem, ProblemId};
use pastix_ordering::{nested_dissection, vertex_separator, BisectOptions, OrderingOptions};
use std::hint::black_box;

fn bench_ordering(c: &mut Criterion) {
    let a = build_problem::<f64>(ProblemId::Quer, 0.02);
    let g = a.to_graph();
    let mut group = c.benchmark_group("ordering_quer_2pct");
    group.sample_size(10);
    group.bench_function("nd_halo_md", |b| {
        b.iter(|| black_box(nested_dissection(&g, &OrderingOptions::scotch_like())))
    });
    group.bench_function("nd_plain_md", |b| {
        b.iter(|| black_box(nested_dissection(&g, &OrderingOptions::metis_like())))
    });
    group.bench_function("vertex_separator_once", |b| {
        b.iter(|| black_box(vertex_separator(&g, &BisectOptions::default())))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_ordering
}
criterion_main!(benches);
