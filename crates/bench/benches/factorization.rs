//! Criterion benches of the numeric phase: sequential supernodal LDLᵀ,
//! the threaded fan-in solver, the multifrontal baseline, and the
//! triangular solves.

use criterion::{criterion_group, criterion_main, Criterion};
use pastix_bench::{prepare, schedule_for, scotch_ordering};
use pastix_graph::{canonical_solution, rhs_for_solution, ProblemId};
use pastix_multifrontal::multifrontal_llt;
use pastix_sched::SchedOptions;
use pastix_solver::{
    factorize_sequential, solve_in_place, FactorStorage, Plan, SolverConfig,
};
use std::hint::black_box;

fn bench_factorization(c: &mut Criterion) {
    let prep = prepare(ProblemId::Ship001, 0.02, &scotch_ordering());
    let sched_opts = SchedOptions {
        block_size: 48,
        ..Default::default()
    };
    let mapping = schedule_for(&prep, 2, &sched_opts);
    let sym = &mapping.graph.split.symbol;
    let ap = prep.matrix.permuted(&prep.analysis.perm);

    let mut group = c.benchmark_group("numeric_ship001_2pct");
    group.sample_size(10);
    group.bench_function("sequential_ldlt", |b| {
        b.iter(|| {
            let mut st = FactorStorage::zeros(sym);
            st.scatter(sym, &ap);
            factorize_sequential(sym, &mut st).unwrap();
            black_box(st);
        })
    });
    let plan = Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
    let cfg = SolverConfig::default();
    group.bench_function("fanin_2threads", |b| {
        b.iter(|| {
            black_box(plan.factorize(&ap, &cfg).unwrap());
        })
    });
    group.bench_function("multifrontal_llt", |b| {
        b.iter(|| black_box(multifrontal_llt(sym, &ap).unwrap()))
    });

    let mut st = FactorStorage::zeros(sym);
    st.scatter(sym, &ap);
    factorize_sequential(sym, &mut st).unwrap();
    let bvec = rhs_for_solution(&ap, &canonical_solution::<f64>(ap.n()));
    group.bench_function("triangular_solve", |b| {
        b.iter(|| {
            let mut x = bvec.clone();
            solve_in_place(sym, &st, &mut x);
            black_box(x);
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_factorization
}
criterion_main!(benches);
