//! Criterion benches of the dense kernels (experiment D1): GEMM, panel
//! solve, and the LLᵀ vs LDLᵀ factor comparison that motivates the
//! paper's ESSL remark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pastix_kernels::dense::deterministic_spd;
use pastix_kernels::{
    gemm_nt_acc, ldlt_factor_blocked, ldlt_factor_inplace, llt_factor_blocked, trsm_ldlt_panel,
};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_nt");
    for &n in &[16usize, 64, 128] {
        let a = vec![1.0001f64; n * n];
        let b = vec![0.9999f64; n * n];
        let mut out = vec![0.0f64; n * n];
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                gemm_nt_acc(n, n, n, -1.0, black_box(&a), n, black_box(&b), n, &mut out, n);
            })
        });
    }
    g.finish();
}

fn bench_factor_llt_vs_ldlt(c: &mut Criterion) {
    let mut g = c.benchmark_group("dense_factor_256");
    let n = 256;
    let nb = 64;
    let base = deterministic_spd(n, 7);
    g.bench_function("llt_blocked", |bench| {
        bench.iter(|| {
            let mut a = base.clone();
            llt_factor_blocked(n, a.as_mut_slice(), n, nb).unwrap();
            black_box(a);
        })
    });
    g.bench_function("ldlt_blocked", |bench| {
        let mut work = Vec::new();
        bench.iter(|| {
            let mut a = base.clone();
            ldlt_factor_blocked(n, a.as_mut_slice(), n, nb, &mut work).unwrap();
            black_box(a);
        })
    });
    g.finish();
}

fn bench_panel_solve(c: &mut Criterion) {
    let n = 64;
    let m = 512;
    let mut diag = deterministic_spd(n, 3);
    ldlt_factor_inplace(n, diag.as_mut_slice(), n).unwrap();
    let mut panel = vec![1.0f64; m * n];
    c.bench_function("trsm_ldlt_panel_512x64", |bench| {
        bench.iter(|| {
            trsm_ldlt_panel(m, n, diag.as_slice(), n, black_box(&mut panel), m);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm, bench_factor_llt_vs_ldlt, bench_panel_solve
}
criterion_main!(benches);
