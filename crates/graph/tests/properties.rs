//! Property-based tests of the graph/matrix substrate.

use pastix_graph::{CsrGraph, Permutation, SymCsc};
use proptest::prelude::*;

fn random_sym_matrix(n: usize, entries: Vec<(u32, u32, f64)>) -> SymCsc<f64> {
    let mut tr: Vec<(u32, u32, f64)> = entries
        .into_iter()
        .map(|(i, j, v)| (i % n as u32, j % n as u32, v))
        .collect();
    // Ensure a full diagonal so permutations stay comparable.
    for d in 0..n as u32 {
        tr.push((d, d, 1.0 + d as f64));
    }
    SymCsc::from_triplets(n, &tr)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn permuted_matvec_commutes(n in 1usize..30, entries in prop::collection::vec((0u32..30, 0u32..30, -2.0f64..2.0), 0..80), perm_seed in 0u64..10_000) {
        let a = random_sym_matrix(n, entries);
        // Deterministic permutation from the seed (Fisher–Yates).
        let mut p: Vec<u32> = (0..n as u32).collect();
        let mut rng = perm_seed.wrapping_mul(2654435761).max(1);
        for i in (1..n).rev() {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let j = (rng % (i as u64 + 1)) as usize;
            p.swap(i, j);
        }
        let perm = Permutation::from_perm(p);
        let ap = a.permuted(&perm);
        // (P A Pᵀ)(P x) must equal P (A x).
        let x: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
        let ax = a.matvec(&x);
        let xp = perm.apply_vec(&x);
        let apxp = ap.matvec(&xp);
        let expected = perm.apply_vec(&ax);
        for (u, v) in apxp.iter().zip(&expected) {
            prop_assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn graph_from_matrix_is_valid(n in 1usize..40, entries in prop::collection::vec((0u32..40, 0u32..40, -2.0f64..2.0), 0..120)) {
        let a = random_sym_matrix(n, entries);
        let g = a.to_graph();
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.n(), n);
    }

    #[test]
    fn inf_norm_bounds_matvec(n in 1usize..25, entries in prop::collection::vec((0u32..25, 0u32..25, -2.0f64..2.0), 0..60)) {
        let a = random_sym_matrix(n, entries);
        let x = vec![1.0f64; n];
        let ax = a.matvec(&x);
        let max_ax = ax.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        prop_assert!(max_ax <= a.inf_norm() + 1e-9);
    }

    #[test]
    fn permutation_composition_associative(n in 1usize..20, s1 in 0u64..1000, s2 in 0u64..1000) {
        let make = |seed: u64| {
            let mut p: Vec<u32> = (0..n as u32).collect();
            let mut rng = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
            for i in (1..n).rev() {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let j = (rng % (i as u64 + 1)) as usize;
                p.swap(i, j);
            }
            Permutation::from_perm(p)
        };
        let p = make(s1);
        let q = make(s2);
        let data: Vec<u32> = (0..n as u32).map(|i| i * 7 + 3).collect();
        // Applying p then q equals applying the composition once.
        let two_step = q.apply_vec(&p.apply_vec(&data));
        let composed = p.then(&q).apply_vec(&data);
        prop_assert_eq!(two_step, composed);
    }

    #[test]
    fn csr_roundtrip_through_edges(n in 1usize..30, edges in prop::collection::vec((0u32..30, 0u32..30), 0..80)) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let g = CsrGraph::from_edges(n, &edges);
        prop_assert!(g.validate().is_ok());
        // Rebuilding from its own edge list is idempotent.
        let mut elist = Vec::new();
        for u in 0..n {
            for &v in g.neighbors(u) {
                if (v as usize) > u {
                    elist.push((u as u32, v));
                }
            }
        }
        let g2 = CsrGraph::from_edges(n, &elist);
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn rsa_roundtrip_random(n in 1usize..15, entries in prop::collection::vec((0u32..15, 0u32..15, -5.0f64..5.0), 0..40)) {
        let a = random_sym_matrix(n, entries);
        let mut buf = Vec::new();
        pastix_graph::io::write_rsa(&mut buf, &a, "prop", "PROP").unwrap();
        let b = pastix_graph::io::read_rsa(&buf[..]).unwrap();
        prop_assert_eq!(a.n(), b.n());
        prop_assert_eq!(a.nnz_stored(), b.nnz_stored());
        for j in 0..n {
            for (&i, &v) in a.rows_of(j).iter().zip(a.vals_of(j)) {
                let got = b.get(i as usize, j);
                prop_assert!((v - got).abs() <= 1e-9 * v.abs().max(1.0));
            }
        }
    }
}
