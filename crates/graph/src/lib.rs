//! # pastix-graph
//!
//! Sparse symmetric matrices, adjacency graphs, synthetic problem
//! generators and matrix file IO — the data substrate under the PaStiX
//! reproduction.
//!
//! The pipeline consumes a symmetric positive definite (or complex
//! symmetric) matrix as a lower-triangular CSC structure ([`SymCsc`]); the
//! ordering phase works on its adjacency graph ([`CsrGraph`]); the paper's
//! ten test problems are reproduced as synthetic analogs
//! ([`problems::build_problem`]); and real matrices can be read from
//! Harwell-Boeing RSA or MatrixMarket files ([`io`]).

#![warn(missing_docs)]

pub mod csr;
pub mod gen;
pub mod io;
pub mod matrix;
pub mod par;
pub mod perm;
pub mod problems;

pub use csr::CsrGraph;
pub use par::Parallelism;
pub use matrix::{canonical_solution, rhs_for_solution, SymCsc};
pub use perm::Permutation;
pub use problems::{build_problem, ProblemId};
