//! Sparse symmetric matrices.
//!
//! [`SymCsc`] stores the lower triangle (diagonal included) in compressed
//! sparse column form with sorted row indices — the natural input layout for
//! a symmetric `L·D·Lᵀ` solver and the layout of the paper's RSA test
//! files. Only the lower triangle is kept; the full matrix is implied by
//! symmetry.

use crate::csr::CsrGraph;
use crate::perm::Permutation;
use pastix_kernels::scalar::Scalar;

/// Symmetric sparse matrix, lower triangle in CSC form.
///
/// ```
/// use pastix_graph::SymCsc;
/// // [ 4 1 0 ]
/// // [ 1 5 2 ]   — only the lower triangle is supplied.
/// // [ 0 2 6 ]
/// let a = SymCsc::from_triplets(3, &[
///     (0, 0, 4.0), (1, 0, 1.0), (1, 1, 5.0), (2, 1, 2.0), (2, 2, 6.0),
/// ]);
/// assert_eq!(a.get(0, 1), 1.0);            // either triangle readable
/// assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![5.0, 8.0, 8.0]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SymCsc<T> {
    n: usize,
    colptr: Vec<usize>,
    rowind: Vec<u32>,
    values: Vec<T>,
}

impl<T: Scalar> SymCsc<T> {
    /// Builds from raw lower-triangular CSC arrays (row indices sorted per
    /// column, each column starting at its diagonal entry or below).
    pub fn from_parts(n: usize, colptr: Vec<usize>, rowind: Vec<u32>, values: Vec<T>) -> Self {
        assert_eq!(colptr.len(), n + 1);
        assert_eq!(*colptr.last().unwrap_or(&0), rowind.len());
        assert_eq!(rowind.len(), values.len());
        Self {
            n,
            colptr,
            rowind,
            values,
        }
    }

    /// Builds from triplets `(row, col, value)`. Entries are mirrored onto
    /// the lower triangle (an upper entry `(i, j)` with `i < j` contributes
    /// to `(j, i)`) and duplicates are summed.
    pub fn from_triplets(n: usize, triplets: &[(u32, u32, T)]) -> Self {
        let mut cols: Vec<Vec<(u32, T)>> = vec![Vec::new(); n];
        for &(r, c, v) in triplets {
            let (i, j) = if r >= c { (r, c) } else { (c, r) };
            assert!((i as usize) < n, "row {i} out of range");
            cols[j as usize].push((i, v));
        }
        let mut colptr = vec![0usize; n + 1];
        let mut rowind = Vec::new();
        let mut values = Vec::new();
        for (j, col) in cols.iter_mut().enumerate() {
            col.sort_unstable_by_key(|&(i, _)| i);
            let mut iter = col.iter().peekable();
            while let Some(&(i, v)) = iter.next() {
                let mut sum = v;
                while let Some(&&(i2, v2)) = iter.peek() {
                    if i2 == i {
                        sum += v2;
                        iter.next();
                    } else {
                        break;
                    }
                }
                rowind.push(i);
                values.push(sum);
            }
            colptr[j + 1] = rowind.len();
        }
        Self {
            n,
            colptr,
            rowind,
            values,
        }
    }

    /// Matrix order.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored entries (lower triangle including the diagonal).
    #[inline]
    pub fn nnz_stored(&self) -> usize {
        self.rowind.len()
    }

    /// Off-diagonal entries stored (the paper's `NNZ_A` metric counts the
    /// off-diagonal terms of the triangular part).
    pub fn nnz_offdiag(&self) -> usize {
        let mut c = 0;
        for j in 0..self.n {
            for &i in self.rows_of(j) {
                if i as usize != j {
                    c += 1;
                }
            }
        }
        c
    }

    /// Column pointer array.
    #[inline]
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Row indices of column `j` (sorted, lower triangle).
    #[inline]
    pub fn rows_of(&self, j: usize) -> &[u32] {
        &self.rowind[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Values of column `j`, parallel to [`SymCsc::rows_of`].
    #[inline]
    pub fn vals_of(&self, j: usize) -> &[T] {
        &self.values[self.colptr[j]..self.colptr[j + 1]]
    }

    /// All row indices.
    #[inline]
    pub fn rowind(&self) -> &[u32] {
        &self.rowind
    }

    /// All values.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Entry `(i, j)` (either triangle), zero if absent. O(log nnz(col)).
    pub fn get(&self, i: usize, j: usize) -> T {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        match self.rows_of(j).binary_search(&(i as u32)) {
            Ok(pos) => self.vals_of(j)[pos],
            Err(_) => T::zero(),
        }
    }

    /// Adjacency graph of the off-diagonal pattern (symmetric, loop-free).
    pub fn to_graph(&self) -> CsrGraph {
        let mut edges = Vec::with_capacity(self.nnz_stored());
        for j in 0..self.n {
            for &i in self.rows_of(j) {
                if i as usize != j {
                    edges.push((i, j as u32));
                }
            }
        }
        CsrGraph::from_edges(self.n, &edges)
    }

    /// Symmetric matrix-vector product `y = A·x` (both triangles implied).
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![T::zero(); self.n];
        for j in 0..self.n {
            let xj = x[j];
            for (&i, &v) in self.rows_of(j).iter().zip(self.vals_of(j)) {
                let i = i as usize;
                y[i] += v * xj;
                if i != j {
                    y[j] += v * x[i];
                }
            }
        }
        y
    }

    /// Residual `b − A·x` and its infinity norm relative to
    /// `‖A‖∞·‖x‖∞ + ‖b‖∞` (the standard backward-error style bound).
    pub fn residual_norm(&self, x: &[T], b: &[T]) -> f64 {
        let ax = self.matvec(x);
        let rinf = b
            .iter()
            .zip(&ax)
            .map(|(&bi, &axi)| (bi - axi).magnitude())
            .fold(0.0, f64::max);
        let xinf = x.iter().map(|v| v.magnitude()).fold(0.0, f64::max);
        let binf = b.iter().map(|v| v.magnitude()).fold(0.0, f64::max);
        let anorm = self.inf_norm();
        rinf / (anorm * xinf + binf).max(f64::MIN_POSITIVE)
    }

    /// Infinity norm of the (implied full) matrix.
    pub fn inf_norm(&self) -> f64 {
        let mut row_sums = vec![0.0f64; self.n];
        for j in 0..self.n {
            for (&i, &v) in self.rows_of(j).iter().zip(self.vals_of(j)) {
                let i = i as usize;
                let a = v.magnitude();
                row_sums[i] += a;
                if i != j {
                    row_sums[j] += a;
                }
            }
        }
        row_sums.into_iter().fold(0.0, f64::max)
    }

    /// Applies a symmetric permutation: entry `(i, j)` of the result equals
    /// entry `(perm[i], perm[j])` of `self`.
    pub fn permuted(&self, p: &Permutation) -> SymCsc<T> {
        assert_eq!(p.len(), self.n);
        let mut triplets = Vec::with_capacity(self.nnz_stored());
        for j in 0..self.n {
            let nj = p.new_of(j) as u32;
            for (&i, &v) in self.rows_of(j).iter().zip(self.vals_of(j)) {
                let ni = p.new_of(i as usize) as u32;
                triplets.push((ni, nj, v));
            }
        }
        SymCsc::from_triplets(self.n, &triplets)
    }

    /// Replaces the diagonal so the matrix becomes strictly diagonally
    /// dominant (hence SPD for real data): `a_jj = Σ_{i≠j} |a_ij| + shift`.
    pub fn make_diag_dominant(&mut self, shift: f64) {
        let mut sums = vec![0.0f64; self.n];
        for j in 0..self.n {
            for (&i, &v) in self.rows_of(j).iter().zip(self.vals_of(j)) {
                let i = i as usize;
                if i != j {
                    let a = v.magnitude();
                    sums[i] += a;
                    sums[j] += a;
                }
            }
        }
        for j in 0..self.n {
            let lo = self.colptr[j];
            let hi = self.colptr[j + 1];
            // Diagonal is the first entry of the column when present.
            let mut found = false;
            for idx in lo..hi {
                if self.rowind[idx] as usize == j {
                    self.values[idx] = T::from_f64(sums[j] + shift);
                    found = true;
                    break;
                }
            }
            assert!(found, "column {j} lacks a diagonal entry");
        }
    }

    /// Dense lower-triangular expansion, for small-matrix tests.
    pub fn to_dense_lower(&self) -> pastix_kernels::DenseMat<T> {
        let mut d = pastix_kernels::DenseMat::zeros(self.n, self.n);
        for j in 0..self.n {
            for (&i, &v) in self.rows_of(j).iter().zip(self.vals_of(j)) {
                d[(i as usize, j)] = v;
            }
        }
        d
    }
}

/// Builds the right-hand side `b = A·x_exact` for a prescribed exact
/// solution; the canonical way to validate a direct solver end to end.
pub fn rhs_for_solution<T: Scalar>(a: &SymCsc<T>, x_exact: &[T]) -> Vec<T> {
    a.matvec(x_exact)
}

/// The canonical test solution `x(i) = 1 + i mod 7 − 3·(i mod 3)`,
/// deterministic and with both signs represented.
pub fn canonical_solution<T: Scalar>(n: usize) -> Vec<T> {
    (0..n)
        .map(|i| T::from_f64(1.0 + (i % 7) as f64 - 3.0 * (i % 3) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SymCsc<f64> {
        // [ 4 1 0 ]
        // [ 1 5 2 ]
        // [ 0 2 6 ]
        SymCsc::from_triplets(
            3,
            &[(0, 0, 4.0), (1, 0, 1.0), (1, 1, 5.0), (2, 1, 2.0), (2, 2, 6.0)],
        )
    }

    #[test]
    fn triplets_sum_duplicates_and_mirror() {
        let a = SymCsc::from_triplets(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)]);
        // (0,1) mirrors onto (1,0): 2 + 3 = 5.
        assert_eq!(a.get(1, 0), 5.0);
        assert_eq!(a.get(0, 1), 5.0);
        assert_eq!(a.nnz_stored(), 3);
    }

    #[test]
    fn matvec_symmetric() {
        let a = tiny();
        let y = a.matvec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![5.0, 8.0, 8.0]);
    }

    #[test]
    fn get_either_triangle() {
        let a = tiny();
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
        assert_eq!(a.get(0, 2), 0.0);
    }

    #[test]
    fn graph_strips_diagonal() {
        let g = tiny().to_graph();
        g.validate().unwrap();
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn permuted_matches_get() {
        let a = tiny();
        let p = Permutation::from_perm(vec![2, 0, 1]);
        let b = a.permuted(&p);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(b.get(i, j), a.get(p.old_of(i), p.old_of(j)), "({i},{j})");
            }
        }
    }

    #[test]
    fn diag_dominance() {
        let mut a = tiny();
        a.make_diag_dominant(0.5);
        assert_eq!(a.get(0, 0), 1.5); // |1| + 0.5
        assert_eq!(a.get(1, 1), 3.5); // |1| + |2| + 0.5
        assert_eq!(a.get(2, 2), 2.5);
    }

    #[test]
    fn inf_norm() {
        let a = tiny();
        // Row sums: 5, 8, 8.
        assert_eq!(a.inf_norm(), 8.0);
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = tiny();
        let x = canonical_solution::<f64>(3);
        let b = rhs_for_solution(&a, &x);
        assert!(a.residual_norm(&x, &b) < 1e-15);
    }

    #[test]
    fn nnz_offdiag_counts_lower_offdiagonal() {
        assert_eq!(tiny().nnz_offdiag(), 2);
    }
}
