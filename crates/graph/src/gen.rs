//! Synthetic problem generators.
//!
//! The paper's test suite consists of irregular structural-analysis meshes
//! (ship hulls and sections, an oil pan, a threaded connector, car bodies).
//! Those RSA files are not redistributable, so this module provides mesh
//! generators spanning the same topological range: thin 2D surfaces
//! (shells), shallow plates, full 3D solids and helically wrapped solids.
//! What drives ordering/fill-in/scheduling behaviour is the mesh's
//! dimensionality and connectivity, which these generators control.

use crate::matrix::SymCsc;
use pastix_kernels::scalar::Scalar;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Stencil used when connecting grid neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stencil {
    /// Axis neighbors only (5-point in 2D, 7-point in 3D).
    Star,
    /// Full neighborhood (9-point in 2D, 27-point in 3D) — the connectivity
    /// of trilinear finite elements, much denser factors.
    Box,
}

/// How off-diagonal values are chosen. The diagonal is always set to make
/// the matrix strictly diagonally dominant (hence SPD over the reals).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueKind {
    /// Discrete Laplacian: all off-diagonals `−1`.
    Laplacian,
    /// Off-diagonals uniform in `[−1.5, −0.5]`, seeded.
    RandomSpd(u64),
}

/// Generates the edge set of a (possibly periodic) `nx × ny × nz` grid and
/// assembles the SPD matrix. `periodic_x` wraps the first dimension —
/// used by the cylindrical shells.
pub fn grid_spd<T: Scalar>(
    nx: usize,
    ny: usize,
    nz: usize,
    stencil: Stencil,
    periodic_x: bool,
    values: ValueKind,
) -> SymCsc<T> {
    assert!(nx >= 1 && ny >= 1 && nz >= 1);
    let n = nx * ny * nz;
    assert!(n > 0 && n < u32::MAX as usize);
    let idx = |x: usize, y: usize, z: usize| -> u32 { (x + nx * (y + ny * z)) as u32 };
    let mut rng = match values {
        ValueKind::RandomSpd(seed) => Some(SmallRng::seed_from_u64(seed)),
        ValueKind::Laplacian => None,
    };
    let mut offv = move || -> f64 {
        match &mut rng {
            Some(r) => -r.gen_range(0.5..1.5),
            None => -1.0,
        }
    };

    let mut triplets: Vec<(u32, u32, T)> = Vec::new();
    let deltas: &[(isize, isize, isize)] = match stencil {
        Stencil::Star => &[(1, 0, 0), (0, 1, 0), (0, 0, 1)],
        Stencil::Box => &[
            // Half of the 26-neighborhood (the other half is implied by
            // symmetry): lexicographically positive offsets.
            (1, 0, 0),
            (0, 1, 0),
            (0, 0, 1),
            (1, 1, 0),
            (1, -1, 0),
            (1, 0, 1),
            (1, 0, -1),
            (0, 1, 1),
            (0, 1, -1),
            (1, 1, 1),
            (1, 1, -1),
            (1, -1, 1),
            (1, -1, -1),
        ],
    };
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let u = idx(x, y, z);
                for &(dx, dy, dz) in deltas {
                    let xx = x as isize + dx;
                    let xx = if periodic_x && nx > 2 {
                        (xx + nx as isize) % nx as isize
                    } else {
                        xx
                    };
                    let yy = y as isize + dy;
                    let zz = z as isize + dz;
                    if xx < 0
                        || xx >= nx as isize
                        || yy < 0
                        || yy >= ny as isize
                        || zz < 0
                        || zz >= nz as isize
                    {
                        continue;
                    }
                    let v = idx(xx as usize, yy as usize, zz as usize);
                    if v == u {
                        continue;
                    }
                    let (i, j) = if v > u { (v, u) } else { (u, v) };
                    triplets.push((i, j, T::from_f64(offv())));
                }
            }
        }
    }
    // Placeholder diagonal, then enforce dominance.
    for u in 0..n as u32 {
        triplets.push((u, u, T::one()));
    }
    let mut a = SymCsc::from_triplets(n, &triplets);
    a.make_diag_dominant(1.0);
    a
}

/// 2D plate: `nx × ny` grid.
pub fn plate_spd<T: Scalar>(nx: usize, ny: usize, stencil: Stencil, values: ValueKind) -> SymCsc<T> {
    grid_spd(nx, ny, 1, stencil, false, values)
}

/// 3D solid: `nx × ny × nz` grid.
pub fn solid_spd<T: Scalar>(
    nx: usize,
    ny: usize,
    nz: usize,
    stencil: Stencil,
    values: ValueKind,
) -> SymCsc<T> {
    grid_spd(nx, ny, nz, stencil, false, values)
}

/// Cylindrical shell: `ncirc × nlong` surface wrapped in the first
/// dimension, `layers` thick — the topology of a ship hull or a pressure
/// vessel. With `layers = 1` the mesh is a pure 2D surface embedded in 3D.
pub fn shell_spd<T: Scalar>(
    ncirc: usize,
    nlong: usize,
    layers: usize,
    stencil: Stencil,
    values: ValueKind,
) -> SymCsc<T> {
    grid_spd(ncirc, nlong, layers, stencil, true, values)
}

/// Helical solid ("thread"): a 3D bar `na × nr × nh` with the angular
/// dimension wrapped *and* sheared one step along the height per turn,
/// mimicking the threaded-connector mesh of the paper (THREAD), whose
/// factor is unusually dense for its size.
pub fn thread_spd<T: Scalar>(na: usize, nr: usize, nh: usize, values: ValueKind) -> SymCsc<T> {
    let n = na * nr * nh;
    assert!(n > 0 && n < u32::MAX as usize);
    let idx = |a: usize, r: usize, h: usize| -> u32 { (a + na * (r + nr * h)) as u32 };
    let mut rng = match values {
        ValueKind::RandomSpd(seed) => Some(SmallRng::seed_from_u64(seed)),
        ValueKind::Laplacian => None,
    };
    let mut offv = move || -> f64 {
        match &mut rng {
            Some(r) => -r.gen_range(0.5..1.5),
            None => -1.0,
        }
    };
    let mut triplets: Vec<(u32, u32, T)> = Vec::new();
    let mut push = |u: u32, v: u32, val: f64| {
        if u == v {
            return;
        }
        let (i, j) = if v > u { (v, u) } else { (u, v) };
        triplets.push((i, j, T::from_f64(val)));
    };
    for h in 0..nh {
        for r in 0..nr {
            for a in 0..na {
                let u = idx(a, r, h);
                // Radial and axial neighbors (box-like: include diagonals
                // between consecutive layers for density).
                if r + 1 < nr {
                    push(u, idx(a, r + 1, h), offv());
                }
                if h + 1 < nh {
                    push(u, idx(a, r, h + 1), offv());
                    if r + 1 < nr {
                        push(u, idx(a, r + 1, h + 1), offv());
                    }
                    if r > 0 {
                        push(u, idx(a, r - 1, h + 1), offv());
                    }
                }
                // Helical angular neighbor: wrapping in `a` advances `h`.
                let a2 = (a + 1) % na;
                let h2 = if a + 1 == na { h + 1 } else { h };
                if h2 < nh {
                    push(u, idx(a2, r, h2), offv());
                    if r + 1 < nr {
                        push(u, idx(a2, r + 1, h2), offv());
                    }
                }
            }
        }
    }
    for u in 0..n as u32 {
        triplets.push((u, u, T::one()));
    }
    let mut a = SymCsc::from_triplets(n, &triplets);
    a.make_diag_dominant(1.0);
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_sizes() {
        let a = grid_spd::<f64>(4, 3, 2, Stencil::Star, false, ValueKind::Laplacian);
        assert_eq!(a.n(), 24);
        // Interior vertex of a 7-point stencil has 6 neighbors; count edges:
        // nx*ny*nz*3 - boundary deficits.
        let g = a.to_graph();
        g.validate().unwrap();
        let expect = 3 * 3 * 2 + 4 * 2 * 2 + 4 * 3; // x-edges + y-edges + z-edges
        assert_eq!(g.n_edges(), expect);
    }

    #[test]
    fn box_stencil_denser_than_star() {
        let s = grid_spd::<f64>(5, 5, 5, Stencil::Star, false, ValueKind::Laplacian);
        let b = grid_spd::<f64>(5, 5, 5, Stencil::Box, false, ValueKind::Laplacian);
        assert!(b.nnz_offdiag() > 2 * s.nnz_offdiag());
    }

    #[test]
    fn generated_matrices_are_diag_dominant() {
        for a in [
            grid_spd::<f64>(4, 4, 1, Stencil::Box, false, ValueKind::RandomSpd(1)),
            shell_spd::<f64>(8, 5, 1, Stencil::Box, ValueKind::RandomSpd(2)),
            thread_spd::<f64>(6, 3, 5, ValueKind::RandomSpd(3)),
        ] {
            for j in 0..a.n() {
                let mut off = 0.0;
                for i in 0..a.n() {
                    if i != j {
                        off += a.get(i, j).abs();
                    }
                }
                assert!(a.get(j, j) > off, "column {j} not dominant");
            }
        }
    }

    #[test]
    fn shell_wraps_periodically() {
        let a = shell_spd::<f64>(6, 4, 1, Stencil::Star, ValueKind::Laplacian);
        // Vertex (0, y) and (5, y) must be connected by the wrap.
        assert!(a.get(0, 5) != 0.0);
    }

    #[test]
    fn no_wrap_for_tiny_circumference() {
        // Wrap with nx = 2 would duplicate the x-edge; the generator must
        // fall back to non-periodic.
        let a = shell_spd::<f64>(2, 3, 1, Stencil::Star, ValueKind::Laplacian);
        let g = a.to_graph();
        g.validate().unwrap();
    }

    #[test]
    fn thread_is_connected() {
        let a = thread_spd::<f64>(8, 3, 6, ValueKind::Laplacian);
        let g = a.to_graph();
        g.validate().unwrap();
        let (_, nc) = g.connected_components();
        assert_eq!(nc, 1);
    }

    #[test]
    fn box_stencil_interior_degree_is_26() {
        let a = grid_spd::<f64>(5, 5, 5, Stencil::Box, false, ValueKind::Laplacian);
        let g = a.to_graph();
        // Center vertex (2,2,2) has the full 26-neighborhood.
        let center = 2 + 5 * (2 + 5 * 2);
        assert_eq!(g.degree(center), 26);
        // A corner has 7 neighbors.
        assert_eq!(g.degree(0), 7);
    }

    #[test]
    fn star_stencil_interior_degree_is_6() {
        let a = grid_spd::<f64>(5, 5, 5, Stencil::Star, false, ValueKind::Laplacian);
        let g = a.to_graph();
        let center = 2 + 5 * (2 + 5 * 2);
        assert_eq!(g.degree(center), 6);
        assert_eq!(g.degree(0), 3);
    }

    #[test]
    fn thread_helix_wraps_into_next_level() {
        // The angular wrap (a = na-1 -> a = 0) must advance h by one:
        // vertex (na-1, 0, 0) connects to (0, 0, 1).
        let (na, nr, nh) = (6usize, 2usize, 4usize);
        let a = thread_spd::<f64>(na, nr, nh, ValueKind::Laplacian);
        let idx = |aa: usize, r: usize, h: usize| aa + na * (r + nr * h);
        assert!(a.get(idx(na - 1, 0, 0), idx(0, 0, 1)) != 0.0, "helical edge missing");
        // And NOT to (0, 0, 0) — that would be a plain periodic wrap.
        assert_eq!(a.get(idx(na - 1, 0, 0), idx(0, 0, 0)), 0.0);
    }

    #[test]
    fn one_dimensional_grids_degenerate_gracefully() {
        let a = grid_spd::<f64>(10, 1, 1, Stencil::Box, false, ValueKind::Laplacian);
        let g = a.to_graph();
        g.validate().unwrap();
        assert_eq!(g.n_edges(), 9);
    }

    #[test]
    fn random_values_are_deterministic_per_seed() {
        let a = grid_spd::<f64>(4, 4, 1, Stencil::Star, false, ValueKind::RandomSpd(7));
        let b = grid_spd::<f64>(4, 4, 1, Stencil::Star, false, ValueKind::RandomSpd(7));
        assert_eq!(a, b);
        let c = grid_spd::<f64>(4, 4, 1, Stencil::Star, false, ValueKind::RandomSpd(8));
        assert_ne!(a, c);
    }
}
