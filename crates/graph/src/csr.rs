//! Compressed adjacency graphs.
//!
//! [`CsrGraph`] is the undirected adjacency structure the ordering phase
//! works on: symmetric, no self-loops, neighbor lists sorted. It is the
//! graph of the matrix pattern `A + Aᵀ` with the diagonal removed.

use crate::perm::Permutation;

/// Undirected graph in compressed sparse row form.
///
/// ```
/// use pastix_graph::CsrGraph;
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbors(0), &[1, 3]);
/// assert_eq!(g.n_edges(), 4);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    xadj: Vec<usize>,
    adjncy: Vec<u32>,
}

impl CsrGraph {
    /// Builds from raw CSR arrays. Panics if the structure is malformed
    /// (unsorted neighbor lists, self-loops, asymmetry are *not* checked
    /// here — use [`CsrGraph::validate`] in tests).
    pub fn from_parts(xadj: Vec<usize>, adjncy: Vec<u32>) -> Self {
        assert!(!xadj.is_empty(), "xadj must have n+1 entries");
        assert_eq!(*xadj.last().unwrap(), adjncy.len());
        Self { xadj, adjncy }
    }

    /// Builds from an edge list (undirected; duplicates and self-loops are
    /// removed).
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut deg = vec![0usize; n];
        for &(u, v) in edges {
            if u == v {
                continue;
            }
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut xadj = vec![0usize; n + 1];
        for i in 0..n {
            xadj[i + 1] = xadj[i] + deg[i];
        }
        let mut adjncy = vec![0u32; xadj[n]];
        let mut fill = xadj.clone();
        for &(u, v) in edges {
            if u == v {
                continue;
            }
            adjncy[fill[u as usize]] = v;
            fill[u as usize] += 1;
            adjncy[fill[v as usize]] = u;
            fill[v as usize] += 1;
        }
        // Sort and dedupe each neighbor list.
        let mut out_xadj = vec![0usize; n + 1];
        let mut out_adj = Vec::with_capacity(adjncy.len());
        for i in 0..n {
            let row = &mut adjncy[xadj[i]..xadj[i + 1]];
            row.sort_unstable();
            let mut prev = u32::MAX;
            for &v in row.iter() {
                if v != prev {
                    out_adj.push(v);
                    prev = v;
                }
            }
            out_xadj[i + 1] = out_adj.len();
        }
        Self {
            xadj: out_xadj,
            adjncy: out_adj,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of (directed) adjacency entries, i.e. twice the edge count.
    #[inline]
    pub fn n_adj(&self) -> usize {
        self.adjncy.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Neighbor list of vertex `u`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.adjncy[self.xadj[u]..self.xadj[u + 1]]
    }

    /// Degree of vertex `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.xadj[u + 1] - self.xadj[u]
    }

    /// Raw `xadj` array (length `n + 1`).
    #[inline]
    pub fn xadj(&self) -> &[usize] {
        &self.xadj
    }

    /// Raw adjacency array.
    #[inline]
    pub fn adjncy(&self) -> &[u32] {
        &self.adjncy
    }

    /// Full structural validation: sorted, deduplicated, loop-free,
    /// symmetric. Quadratic-ish; intended for tests.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n();
        for u in 0..n {
            let nb = self.neighbors(u);
            for w in nb.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("neighbors of {u} not strictly sorted"));
                }
            }
            for &v in nb {
                if v as usize >= n {
                    return Err(format!("edge ({u},{v}) out of range"));
                }
                if v as usize == u {
                    return Err(format!("self-loop at {u}"));
                }
                if self.neighbors(v as usize).binary_search(&(u as u32)).is_err() {
                    return Err(format!("edge ({u},{v}) not symmetric"));
                }
            }
        }
        Ok(())
    }

    /// Renumbers the graph: vertex `new` of the result is vertex
    /// `perm[new]` of `self`.
    pub fn permuted(&self, p: &Permutation) -> CsrGraph {
        let n = self.n();
        assert_eq!(p.len(), n);
        let mut xadj = vec![0usize; n + 1];
        for new in 0..n {
            xadj[new + 1] = xadj[new] + self.degree(p.old_of(new));
        }
        let mut adjncy = vec![0u32; xadj[n]];
        for new in 0..n {
            let old = p.old_of(new);
            let dst = &mut adjncy[xadj[new]..xadj[new + 1]];
            for (d, &v) in dst.iter_mut().zip(self.neighbors(old)) {
                *d = p.new_of(v as usize) as u32;
            }
            dst.sort_unstable();
        }
        CsrGraph { xadj, adjncy }
    }

    /// Extracts the subgraph induced by `verts` (which must be sorted and
    /// unique). Returns the subgraph together with the local→global map
    /// (`verts` itself serves as that map).
    pub fn induced_subgraph(&self, verts: &[u32]) -> CsrGraph {
        let mut local = vec![u32::MAX; self.n()];
        for (loc, &g) in verts.iter().enumerate() {
            local[g as usize] = loc as u32;
        }
        let mut xadj = vec![0usize; verts.len() + 1];
        let mut adjncy = Vec::new();
        for (loc, &g) in verts.iter().enumerate() {
            for &v in self.neighbors(g as usize) {
                let lv = local[v as usize];
                if lv != u32::MAX {
                    adjncy.push(lv);
                }
            }
            xadj[loc + 1] = adjncy.len();
        }
        CsrGraph { xadj, adjncy }
    }

    /// Connected components; returns `(component id per vertex, count)`.
    pub fn connected_components(&self) -> (Vec<u32>, usize) {
        let n = self.n();
        let mut comp = vec![u32::MAX; n];
        let mut stack = Vec::new();
        let mut nc = 0u32;
        for s in 0..n {
            if comp[s] != u32::MAX {
                continue;
            }
            comp[s] = nc;
            stack.push(s as u32);
            while let Some(u) = stack.pop() {
                for &v in self.neighbors(u as usize) {
                    if comp[v as usize] == u32::MAX {
                        comp[v as usize] = nc;
                        stack.push(v);
                    }
                }
            }
            nc += 1;
        }
        (comp, nc as usize)
    }

    /// Breadth-first levels from a seed; returns `(level per vertex
    /// (u32::MAX if unreachable), eccentricity, last visited vertex)`.
    pub fn bfs_levels(&self, seed: usize) -> (Vec<u32>, u32, usize) {
        let n = self.n();
        let mut level = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        level[seed] = 0;
        queue.push_back(seed as u32);
        let mut last = seed;
        let mut ecc = 0;
        while let Some(u) = queue.pop_front() {
            let lu = level[u as usize];
            last = u as usize;
            ecc = lu;
            for &v in self.neighbors(u as usize) {
                if level[v as usize] == u32::MAX {
                    level[v as usize] = lu + 1;
                    queue.push_back(v);
                }
            }
        }
        (level, ecc, last)
    }

    /// A pseudo-peripheral vertex found by repeated BFS sweeps (the classic
    /// Gibbs–Poole–Stockmeyer device; used to seed bisection growing).
    pub fn pseudo_peripheral(&self, seed: usize) -> usize {
        let mut u = seed;
        let (_, mut ecc, mut far) = self.bfs_levels(u);
        for _ in 0..4 {
            let (_, e2, f2) = self.bfs_levels(far);
            if e2 > ecc {
                ecc = e2;
                u = far;
                far = f2;
            } else {
                return far;
            }
        }
        let _ = u;
        far
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> CsrGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn from_edges_dedupes_and_sorts() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 2)]);
        assert_eq!(g.n(), 3);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.n_edges(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn permuted_preserves_structure() {
        let g = path(4);
        let p = Permutation::from_perm(vec![3, 1, 2, 0]);
        let h = g.permuted(&p);
        h.validate().unwrap();
        assert_eq!(h.n_edges(), g.n_edges());
        // new vertex 0 = old 3, which had one neighbor (old 2 = new 2).
        assert_eq!(h.neighbors(0), &[2]);
    }

    #[test]
    fn induced_subgraph_of_path() {
        let g = path(5);
        let sub = g.induced_subgraph(&[1, 2, 4]);
        sub.validate().unwrap();
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.neighbors(0), &[1]); // 1-2 edge survives
        assert_eq!(sub.neighbors(2), &[] as &[u32]); // 4 is isolated
    }

    #[test]
    fn components() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (2, 3)]);
        let (comp, nc) = g.connected_components();
        assert_eq!(nc, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[4]);
    }

    #[test]
    fn bfs_on_path() {
        let g = path(6);
        let (level, ecc, last) = g.bfs_levels(0);
        assert_eq!(ecc, 5);
        assert_eq!(last, 5);
        assert_eq!(level[3], 3);
    }

    #[test]
    fn pseudo_peripheral_on_path_is_endpoint() {
        let g = path(9);
        let v = g.pseudo_peripheral(4);
        assert!(v == 0 || v == 8, "got {v}");
    }

    #[test]
    fn validate_catches_asymmetry() {
        let g = CsrGraph::from_parts(vec![0, 1, 1], vec![1]);
        assert!(g.validate().is_err());
    }
}
