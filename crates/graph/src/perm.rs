//! Symmetric permutations.
//!
//! Convention (the one used by Scotch and PaStiX): `perm[new] = old` lists
//! the original indices in elimination order, and `invp[old] = new` gives
//! each original vertex its elimination rank. Applying a permutation to a
//! matrix `A` produces `A'` with `A'(i, j) = A(perm[i], perm[j])`.

/// A permutation of `0..n` with its inverse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<u32>,
    invp: Vec<u32>,
}

impl Permutation {
    /// Identity permutation of order `n`.
    pub fn identity(n: usize) -> Self {
        let perm: Vec<u32> = (0..n as u32).collect();
        Self {
            invp: perm.clone(),
            perm,
        }
    }

    /// Builds from `perm[new] = old`. Panics if `perm` is not a permutation
    /// of `0..perm.len()`.
    pub fn from_perm(perm: Vec<u32>) -> Self {
        let n = perm.len();
        let mut invp = vec![u32::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            let old = old as usize;
            assert!(old < n, "index {old} out of range {n}");
            assert!(invp[old] == u32::MAX, "duplicate index {old}");
            invp[old] = new as u32;
        }
        Self { perm, invp }
    }

    /// Builds from `invp[old] = new`.
    pub fn from_invp(invp: Vec<u32>) -> Self {
        let n = invp.len();
        let mut perm = vec![u32::MAX; n];
        for (old, &new) in invp.iter().enumerate() {
            let new = new as usize;
            assert!(new < n, "rank {new} out of range {n}");
            assert!(perm[new] == u32::MAX, "duplicate rank {new}");
            perm[new] = old as u32;
        }
        Self { perm, invp }
    }

    /// Order of the permutation.
    #[inline]
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True for the empty permutation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// `perm[new] = old` view.
    #[inline]
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// `invp[old] = new` view.
    #[inline]
    pub fn invp(&self) -> &[u32] {
        &self.invp
    }

    /// Original index eliminated at rank `new`.
    #[inline]
    pub fn old_of(&self, new: usize) -> usize {
        self.perm[new] as usize
    }

    /// Elimination rank of original index `old`.
    #[inline]
    pub fn new_of(&self, old: usize) -> usize {
        self.invp[old] as usize
    }

    /// Composition: first apply `self`, then `other` (which permutes the
    /// *new* index space of `self`). The result maps `newest → old` via
    /// `perm[newest] = self.perm[other.perm[newest]]`.
    pub fn then(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len());
        let perm = other
            .perm
            .iter()
            .map(|&mid| self.perm[mid as usize])
            .collect();
        Permutation::from_perm(perm)
    }

    /// Permutes a data vector from old to new numbering:
    /// `out[new] = data[perm[new]]`.
    pub fn apply_vec<T: Copy>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.len());
        self.perm.iter().map(|&old| data[old as usize]).collect()
    }

    /// Scatters a solution vector back to the original numbering:
    /// `out[old] = data[invp[old]]`.
    pub fn unapply_vec<T: Copy>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.len());
        self.invp.iter().map(|&new| data[new as usize]).collect()
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            perm: self.invp.clone(),
            invp: self.perm.clone(),
        }
    }

    /// Validates internal consistency (used by tests and debug assertions).
    pub fn validate(&self) -> bool {
        self.perm.len() == self.invp.len()
            && self
                .perm
                .iter()
                .enumerate()
                .all(|(new, &old)| self.invp[old as usize] as usize == new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(5);
        assert!(p.validate());
        assert_eq!(p.old_of(3), 3);
        assert_eq!(p.new_of(4), 4);
    }

    #[test]
    fn from_perm_and_invp_agree() {
        let p1 = Permutation::from_perm(vec![2, 0, 1]);
        let p2 = Permutation::from_invp(vec![1, 2, 0]);
        assert_eq!(p1, p2);
        assert!(p1.validate());
    }

    #[test]
    fn apply_unapply_are_inverse() {
        let p = Permutation::from_perm(vec![3, 1, 0, 2]);
        let data = vec![10, 11, 12, 13];
        let new = p.apply_vec(&data);
        assert_eq!(new, vec![13, 11, 10, 12]);
        assert_eq!(p.unapply_vec(&new), data);
    }

    #[test]
    fn composition() {
        let p = Permutation::from_perm(vec![1, 2, 0]);
        let q = Permutation::from_perm(vec![2, 0, 1]);
        let r = p.then(&q);
        // r.perm[i] = p.perm[q.perm[i]]
        assert_eq!(r.perm(), &[0, 1, 2]);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_perm(vec![4, 0, 3, 1, 2]);
        let id = p.then(&p.inverse());
        // then(inverse) gives identity only when applied the right way round;
        // check both orders produce valid permutations and one is identity.
        let id2 = p.inverse().then(&p);
        assert!(id.validate() && id2.validate());
        assert!(id.perm() == Permutation::identity(5).perm() || id2.perm() == Permutation::identity(5).perm());
    }

    #[test]
    #[should_panic(expected = "duplicate index")]
    fn rejects_duplicates() {
        let _ = Permutation::from_perm(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = Permutation::from_perm(vec![0, 5, 1]);
    }
}
