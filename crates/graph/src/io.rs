//! Matrix file formats: Harwell-Boeing RSA and MatrixMarket.
//!
//! The paper's experiments read *"a collection of sparse matrices in the RSA
//! format"* — Harwell-Boeing real symmetric assembled. This module provides
//! a reader/writer for that fixed-column Fortran format (a practical subset:
//! `I`, `E`, `D`, `F` edit descriptors with optional repeat counts and `P`
//! scale factors) plus the simpler MatrixMarket coordinate format used by
//! modern collections.

use crate::matrix::SymCsc;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors raised by the matrix readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Structural or syntactic problem in the file, with a description.
    Parse(String),
    /// The file is valid but of an unsupported kind (e.g. unassembled or
    /// pattern-only Harwell-Boeing, non-symmetric MatrixMarket).
    Unsupported(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse(s) => write!(f, "parse error: {s}"),
            IoError::Unsupported(s) => write!(f, "unsupported: {s}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> IoError {
    IoError::Parse(msg.into())
}

/// A parsed Fortran edit descriptor such as `(10I8)` or `(1P,4E20.12)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FortranFormat {
    /// Fields per line.
    pub per_line: usize,
    /// Field width in characters.
    pub width: usize,
    /// True for numeric (E/D/F) fields, false for integer (I) fields.
    pub is_real: bool,
}

impl FortranFormat {
    /// Parses a descriptor like `(10I8)`, `(5E16.8)`, `(1P,4D25.16)`,
    /// `(4(F20.12))`. Whitespace is ignored.
    pub fn parse(s: &str) -> Result<FortranFormat, IoError> {
        let cleaned: String = s
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect::<String>()
            .to_ascii_uppercase();
        let inner = cleaned
            .strip_prefix('(')
            .and_then(|t| t.strip_suffix(')'))
            .ok_or_else(|| parse_err(format!("format not parenthesized: {s:?}")))?;
        // Drop a leading scale factor "1P," or "1P" and nested parens.
        let mut body = inner;
        if let Some(pos) = body.find('P') {
            // Everything up to and including P must be a signed integer.
            let head = &body[..pos];
            if head.chars().all(|c| c.is_ascii_digit() || c == '-' || c == '+') {
                body = body[pos + 1..].trim_start_matches(',');
            }
        }
        let body = body.replace(['(', ')'], "");
        // Now expect [repeat]LETTER width [. d]
        let letter_pos = body
            .find(['I', 'E', 'D', 'F', 'G'])
            .ok_or_else(|| parse_err(format!("no edit letter in {s:?}")))?;
        let repeat: usize = if letter_pos == 0 {
            1
        } else {
            body[..letter_pos]
                .parse()
                .map_err(|_| parse_err(format!("bad repeat count in {s:?}")))?
        };
        let letter = body.as_bytes()[letter_pos] as char;
        let tail = &body[letter_pos + 1..];
        let width_str = tail.split('.').next().unwrap_or("");
        let width: usize = width_str
            .parse()
            .map_err(|_| parse_err(format!("bad width in {s:?}")))?;
        Ok(FortranFormat {
            per_line: repeat.max(1),
            width,
            is_real: letter != 'I',
        })
    }
}

/// Parses a Fortran-formatted real token, accepting `D` exponents and the
/// exponent-letter-free form `1.234-05`.
fn parse_fortran_real(tok: &str) -> Result<f64, IoError> {
    let t = tok.trim().replace(['D', 'd'], "E");
    if let Ok(v) = t.parse::<f64>() {
        return Ok(v);
    }
    // Handle "1.234-05" / "1.234+05": insert the missing 'E'.
    if let Some(pos) = t[1..].find(['+', '-']).map(|p| p + 1) {
        if !t[..pos].ends_with(['E', 'e']) {
            let fixed = format!("{}E{}", &t[..pos], &t[pos..]);
            if let Ok(v) = fixed.parse::<f64>() {
                return Ok(v);
            }
        }
    }
    Err(parse_err(format!("bad real token {tok:?}")))
}

/// Reads `count` fixed-width fields laid out `fmt.per_line` per line.
fn read_fixed_fields<R: BufRead>(
    reader: &mut R,
    fmt: FortranFormat,
    count: usize,
) -> Result<Vec<String>, IoError> {
    let mut out = Vec::with_capacity(count);
    let mut line = String::new();
    while out.len() < count {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(parse_err("unexpected end of file in data section"));
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        let take = (count - out.len()).min(fmt.per_line);
        for f in 0..take {
            let start = f * fmt.width;
            if start >= trimmed.len() {
                break;
            }
            let end = (start + fmt.width).min(trimmed.len());
            let tok = trimmed[start..end].trim();
            if !tok.is_empty() {
                out.push(tok.to_string());
            }
        }
    }
    if out.len() != count {
        return Err(parse_err(format!("expected {count} fields, got {}", out.len())));
    }
    Ok(out)
}

/// Reads a Harwell-Boeing RSA file into a [`SymCsc<f64>`].
///
/// Accepts matrix types `RSA` (real symmetric assembled) and `PSA`
/// (pattern symmetric; all values set to 1.0 off-diagonal). Upper-triangle
/// files are mirrored onto the lower triangle.
pub fn read_rsa<R: Read>(reader: R) -> Result<SymCsc<f64>, IoError> {
    let mut r = BufReader::new(reader);
    let mut line = String::new();

    // Header line 1: title + key.
    r.read_line(&mut line)?;
    line.clear();

    // Header line 2: card counts.
    r.read_line(&mut line)?;
    let counts: Vec<i64> = line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| parse_err("bad card count")))
        .collect::<Result<_, _>>()?;
    if counts.len() < 4 {
        return Err(parse_err("header line 2 needs >= 4 counts"));
    }
    let rhscrd = if counts.len() >= 5 { counts[4] } else { 0 };
    line.clear();

    // Header line 3: type + dims.
    r.read_line(&mut line)?;
    let mxtype = line.get(0..3).unwrap_or("").to_ascii_uppercase();
    if !(mxtype.starts_with("RS") || mxtype.starts_with("PS")) {
        return Err(IoError::Unsupported(format!("matrix type {mxtype:?}")));
    }
    if mxtype.ends_with('E') {
        return Err(IoError::Unsupported("elemental (unassembled) matrices".into()));
    }
    let dims: Vec<i64> = line[3..]
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| parse_err("bad dimension")))
        .collect::<Result<_, _>>()?;
    if dims.len() < 3 {
        return Err(parse_err("header line 3 needs nrow ncol nnzero"));
    }
    let (nrow, ncol, nnz) = (dims[0] as usize, dims[1] as usize, dims[2] as usize);
    if nrow != ncol {
        return Err(IoError::Unsupported("rectangular symmetric file".into()));
    }
    let is_pattern = mxtype.starts_with("PS");
    line.clear();

    // Header line 4: formats.
    r.read_line(&mut line)?;
    let fmts: Vec<&str> = line.split_whitespace().collect();
    if fmts.len() < 2 || (!is_pattern && fmts.len() < 3) {
        return Err(parse_err("header line 4 needs pointer/index/value formats"));
    }
    let ptrfmt = FortranFormat::parse(fmts[0])?;
    let indfmt = FortranFormat::parse(fmts[1])?;
    let valfmt = if is_pattern { None } else { Some(FortranFormat::parse(fmts[2])?) };
    line.clear();

    // Optional header line 5 (RHS descriptor) — skip.
    if rhscrd > 0 {
        r.read_line(&mut line)?;
        line.clear();
    }

    // Data sections.
    let colptr_raw = read_fixed_fields(&mut r, ptrfmt, ncol + 1)?;
    let rowind_raw = read_fixed_fields(&mut r, indfmt, nnz)?;
    let values: Vec<f64> = match valfmt {
        Some(vf) => read_fixed_fields(&mut r, vf, nnz)?
            .iter()
            .map(|t| parse_fortran_real(t))
            .collect::<Result<_, _>>()?,
        None => vec![1.0; nnz],
    };

    let colptr: Vec<usize> = colptr_raw
        .iter()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|_| parse_err(format!("bad pointer {t:?}")))
                .map(|v| v - 1) // 1-based → 0-based
        })
        .collect::<Result<_, _>>()?;
    let mut triplets = Vec::with_capacity(nnz);
    for j in 0..ncol {
        for idx in colptr[j]..colptr[j + 1] {
            let i: usize = rowind_raw[idx]
                .parse::<usize>()
                .map_err(|_| parse_err(format!("bad index {:?}", rowind_raw[idx])))?
                - 1;
            triplets.push((i as u32, j as u32, values[idx]));
        }
    }
    Ok(SymCsc::from_triplets(ncol, &triplets))
}

/// Writes a matrix as a Harwell-Boeing RSA file (lower triangle, formats
/// `(10I8)` / `(4E20.12)`; pointer width grows automatically for large
/// matrices).
pub fn write_rsa<W: Write>(mut w: W, a: &SymCsc<f64>, title: &str, key: &str) -> Result<(), IoError> {
    let n = a.n();
    let nnz = a.nnz_stored();
    let iw = format!("{}", nnz.max(n) + 1).len().max(8);
    let per_i = 80 / iw;
    let per_v = 4usize;
    let vw = 20usize;

    let ptr_lines = (n + 1).div_ceil(per_i);
    let ind_lines = nnz.div_ceil(per_i).max(1);
    let val_lines = nnz.div_ceil(per_v).max(1);
    let total = ptr_lines + ind_lines + val_lines;

    let mut s = String::new();
    let title72 = format!("{title:<72.72}");
    let key8 = format!("{key:<8.8}");
    writeln!(s, "{title72}{key8}").unwrap();
    writeln!(s, "{total:14}{ptr_lines:14}{ind_lines:14}{val_lines:14}{:14}", 0).unwrap();
    writeln!(s, "RSA{:11}{n:14}{n:14}{nnz:14}{:14}", "", 0).unwrap();
    writeln!(
        s,
        "{:<16}{:<16}{:<20}{:<20}",
        format!("({per_i}I{iw})"),
        format!("({per_i}I{iw})"),
        format!("({per_v}E{vw}.12)"),
        ""
    )
    .unwrap();

    let write_ints = |s: &mut String, ints: &mut dyn Iterator<Item = usize>| {
        let mut cnt = 0;
        for v in ints {
            write!(s, "{:>iw$}", v, iw = iw).unwrap();
            cnt += 1;
            if cnt % per_i == 0 {
                s.push('\n');
            }
        }
        if cnt % per_i != 0 {
            s.push('\n');
        }
    };
    write_ints(&mut s, &mut a.colptr().iter().map(|&p| p + 1));
    write_ints(&mut s, &mut a.rowind().iter().map(|&i| i as usize + 1));

    let mut cnt = 0;
    for &v in a.values() {
        write!(s, "{:>vw$.12E}", v, vw = vw).unwrap();
        cnt += 1;
        if cnt % per_v == 0 {
            s.push('\n');
        }
    }
    if cnt % per_v != 0 {
        s.push('\n');
    }
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Reads a MatrixMarket `coordinate real symmetric` (or `integer` /
/// `pattern` symmetric) file.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<SymCsc<f64>, IoError> {
    let mut r = BufReader::new(reader);
    let mut line = String::new();
    r.read_line(&mut line)?;
    let header = line.to_ascii_lowercase();
    if !header.starts_with("%%matrixmarket") {
        return Err(parse_err("missing MatrixMarket banner"));
    }
    if !header.contains("coordinate") {
        return Err(IoError::Unsupported("dense (array) MatrixMarket files".into()));
    }
    let is_pattern = header.contains("pattern");
    if !header.contains("symmetric") {
        return Err(IoError::Unsupported(
            "only symmetric MatrixMarket matrices are accepted".into(),
        ));
    }
    // Skip comments.
    let (n, nnz) = loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(parse_err("missing size line"));
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<usize> = t
            .split_whitespace()
            .map(|x| x.parse().map_err(|_| parse_err("bad size line")))
            .collect::<Result<_, _>>()?;
        if parts.len() != 3 {
            return Err(parse_err("size line needs nrow ncol nnz"));
        }
        if parts[0] != parts[1] {
            return Err(IoError::Unsupported("rectangular symmetric file".into()));
        }
        break (parts[0], parts[2]);
    };
    let mut triplets = Vec::with_capacity(nnz);
    let mut seen = 0usize;
    while seen < nnz {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(parse_err(format!("expected {nnz} entries, got {seen}")));
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| parse_err("short entry line"))?
            .parse()
            .map_err(|_| parse_err("bad row index"))?;
        let j: usize = it
            .next()
            .ok_or_else(|| parse_err("short entry line"))?
            .parse()
            .map_err(|_| parse_err("bad col index"))?;
        let v: f64 = if is_pattern {
            1.0
        } else {
            parse_fortran_real(it.next().ok_or_else(|| parse_err("missing value"))?)?
        };
        if i == 0 || j == 0 || i > n || j > n {
            return Err(parse_err(format!("entry ({i},{j}) out of range")));
        }
        triplets.push(((i - 1) as u32, (j - 1) as u32, v));
        seen += 1;
    }
    Ok(SymCsc::from_triplets(n, &triplets))
}

/// Writes a MatrixMarket `coordinate real symmetric` file (lower triangle).
pub fn write_matrix_market<W: Write>(mut w: W, a: &SymCsc<f64>) -> Result<(), IoError> {
    let mut s = String::new();
    writeln!(s, "%%MatrixMarket matrix coordinate real symmetric").unwrap();
    writeln!(s, "% written by pastix-graph").unwrap();
    writeln!(s, "{} {} {}", a.n(), a.n(), a.nnz_stored()).unwrap();
    for j in 0..a.n() {
        for (&i, &v) in a.rows_of(j).iter().zip(a.vals_of(j)) {
            writeln!(s, "{} {} {:.16e}", i + 1, j + 1, v).unwrap();
        }
    }
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Convenience: read either format based on the file extension
/// (`.rsa`/`.rua`/`.hb` → Harwell-Boeing, `.mtx`/`.mm` → MatrixMarket).
pub fn read_path(path: &Path) -> Result<SymCsc<f64>, IoError> {
    let f = std::fs::File::open(path)?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("mtx") | Some("mm") => read_matrix_market(f),
        _ => read_rsa(f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SymCsc<f64> {
        SymCsc::from_triplets(
            3,
            &[
                (0, 0, 4.0),
                (1, 0, 1.5),
                (1, 1, 5.25),
                (2, 1, -2.0e-3),
                (2, 2, 6.0e7),
            ],
        )
    }

    #[test]
    fn format_parser() {
        assert_eq!(
            FortranFormat::parse("(10I8)").unwrap(),
            FortranFormat { per_line: 10, width: 8, is_real: false }
        );
        assert_eq!(
            FortranFormat::parse("(5E16.8)").unwrap(),
            FortranFormat { per_line: 5, width: 16, is_real: true }
        );
        assert_eq!(
            FortranFormat::parse("(1P,4D25.16)").unwrap(),
            FortranFormat { per_line: 4, width: 25, is_real: true }
        );
        assert_eq!(
            FortranFormat::parse("(4(F20.12))").unwrap(),
            FortranFormat { per_line: 4, width: 20, is_real: true }
        );
        assert!(FortranFormat::parse("garbage").is_err());
    }

    #[test]
    fn fortran_reals() {
        assert_eq!(parse_fortran_real("1.5").unwrap(), 1.5);
        assert_eq!(parse_fortran_real("1.0D+02").unwrap(), 100.0);
        assert_eq!(parse_fortran_real("2.5E-03").unwrap(), 0.0025);
        assert_eq!(parse_fortran_real("1.25-2").unwrap(), 0.0125);
        assert_eq!(parse_fortran_real("-3.0+1").unwrap(), -30.0);
        assert!(parse_fortran_real("xyz").is_err());
    }

    #[test]
    fn rsa_roundtrip() {
        let a = tiny();
        let mut buf = Vec::new();
        write_rsa(&mut buf, &a, "tiny test matrix", "TINY").unwrap();
        let b = read_rsa(&buf[..]).unwrap();
        assert_eq!(a.n(), b.n());
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (a.get(i, j) - b.get(i, j)).abs() <= 1e-9 * a.get(i, j).abs().max(1.0),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn matrix_market_roundtrip() {
        let a = tiny();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn matrix_market_pattern() {
        let src = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 4\n1 1\n2 1\n3 2\n3 3\n";
        let a = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(a.get(1, 0), 1.0);
        assert_eq!(a.get(2, 2), 1.0);
        assert_eq!(a.nnz_stored(), 4);
    }

    #[test]
    fn matrix_market_rejects_general() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n";
        assert!(matches!(
            read_matrix_market(src.as_bytes()),
            Err(IoError::Unsupported(_))
        ));
    }

    #[test]
    fn rsa_rejects_unsymmetric() {
        let src = "\
title                                                                   key     \n\
             3             1             1             1             0\n\
RUA                         2             2             2             0\n\
(10I8)          (10I8)          (4E20.12)           \n\
       1       2       3\n\
       1       2\n\
  1.0                 2.0\n";
        assert!(matches!(read_rsa(src.as_bytes()), Err(IoError::Unsupported(_))));
    }

    #[test]
    fn rsa_pattern_file() {
        let src = "\
pattern test                                                            key     \n\
             3             1             1             1             0\n\
PSA                         2             2             3             0\n\
(10I8)          (10I8)\n\
       1       3       4\n\
       1       2       2\n";
        let a = read_rsa(src.as_bytes()).unwrap();
        assert_eq!(a.n(), 2);
        assert_eq!(a.get(1, 0), 1.0);
    }

    #[test]
    fn rsa_truncated_file_is_parse_error() {
        let src = "\
title                                                                   key     \n\
             3             1             1             1             0\n\
RSA                         3             3             5             0\n\
(10I8)          (10I8)          (4E20.12)           \n\
       1       3\n";
        assert!(matches!(read_rsa(src.as_bytes()), Err(IoError::Parse(_))));
    }

    #[test]
    fn rsa_bad_format_descriptor() {
        let src = "\
title                                                                   key     \n\
             3             1             1             1             0\n\
RSA                         2             2             2             0\n\
(oops)          (10I8)          (4E20.12)           \n";
        assert!(read_rsa(src.as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_out_of_range_entry() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n5 1 1.0\n";
        assert!(matches!(read_matrix_market(src.as_bytes()), Err(IoError::Parse(_))));
    }

    #[test]
    fn matrix_market_comments_and_blank_lines() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n% a comment\n\n2 2 2\n% another\n1 1 3.0\n2 1 -1.0\n";
        let a = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(1, 0), -1.0);
    }

    #[test]
    fn io_error_display() {
        let e = IoError::Parse("boom".into());
        assert!(format!("{e}").contains("boom"));
        let u = IoError::Unsupported("thing".into());
        assert!(format!("{u}").contains("thing"));
    }

    #[test]
    fn bigger_roundtrip_through_rsa() {
        let a = crate::gen::grid_spd::<f64>(
            6,
            5,
            1,
            crate::gen::Stencil::Box,
            false,
            crate::gen::ValueKind::RandomSpd(9),
        );
        let mut buf = Vec::new();
        write_rsa(&mut buf, &a, "grid", "GRID").unwrap();
        let b = read_rsa(&buf[..]).unwrap();
        assert_eq!(a.n(), b.n());
        assert_eq!(a.nnz_stored(), b.nnz_stored());
        for j in 0..a.n() {
            for (&i, &v) in a.rows_of(j).iter().zip(a.vals_of(j)) {
                let got = b.get(i as usize, j);
                assert!((v - got).abs() <= 1e-9 * v.abs().max(1.0));
            }
        }
    }
}
