//! Deterministic parallelism policy and helpers for the analyze phase.
//!
//! Every analyze stage (ordering, symbolic, scheduling) takes the same
//! [`Parallelism`] knob and must produce **bitwise-identical** results at
//! every thread count. The helpers here make that easy to get right: work
//! is split into index-contiguous chunks, each chunk writes its own
//! disjoint output slice, and results are combined in index order — the
//! reduction order never depends on thread timing.

/// Environment variable overriding the analyze-phase thread count for a
/// whole deployment (like `PASTIX_WATCHDOG_GAP` for the watchdog): `0` or
/// `auto` selects [`Parallelism::Auto`], `1` forces sequential, any other
/// number caps the fan-out at that many threads.
pub const ANALYZE_THREADS_ENV: &str = "PASTIX_ANALYZE_THREADS";

/// How much parallelism an analyze stage may use.
///
/// The choice never changes results — only wall-clock time. `Auto` sizes
/// the fan-out to the host's available parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Strictly sequential: no threads are spawned anywhere.
    Sequential,
    /// Fan out over at most this many threads (1 behaves like
    /// `Sequential`).
    Threads(usize),
    /// Use the host's available parallelism.
    #[default]
    Auto,
}

impl Parallelism {
    /// Resolves the knob to a concrete thread count (≥ 1), honouring the
    /// `PASTIX_ANALYZE_THREADS` environment override when set.
    pub fn effective_threads(self) -> usize {
        if let Some(n) = env_override() {
            return match n {
                0 => rayon::current_num_threads().max(1),
                n => n,
            };
        }
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => rayon::current_num_threads().max(1),
        }
    }
}

fn env_override() -> Option<usize> {
    let raw = std::env::var(ANALYZE_THREADS_ENV).ok()?;
    let raw = raw.trim();
    if raw.is_empty() {
        return None;
    }
    if raw.eq_ignore_ascii_case("auto") {
        return Some(0);
    }
    raw.parse::<usize>().ok()
}

/// Splits `0..n` into at most `threads` contiguous chunks and returns the
/// chunk boundaries (ascending, first 0, last `n`). Chunk shape depends
/// only on `(n, threads)` — never on timing.
pub fn chunk_bounds(n: usize, threads: usize) -> Vec<usize> {
    let threads = threads.max(1).min(n.max(1));
    let mut bounds = Vec::with_capacity(threads + 1);
    bounds.push(0);
    for c in 1..=threads {
        bounds.push(n * c / threads);
    }
    bounds
}

/// Maps `f` over `0..n`, returning results in index order.
///
/// With `threads <= 1` (or trivially small `n`) this is a plain
/// sequential loop; otherwise `0..n` is split into contiguous chunks,
/// each chunk runs on its own scoped thread writing a disjoint slice of
/// the output, and the assembled vector is identical to the sequential
/// result by construction.
pub fn par_map_indexed<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let bounds = chunk_bounds(n, threads);
    let fref = &f;
    rayon::scope(|s| {
        let mut rest: &mut [Option<T>] = &mut out;
        let mut consumed = 0usize;
        for w in bounds.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let (chunk, tail) = rest.split_at_mut(hi - consumed);
            rest = tail;
            consumed = hi;
            s.spawn(move |_| {
                for (slot, i) in chunk.iter_mut().zip(lo..hi) {
                    *slot = Some(fref(i));
                }
            });
        }
    });
    out.into_iter().map(|v| v.expect("par_map_indexed slot")).collect()
}

/// Runs `f` on disjoint contiguous chunks of `data` in parallel; `f`
/// receives the chunk and the index of its first element. Sequential when
/// `threads <= 1`.
pub fn par_chunks_mut<T, F>(threads: usize, data: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut [T], usize) + Sync,
{
    let n = data.len();
    if threads <= 1 || n < 2 {
        f(data, 0);
        return;
    }
    let bounds = chunk_bounds(n, threads);
    let fref = &f;
    rayon::scope(|s| {
        let mut rest: &mut [T] = data;
        let mut consumed = 0usize;
        for w in bounds.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let (chunk, tail) = rest.split_at_mut(hi - consumed);
            rest = tail;
            consumed = hi;
            s.spawn(move |_| fref(chunk, lo));
        }
    });
}

/// Serialises tests that mutate the `PASTIX_ANALYZE_THREADS` env var (the
/// process environment is global state shared across the test harness's
/// threads).
pub static ENV_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for t in [1usize, 2, 3, 8, 200] {
                let b = chunk_bounds(n, t);
                assert_eq!(b[0], 0);
                assert_eq!(*b.last().unwrap(), n);
                assert!(b.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    fn map_matches_sequential_at_any_thread_count() {
        let want: Vec<u64> = (0..257).map(|i| (i as u64) * 3 + 1).collect();
        for t in [1usize, 2, 4, 7, 16] {
            let got = par_map_indexed(t, 257, |i| (i as u64) * 3 + 1);
            assert_eq!(got, want, "threads={t}");
        }
    }

    #[test]
    fn chunks_mut_writes_every_slot() {
        for t in [1usize, 2, 4, 9] {
            let mut data = vec![0u32; 100];
            par_chunks_mut(t, &mut data, |chunk, base| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = (base + j) as u32;
                }
            });
            let want: Vec<u32> = (0..100).collect();
            assert_eq!(data, want, "threads={t}");
        }
    }

    #[test]
    fn effective_threads_resolves() {
        let _guard = ENV_TEST_LOCK.lock().unwrap();
        std::env::remove_var(ANALYZE_THREADS_ENV);
        assert_eq!(Parallelism::Sequential.effective_threads(), 1);
        assert_eq!(Parallelism::Threads(0).effective_threads(), 1);
        assert_eq!(Parallelism::Threads(6).effective_threads(), 6);
        assert!(Parallelism::Auto.effective_threads() >= 1);
    }

    #[test]
    fn env_override_wins() {
        let _guard = ENV_TEST_LOCK.lock().unwrap();
        std::env::set_var(ANALYZE_THREADS_ENV, "3");
        assert_eq!(Parallelism::Sequential.effective_threads(), 3);
        assert_eq!(Parallelism::Threads(8).effective_threads(), 3);
        std::env::set_var(ANALYZE_THREADS_ENV, "auto");
        assert!(Parallelism::Auto.effective_threads() >= 1);
        std::env::remove_var(ANALYZE_THREADS_ENV);
    }
}
