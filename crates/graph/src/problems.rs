//! The paper's test-problem suite, as synthetic analogs.
//!
//! Table 1 of the paper lists ten irregular matrices from structural
//! analysis (the PARASOL collection). The originals are not redistributable;
//! each analog below reproduces the *kind* of mesh (surface shell, shallow
//! plate, 3D solid, helical thread) and is sized by a scale knob so the
//! whole suite runs from unit-test size up to paper-comparable size.
//!
//! | Paper matrix | n (paper) | Analog topology |
//! |--------------|-----------|-----------------|
//! | B5TUER       | 162 610   | long 3D solid (box stencil) |
//! | BMWCRA1      | 148 770   | compact 3D solid (box stencil) |
//! | MT1          | 97 578    | 3D solid, moderate aspect |
//! | OILPAN       | 73 752    | shallow plate, 2 layers |
//! | QUER         | 59 122    | shallow plate |
//! | SHIP001      | 34 920    | cylindrical shell, 1 layer |
//! | SHIP003      | 121 728   | large cylindrical shell |
//! | SHIPSEC5     | 179 860   | shell section, 2 layers |
//! | THREAD       | 29 736    | helical solid (very dense factor) |
//! | X104         | 108 384   | 3D solid |

use crate::gen::{shell_spd, solid_spd, thread_spd, Stencil, ValueKind};
use crate::matrix::SymCsc;
use pastix_kernels::scalar::Scalar;

/// Identifier of one of the ten paper problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProblemId {
    /// B5TUER — long 3D solid.
    B5tuer,
    /// BMWCRA1 — compact 3D solid.
    Bmwcra1,
    /// MT1 — 3D solid with aspect.
    Mt1,
    /// OILPAN — shallow plate with 2 layers.
    Oilpan,
    /// QUER — shallow plate.
    Quer,
    /// SHIP001 — small cylindrical shell.
    Ship001,
    /// SHIP003 — large cylindrical shell.
    Ship003,
    /// SHIPSEC5 — shell section, 2 layers.
    Shipsec5,
    /// THREAD — helical solid.
    Thread,
    /// X104 — 3D solid.
    X104,
}

impl ProblemId {
    /// All ten problems in the paper's table order.
    pub const ALL: [ProblemId; 10] = [
        ProblemId::B5tuer,
        ProblemId::Bmwcra1,
        ProblemId::Mt1,
        ProblemId::Oilpan,
        ProblemId::Quer,
        ProblemId::Ship001,
        ProblemId::Ship003,
        ProblemId::Shipsec5,
        ProblemId::Thread,
        ProblemId::X104,
    ];

    /// Table name as printed by the paper.
    pub fn name(self) -> &'static str {
        match self {
            ProblemId::B5tuer => "B5TUER",
            ProblemId::Bmwcra1 => "BMWCRA1",
            ProblemId::Mt1 => "MT1",
            ProblemId::Oilpan => "OILPAN",
            ProblemId::Quer => "QUER",
            ProblemId::Ship001 => "SHIP001",
            ProblemId::Ship003 => "SHIP003",
            ProblemId::Shipsec5 => "SHIPSEC5",
            ProblemId::Thread => "THREAD",
            ProblemId::X104 => "X104",
        }
    }

    /// Column count of the original matrix (paper's Table 1).
    pub fn paper_columns(self) -> usize {
        match self {
            ProblemId::B5tuer => 162_610,
            ProblemId::Bmwcra1 => 148_770,
            ProblemId::Mt1 => 97_578,
            ProblemId::Oilpan => 73_752,
            ProblemId::Quer => 59_122,
            ProblemId::Ship001 => 34_920,
            ProblemId::Ship003 => 121_728,
            ProblemId::Shipsec5 => 179_860,
            ProblemId::Thread => 29_736,
            ProblemId::X104 => 108_384,
        }
    }

    /// Parse from a (case-insensitive) table name.
    pub fn from_name(s: &str) -> Option<ProblemId> {
        let up = s.to_ascii_uppercase();
        ProblemId::ALL.iter().copied().find(|p| p.name() == up)
    }
}

/// Builds the analog of a paper problem at a given `scale` (1.0 ≈ the
/// original column count; benches default to a fraction of that so the
/// suite completes quickly on a laptop-class machine).
pub fn build_problem<T: Scalar>(id: ProblemId, scale: f64) -> SymCsc<T> {
    assert!(scale > 0.0 && scale <= 4.0, "scale out of range: {scale}");
    // Helper: pick grid dims so nx*ny*nz ≈ target with given aspect ratios.
    let dims = |target: f64, rx: f64, ry: f64, rz: f64| -> (usize, usize, usize) {
        let c = (target / (rx * ry * rz)).powf(1.0 / 3.0);
        let f = |r: f64| ((c * r).round() as usize).max(2);
        (f(rx), f(ry), f(rz))
    };
    let target = id.paper_columns() as f64 * scale;
    let seed = 0xA5A5 ^ (id as u64);
    let vk = ValueKind::RandomSpd(seed);
    match id {
        ProblemId::B5tuer => {
            let (x, y, z) = dims(target, 4.0, 1.0, 0.8);
            solid_spd(x, y, z, Stencil::Box, vk)
        }
        ProblemId::Bmwcra1 => {
            let (x, y, z) = dims(target, 1.3, 1.0, 1.0);
            solid_spd(x, y, z, Stencil::Box, vk)
        }
        ProblemId::Mt1 => {
            let (x, y, z) = dims(target, 2.0, 1.2, 1.0);
            solid_spd(x, y, z, Stencil::Box, vk)
        }
        ProblemId::Oilpan => {
            // Shallow pan: wide plate, 2 layers.
            let side = (target / 2.0).sqrt();
            let nx = (side * 1.4).round() as usize;
            let ny = (side / 1.4).round() as usize;
            solid_spd(nx.max(2), ny.max(2), 2, Stencil::Box, vk)
        }
        ProblemId::Quer => {
            let side = target.sqrt();
            let nx = (side * 1.2).round() as usize;
            let ny = (side / 1.2).round() as usize;
            solid_spd(nx.max(2), ny.max(2), 1, Stencil::Box, vk)
        }
        ProblemId::Ship001 => {
            let circ = (target / 3.0).sqrt();
            let nc = (circ * 1.0).round() as usize;
            let nl = (target / nc as f64).round() as usize;
            shell_spd(nc.max(4), nl.max(4), 1, Stencil::Box, vk)
        }
        ProblemId::Ship003 => {
            let circ = (target / 3.5).sqrt();
            let nc = circ.round() as usize;
            let nl = (target / nc as f64).round() as usize;
            shell_spd(nc.max(4), nl.max(4), 1, Stencil::Box, vk)
        }
        ProblemId::Shipsec5 => {
            let circ = (target / 2.0 / 2.5).sqrt();
            let nc = circ.round() as usize;
            let nl = (target / 2.0 / nc as f64).round() as usize;
            shell_spd(nc.max(4), nl.max(4), 2, Stencil::Box, vk)
        }
        ProblemId::Thread => {
            // Helical solid with a chunky cross-section: highest fill.
            let na = 20.max((target / 60.0).powf(0.38) as usize * 4);
            let nr = ((target / na as f64).sqrt() * 0.8).round() as usize;
            let nh = (target / (na * nr.max(1)) as f64).round() as usize;
            thread_spd(na, nr.max(2), nh.max(2), vk)
        }
        ProblemId::X104 => {
            let (x, y, z) = dims(target, 1.8, 1.0, 0.9);
            solid_spd(x, y, z, Stencil::Box, vk)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for id in ProblemId::ALL {
            assert_eq!(ProblemId::from_name(id.name()), Some(id));
            assert_eq!(ProblemId::from_name(&id.name().to_lowercase()), Some(id));
        }
        assert_eq!(ProblemId::from_name("NOPE"), None);
    }

    #[test]
    fn builds_at_small_scale_with_roughly_right_size() {
        for id in ProblemId::ALL {
            let scale = 0.02;
            let a = build_problem::<f64>(id, scale);
            let target = id.paper_columns() as f64 * scale;
            let n = a.n() as f64;
            assert!(
                n > target * 0.4 && n < target * 2.5,
                "{}: n = {n}, target = {target}",
                id.name()
            );
            a.to_graph().validate().unwrap();
        }
    }

    #[test]
    fn problems_are_connected() {
        for id in ProblemId::ALL {
            let a = build_problem::<f64>(id, 0.02);
            let (_, nc) = a.to_graph().connected_components();
            assert_eq!(nc, 1, "{} disconnected", id.name());
        }
    }

    #[test]
    fn scale_grows_problem_size() {
        for id in [ProblemId::Quer, ProblemId::Thread, ProblemId::Bmwcra1] {
            let small = build_problem::<f64>(id, 0.01);
            let large = build_problem::<f64>(id, 0.04);
            assert!(
                large.n() > small.n(),
                "{}: {} !> {}",
                id.name(),
                large.n(),
                small.n()
            );
        }
    }

    #[test]
    fn shells_sparser_than_solids_per_column() {
        // Structural signature of the suite: a shell analog has fewer
        // off-diagonals per column than a 3D solid analog.
        let shell = build_problem::<f64>(ProblemId::Ship001, 0.02);
        let solid = build_problem::<f64>(ProblemId::Bmwcra1, 0.02);
        let shell_density = shell.nnz_offdiag() as f64 / shell.n() as f64;
        let solid_density = solid.nnz_offdiag() as f64 / solid.n() as f64;
        assert!(shell_density < solid_density, "{shell_density} vs {solid_density}");
    }

    #[test]
    fn deterministic() {
        let a = build_problem::<f64>(ProblemId::Quer, 0.02);
        let b = build_problem::<f64>(ProblemId::Quer, 0.02);
        assert_eq!(a, b);
    }
}
