//! Iterative refinement on top of a (possibly low-rank-compressed)
//! factorization.
//!
//! A block low-rank factor is an *approximate* factorization: each
//! compressed blok carries an `O(tolerance)` truncation error. Classic
//! iterative refinement recovers full working-precision accuracy as long
//! as the approximate factor is a contraction on the error: solve,
//! measure the true residual against the original matrix, solve for the
//! correction, repeat. The loop is exactly as useful on a dense factor of
//! an ill-conditioned system, so it lives on [`FactorRun`] independently
//! of compression.

use crate::config::FactorRun;
use crate::plan::SolveRequest;
use pastix_graph::SymCsc;
use pastix_kernels::Scalar;

/// Knobs of [`FactorRun::solve_refined`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineOptions {
    /// Maximum refinement iterations *after* the initial solve (0 means
    /// plain solve plus one residual measurement).
    pub max_iter: usize,
    /// Stop once the scaled backward error
    /// `‖b − A·x‖_∞ / (‖A‖_∞·‖x‖_∞ + ‖b‖_∞)` drops below this.
    pub target: f64,
}

impl Default for RefineOptions {
    fn default() -> Self {
        Self { max_iter: 8, target: 1e-12 }
    }
}

impl RefineOptions {
    /// Default iteration cap with the given backward-error target.
    pub fn with_target(target: f64) -> Self {
        Self { target, ..Self::default() }
    }
}

/// Result of [`FactorRun::solve_refined`].
#[derive(Debug, Clone)]
pub struct RefineOutput<T> {
    /// The refined solution (original row order, like the input `b`).
    pub x: Vec<T>,
    /// Correction solves performed (0 when the first solve already met
    /// the target).
    pub iterations: usize,
    /// Final scaled backward error.
    pub residual: f64,
}

impl<T: Scalar> FactorRun<T> {
    /// Solves `A·x = b` and iteratively refines the solution against the
    /// *original* (unpermuted) matrix `a` until the scaled backward error
    /// meets `opts.target` or `opts.max_iter` corrections have been
    /// applied. The run's `refine.iterations` counter accumulates the
    /// corrections performed.
    ///
    /// This is the intended solve path for factors produced with
    /// [`CompressionConfig`](crate::CompressionConfig) tolerances looser
    /// than the accuracy the caller needs: each iteration contracts the
    /// error by roughly the compression tolerance times the condition
    /// number, so a handful of cheap compressed solves recovers the
    /// accuracy of the dense factorization.
    pub fn solve_refined(
        &self,
        a: &SymCsc<T>,
        b: &[T],
        opts: &RefineOptions,
    ) -> RefineOutput<T> {
        let n = a.n();
        assert_eq!(b.len(), n, "solve_refined is single-RHS; b must have length n");
        let mut x = self.solve_request(SolveRequest::single(b)).x;
        let mut residual = a.residual_norm(&x, b);
        let mut iterations = 0;
        while residual > opts.target && iterations < opts.max_iter {
            let ax = a.matvec(&x);
            let r: Vec<T> = b.iter().zip(&ax).map(|(&bi, &axi)| bi - axi).collect();
            let dx = self.solve_request(SolveRequest::single(&r)).x;
            for (xi, di) in x.iter_mut().zip(&dx) {
                *xi += *di;
            }
            iterations += 1;
            let next = a.residual_norm(&x, b);
            if !next.is_finite() || next >= residual {
                // Stagnation: the factor is not a contraction at this
                // accuracy any more — keep the best iterate and stop.
                for (xi, di) in x.iter_mut().zip(&dx) {
                    *xi -= *di;
                }
                break;
            }
            residual = next;
        }
        self.metrics.add_counter("refine.iterations", iterations as u64);
        RefineOutput { x, iterations, residual }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{CompressionConfig, CompressionStrategy};
    use crate::config::SolverConfig;
    use crate::plan::Plan;
    use pastix_graph::gen::{grid_spd, Stencil, ValueKind};
    use pastix_graph::{canonical_solution, rhs_for_solution};

    #[test]
    fn refinement_recovers_accuracy_from_loose_factor() {
        let a = grid_spd::<f64>(10, 10, 1, Stencil::Star, false, ValueKind::RandomSpd(7));
        let cfg = SolverConfig::new().with_compression(
            CompressionConfig::with_tolerance(1e-4)
                .min_block(4)
                .strategy(CompressionStrategy::MinimalMemory),
        );
        let plan = Plan::analyze(&a, &cfg);
        let run = plan.factorize(&a, &cfg).unwrap();
        let x_exact = canonical_solution::<f64>(a.n());
        let b = rhs_for_solution(&a, &x_exact);
        let plain = run.solve(&b);
        let plain_res = a.residual_norm(&plain, &b);
        let out = run.solve_refined(&a, &b, &RefineOptions::with_target(1e-12));
        assert!(
            out.residual <= 1e-12 || out.residual < plain_res,
            "refinement should reach the target or at least improve: \
             {} vs plain {plain_res}",
            out.residual
        );
        assert!(out.residual < 1e-10, "refined residual {}", out.residual);
        assert!(run.metrics.counter("refine.iterations") >= out.iterations as u64);
    }

    #[test]
    fn exact_factor_needs_no_iterations() {
        let a = grid_spd::<f64>(6, 6, 1, Stencil::Star, false, ValueKind::RandomSpd(3));
        let cfg = SolverConfig::new();
        let plan = Plan::analyze(&a, &cfg);
        let run = plan.factorize(&a, &cfg).unwrap();
        let x_exact = canonical_solution::<f64>(a.n());
        let b = rhs_for_solution(&a, &x_exact);
        let out = run.solve_refined(&a, &b, &RefineOptions::default());
        assert_eq!(out.iterations, 0, "dense factor meets 1e-12 directly");
        assert!(out.residual <= 1e-12);
    }
}
