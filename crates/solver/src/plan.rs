//! The `Plan` API: one analyze artifact, one factorize call, one solve
//! method.
//!
//! [`Plan::analyze`] runs the whole pre-processing pipeline (ordering →
//! symbolic analysis → block repartitioning → optional static
//! scheduling) and bundles its outputs — fill-reducing permutation, task
//! graph over the split symbol, and an `Option<Schedule>` — behind one
//! cheaply clonable handle. [`Plan::factorize`] dispatches the numeric
//! factorization on whatever backend the [`SolverConfig`] names (the
//! static schedule is *required* by the SPMD backends and merely a
//! placement/priority hint for [`Backend::Dynamic`]), and the returned
//! [`FactorRun`] carries its plan so [`FactorRun::solve_request`] can
//! permute, solve, and unpermute without the caller re-threading the
//! analyze artifacts through every call.
//!
//! Block low-rank compression rides the same flow: when
//! `cfg.compression` is enabled, every backend compresses qualifying
//! off-diagonal bloks during the factorization and the [`FactorRun`]'s
//! solves dispatch on the stored representation transparently (see
//! [`crate::compress`] and [`FactorRun::solve_refined`]).

use crate::config::{FactorRun, SolverConfig};
use crate::dynamic;
use crate::storage::FactorStorage;
use pastix_graph::{Parallelism, Permutation, SymCsc};
use pastix_kernels::factor::FactorError;
use pastix_kernels::Scalar;
use pastix_machine::MachineModel;
use pastix_ordering::OrderingOptions;
use pastix_runtime::Backend;
use pastix_sched::{map_and_schedule, Mapping, SchedOptions, Schedule, TaskGraph};
use pastix_symbolic::{AnalysisOptions, SymbolMatrix};
use pastix_trace::{TraceLog, TraceOptions};
use std::sync::Arc;

/// Pre-processing knobs of [`Plan::analyze`]. Lives inside
/// [`SolverConfig`] (`cfg.analyze`) so one config value drives the whole
/// pipeline.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Logical processor count the mapping targets (also the default
    /// worker count of both the SPMD backends and `Backend::Dynamic`).
    pub procs: usize,
    /// Machine model override. `None` (default) schedules for the paper's
    /// SP2 model with `procs` processors; set it to map for another
    /// topology (e.g. [`MachineModel::sp2_smp`]) — its `n_procs` then
    /// takes precedence over `procs` for the mapping.
    pub machine: Option<MachineModel>,
    /// Parallelism of the analyze phase itself. One knob drives all three
    /// stages uniformly (ordering, symbolic, scheduling), overriding the
    /// per-stage fields in `ordering`/`analysis`/`sched`; the
    /// `PASTIX_ANALYZE_THREADS` env var overrides it per deployment.
    /// Analyze results are bitwise-identical at every setting — this
    /// knob only changes wall-clock time.
    pub parallelism: Parallelism,
    /// Fill-reducing ordering knobs (nested dissection).
    pub ordering: OrderingOptions,
    /// Symbolic analysis knobs (amalgamation).
    pub analysis: AnalysisOptions,
    /// Block repartitioning + scheduling knobs (1D/2D switch, block size).
    pub sched: SchedOptions,
    /// Compute the static schedule (default). Turn off for pure-dynamic
    /// runs that want analyze to skip the greedy scheduler; the plan's
    /// schedule is then `None` and only `Backend::Dynamic` can run it.
    pub static_schedule: bool,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        Self {
            procs: 4,
            machine: None,
            parallelism: Parallelism::Auto,
            ordering: OrderingOptions::default(),
            analysis: AnalysisOptions::default(),
            sched: SchedOptions::default(),
            static_schedule: true,
        }
    }
}

/// Scalar statistics and timing of one [`Plan::analyze`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyzeStats {
    /// Off-diagonal factor nonzeros from the scalar symbolic
    /// factorization (the paper's `NNZ_L`).
    pub scalar_nnz_offdiag: u64,
    /// Scalar operation count (`(c_j + 1)²` convention, the paper's
    /// `OPC`).
    pub scalar_opc: f64,
    /// Wall time of the whole analyze phase in nanoseconds.
    pub analyze_ns: u64,
}

impl AnalyzeOptions {
    /// Default analyze options for `procs` logical processors.
    pub fn with_procs(procs: usize) -> Self {
        Self { procs, ..Self::default() }
    }
}

#[derive(Debug)]
struct PlanInner {
    perm: Option<Permutation>,
    graph: TaskGraph,
    schedule: Option<Schedule>,
    n: usize,
    stats: Option<AnalyzeStats>,
    analyze_trace: Option<TraceLog>,
}

/// The analyzed (pre-numeric) state of one matrix pattern: permutation,
/// symbol/task graph, and (optionally) the static schedule. `Clone` is an
/// `Arc` bump, so caching a plan next to its factors is free.
#[derive(Debug, Clone)]
pub struct Plan {
    inner: Arc<PlanInner>,
}

impl Plan {
    /// Runs ordering, symbolic analysis, and mapping/scheduling on the
    /// pattern of `a`, per `cfg.analyze`. The `cfg.analyze.parallelism`
    /// knob fans each stage out over threads without changing any output
    /// bit; when `cfg.trace` is enabled, per-stage task spans
    /// (ordering/symbolic/sched) are recorded and kept on the plan
    /// ([`Plan::analyze_trace`]).
    pub fn analyze<T: Scalar>(a: &SymCsc<T>, cfg: &SolverConfig) -> Plan {
        let opts = &cfg.analyze;
        let g = a.to_graph();
        // One knob drives all three stages uniformly.
        let mut oopts = opts.ordering.clone();
        oopts.parallelism = opts.parallelism;
        let mut aopts = opts.analysis.clone();
        aopts.parallelism = opts.parallelism;
        let mut sopts = opts.sched.clone();
        sopts.parallelism = opts.parallelism;

        let session = pastix_trace::begin_rank(0, &cfg.trace);
        let t0 = std::time::Instant::now();
        let ordering = {
            let _sp = pastix_trace::task_span(0, pastix_trace::TaskClass::Ordering);
            pastix_ordering::nested_dissection(&g, &oopts)
        };
        let analysis = {
            let _sp = pastix_trace::task_span(0, pastix_trace::TaskClass::Symbolic);
            pastix_symbolic::analyze(&g, &ordering, &aopts)
        };
        let machine = opts
            .machine
            .clone()
            .unwrap_or_else(|| MachineModel::sp2(opts.procs));
        let Mapping { graph, schedule, .. } = {
            let _sp = pastix_trace::task_span(0, pastix_trace::TaskClass::Sched);
            map_and_schedule(&analysis.symbol, &machine, &sopts)
        };
        let analyze_ns = t0.elapsed().as_nanos() as u64;
        let analyze_trace = session.finish().map(|rt| TraceLog {
            ranks: vec![rt],
            wall_ns: analyze_ns,
            digest: schedule.digest(),
        });
        let stats = AnalyzeStats {
            scalar_nnz_offdiag: analysis.scalar_nnz_offdiag,
            scalar_opc: analysis.scalar_opc,
            analyze_ns,
        };
        let mut plan = Plan::from_parts(
            Some(analysis.perm),
            graph,
            opts.static_schedule.then_some(schedule),
        );
        let inner = Arc::get_mut(&mut plan.inner).expect("fresh plan is unshared");
        inner.stats = Some(stats);
        inner.analyze_trace = analyze_trace;
        plan
    }

    /// Assembles a plan from already-computed artifacts. `perm: None`
    /// means the inputs to [`Plan::factorize`] / the solves are treated as
    /// already permuted (elimination order) — used by callers that manage
    /// the permutation themselves.
    pub fn from_parts(
        perm: Option<Permutation>,
        graph: TaskGraph,
        schedule: Option<Schedule>,
    ) -> Plan {
        if let Some(p) = &perm {
            assert_eq!(p.len(), graph.split.symbol.n, "permutation length != matrix order");
        }
        if let Some(s) = &schedule {
            assert_eq!(s.task_proc.len(), graph.n_tasks(), "schedule built for another graph");
        }
        let n = graph.split.symbol.n;
        Plan {
            inner: Arc::new(PlanInner {
                perm,
                graph,
                schedule,
                n,
                stats: None,
                analyze_trace: None,
            }),
        }
    }

    /// Scalar statistics and timing of the analyze run that produced this
    /// plan (`None` for plans assembled via [`Plan::from_parts`]).
    pub fn analyze_stats(&self) -> Option<AnalyzeStats> {
        self.inner.stats
    }

    /// The analyze phase's task-span trace (ordering/symbolic/sched),
    /// recorded when the analyzing config had tracing enabled.
    pub fn analyze_trace(&self) -> Option<&TraceLog> {
        self.inner.analyze_trace.as_ref()
    }

    /// The fill-reducing permutation, when this plan owns one.
    pub fn permutation(&self) -> Option<&Permutation> {
        self.inner.perm.as_ref()
    }

    /// The task graph over the split symbol.
    pub fn graph(&self) -> &TaskGraph {
        &self.inner.graph
    }

    /// The static schedule (`None` for pure-dynamic plans).
    pub fn schedule(&self) -> Option<&Schedule> {
        self.inner.schedule.as_ref()
    }

    /// The (split) block symbolic structure.
    pub fn symbol(&self) -> &SymbolMatrix {
        &self.inner.graph.split.symbol
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.inner.n
    }

    /// Numeric factorization of `a` (same pattern as analyzed) on the
    /// backend named by `cfg.backend`. The returned run carries this plan,
    /// so [`FactorRun::solve_request`] works without further arguments.
    pub fn factorize<T: Scalar>(
        &self,
        a: &SymCsc<T>,
        cfg: &SolverConfig,
    ) -> Result<FactorRun<T>, FactorError> {
        assert_eq!(a.n(), self.inner.n, "matrix order != analyzed order");
        // Rank panics inside the runtime land in the flight ring, and the
        // factorization itself leaves coarse start/end marks there.
        pastix_trace::flight::wire_runtime_observer();
        let fp = self
            .inner
            .schedule
            .as_ref()
            .map_or(self.inner.n as u64, |s| s.digest());
        pastix_trace::flight::record(pastix_trace::flight::FlightKind::FactorizeStart, fp, 0);
        let t0 = std::time::Instant::now();
        let sym = self.symbol();
        let permuted;
        let ap: &SymCsc<T> = match &self.inner.perm {
            Some(p) => {
                permuted = a.permuted(p);
                &permuted
            }
            None => a,
        };
        let mut run = match cfg.backend {
            Backend::Dynamic(dopts) => dynamic::factorize_dynamic(
                sym,
                ap,
                &self.inner.graph,
                self.inner.schedule.as_ref(),
                &dopts,
                cfg,
            )?,
            Backend::Threads | Backend::Sim(_) => {
                let sched = self.require_schedule();
                crate::parallel::factorize_static(sym, ap, &self.inner.graph, sched, cfg)?
            }
        };
        pastix_trace::flight::record(
            pastix_trace::flight::FlightKind::FactorizeEnd,
            fp,
            t0.elapsed().as_nanos() as u64,
        );
        run.ctx = Some(PlanCtx { plan: self.clone(), cfg: cfg.clone() });
        if cfg.persist_calibration {
            self.persist_calibration(cfg, &run.trace);
        }
        Ok(run)
    }

    /// Closes the calibration loop for a production run: joins the just
    /// recorded wall-clock trace against the static schedule and persists
    /// the measured per-task-kind `ns_per_cost` rates to the machine
    /// dotfile (exactly what `bench_trace` does offline). Quietly skips
    /// when the run carries no rate information — tracing off, logical
    /// clock, no static schedule, or degenerate fits.
    fn persist_calibration(&self, cfg: &SolverConfig, trace: &TraceLog) {
        use pastix_machine::{cache_dir, store_calibration_in, task_kind, TaskCalibration};
        if !cfg.trace.enabled
            || cfg.trace.clock != pastix_trace::ClockMode::Wall
            || trace.ranks.is_empty()
        {
            return;
        }
        let Some(sched) = self.inner.schedule.as_ref() else {
            return;
        };
        let report = pastix_trace::report::build_report(&self.inner.graph, sched, trace);
        let cs = &report.class_stats;
        let cal = TaskCalibration {
            ns_per_cost: [
                cs[task_kind::COMP1D].ns_per_cost(),
                cs[task_kind::FACTOR].ns_per_cost(),
                cs[task_kind::BDIV].ns_per_cost(),
                cs[task_kind::BMOD].ns_per_cost(),
            ],
        };
        // A class that never ran fits to 0; persisting that would poison
        // the scheduler's cost model for the next process.
        if cal.ns_per_cost.iter().any(|&r| !r.is_finite() || r <= 0.0) {
            return;
        }
        store_calibration_in(&cache_dir(), &cal);
    }

    fn require_schedule(&self) -> &Schedule {
        self.inner.schedule.as_ref().expect(
            "this plan has no static schedule (analyze.static_schedule = false): \
             only Backend::Dynamic can run it",
        )
    }
}

/// The plan + config a [`FactorRun`] was produced under (attached by
/// [`Plan::factorize`] / [`FactorRun::bind_plan`]).
#[derive(Debug, Clone)]
pub(crate) struct PlanCtx {
    pub(crate) plan: Plan,
    pub(crate) cfg: SolverConfig,
}

/// One solve call: `rhs` is `n × k` column-major (original row order when
/// the plan owns a permutation, elimination order otherwise); `k = 1` is
/// the single-RHS case. `trace: true` records the solve's [`TraceLog`]
/// even when the config's tracing is off.
#[derive(Debug, Clone, Copy)]
pub struct SolveRequest<'a, T> {
    /// Right-hand sides, `n × k` column-major.
    pub rhs: &'a [T],
    /// Number of right-hand sides.
    pub k: usize,
    /// Record a trace of this solve.
    pub trace: bool,
    /// Request identity for distributed tracing: when set (and the solve
    /// is traced), every rank's portion of the solve trace is wrapped in
    /// a [`pastix_trace::ServeStage::Solve`] async span carrying this id,
    /// so the serving layer's per-request parent span links to the DAG
    /// execution in the Chrome/Perfetto export.
    pub tag: Option<u64>,
}

impl<'a, T> SolveRequest<'a, T> {
    /// A single untraced right-hand side.
    pub fn single(rhs: &'a [T]) -> Self {
        Self { rhs, k: 1, trace: false, tag: None }
    }

    /// An untraced `n × k` panel.
    pub fn panel(rhs: &'a [T], k: usize) -> Self {
        Self { rhs, k, trace: false, tag: None }
    }

    /// Requests a trace of this solve.
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Attaches a request id to the solve's trace spans (implies nothing
    /// unless the solve is traced).
    pub fn tagged(mut self, id: u64) -> Self {
        self.tag = Some(id);
        self
    }
}

/// Result of [`FactorRun::solve_request`]: the solution panel and the
/// solve's trace (empty when untraced).
#[derive(Debug)]
pub struct SolveOutput<T> {
    /// Solution, `n × k` column-major, same row order as the request's
    /// right-hand sides.
    pub x: Vec<T>,
    /// The solve's trace (empty unless requested or globally enabled).
    pub trace: TraceLog,
}

impl<T: Scalar> FactorRun<T> {
    /// Attaches a plan (and the config to solve under) to a run that was
    /// built outside [`Plan::factorize`] — e.g. a sequentially factored
    /// storage — enabling [`FactorRun::solve_request`] on it.
    pub fn bind_plan(&mut self, plan: &Plan, cfg: &SolverConfig) {
        self.ctx = Some(PlanCtx { plan: plan.clone(), cfg: cfg.clone() });
    }

    /// Solves `A·X = B` for the request's right-hand sides using this
    /// run's factor, on the backend of the config the run was produced
    /// under. Single-RHS is `k = 1` of the same panel path.
    pub fn solve_request(&self, req: SolveRequest<'_, T>) -> SolveOutput<T> {
        let ctx = self.ctx.as_ref().expect(
            "this FactorRun has no Plan attached; produce it with Plan::factorize \
             (or call bind_plan) before solving",
        );
        let plan = &ctx.plan;
        let n = plan.n();
        assert!(req.k >= 1, "solve needs at least one right-hand side");
        assert_eq!(req.rhs.len(), n * req.k, "rhs must be n × k column-major");
        let mut cfg = ctx.cfg.clone();
        if !req.trace {
            cfg.trace = TraceOptions::disabled();
        } else if !cfg.trace.enabled {
            cfg.trace = TraceOptions::wall();
        }
        // Into elimination order, one column at a time.
        let permuted;
        let b: &[T] = match plan.permutation() {
            Some(p) => {
                let mut bp = Vec::with_capacity(n * req.k);
                for j in 0..req.k {
                    bp.extend(p.apply_vec(&req.rhs[j * n..(j + 1) * n]));
                }
                permuted = bp;
                &permuted
            }
            None => req.rhs,
        };
        let sym = plan.symbol();
        let (xp, trace) = match cfg.backend {
            Backend::Dynamic(dopts) => dynamic::solve_panel_dynamic(
                sym,
                &self.storage,
                plan.graph(),
                plan.schedule(),
                b,
                req.k,
                &dopts,
                &cfg,
            ),
            Backend::Threads | Backend::Sim(_) => {
                let sched = plan.require_schedule();
                crate::psolve::solve_panel_static(
                    sym,
                    &self.storage,
                    plan.graph(),
                    sched,
                    b,
                    req.k,
                    &cfg,
                )
            }
        };
        let x = match plan.permutation() {
            Some(p) => {
                let mut out = Vec::with_capacity(n * req.k);
                for j in 0..req.k {
                    out.extend(p.unapply_vec(&xp[j * n..(j + 1) * n]));
                }
                out
            }
            None => xp,
        };
        let mut trace = trace;
        if let Some(id) = req.tag {
            tag_solve_trace(&mut trace, id);
        }
        SolveOutput { x, trace }
    }

    /// Solves for a single right-hand side (untraced).
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        self.solve_request(SolveRequest::single(b)).x
    }

    /// Solves for an `n × k` column-major panel of right-hand sides
    /// (untraced).
    pub fn solve_panel(&self, b: &[T], k: usize) -> Vec<T> {
        self.solve_request(SolveRequest::panel(b, k)).x
    }
}

/// Wraps every rank's slice of a solve trace in a
/// [`pastix_trace::ServeStage::Solve`] async span carrying the request
/// id. Runs after the backend returns, so one implementation covers all
/// three backends; spans inherit the rank's first/last event timestamps,
/// which keeps logical-clock (sim) traces a pure function of
/// `(seed, policy)`.
fn tag_solve_trace(trace: &mut TraceLog, id: u64) {
    use pastix_trace::{Event, EventKind, ServeStage};
    for rt in &mut trace.ranks {
        let (Some(first), Some(last)) = (rt.events.first(), rt.events.last()) else {
            continue;
        };
        let (b, e) = (first.at, last.at);
        rt.events.insert(
            0,
            Event { at: b, kind: EventKind::AsyncBegin { id, stage: ServeStage::Solve as u8 } },
        );
        rt.events.push(Event {
            at: e,
            kind: EventKind::AsyncEnd { id, stage: ServeStage::Solve as u8 },
        });
    }
}

/// Builds a [`FactorRun`] around a sequentially factored storage and
/// binds `plan`/`cfg` to it, so sequential factors get the same solve
/// surface as parallel ones.
pub fn run_from_storage<T: Scalar>(
    storage: FactorStorage<T>,
    plan: &Plan,
    cfg: &SolverConfig,
) -> FactorRun<T> {
    let mut run = FactorRun::new(storage, TraceLog::default(), cfg.metrics.clone());
    run.bind_plan(plan, cfg);
    run
}
