//! Left-looking supernodal `L·D·Lᵀ` factorization.
//!
//! The mirror image of the right-looking reference in [`crate::seq`]: when
//! column block `k` comes up, it *pulls* every contribution
//! `L_r · (L_c D)ᵀ` from the already-factored column blocks whose
//! off-diagonal structure faces `k`, then factors its diagonal block and
//! solves its panel. Same arithmetic, different traversal — which makes it
//! a genuinely independent oracle: the two variants accumulate updates in
//! different orders and through different code paths, so agreement (up to
//! rounding) is strong evidence against indexing bugs in either.

use crate::storage::FactorStorage;
use pastix_kernels::factor::{ldlt_factor_blocked, FactorError, NB_FACTOR};
use pastix_kernels::{gemm_nt_acc, scale_cols_by_diag_into, trsm_ldlt_panel, Scalar};
use pastix_symbolic::SymbolMatrix;

/// Factorizes the scattered matrix in place with the left-looking
/// traversal.
pub fn factorize_sequential_left<T: Scalar>(
    sym: &SymbolMatrix,
    storage: &mut FactorStorage<T>,
) -> Result<(), FactorError> {
    let ns = sym.n_cblks();
    let layout = storage.layout.clone();
    // Reverse structure: bloks facing each column block, with their source.
    let mut facing: Vec<Vec<(u32, u32)>> = vec![Vec::new(); ns];
    for i in 0..ns {
        let cb = &sym.cblks[i];
        for b in cb.blok_start + 1..cb.blok_end {
            facing[sym.bloks[b].fcblk as usize].push((b as u32, i as u32));
        }
    }
    let mut wbuf: Vec<T> = Vec::new();
    let mut dtmp: Vec<T> = Vec::new();

    for k in 0..ns {
        let cbk = &sym.cblks[k];
        let wk = cbk.width();
        let ldak = layout.panel_rows(k);
        // Pull updates: every pair (r ≥ c) of a source block whose `c`
        // faces k lands inside panel k.
        for &(bc, i) in &facing[k] {
            let i = i as usize;
            let bc = bc as usize;
            let cbi = &sym.cblks[i];
            let wi = cbi.width();
            let ldai = layout.panel_rows(i);
            let hc = sym.bloks[bc].nrows();
            let tcol = (sym.bloks[bc].frow - cbk.fcol) as usize;
            // W_c = L_c · D_i (the source diagonal lives on panel i).
            wbuf.clear();
            wbuf.resize(hc * wi, T::zero());
            {
                let src = &storage.panels[i];
                let d: Vec<T> = (0..wi).map(|t| src[t + t * ldai]).collect();
                let c_off = layout.panel_row[bc] as usize;
                scale_cols_by_diag_into(hc, wi, &src[c_off..], ldai, &d, &mut wbuf, hc);
            }
            // Apply all pairs (r, c) of source i with r ≥ c.
            let (left, right) = storage.panels.split_at_mut(k);
            let src = &left[i];
            let dst = &mut right[0];
            for br in bc..cbi.blok_end {
                let blok_r = &sym.bloks[br];
                let hr = blok_r.nrows();
                let tb = sym.covering_blok(k, blok_r.frow, blok_r.lrow);
                let trow = layout.panel_row[tb] as usize + (blok_r.frow - sym.bloks[tb].frow) as usize;
                let r_off = layout.panel_row[br] as usize;
                gemm_nt_acc(
                    hr,
                    hc,
                    wi,
                    -T::one(),
                    &src[r_off..],
                    ldai,
                    &wbuf,
                    hc,
                    &mut dst[trow + tcol * ldak..],
                    ldak,
                );
            }
        }
        // Factor the (fully updated) diagonal block and solve the panel.
        let panel = &mut storage.panels[k][..];
        // wbuf is dead between column blocks; reuse it as factor scratch.
        ldlt_factor_blocked(wk, panel, ldak, NB_FACTOR, &mut wbuf)
            .map_err(|FactorError::ZeroPivot(i)| FactorError::ZeroPivot(cbk.fcol as usize + i))?;
        let h = ldak - wk;
        if h > 0 {
            dtmp.clear();
            dtmp.resize(wk * wk, T::zero());
            pastix_kernels::dense::copy_panel(wk, wk, panel, ldak, &mut dtmp, wk);
            trsm_ldlt_panel(h, wk, &dtmp, wk, &mut panel[wk..], ldak);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{factorize_sequential, solve_in_place};
    use pastix_graph::gen::{grid_spd, Stencil, ValueKind};
    use pastix_graph::{canonical_solution, rhs_for_solution};
    use pastix_ordering::{nested_dissection, OrderingOptions};
    use pastix_symbolic::{analyze, split_symbol, AnalysisOptions};

    fn pipeline(nx: usize, ny: usize, nz: usize) -> (pastix_graph::SymCsc<f64>, SymbolMatrix) {
        let a = grid_spd::<f64>(nx, ny, nz, Stencil::Star, false, ValueKind::RandomSpd(17));
        let g = a.to_graph();
        let ord = nested_dissection(&g, &OrderingOptions { leaf_size: 8, ..Default::default() });
        let an = analyze(&g, &ord, &AnalysisOptions::default());
        (a.permuted(&an.perm), an.symbol)
    }

    #[test]
    fn left_matches_right_looking() {
        for (nx, ny, nz) in [(6, 6, 1), (8, 5, 1), (4, 4, 3)] {
            let (ap, sym) = pipeline(nx, ny, nz);
            let mut right = FactorStorage::zeros(&sym);
            right.scatter(&sym, &ap);
            factorize_sequential(&sym, &mut right).unwrap();
            let mut left = FactorStorage::zeros(&sym);
            left.scatter(&sym, &ap);
            factorize_sequential_left(&sym, &mut left).unwrap();
            for (pl, pr) in left.panels.iter().zip(&right.panels) {
                for (a, b) in pl.iter().zip(pr) {
                    assert!((a - b).abs() < 1e-9, "left {a} vs right {b}");
                }
            }
        }
    }

    #[test]
    fn left_looking_solves_on_split_symbol() {
        let (ap, sym) = pipeline(7, 7, 1);
        let split = split_symbol(&sym, 3);
        let mut st = FactorStorage::zeros(&split.symbol);
        st.scatter(&split.symbol, &ap);
        factorize_sequential_left(&split.symbol, &mut st).unwrap();
        let x_exact = canonical_solution::<f64>(ap.n());
        let b = rhs_for_solution(&ap, &x_exact);
        let mut x = b.clone();
        solve_in_place(&split.symbol, &st, &mut x);
        assert!(ap.residual_norm(&x, &b) < 1e-12);
    }

    #[test]
    fn left_looking_zero_pivot() {
        let (ap, sym) = pipeline(5, 5, 1);
        let n = ap.n();
        let mut tr = Vec::new();
        for j in 0..n {
            for &i in ap.rows_of(j) {
                tr.push((i, j as u32, 0.0));
            }
        }
        let zero = pastix_graph::SymCsc::from_triplets(n, &tr);
        let mut st = FactorStorage::zeros(&sym);
        st.scatter(&sym, &zero);
        assert!(factorize_sequential_left(&sym, &mut st).is_err());
    }
}
