//! The unified solver configuration and the factorization run result.
//!
//! One [`SolverConfig`] value carries everything that used to be
//! scattered across three places: the execution knobs (backend, memory
//! cap, chaos), the kernel-dispatch mode, and the tracing/metrics
//! surface. Entry points apply the kernel mode through a
//! scoped guard (restored on exit) and hand back a [`FactorRun`] that
//! bundles the factor with the run's [`TraceLog`] and the
//! [`MetricsRegistry`] handle that collected its counters.

use crate::compress::CompressionConfig;
use crate::parallel::ChaosOptions;
use crate::plan::{AnalyzeOptions, PlanCtx};
use crate::storage::FactorStorage;
use pastix_kernels::KernelMode;
use pastix_runtime::Backend;
use pastix_trace::{MetricsRegistry, TraceLog, TraceOptions};

/// Unified configuration of the parallel factorization and solve entry
/// points: execution backend, solver-level knobs, kernel dispatch mode,
/// and the observability surface. `Clone` is cheap (the registry handle is
/// an `Arc` bump) and the default value reproduces the old defaults
/// exactly: thread backend, pure fan-in, no chaos, `KernelMode::Auto`,
/// tracing off.
#[derive(Debug, Clone, Default)]
pub struct SolverConfig {
    /// Execution backend: real OS threads ([`Backend::Threads`], default)
    /// or the deterministic fault-injecting simulator ([`Backend::Sim`])
    /// whose whole execution is a pure function of the embedded fault
    /// plan's `(seed, policy)`.
    pub backend: Backend,
    /// Fan-Both memory cap in scalars per processor: when the outgoing
    /// aggregation buffers exceed it, the largest is sent partially
    /// aggregated (paper §2). `None` (default) keeps total local
    /// aggregation (pure Fan-In).
    pub aub_memory_limit: Option<usize>,
    /// Fault injection for the chaos suite; off by default.
    pub chaos: ChaosOptions,
    /// Kernel dispatch mode, applied for the duration of the run through
    /// [`KernelMode::scoped`] and restored on exit.
    pub kernel_mode: KernelMode,
    /// Task-level tracing; disabled by default (a disabled trace adds one
    /// thread-local `Option` check per record site).
    pub trace: TraceOptions,
    /// The registry that receives this run's counters (message-path and
    /// communication totals, per rank). Defaults to a fresh private
    /// registry; pass a shared handle to aggregate across runs.
    pub metrics: MetricsRegistry,
    /// Pre-processing knobs consumed by [`crate::Plan::analyze`]:
    /// ordering, symbolic analysis, mapping/scheduling, and whether a
    /// static schedule is computed at all.
    pub analyze: AnalyzeOptions,
    /// Block low-rank compression of off-diagonal factor blocks. Off by
    /// default (`tolerance: 0.0`) — the factorization is bitwise-identical
    /// to the classic dense path.
    pub compression: CompressionConfig,
    /// Persist measured per-task-kind `ns_per_cost` rates to the machine
    /// calibration dotfile after each wall-clock-traced factorization, so
    /// long-lived deployments self-tune the scheduler's cost model the
    /// same way `bench_trace` does. Off by default; has no effect unless
    /// the run is traced with [`pastix_trace::ClockMode::Wall`] and a
    /// static schedule is present (logical-clock traces carry no rate
    /// information).
    pub persist_calibration: bool,
}

impl SolverConfig {
    /// The default configuration: thread backend, pure fan-in, no chaos,
    /// `KernelMode::Auto`, tracing off.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the execution backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the Fan-Both memory cap (scalars per processor).
    pub fn with_aub_memory_limit(mut self, limit: Option<usize>) -> Self {
        self.aub_memory_limit = limit;
        self
    }

    /// Sets the chaos fault-injection options.
    pub fn with_chaos(mut self, chaos: ChaosOptions) -> Self {
        self.chaos = chaos;
        self
    }

    /// Sets the kernel dispatch mode for the run.
    pub fn with_kernel_mode(mut self, mode: KernelMode) -> Self {
        self.kernel_mode = mode;
        self
    }

    /// Sets the tracing options.
    pub fn with_trace(mut self, trace: TraceOptions) -> Self {
        self.trace = trace;
        self
    }

    /// Uses `registry` to collect this run's metrics (shared handle).
    pub fn with_metrics(mut self, registry: MetricsRegistry) -> Self {
        self.metrics = registry;
        self
    }

    /// Sets the analyze-phase options ([`crate::Plan::analyze`]).
    pub fn with_analyze(mut self, analyze: AnalyzeOptions) -> Self {
        self.analyze = analyze;
        self
    }

    /// Sets the block low-rank compression knobs.
    pub fn with_compression(mut self, compression: CompressionConfig) -> Self {
        self.compression = compression;
        self
    }

    /// Opts wall-clock-traced factorizations into writing the machine
    /// calibration dotfile (see [`SolverConfig::persist_calibration`]).
    pub fn with_persist_calibration(mut self, on: bool) -> Self {
        self.persist_calibration = on;
        self
    }
}

/// Result of [`crate::Plan::factorize`]: the assembled factor plus the
/// run's observability artifacts. Derefs to the [`FactorStorage`], so
/// existing code that only wants the factor keeps reading fields and
/// calling methods through it unchanged. Runs produced by the `Plan` API
/// additionally carry their plan, which is what powers
/// [`FactorRun::solve_request`](crate::SolveRequest).
#[derive(Debug)]
pub struct FactorRun<T> {
    /// The assembled factor.
    pub storage: FactorStorage<T>,
    /// The recorded trace (empty when tracing was disabled).
    pub trace: TraceLog,
    /// The registry that collected this run's counters (clone of the
    /// handle in the driving [`SolverConfig`]).
    pub metrics: MetricsRegistry,
    /// The plan + config that produced this run (present when it came
    /// through the `Plan` API; the deprecated shims leave it `None`).
    pub(crate) ctx: Option<PlanCtx>,
}

impl<T> FactorRun<T> {
    /// Bundles a factor with its observability artifacts (no plan
    /// attached; call [`FactorRun::bind_plan`] to enable solves).
    pub fn new(storage: FactorStorage<T>, trace: TraceLog, metrics: MetricsRegistry) -> Self {
        Self {
            storage,
            trace,
            metrics,
            ctx: None,
        }
    }

    /// Extracts just the factor, discarding the observability artifacts.
    pub fn into_storage(self) -> FactorStorage<T> {
        self.storage
    }
}

impl<T> std::ops::Deref for FactorRun<T> {
    type Target = FactorStorage<T>;
    fn deref(&self) -> &FactorStorage<T> {
        &self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_old_parallel_options() {
        let c = SolverConfig::default();
        assert_eq!(c.backend, Backend::Threads);
        assert_eq!(c.aub_memory_limit, None);
        assert_eq!(c.chaos, ChaosOptions::default());
        assert_eq!(c.kernel_mode, KernelMode::Auto);
        assert!(!c.trace.enabled);
        assert!(!c.compression.enabled(), "compression must default to off");
    }

    #[test]
    fn builder_chains() {
        let c = SolverConfig::new()
            .with_aub_memory_limit(Some(64))
            .with_kernel_mode(KernelMode::Reference)
            .with_trace(pastix_trace::TraceOptions::deterministic());
        assert_eq!(c.aub_memory_limit, Some(64));
        assert_eq!(c.kernel_mode, KernelMode::Reference);
        assert!(c.trace.enabled);
    }
}
