//! `Backend::Dynamic`: factorization and panel solve on the work-stealing
//! DAG executor ([`pastix_runtime::steal`]).
//!
//! Unlike the SPMD backends, which execute the static schedule's per-rank
//! task lists and move contributions through messages and AUBs, the
//! dynamic engine executes the [`TaskGraph`] directly: dependency counts
//! come from the graph's deduplicated in-edges (the same fan-in the AUB
//! protocol counts), contributions are applied straight into the shared
//! factor panels under per-panel locks, and the static schedule — when
//! one exists — supplies only initial placement and task priority. The
//! solve builds its twin DAG from the same block structure the level-set
//! [`pastix_sched::SolveSchedule`] walks.
//!
//! Locking is deadlock-free by index ordering: every multi-lock
//! acquisition ascends the column-block order (a contribution's target
//! block is strictly later than its producer), and the per-blok `F = L·D`
//! buffers of a column block sit between that block's panel and every
//! later panel in the order. The executor's `AcqRel` dependency-counter
//! decrements plus the panel mutexes give each consumer a happens-before
//! edge from every producer's writes.

use crate::compress::{comp1d_tail_compressed, finalize_compression, CompressionConfig};
use crate::config::{FactorRun, SolverConfig};
use crate::storage::{panel_row_of, BlokView, FactorStorage, PanelLayout};
use pastix_graph::SymCsc;
use pastix_kernels::factor::{ldlt_factor_blocked, FactorError, NB_FACTOR};
use pastix_kernels::{
    gemm_nn_acc, gemm_tn_acc, lr_gemm_nn_acc, lr_gemm_nt_acc, lr_gemm_tn_acc,
    scale_cols_by_diag_into, solve_unit_lower_panel, solve_unit_lower_trans_panel,
    trsm_ldlt_panel, LowRankBlock, LrOp, Scalar,
};
use pastix_runtime::steal::{run_dag, DagSpec, StealStats, TaskCtx};
use pastix_runtime::DynamicOptions;
use pastix_sched::{Schedule, TaskGraph, TaskKind};
use pastix_symbolic::SymbolMatrix;
use pastix_trace::{
    begin_rank, heartbeat, sample_gauge, task_span, GaugeId, RankTrace, TaskClass, TraceLog,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Worker count resolution: explicit > schedule procs > 4.
fn resolve_workers(dopts: &DynamicOptions, sched: Option<&Schedule>) -> usize {
    if dopts.workers > 0 {
        dopts.workers
    } else {
        sched.map(|s| s.n_procs).unwrap_or(4).max(1)
    }
}

/// Priority vector: rank-by-predicted-start when a schedule exists (the
/// task the static scheduler would have started earliest gets the highest
/// priority), elimination-tree depth otherwise, all-zero (FIFO) when
/// priority hints are off.
fn priority_vec(
    n: usize,
    priorities: bool,
    sched: Option<&Schedule>,
    graph_prio: &[u32],
) -> Vec<u64> {
    if !priorities {
        return vec![0u64; n];
    }
    match sched {
        Some(s) => {
            let mut idx: Vec<u32> = (0..n as u32).collect();
            idx.sort_by(|&x, &y| {
                s.start[x as usize]
                    .partial_cmp(&s.start[y as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(x.cmp(&y))
            });
            let mut p = vec![0u64; n];
            for (rank, &t) in idx.iter().enumerate() {
                p[t as usize] = (n - rank) as u64;
            }
            p
        }
        None => graph_prio.iter().map(|&p| p as u64).collect(),
    }
}

/// Shared state of the dynamic factorization: the factor panels (one
/// mutex per column block) and the per-blok `F = L·D` buffers produced by
/// BDIV tasks for the 2D BMOD updates.
struct DynFactor<'a, T> {
    sym: &'a SymbolMatrix,
    layout: &'a PanelLayout,
    panels: &'a [Mutex<Vec<T>>],
    fbufs: &'a [Mutex<Vec<T>>],
    /// Block low-rank compression knobs (off by default).
    compression: CompressionConfig,
    /// Compressed factor bloks produced by comp1d tasks, keyed by global
    /// blok id; installed into the storage after the DAG drains.
    lr_out: Mutex<Vec<(usize, LowRankBlock<T>)>>,
}

impl<T: Scalar> DynFactor<'_, T> {
    /// Applies the contribution of off-block pair `(br, bc)` (an
    /// `h_r × h_c` update, operands dispatched on representation) straight
    /// into the target column block's panel. The target block is strictly
    /// later than the producer, so locking it while holding the producer's
    /// locks ascends the index order.
    fn contribution(&self, br: usize, bc: usize, w: usize, a: LrOp<'_, T>, b: LrOp<'_, T>) {
        let rb = &self.sym.bloks[br];
        let cb = &self.sym.bloks[bc];
        let tk = cb.fcblk as usize;
        let tcb = &self.sym.cblks[tk];
        let hr = rb.nrows();
        let hc = cb.nrows();
        let row_off = panel_row_of(self.sym, self.layout, tk, rb.frow);
        let col_off = (cb.frow - tcb.fcol) as usize;
        let ldt = self.layout.panel_rows(tk);
        let mut tgt = self.panels[tk].lock().unwrap();
        let off = row_off + col_off * ldt;
        lr_gemm_nt_acc(hr, hc, w, -T::one(), a, b, &mut tgt[off..], ldt);
    }

    /// COMP1D: factor the whole 1D panel, then apply every `(r ≥ c)` pair
    /// contribution (same steps as the sequential/SPMD COMP1D, minus the
    /// message routing).
    fn comp1d(&self, k: usize, chaos_zero_pivot: bool) -> Result<(), FactorError> {
        let cb = &self.sym.cblks[k];
        let w = cb.width();
        let lda = self.layout.panel_rows(k);
        let h = lda - w;
        let mut panel = self.panels[k].lock().unwrap();
        if chaos_zero_pivot {
            panel[0] = T::zero();
        }
        let mut fwork = Vec::new();
        if let Err(FactorError::ZeroPivot(i)) =
            ldlt_factor_blocked(w, &mut panel, lda, NB_FACTOR, &mut fwork)
        {
            return Err(FactorError::ZeroPivot(cb.fcol as usize + i));
        }
        if h > 0 && self.compression.enabled() {
            // Compressed comp1d: qualifying bloks compress just-in-time and
            // outgoing contributions dispatch on representation. Targets
            // are strictly later column blocks, so the lock order matches
            // the dense path exactly.
            let mut dtmp = vec![T::zero(); w * w];
            pastix_kernels::dense::copy_panel(w, w, &panel, lda, &mut dtmp, w);
            let cc = self.compression;
            let lrs = comp1d_tail_compressed(
                self.sym,
                self.layout,
                k,
                &mut panel[..],
                lda,
                &dtmp,
                &cc,
                &mut |br, bc, a_op, b_op| self.contribution(br, bc, w, a_op, b_op),
            );
            if !lrs.is_empty() {
                self.lr_out.lock().unwrap().extend(lrs);
            }
        } else if h > 0 {
            let mut dtmp = vec![T::zero(); w * w];
            pastix_kernels::dense::copy_panel(w, w, &panel, lda, &mut dtmp, w);
            trsm_ldlt_panel(h, w, &dtmp, w, &mut panel[w..], lda);
            // F = L · D.
            let mut wbuf = vec![T::zero(); h * w];
            let d: Vec<T> = (0..w).map(|i| dtmp[i + i * w]).collect();
            scale_cols_by_diag_into(h, w, &panel[w..], lda, &d, &mut wbuf, h);
            let m = cb.blok_end - cb.blok_start - 1;
            for c in 0..m {
                let bc = cb.blok_start + 1 + c;
                for r in c..m {
                    let br = cb.blok_start + 1 + r;
                    let a_off = self.layout.panel_row[br] as usize;
                    let b_off = self.layout.panel_row[bc] as usize - w;
                    self.contribution(
                        br,
                        bc,
                        w,
                        LrOp::Dense { a: &panel[a_off..], ld: lda },
                        LrOp::Dense { a: &wbuf[b_off..], ld: h },
                    );
                }
            }
        }
        Ok(())
    }

    /// FACTOR: LDLᵀ of the diagonal block, in place inside the panel
    /// (stride `lda`, unlike the SPMD path's dense `w × w` region).
    fn factor(&self, k: usize, chaos_zero_pivot: bool) -> Result<(), FactorError> {
        let cb = &self.sym.cblks[k];
        let w = cb.width();
        let lda = self.layout.panel_rows(k);
        let mut panel = self.panels[k].lock().unwrap();
        if chaos_zero_pivot {
            panel[0] = T::zero();
        }
        let mut fwork = Vec::new();
        if let Err(FactorError::ZeroPivot(i)) =
            ldlt_factor_blocked(w, &mut panel, lda, NB_FACTOR, &mut fwork)
        {
            return Err(FactorError::ZeroPivot(cb.fcol as usize + i));
        }
        Ok(())
    }

    /// BDIV: solve the blok's rows against the factored diagonal in place
    /// and stash `F = L·D` in the blok's buffer for the BMOD updates.
    fn bdiv(&self, k: usize, blok: usize) {
        let w = self.sym.cblks[k].width();
        let lda = self.layout.panel_rows(k);
        let hb = self.sym.bloks[blok].nrows();
        let prow = self.layout.panel_row[blok] as usize;
        let mut panel = self.panels[k].lock().unwrap();
        let mut dtmp = vec![T::zero(); w * w];
        pastix_kernels::dense::copy_panel(w, w, &panel, lda, &mut dtmp, w);
        trsm_ldlt_panel(hb, w, &dtmp, w, &mut panel[prow..], lda);
        let d: Vec<T> = (0..w).map(|i| dtmp[i + i * w]).collect();
        let mut fbuf = self.fbufs[blok].lock().unwrap();
        fbuf.resize(hb * w, T::zero());
        scale_cols_by_diag_into(hb, w, &panel[prow..], lda, &d, &mut fbuf, hb);
    }

    /// BMOD: one `(blok_row, blok_col)` pair contribution of a 2D column
    /// block — `L` from the row blok's solved panel rows, `F` from the
    /// column blok's BDIV buffer.
    fn bmod(&self, k: usize, blok_row: usize, blok_col: usize) {
        let w = self.sym.cblks[k].width();
        let lda = self.layout.panel_rows(k);
        let hc = self.sym.bloks[blok_col].nrows();
        let prow = self.layout.panel_row[blok_row] as usize;
        let panel = self.panels[k].lock().unwrap();
        let fbuf = self.fbufs[blok_col].lock().unwrap();
        debug_assert_eq!(fbuf.len(), hc * w);
        self.contribution(
            blok_row,
            blok_col,
            w,
            LrOp::Dense { a: &panel[prow..], ld: lda },
            LrOp::Dense { a: &fbuf, ld: hc },
        );
    }
}

/// Dynamic factorization: scatter `a` into the factor storage, execute
/// the task graph on the work-stealing executor, and hand the storage
/// back assembled (the panels *are* the regions — no merge step).
pub(crate) fn factorize_dynamic<T: Scalar>(
    sym: &SymbolMatrix,
    a: &SymCsc<T>,
    graph: &TaskGraph,
    sched: Option<&Schedule>,
    dopts: &DynamicOptions,
    cfg: &SolverConfig,
) -> Result<FactorRun<T>, FactorError> {
    assert!(
        std::ptr::eq(sym, &graph.split.symbol) || *sym == graph.split.symbol,
        "task graph was built for a different symbol matrix"
    );
    let _mode = cfg.kernel_mode.scoped();
    let mut storage = FactorStorage::zeros(sym);
    storage.scatter(sym, a);
    let FactorStorage { layout, panels, compression: _ } = storage;
    let panels: Vec<Mutex<Vec<T>>> = panels.into_iter().map(Mutex::new).collect();
    let fbufs: Vec<Mutex<Vec<T>>> = (0..sym.bloks.len()).map(|_| Mutex::new(Vec::new())).collect();

    let n = graph.n_tasks();
    let deps: Vec<u32> = (0..n).map(|t| graph.in_ptr[t + 1] - graph.in_ptr[t]).collect();
    let priority = priority_vec(n, dopts.priorities, sched, &graph.priority);
    let placement: Vec<u32> = match sched {
        Some(s) => s.task_proc.clone(),
        None => graph.kinds.iter().map(|k| k.cblk()).collect(),
    };
    let n_workers = resolve_workers(dopts, sched);

    let mut topts = cfg.trace;
    if topts.enabled && topts.epoch.is_none() {
        topts.epoch = Some(Instant::now());
    }
    let progress = AtomicU64::new(0);
    let error: Mutex<Option<FactorError>> = Mutex::new(None);
    let shared = DynFactor {
        sym,
        layout: &layout,
        panels: &panels,
        fbufs: &fbufs,
        compression: cfg.compression,
        lr_out: Mutex::new(Vec::new()),
    };

    let body = |t: u32, tctx: &TaskCtx| -> bool {
        if cfg.chaos.panic_at == Some((tctx.worker as u32, tctx.local_index)) {
            panic!(
                "chaos: injected panic on worker {} at local task index {} (task {t})",
                tctx.worker, tctx.local_index
            );
        }
        let zp = cfg.chaos.zero_pivot_task == Some(t);
        let result = match graph.kinds[t as usize] {
            TaskKind::Comp1d { cblk } => {
                let _span = task_span(t, TaskClass::Comp1d);
                shared.comp1d(cblk as usize, zp)
            }
            TaskKind::Factor { cblk } => {
                let _span = task_span(t, TaskClass::Factor);
                shared.factor(cblk as usize, zp)
            }
            TaskKind::Bdiv { cblk, blok } => {
                let _span = task_span(t, TaskClass::Bdiv);
                shared.bdiv(cblk as usize, blok as usize);
                Ok(())
            }
            TaskKind::Bmod { cblk, blok_row, blok_col } => {
                let _span = task_span(t, TaskClass::Bmod);
                shared.bmod(cblk as usize, blok_row as usize, blok_col as usize);
                Ok(())
            }
        };
        if topts.enabled {
            let seq = progress.fetch_add(1, Ordering::Relaxed) + 1;
            heartbeat(seq);
            let every = topts.sample_every as usize;
            if every > 0 && (tctx.local_index + 1).is_multiple_of(every) {
                sample_gauge(GaugeId::ReadyQueueDepth, tctx.ready_depth as u64);
            }
        }
        match result {
            Ok(()) => true,
            Err(e) => {
                error.lock().unwrap().get_or_insert(e);
                false
            }
        }
    };
    let worker_scope = |w: usize, run: &mut dyn FnMut()| -> Option<RankTrace> {
        let session = begin_rank(w, &topts);
        run();
        session.finish()
    };

    let spec = DagSpec {
        deps: &deps,
        out_ptr: &graph.out_ptr,
        out_dst: &graph.out_dst,
        priority: &priority,
        placement: &placement,
    };
    let t0 = Instant::now();
    let (rank_traces, stats) = run_dag(&spec, n_workers, dopts.sim.as_ref(), &body, &worker_scope);
    let wall_ns = t0.elapsed().as_nanos() as u64;

    if let Some(e) = error.into_inner().unwrap() {
        return Err(e);
    }
    let trace = TraceLog {
        ranks: rank_traces.into_iter().flatten().collect(),
        wall_ns,
        digest: sched.map(|s| s.digest()).unwrap_or(0),
    };
    crate::parallel::merge_trace_metrics(&cfg.metrics, &trace);
    record_steal_metrics(cfg, &stats);
    let lrs = shared.lr_out.into_inner().unwrap();
    let mut storage = FactorStorage {
        layout,
        panels: panels.into_iter().map(|p| p.into_inner().unwrap()).collect(),
        compression: Vec::new(),
    };
    let mut per_blok: Vec<Option<LowRankBlock<T>>> =
        (0..sym.bloks.len()).map(|_| None).collect();
    for (b, lr) in lrs {
        per_blok[b] = Some(lr);
    }
    finalize_compression(sym, &mut storage, &cfg.compression, per_blok, &cfg.metrics);
    Ok(FactorRun::new(storage, trace, cfg.metrics.clone()))
}

/// Executor counters → the run's metrics registry.
fn record_steal_metrics(cfg: &SolverConfig, stats: &StealStats) {
    for (w, &n) in stats.executed.iter().enumerate() {
        if n > 0 {
            cfg.metrics.add_counter_rank("dynamic.tasks", Some(w as u32), n);
        }
    }
    cfg.metrics.add_counter("dynamic.steals", stats.steals);
}

/// Dynamic multi-RHS panel solve (`b_panel` is `n × nrhs` column-major in
/// elimination order, like the SPMD panel solve). The solve DAG has two
/// tasks per column block — forward `k` and backward `ns + k` — with the
/// same dependency structure the level-set [`pastix_sched::SolveSchedule`]
/// is built from: `fwd(k) → fwd(t)` and `bwd(t) → bwd(k)` for every
/// distinct facing block `t` of `k`, plus `fwd(k) → bwd(k)`. Backward
/// `Lᵀ·x` partials are buffered per target block so the D division always
/// precedes their subtraction — the exact sequential order.
pub(crate) fn solve_panel_dynamic<T: Scalar>(
    sym: &SymbolMatrix,
    storage: &FactorStorage<T>,
    graph: &TaskGraph,
    sched: Option<&Schedule>,
    b_panel: &[T],
    nrhs: usize,
    dopts: &DynamicOptions,
    cfg: &SolverConfig,
) -> (Vec<T>, TraceLog) {
    assert!(nrhs >= 1, "panel solve needs at least one right-hand side");
    assert_eq!(b_panel.len(), sym.n * nrhs, "b_panel must be n × nrhs");
    let ns = sym.n_cblks();
    let n_tasks = 2 * ns;

    // Dependency edges + the facing lists (blok, source cblk) per target.
    let mut deps = vec![0u32; n_tasks];
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n_tasks];
    let mut facing: Vec<Vec<(u32, u32)>> = vec![Vec::new(); ns];
    for k in 0..ns {
        let cb = &sym.cblks[k];
        out[k].push((ns + k) as u32);
        deps[ns + k] += 1;
        let mut last_t = u32::MAX;
        for b in cb.blok_start + 1..cb.blok_end {
            let t = sym.bloks[b].fcblk;
            facing[t as usize].push((b as u32, k as u32));
            if t == last_t {
                continue; // fcblk is nondecreasing along a cblk's bloks
            }
            last_t = t;
            out[k].push(t);
            deps[t as usize] += 1;
            out[ns + t as usize].push((ns + k) as u32);
            deps[ns + k] += 1;
        }
    }
    let mut out_ptr = vec![0u32; n_tasks + 1];
    let mut out_dst = Vec::new();
    for (t, succs) in out.iter().enumerate() {
        out_dst.extend_from_slice(succs);
        out_ptr[t + 1] = out_dst.len() as u32;
    }
    // Forward tasks outrank backward ones; within a sweep, earlier
    // elimination order first (forward) / later first (backward).
    let priority: Vec<u64> = if dopts.priorities {
        (0..n_tasks)
            .map(|t| if t < ns { (2 * ns - t) as u64 } else { (t - ns) as u64 })
            .collect()
    } else {
        vec![0u64; n_tasks]
    };
    let placement: Vec<u32> = (0..n_tasks)
        .map(|t| {
            let k = if t < ns { t } else { t - ns };
            match sched {
                Some(s) => s.task_proc[graph.head_task_of_cblk[k] as usize],
                None => k as u32,
            }
        })
        .collect();
    let n_workers = resolve_workers(dopts, sched);

    // Owned segments (b on entry, x on exit) and buffered backward
    // partials, one mutex per column block. Segment locks are only ever
    // taken in ascending order; partial buffers are leaf locks.
    let segs: Vec<Mutex<Vec<T>>> = (0..ns)
        .map(|k| {
            let cb = &sym.cblks[k];
            let w = cb.width();
            let mut seg = vec![T::zero(); w * nrhs];
            for r in 0..nrhs {
                seg[r * w..(r + 1) * w].copy_from_slice(
                    &b_panel[r * sym.n + cb.fcol as usize..=r * sym.n + cb.lcol as usize],
                );
            }
            Mutex::new(seg)
        })
        .collect();
    let pbufs: Vec<Mutex<Vec<T>>> = (0..ns).map(|_| Mutex::new(Vec::new())).collect();

    let mut topts = cfg.trace;
    if topts.enabled && topts.epoch.is_none() {
        topts.epoch = Some(Instant::now());
    }
    let progress = AtomicU64::new(0);

    let body = |t: u32, tctx: &TaskCtx| -> bool {
        let t = t as usize;
        if t < ns {
            let k = t;
            let _span = task_span(k as u32, TaskClass::FwdSolve);
            let cb = &sym.cblks[k];
            let w = cb.width();
            let lda = storage.panel_lda(k);
            let mut seg = segs[k].lock().unwrap();
            solve_unit_lower_panel(w, &storage.panels[k], lda, &mut seg, nrhs, w);
            let mut last_t = u32::MAX;
            let mut tgt_guard = None;
            for b in cb.blok_start + 1..cb.blok_end {
                let blok = &sym.bloks[b];
                let hb = blok.nrows();
                let tk = blok.fcblk as usize;
                if blok.fcblk != last_t {
                    last_t = blok.fcblk;
                    tgt_guard = Some(segs[tk].lock().unwrap());
                }
                let tcb = &sym.cblks[tk];
                let width_t = tcb.width();
                let off = (blok.frow - tcb.fcol) as usize;
                let tgt = tgt_guard.as_mut().expect("target guard just set");
                match storage.blok_view(k, b - cb.blok_start, b) {
                    BlokView::Dense { data, ld } => {
                        gemm_nn_acc(
                            hb,
                            nrhs,
                            w,
                            -T::one(),
                            data,
                            ld,
                            &seg,
                            w,
                            &mut tgt[off..],
                            width_t,
                        );
                    }
                    BlokView::LowRank(lr) => {
                        lr_gemm_nn_acc(
                            -T::one(),
                            lr.as_ref(),
                            &seg,
                            nrhs,
                            w,
                            &mut tgt[off..],
                            width_t,
                        );
                    }
                }
            }
        } else {
            let k = t - ns;
            let _span = task_span(k as u32, TaskClass::BwdSolve);
            let cb = &sym.cblks[k];
            let w = cb.width();
            let lda = storage.panel_lda(k);
            let panel = &storage.panels[k];
            let mut seg = segs[k].lock().unwrap();
            // Sequential order: D-divide, subtract buffered partials,
            // transposed diagonal solve.
            for j in 0..w {
                let dinv = panel[j + j * lda].recip();
                for r in 0..nrhs {
                    seg[r * w + j] *= dinv;
                }
            }
            {
                let pb = pbufs[k].lock().unwrap();
                if !pb.is_empty() {
                    for (s, v) in seg.iter_mut().zip(pb.iter()) {
                        *s -= *v;
                    }
                }
            }
            solve_unit_lower_trans_panel(w, panel, lda, &mut seg, nrhs, w);
            // Push `L_bᵀ · x_k` partials toward every facing blok's source.
            for &(b, src) in &facing[k] {
                let b = b as usize;
                let src = src as usize;
                let blok = &sym.bloks[b];
                let hb = blok.nrows();
                let w_s = sym.cblks[src].width();
                let off = (blok.frow - cb.fcol) as usize;
                let mut pb = pbufs[src].lock().unwrap();
                if pb.is_empty() {
                    pb.resize(w_s * nrhs, T::zero());
                }
                match storage.blok_view(src, b - sym.cblks[src].blok_start, b) {
                    BlokView::Dense { data, ld } => {
                        gemm_tn_acc(w_s, nrhs, hb, T::one(), data, ld, &seg[off..], w, &mut pb, w_s);
                    }
                    BlokView::LowRank(lr) => {
                        lr_gemm_tn_acc(T::one(), lr.as_ref(), &seg[off..], nrhs, w, &mut pb, w_s);
                    }
                }
            }
        }
        if topts.enabled {
            let seq = progress.fetch_add(1, Ordering::Relaxed) + 1;
            heartbeat(seq);
            let every = topts.sample_every as usize;
            if every > 0 && (tctx.local_index + 1).is_multiple_of(every) {
                sample_gauge(GaugeId::ReadyQueueDepth, tctx.ready_depth as u64);
            }
        }
        true
    };
    let worker_scope = |w: usize, run: &mut dyn FnMut()| -> Option<RankTrace> {
        let session = begin_rank(w, &topts);
        run();
        session.finish()
    };

    let spec = DagSpec {
        deps: &deps,
        out_ptr: &out_ptr,
        out_dst: &out_dst,
        priority: &priority,
        placement: &placement,
    };
    let t0 = Instant::now();
    let (rank_traces, stats) = run_dag(&spec, n_workers, dopts.sim.as_ref(), &body, &worker_scope);
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let trace = TraceLog {
        ranks: rank_traces.into_iter().flatten().collect(),
        wall_ns,
        digest: sched.map(|s| s.digest()).unwrap_or(0),
    };
    crate::parallel::merge_trace_metrics(&cfg.metrics, &trace);
    record_steal_metrics(cfg, &stats);

    // Gather segments into the n × nrhs solution panel.
    let mut x = vec![T::zero(); sym.n * nrhs];
    for (k, seg) in segs.into_iter().enumerate() {
        let seg = seg.into_inner().unwrap();
        let cb = &sym.cblks[k];
        let w = cb.width();
        for r in 0..nrhs {
            x[r * sym.n + cb.fcol as usize..=r * sym.n + cb.lcol as usize]
                .copy_from_slice(&seg[r * w..(r + 1) * w]);
        }
    }
    (x, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use crate::seq::{factorize_sequential, solve_in_place};
    use pastix_graph::gen::{grid_spd, Stencil, ValueKind};
    use pastix_graph::{canonical_solution, rhs_for_solution};
    use pastix_machine::MachineModel;
    use pastix_ordering::{nested_dissection, OrderingOptions};
    use pastix_sched::{map_and_schedule, DistStrategy, MappingOptions, SchedOptions};
    use pastix_symbolic::{analyze, AnalysisOptions};

    fn full_setup(
        nx: usize,
        ny: usize,
        nz: usize,
        procs: usize,
        strategy: DistStrategy,
        block: usize,
    ) -> (pastix_graph::SymCsc<f64>, pastix_sched::Mapping) {
        let a = grid_spd::<f64>(nx, ny, nz, Stencil::Star, false, ValueKind::RandomSpd(21));
        let g = a.to_graph();
        let ord = nested_dissection(&g, &OrderingOptions { leaf_size: 8, ..Default::default() });
        let an = analyze(&g, &ord, &AnalysisOptions::default());
        let machine = MachineModel::sp2(procs);
        let opts = SchedOptions {
            block_size: block,
            mapping: MappingOptions { procs_2d_min: 2.0, width_2d_min: 4, strategy },
            ..Default::default()
        };
        let mapping = map_and_schedule(&an.symbol, &machine, &opts);
        (a.permuted(&an.perm), mapping)
    }

    fn seq_factor(
        sym: &SymbolMatrix,
        ap: &pastix_graph::SymCsc<f64>,
    ) -> crate::storage::FactorStorage<f64> {
        let mut seq = FactorStorage::zeros(sym);
        seq.scatter(sym, ap);
        factorize_sequential(sym, &mut seq).unwrap();
        seq
    }

    fn check_dynamic(
        ap: &pastix_graph::SymCsc<f64>,
        mapping: &pastix_sched::Mapping,
        dopts: &DynamicOptions,
        use_sched: bool,
    ) {
        let sym = &mapping.graph.split.symbol;
        let sched = use_sched.then_some(&mapping.schedule);
        let cfg = SolverConfig::default();
        let run = factorize_dynamic(sym, ap, &mapping.graph, sched, dopts, &cfg).unwrap();
        let seq = seq_factor(sym, ap);
        let n = ap.n();
        for j in 0..n {
            for i in j..n {
                let a = seq.get(sym, i, j);
                let b = run.storage.get(sym, i, j);
                assert!(
                    (a - b).abs() <= 1e-8 * a.abs().max(1.0),
                    "factor mismatch at ({i},{j}): seq {a} vs dyn {b}"
                );
            }
        }
        // Dynamic panel solve against the sequential sweep.
        let x_exact = canonical_solution::<f64>(n);
        let b = rhs_for_solution(ap, &x_exact);
        let (x_dyn, _) =
            solve_panel_dynamic(sym, &run.storage, &mapping.graph, sched, &b, 1, dopts, &cfg);
        let mut x_seq = b.clone();
        solve_in_place(sym, &run.storage, &mut x_seq);
        for (i, (xs, xd)) in x_seq.iter().zip(&x_dyn).enumerate() {
            assert!(
                (xs - xd).abs() <= 1e-9 * xs.abs().max(1.0),
                "solve mismatch at {i}: seq {xs} vs dyn {xd}"
            );
        }
        let res = ap.residual_norm(&x_dyn, &b);
        assert!(res < 1e-12, "residual {res}");
    }

    #[test]
    fn dynamic_matches_sequential_1d() {
        let (ap, mapping) = full_setup(8, 8, 1, 4, DistStrategy::Only1d, 4);
        check_dynamic(&ap, &mapping, &DynamicOptions::new(), true);
    }

    #[test]
    fn dynamic_matches_sequential_mixed_2d() {
        let (ap, mapping) = full_setup(4, 4, 4, 4, DistStrategy::Mixed1d2d, 4);
        for priorities in [false, true] {
            let d = DynamicOptions::new().with_priorities(priorities);
            check_dynamic(&ap, &mapping, &d, true);
        }
    }

    #[test]
    fn dynamic_runs_without_a_schedule() {
        let (ap, mapping) = full_setup(6, 6, 2, 3, DistStrategy::Mixed1d2d, 4);
        let d = DynamicOptions::new().with_workers(3).with_priorities(true);
        check_dynamic(&ap, &mapping, &d, false);
    }

    #[test]
    fn dynamic_sim_is_deterministic_and_correct() {
        use pastix_runtime::sim::{FaultPlan, SchedPolicy};
        let (ap, mapping) = full_setup(6, 6, 1, 3, DistStrategy::Mixed1d2d, 4);
        let sym = &mapping.graph.split.symbol;
        let cfg = SolverConfig::default();
        for policy in [
            SchedPolicy::Uniform,
            SchedPolicy::StarveRank(1),
            SchedPolicy::DeliverLast,
            SchedPolicy::FifoPerPair,
        ] {
            let plan = FaultPlan::builder(11).policy(policy).build();
            let d = DynamicOptions::new().with_sim(plan);
            check_dynamic(&ap, &mapping, &d, true);
            // Same (seed, policy) replays to bitwise-identical factors.
            let r1 = factorize_dynamic(sym, &ap, &mapping.graph, Some(&mapping.schedule), &d, &cfg)
                .unwrap();
            let r2 = factorize_dynamic(sym, &ap, &mapping.graph, Some(&mapping.schedule), &d, &cfg)
                .unwrap();
            assert_eq!(r1.storage.panels, r2.storage.panels);
        }
    }

    #[test]
    fn dynamic_zero_pivot_aborts_cleanly() {
        let (ap, mapping) = full_setup(6, 6, 1, 2, DistStrategy::Only1d, 4);
        let sym = &mapping.graph.split.symbol;
        let cfg = SolverConfig {
            chaos: crate::parallel::ChaosOptions {
                zero_pivot_task: Some(0),
                ..Default::default()
            },
            ..Default::default()
        };
        let res = factorize_dynamic(
            sym,
            &ap,
            &mapping.graph,
            Some(&mapping.schedule),
            &DynamicOptions::new(),
            &cfg,
        );
        assert!(matches!(res, Err(FactorError::ZeroPivot(_))));
    }
}
