//! Numeric storage of the block factor.
//!
//! Each column block is one contiguous column-major *panel*: the square
//! diagonal block on top (its strictly upper triangle unused), then the
//! rows of each off-diagonal block stacked in order. This is the real
//! PaStiX layout — a sub-panel of any block is a BLAS-ready column-major
//! slice with the panel's leading dimension.

use pastix_graph::SymCsc;
use pastix_kernels::scalar::Scalar;
use pastix_kernels::LowRankBlock;
use pastix_symbolic::SymbolMatrix;

/// Precomputed addressing of panels.
#[derive(Debug, Clone)]
pub struct PanelLayout {
    /// Leading dimension (total rows) of each column block's panel.
    pub lda: Vec<u32>,
    /// Row offset of each global blok inside its column block's panel
    /// (0 for diagonal blocks).
    pub panel_row: Vec<u32>,
}

impl PanelLayout {
    /// Builds the layout for a symbol matrix.
    pub fn new(sym: &SymbolMatrix) -> Self {
        let mut lda = Vec::with_capacity(sym.n_cblks());
        let mut panel_row = vec![0u32; sym.bloks.len()];
        for k in 0..sym.n_cblks() {
            let cb = &sym.cblks[k];
            let mut row = cb.width() as u32;
            panel_row[cb.blok_start] = 0;
            for b in cb.blok_start + 1..cb.blok_end {
                panel_row[b] = row;
                row += sym.bloks[b].nrows() as u32;
            }
            lda.push(row);
        }
        Self { lda, panel_row }
    }

    /// Panel rows (leading dimension) of column block `k`.
    #[inline]
    pub fn panel_rows(&self, k: usize) -> usize {
        self.lda[k] as usize
    }
}

/// How one blok of a compressed panel is stored.
#[derive(Debug, Clone)]
pub enum BlockStore<T> {
    /// Dense rows inside the (repacked) panel, starting at `row`.
    Dense {
        /// First row of the blok inside the packed panel.
        row: usize,
    },
    /// Compressed `U·Vᵀ` representation.
    LowRank(LowRankBlock<T>),
}

/// Per-panel compression overlay: which bloks are low-rank and where the
/// surviving dense rows landed after the panel was repacked.
#[derive(Debug, Clone)]
pub struct PanelCompression<T> {
    /// Leading dimension of the repacked panel (diagonal rows plus the
    /// rows of every still-dense blok).
    pub packed_lda: usize,
    /// One entry per blok of the column block, the diagonal blok first
    /// (always `Dense { row: 0 }`), then the off-diagonal bloks in order.
    pub bloks: Vec<BlockStore<T>>,
}

/// A read view of one blok of the factor, whichever way it is stored.
#[derive(Debug, Clone, Copy)]
pub enum BlokView<'a, T> {
    /// Dense rows with the panel's leading dimension.
    Dense {
        /// Slice starting at the blok's first row of the first column.
        data: &'a [T],
        /// Leading dimension of the backing panel.
        ld: usize,
    },
    /// Compressed representation.
    LowRank(&'a LowRankBlock<T>),
}

/// The numeric factor: one dense panel per column block, plus an optional
/// low-rank compression overlay. An empty overlay means every panel is
/// dense in the classic layout — the exact pre-compression storage, byte
/// for byte.
#[derive(Debug, Clone)]
pub struct FactorStorage<T> {
    /// Shared addressing (of the *uncompressed* layout; compressed panels
    /// carry their own packed leading dimension in the overlay).
    pub layout: PanelLayout,
    /// Column-major panels, `lda[k] × width(k)` each — or the repacked
    /// dense rows only for panels with a compression overlay entry.
    pub panels: Vec<Vec<T>>,
    /// Per-panel compression overlay; empty when no block is compressed.
    pub compression: Vec<Option<PanelCompression<T>>>,
}

impl<T: Scalar> FactorStorage<T> {
    /// Allocates zeroed panels for a symbol matrix.
    pub fn zeros(sym: &SymbolMatrix) -> Self {
        let layout = PanelLayout::new(sym);
        let panels = (0..sym.n_cblks())
            .map(|k| vec![T::zero(); layout.panel_rows(k) * sym.cblks[k].width()])
            .collect();
        Self { layout, panels, compression: Vec::new() }
    }

    /// `true` when at least one panel carries a compression overlay.
    pub fn is_compressed(&self) -> bool {
        self.compression.iter().any(|c| c.is_some())
    }

    /// Compression overlay of panel `k`, when present.
    #[inline]
    pub fn panel_compression(&self, k: usize) -> Option<&PanelCompression<T>> {
        self.compression.get(k).and_then(|c| c.as_ref())
    }

    /// Leading dimension of panel `k` as stored (packed when compressed).
    #[inline]
    pub fn panel_lda(&self, k: usize) -> usize {
        match self.panel_compression(k) {
            Some(pc) => pc.packed_lda,
            None => self.layout.panel_rows(k),
        }
    }

    /// Read view of global blok `b` (with local index `local` inside its
    /// column block `k`), dispatching on the stored representation.
    #[inline]
    pub fn blok_view(&self, k: usize, local: usize, b: usize) -> BlokView<'_, T> {
        match self.panel_compression(k) {
            Some(pc) => match &pc.bloks[local] {
                BlockStore::Dense { row } => BlokView::Dense {
                    data: &self.panels[k][*row..],
                    ld: pc.packed_lda,
                },
                BlockStore::LowRank(lr) => BlokView::LowRank(lr),
            },
            None => BlokView::Dense {
                data: &self.panels[k][self.layout.panel_row[b] as usize..],
                ld: self.layout.panel_rows(k),
            },
        }
    }

    /// Resident bytes of the factor as stored: dense panel bytes plus the
    /// `U`/`V` bytes of every compressed blok.
    pub fn factor_bytes(&self) -> u64 {
        let dense: u64 = self
            .panels
            .iter()
            .map(|p| (p.len() * std::mem::size_of::<T>()) as u64)
            .sum();
        let lr: u64 = self
            .compression
            .iter()
            .flatten()
            .flat_map(|pc| pc.bloks.iter())
            .map(|b| match b {
                BlockStore::LowRank(lr) => lr.bytes() as u64,
                BlockStore::Dense { .. } => 0,
            })
            .sum();
        dense + lr
    }

    /// Bytes the factor would occupy fully dense (the classic layout).
    pub fn dense_factor_bytes(&self) -> u64 {
        (0..self.panels.len())
            .map(|k| {
                let w = self.panels[k].len() / self.panel_lda(k).max(1);
                (self.layout.panel_rows(k) * w * std::mem::size_of::<T>()) as u64
            })
            .sum()
    }

    /// Installs per-blok low-rank representations produced at factor time
    /// (indexed by *global* blok id) and repacks every affected panel so
    /// only the diagonal block and the still-dense bloks keep their rows.
    /// Entries of already-compressed panels must be `None`.
    pub fn install_compression(&mut self, sym: &SymbolMatrix, mut lr: Vec<Option<LowRankBlock<T>>>) {
        assert_eq!(lr.len(), sym.bloks.len(), "one entry per global blok");
        if lr.iter().all(|x| x.is_none()) {
            return;
        }
        if self.compression.is_empty() {
            self.compression = (0..self.panels.len()).map(|_| None).collect();
        }
        for k in 0..sym.n_cblks() {
            let cb = &sym.cblks[k];
            if !(cb.blok_start + 1..cb.blok_end).any(|b| lr[b].is_some()) {
                continue;
            }
            assert!(self.compression[k].is_none(), "cblk {k} is already compressed");
            let w = cb.width();
            let old_lda = self.layout.panel_rows(k);
            let mut packed = w;
            for b in cb.blok_start + 1..cb.blok_end {
                if lr[b].is_none() {
                    packed += sym.bloks[b].nrows();
                }
            }
            let mut newp = vec![T::zero(); packed * w];
            let old = &self.panels[k];
            for j in 0..w {
                newp[j * packed..j * packed + w].copy_from_slice(&old[j * old_lda..j * old_lda + w]);
            }
            let mut bloks = Vec::with_capacity(cb.blok_end - cb.blok_start);
            bloks.push(BlockStore::Dense { row: 0 });
            let mut row = w;
            for b in cb.blok_start + 1..cb.blok_end {
                let h = sym.bloks[b].nrows();
                match lr[b].take() {
                    Some(l) => {
                        debug_assert_eq!((l.m, l.n), (h, w), "blok {b} shape");
                        bloks.push(BlockStore::LowRank(l));
                    }
                    None => {
                        let orow = self.layout.panel_row[b] as usize;
                        for j in 0..w {
                            newp[row + j * packed..row + j * packed + h]
                                .copy_from_slice(&old[orow + j * old_lda..orow + j * old_lda + h]);
                        }
                        bloks.push(BlockStore::Dense { row });
                        row += h;
                    }
                }
            }
            self.panels[k] = newp;
            self.compression[k] = Some(PanelCompression { packed_lda: packed, bloks });
        }
    }

    /// Expands every compressed panel back to the classic dense layout and
    /// drops the overlay — the decompress path.
    pub fn decompress(&mut self, sym: &SymbolMatrix) {
        for k in 0..sym.n_cblks() {
            let Some(pc) = self.compression.get_mut(k).and_then(|c| c.take()) else {
                continue;
            };
            let cb = &sym.cblks[k];
            let w = cb.width();
            let lda = self.layout.panel_rows(k);
            let mut full = vec![T::zero(); lda * w];
            let packed = &self.panels[k];
            for (local, store) in pc.bloks.iter().enumerate() {
                let b = cb.blok_start + local;
                let h = if local == 0 { w } else { sym.bloks[b].nrows() };
                let drow = self.layout.panel_row[b] as usize;
                match store {
                    BlockStore::Dense { row } => {
                        for j in 0..w {
                            full[drow + j * lda..drow + j * lda + h].copy_from_slice(
                                &packed[row + j * pc.packed_lda..row + j * pc.packed_lda + h],
                            );
                        }
                    }
                    BlockStore::LowRank(l) => {
                        l.decompress_into(&mut full[drow..], lda);
                    }
                }
            }
            self.panels[k] = full;
        }
        self.compression.clear();
    }

    /// Scatters the lower triangle of the (already permuted) matrix into
    /// the panels. Entries must all fall inside the symbolic structure.
    pub fn scatter(&mut self, sym: &SymbolMatrix, a: &SymCsc<T>) {
        assert_eq!(a.n(), sym.n);
        for j in 0..a.n() {
            let k = sym.cblk_of_col(j);
            let cb = &sym.cblks[k];
            let lda = self.layout.panel_rows(k);
            let local_col = j - cb.fcol as usize;
            let panel = &mut self.panels[k];
            for (&i, &v) in a.rows_of(j).iter().zip(a.vals_of(j)) {
                let i = i as usize;
                debug_assert!(i >= j, "input must be lower triangular");
                let row = panel_row_of(sym, &self.layout, k, i as u32);
                panel[row + local_col * lda] = v;
            }
        }
    }

    /// Entry `(i, j)` of the factor (`i ≥ j`), zero when outside the
    /// structure. Dispatches on the stored representation (a compressed
    /// blok's entry is the `U·Vᵀ` dot product). For tests and small-scale
    /// inspection.
    pub fn get(&self, sym: &SymbolMatrix, i: usize, j: usize) -> T {
        assert!(i >= j);
        let k = sym.cblk_of_col(j);
        let cb = &sym.cblks[k];
        let local_col = j - cb.fcol as usize;
        let Some((b, row_in_blok)) = try_blok_of(sym, k, i as u32) else {
            return T::zero();
        };
        match self.blok_view(k, b - cb.blok_start, b) {
            BlokView::Dense { data, ld } => data[row_in_blok + local_col * ld],
            BlokView::LowRank(lr) => (0..lr.rank)
                .map(|r| lr.u[row_in_blok + r * lr.m] * lr.v[local_col + r * lr.n])
                .sum(),
        }
    }

    /// The diagonal entries `D` of the factored matrix.
    pub fn diagonal(&self, sym: &SymbolMatrix) -> Vec<T> {
        let mut d = Vec::with_capacity(sym.n);
        for k in 0..sym.n_cblks() {
            let cb = &sym.cblks[k];
            let lda = self.panel_lda(k);
            for t in 0..cb.width() {
                d.push(self.panels[k][t + t * lda]);
            }
        }
        d
    }
}

/// Panel row of global row `i` within column block `k`; panics when `i` is
/// outside the structure.
pub fn panel_row_of(sym: &SymbolMatrix, layout: &PanelLayout, k: usize, i: u32) -> usize {
    try_panel_row_of(sym, layout, k, i)
        .unwrap_or_else(|| panic!("row {i} not in structure of cblk {k}"))
}

/// Panel row of global row `i` within column block `k`, or `None` when the
/// row is not in the block structure.
pub fn try_panel_row_of(sym: &SymbolMatrix, layout: &PanelLayout, k: usize, i: u32) -> Option<usize> {
    let (b, row_in_blok) = try_blok_of(sym, k, i)?;
    Some(layout.panel_row[b] as usize + row_in_blok)
}

/// Global blok of column block `k` containing row `i` and the row's
/// offset inside that blok, or `None` outside the block structure.
pub fn try_blok_of(sym: &SymbolMatrix, k: usize, i: u32) -> Option<(usize, usize)> {
    let cb = &sym.cblks[k];
    if i >= cb.fcol && i <= cb.lcol {
        return Some((cb.blok_start, (i - cb.fcol) as usize));
    }
    // Binary search the off-diagonal blocks (sorted by frow).
    let bloks = &sym.bloks[cb.blok_start + 1..cb.blok_end];
    let mut lo = 0usize;
    let mut hi = bloks.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if bloks[mid].lrow < i {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo < bloks.len() && bloks[lo].frow <= i && i <= bloks[lo].lrow {
        Some((cb.blok_start + 1 + lo, (i - bloks[lo].frow) as usize))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastix_graph::Permutation;
    use pastix_symbolic::{analyze, AnalysisOptions};

    fn setup() -> (SymCsc<f64>, SymbolMatrix, Permutation) {
        let a = pastix_graph::gen::grid_spd::<f64>(
            5,
            4,
            1,
            pastix_graph::gen::Stencil::Star,
            false,
            pastix_graph::gen::ValueKind::RandomSpd(3),
        );
        let g = a.to_graph();
        let ord = pastix_ordering::nested_dissection(&g, &pastix_ordering::OrderingOptions {
            leaf_size: 4,
            ..Default::default()
        });
        let an = analyze(&g, &ord, &AnalysisOptions::default());
        let ap = a.permuted(&an.perm);
        (ap, an.symbol, an.perm)
    }

    #[test]
    fn layout_covers_all_bloks() {
        let (_, sym, _) = setup();
        let layout = PanelLayout::new(&sym);
        for k in 0..sym.n_cblks() {
            let cb = &sym.cblks[k];
            let mut expected = cb.width();
            for b in cb.blok_start + 1..cb.blok_end {
                assert_eq!(layout.panel_row[b] as usize, expected);
                expected += sym.bloks[b].nrows();
            }
            assert_eq!(layout.panel_rows(k), expected);
        }
    }

    #[test]
    fn scatter_then_get_roundtrip() {
        let (ap, sym, _) = setup();
        let mut f = FactorStorage::zeros(&sym);
        f.scatter(&sym, &ap);
        for j in 0..ap.n() {
            for (&i, &v) in ap.rows_of(j).iter().zip(ap.vals_of(j)) {
                assert_eq!(f.get(&sym, i as usize, j), v, "({i},{j})");
            }
        }
    }

    #[test]
    fn get_outside_structure_is_zero() {
        let (ap, sym, _) = setup();
        let mut f = FactorStorage::zeros(&sym);
        f.scatter(&sym, &ap);
        // Count structural zeros read back as zero.
        let n = ap.n();
        let mut zeros = 0;
        for j in 0..n {
            for i in j..n {
                if try_panel_row_of(&sym, &f.layout, sym.cblk_of_col(j), i as u32).is_none() {
                    assert_eq!(f.get(&sym, i, j), 0.0);
                    zeros += 1;
                }
            }
        }
        assert!(zeros > 0, "expected some structural zeros in a sparse factor");
    }

    #[test]
    fn compression_overlay_roundtrip() {
        let (ap, sym, _) = setup();
        let mut f = FactorStorage::zeros(&sym);
        f.scatter(&sym, &ap);
        // Pick the largest off-diagonal blok, overwrite it with a rank-1
        // outer product, compress it, and install the overlay.
        let (k, b) = (0..sym.n_cblks())
            .flat_map(|k| (sym.cblks[k].blok_start + 1..sym.cblks[k].blok_end).map(move |b| (k, b)))
            .max_by_key(|&(_, b)| sym.bloks[b].nrows())
            .expect("structure has off-diagonal bloks");
        let cb = &sym.cblks[k];
        let (h, w) = (sym.bloks[b].nrows(), cb.width());
        let lda = f.layout.panel_rows(k);
        let row = f.layout.panel_row[b] as usize;
        for j in 0..w {
            for i in 0..h {
                f.panels[k][row + i + j * lda] = (1.0 + i as f64) * (2.0 + j as f64);
            }
        }
        let before = f.clone();
        let lr = pastix_kernels::compress_block(h, w, &f.panels[k][row..], lda, 0.0, 1e-12)
            .expect("rank-1 blok compresses");
        assert_eq!(lr.rank, 1);
        let mut per_blok: Vec<Option<pastix_kernels::LowRankBlock<f64>>> =
            (0..sym.bloks.len()).map(|_| None).collect();
        per_blok[b] = Some(lr);
        f.install_compression(&sym, per_blok);
        assert!(f.is_compressed());
        assert!(f.factor_bytes() < f.dense_factor_bytes());
        assert_eq!(f.panel_lda(k), lda - h);
        // Reads agree with the dense original everywhere (to fp round-off).
        for j in 0..ap.n() {
            for i in j..ap.n() {
                let (a, bv) = (before.get(&sym, i, j), f.get(&sym, i, j));
                assert!((a - bv).abs() <= 1e-10 * a.abs().max(1.0), "({i},{j}): {a} vs {bv}");
            }
        }
        // Decompress restores the classic layout.
        f.decompress(&sym);
        assert!(!f.is_compressed());
        assert_eq!(f.panels[k].len(), before.panels[k].len());
        for (x, y) in f.panels[k].iter().zip(&before.panels[k]) {
            assert!((x - y).abs() <= 1e-10 * y.abs().max(1.0));
        }
    }

    #[test]
    fn diagonal_extraction() {
        let (ap, sym, _) = setup();
        let mut f = FactorStorage::zeros(&sym);
        f.scatter(&sym, &ap);
        let d = f.diagonal(&sym);
        for (j, &dj) in d.iter().enumerate() {
            assert_eq!(dj, ap.get(j, j));
        }
    }
}
