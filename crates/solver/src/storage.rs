//! Numeric storage of the block factor.
//!
//! Each column block is one contiguous column-major *panel*: the square
//! diagonal block on top (its strictly upper triangle unused), then the
//! rows of each off-diagonal block stacked in order. This is the real
//! PaStiX layout — a sub-panel of any block is a BLAS-ready column-major
//! slice with the panel's leading dimension.

use pastix_graph::SymCsc;
use pastix_kernels::scalar::Scalar;
use pastix_symbolic::SymbolMatrix;

/// Precomputed addressing of panels.
#[derive(Debug, Clone)]
pub struct PanelLayout {
    /// Leading dimension (total rows) of each column block's panel.
    pub lda: Vec<u32>,
    /// Row offset of each global blok inside its column block's panel
    /// (0 for diagonal blocks).
    pub panel_row: Vec<u32>,
}

impl PanelLayout {
    /// Builds the layout for a symbol matrix.
    pub fn new(sym: &SymbolMatrix) -> Self {
        let mut lda = Vec::with_capacity(sym.n_cblks());
        let mut panel_row = vec![0u32; sym.bloks.len()];
        for k in 0..sym.n_cblks() {
            let cb = &sym.cblks[k];
            let mut row = cb.width() as u32;
            panel_row[cb.blok_start] = 0;
            for b in cb.blok_start + 1..cb.blok_end {
                panel_row[b] = row;
                row += sym.bloks[b].nrows() as u32;
            }
            lda.push(row);
        }
        Self { lda, panel_row }
    }

    /// Panel rows (leading dimension) of column block `k`.
    #[inline]
    pub fn panel_rows(&self, k: usize) -> usize {
        self.lda[k] as usize
    }
}

/// The numeric factor: one dense panel per column block.
#[derive(Debug, Clone)]
pub struct FactorStorage<T> {
    /// Shared addressing.
    pub layout: PanelLayout,
    /// Column-major panels, `lda[k] × width(k)` each.
    pub panels: Vec<Vec<T>>,
}

impl<T: Scalar> FactorStorage<T> {
    /// Allocates zeroed panels for a symbol matrix.
    pub fn zeros(sym: &SymbolMatrix) -> Self {
        let layout = PanelLayout::new(sym);
        let panels = (0..sym.n_cblks())
            .map(|k| vec![T::zero(); layout.panel_rows(k) * sym.cblks[k].width()])
            .collect();
        Self { layout, panels }
    }

    /// Scatters the lower triangle of the (already permuted) matrix into
    /// the panels. Entries must all fall inside the symbolic structure.
    pub fn scatter(&mut self, sym: &SymbolMatrix, a: &SymCsc<T>) {
        assert_eq!(a.n(), sym.n);
        for j in 0..a.n() {
            let k = sym.cblk_of_col(j);
            let cb = &sym.cblks[k];
            let lda = self.layout.panel_rows(k);
            let local_col = j - cb.fcol as usize;
            let panel = &mut self.panels[k];
            for (&i, &v) in a.rows_of(j).iter().zip(a.vals_of(j)) {
                let i = i as usize;
                debug_assert!(i >= j, "input must be lower triangular");
                let row = panel_row_of(sym, &self.layout, k, i as u32);
                panel[row + local_col * lda] = v;
            }
        }
    }

    /// Entry `(i, j)` of the factor (`i ≥ j`), zero when outside the
    /// structure. For tests and small-scale inspection.
    pub fn get(&self, sym: &SymbolMatrix, i: usize, j: usize) -> T {
        assert!(i >= j);
        let k = sym.cblk_of_col(j);
        let cb = &sym.cblks[k];
        let local_col = j - cb.fcol as usize;
        let lda = self.layout.panel_rows(k);
        match try_panel_row_of(sym, &self.layout, k, i as u32) {
            Some(row) => self.panels[k][row + local_col * lda],
            None => T::zero(),
        }
    }

    /// The diagonal entries `D` of the factored matrix.
    pub fn diagonal(&self, sym: &SymbolMatrix) -> Vec<T> {
        let mut d = Vec::with_capacity(sym.n);
        for k in 0..sym.n_cblks() {
            let cb = &sym.cblks[k];
            let lda = self.layout.panel_rows(k);
            for t in 0..cb.width() {
                d.push(self.panels[k][t + t * lda]);
            }
        }
        d
    }
}

/// Panel row of global row `i` within column block `k`; panics when `i` is
/// outside the structure.
pub fn panel_row_of(sym: &SymbolMatrix, layout: &PanelLayout, k: usize, i: u32) -> usize {
    try_panel_row_of(sym, layout, k, i)
        .unwrap_or_else(|| panic!("row {i} not in structure of cblk {k}"))
}

/// Panel row of global row `i` within column block `k`, or `None` when the
/// row is not in the block structure.
pub fn try_panel_row_of(sym: &SymbolMatrix, layout: &PanelLayout, k: usize, i: u32) -> Option<usize> {
    let cb = &sym.cblks[k];
    if i >= cb.fcol && i <= cb.lcol {
        return Some((i - cb.fcol) as usize);
    }
    // Binary search the off-diagonal blocks (sorted by frow).
    let bloks = &sym.bloks[cb.blok_start + 1..cb.blok_end];
    let mut lo = 0usize;
    let mut hi = bloks.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if bloks[mid].lrow < i {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo < bloks.len() && bloks[lo].frow <= i && i <= bloks[lo].lrow {
        let b = cb.blok_start + 1 + lo;
        Some(layout.panel_row[b] as usize + (i - bloks[lo].frow) as usize)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastix_graph::Permutation;
    use pastix_symbolic::{analyze, AnalysisOptions};

    fn setup() -> (SymCsc<f64>, SymbolMatrix, Permutation) {
        let a = pastix_graph::gen::grid_spd::<f64>(
            5,
            4,
            1,
            pastix_graph::gen::Stencil::Star,
            false,
            pastix_graph::gen::ValueKind::RandomSpd(3),
        );
        let g = a.to_graph();
        let ord = pastix_ordering::nested_dissection(&g, &pastix_ordering::OrderingOptions {
            leaf_size: 4,
            ..Default::default()
        });
        let an = analyze(&g, &ord, &AnalysisOptions::default());
        let ap = a.permuted(&an.perm);
        (ap, an.symbol, an.perm)
    }

    #[test]
    fn layout_covers_all_bloks() {
        let (_, sym, _) = setup();
        let layout = PanelLayout::new(&sym);
        for k in 0..sym.n_cblks() {
            let cb = &sym.cblks[k];
            let mut expected = cb.width();
            for b in cb.blok_start + 1..cb.blok_end {
                assert_eq!(layout.panel_row[b] as usize, expected);
                expected += sym.bloks[b].nrows();
            }
            assert_eq!(layout.panel_rows(k), expected);
        }
    }

    #[test]
    fn scatter_then_get_roundtrip() {
        let (ap, sym, _) = setup();
        let mut f = FactorStorage::zeros(&sym);
        f.scatter(&sym, &ap);
        for j in 0..ap.n() {
            for (&i, &v) in ap.rows_of(j).iter().zip(ap.vals_of(j)) {
                assert_eq!(f.get(&sym, i as usize, j), v, "({i},{j})");
            }
        }
    }

    #[test]
    fn get_outside_structure_is_zero() {
        let (ap, sym, _) = setup();
        let mut f = FactorStorage::zeros(&sym);
        f.scatter(&sym, &ap);
        // Count structural zeros read back as zero.
        let n = ap.n();
        let mut zeros = 0;
        for j in 0..n {
            for i in j..n {
                if try_panel_row_of(&sym, &f.layout, sym.cblk_of_col(j), i as u32).is_none() {
                    assert_eq!(f.get(&sym, i, j), 0.0);
                    zeros += 1;
                }
            }
        }
        assert!(zeros > 0, "expected some structural zeros in a sparse factor");
    }

    #[test]
    fn diagonal_extraction() {
        let (ap, sym, _) = setup();
        let mut f = FactorStorage::zeros(&sym);
        f.scatter(&sym, &ap);
        let d = f.diagonal(&sym);
        for (j, &dj) in d.iter().enumerate() {
            assert_eq!(dj, ap.get(j, j));
        }
    }
}
