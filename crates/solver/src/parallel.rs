//! The parallel supernodal fan-in `L·D·Lᵀ` solver, fully driven by the
//! static schedule.
//!
//! This is the executable form of the paper's Fig. 1: each logical
//! processor walks its fully ordered task vector `K_p`; non-local block
//! contributions are aggregated locally into **aggregated update blocks**
//! (AUBs) that are sent as soon as the last local contribution lands
//! ("total local aggregation", the Fan-In scheme of Ashcraft–Eisenstat–
//! Liu); factor panels (`L_kk D_k` for BDIV, `[L_j | F_j]` for BMOD) are
//! the only other messages. The runtime is the in-process message-passing
//! substrate of `pastix-runtime`.
//!
//! Because the schedule orders every computation, reception is demand
//! driven: a processor that needs a factor block drains its mailbox —
//! applying any AUB immediately (updates commute) and caching factor
//! blocks — until the wanted block appears.

use crate::compress::{comp1d_tail_compressed, finalize_compression, CompressionConfig};
use crate::config::{FactorRun, SolverConfig};
use crate::storage::{FactorStorage, PanelLayout};
use pastix_graph::SymCsc;
use pastix_kernels::factor::{ldlt_factor_blocked, FactorError, NB_FACTOR};
use pastix_kernels::{
    lr_gemm_nt_acc, scale_cols_by_diag_into, trsm_ldlt_panel, LowRankBlock, LrOp, Scalar,
};
use pastix_runtime::{run_spmd_with, Comm, CommHook, Instrumented};
use pastix_sched::{Schedule, TaskGraph, TaskKind};
use pastix_symbolic::SymbolMatrix;
use pastix_trace::{
    heartbeat, sample_gauge, task_span, GaugeId, MetricsRegistry, RankTrace, SessionHook,
    TaskClass, TraceLog, TraceOptions,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Message shipped between logical processors. (`Clone` is only exercised
/// by the simulator's duplicate-delivery fault; for the `Arc` factor
/// payload it is a refcount bump.)
#[derive(Clone)]
enum PMsg<T> {
    /// Aggregated update block for the region of task `dst`, carrying
    /// `pairs` block contributions (fewer than the full count when the
    /// Fan-Both memory fallback flushed a partial aggregate early).
    /// `seq` is a per-sender sequence number: together with the envelope's
    /// sender it identifies the AUB so receivers can discard the
    /// simulator's duplicate deliveries (an AUB applied twice would
    /// corrupt the region *and* underflow the pending-pair counter).
    /// The payload stays an owned `Vec` on purpose: an AUB has exactly one
    /// destination, and the receiver recycles the buffer into its own
    /// outgoing pool after applying it.
    Aub {
        dst: u32,
        seq: u32,
        pairs: u32,
        data: Vec<T>,
    },
    /// Factor data produced by task `src` (`L_kk D_k` of a FACTOR, or
    /// `[L_b | F_b]` of a BDIV). Duplicate delivery is harmless: the cache
    /// insert is idempotent. Shipped as `Arc<[T]>`: the producer
    /// materializes the payload once and every consumer send is a refcount
    /// bump instead of a deep clone.
    Fac { src: u32, data: Arc<[T]> },
    /// A processor hit a zero pivot; everyone unwinds. Idempotent.
    Abort { col: u32 },
}

/// Message metadata for the trace layer: `(kind tag, payload bytes)`.
/// Tags: 0 = AUB, 1 = factor block, 2 = abort.
fn pmsg_meta<T>(m: &PMsg<T>) -> (u8, u64) {
    let elem = std::mem::size_of::<T>() as u64;
    match m {
        PMsg::Aub { data, .. } => (0, data.len() as u64 * elem),
        PMsg::Fac { data, .. } => (1, data.len() as u64 * elem),
        PMsg::Abort { .. } => (2, 0),
    }
}

/// Run-wide live gauges, shared by every rank and sampled onto the trace
/// timeline at the `TraceOptions::sample_every` cadence. Only allocated
/// (and only touched) when tracing is enabled, so the untraced hot path
/// never sees an atomic. Under the simulator the serialized execution
/// makes every reading a pure function of `(seed, policy)`.
struct SharedGauges {
    /// Payload bytes accepted by the transport but not yet received.
    /// Signed because the simulator's duplicate-delivery fault can make
    /// recvs overtake sends; samples clamp at zero.
    inflight_bytes: AtomicI64,
    /// Per-rank mailbox depth: messages sent to that rank, not yet
    /// received by it.
    mailbox_depth: Vec<AtomicI64>,
    /// Run-global completed-task counter; each completion stamps the
    /// finishing rank's heartbeat with the post-increment value.
    progress: AtomicU64,
}

impl SharedGauges {
    fn new(n_procs: usize) -> Self {
        Self {
            inflight_bytes: AtomicI64::new(0),
            mailbox_depth: (0..n_procs).map(|_| AtomicI64::new(0)).collect(),
            progress: AtomicU64::new(0),
        }
    }
}

/// The [`CommHook`] feeding [`SharedGauges`] from one rank's traffic;
/// composed with [`SessionHook`] through the runtime's tuple hook so one
/// [`Instrumented`] wrapper serves both.
struct GaugeHook<'g> {
    rank: usize,
    gauges: &'g SharedGauges,
}

impl CommHook for GaugeHook<'_> {
    #[inline]
    fn on_send(&self, to: usize, bytes: u64, _kind: u8) {
        self.gauges.inflight_bytes.fetch_add(bytes as i64, Ordering::Relaxed);
        self.gauges.mailbox_depth[to].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn on_send_dropped(&self, _to: usize, _bytes: u64, _kind: u8) {}

    #[inline]
    fn on_recv(&self, _from: usize, bytes: u64, _kind: u8, _wait_ns: u64) {
        self.gauges.inflight_bytes.fetch_sub(bytes as i64, Ordering::Relaxed);
        self.gauges.mailbox_depth[self.rank].fetch_sub(1, Ordering::Relaxed);
    }
}

/// Per-rank message-path counters, bumped as plain fields on the worker's
/// hot path (no atomics, no sharing) and merged into the run's
/// [`MetricsRegistry`] once at run end.
#[derive(Debug, Clone, Copy, Default)]
struct RankCounters {
    fac_deep_copies: u64,
    fac_sends: u64,
    aub_sends: u64,
    aub_fresh_allocs: u64,
    aub_pool_reuses: u64,
}

/// Merges one rank's counters into `reg` under the `solver.*` names
/// (zero counters are skipped; absent names read as 0 anyway).
fn merge_rank_counters(reg: &MetricsRegistry, rank: u32, c: &RankCounters) {
    for (name, v) in [
        ("solver.fac_deep_copies", c.fac_deep_copies),
        ("solver.fac_sends", c.fac_sends),
        ("solver.aub_sends", c.aub_sends),
        ("solver.aub_fresh_allocs", c.aub_fresh_allocs),
        ("solver.aub_pool_reuses", c.aub_pool_reuses),
    ] {
        if v > 0 {
            reg.add_counter_rank(name, Some(rank), v);
        }
    }
}

/// Folds a recorded trace into `reg`: per-rank communication counters
/// under `comm.*` and every closed task span into the
/// `task.duration_ns` histogram.
pub(crate) fn merge_trace_metrics(reg: &MetricsRegistry, log: &TraceLog) {
    use pastix_trace::EventKind;
    for rt in &log.ranks {
        for (name, v) in [
            ("comm.sends", rt.comm.sends),
            ("comm.send_drops", rt.comm.send_drops),
            ("comm.recvs", rt.comm.recvs),
            ("comm.send_bytes", rt.comm.send_bytes),
            ("comm.recv_bytes", rt.comm.recv_bytes),
        ] {
            if v > 0 {
                reg.add_counter_rank(name, Some(rt.rank), v);
            }
        }
        let mut open: HashMap<(u32, u8), u64> = HashMap::new();
        for ev in &rt.events {
            match ev.kind {
                EventKind::TaskBegin { task, class } => {
                    open.insert((task, class as u8), ev.at);
                }
                EventKind::TaskEnd { task, class } => {
                    if let Some(b) = open.remove(&(task, class as u8)) {
                        reg.observe("task.duration_ns", ev.at.saturating_sub(b));
                    }
                }
                _ => {}
            }
        }
    }
}

/// Static routing info shared read-only by all workers.
struct Routing {
    /// Per task: total remote contribution *pairs* expected (AUB messages
    /// decrement this by the pair count they carry, so partial-aggregation
    /// flushes stay protocol-safe).
    remote_pairs: Vec<u32>,
    /// Per (proc, dst task): number of contribution pairs the proc must
    /// accumulate before its AUB to `dst` is complete.
    pair_count: HashMap<(u32, u32), u32>,
    /// Region size in scalars per task.
    region_len: Vec<usize>,
}

/// One contribution pair's routing: destination task plus the placement of
/// the `hr × hc` product inside the destination region.
struct PairRoute {
    dst: u32,
    row_off: usize,
    col_off: usize,
    ldr: usize,
}

/// Computes where the contribution of off-block pair `(br, bc)` of column
/// block `k` lands.
fn route_pair(sym: &SymbolMatrix, layout: &PanelLayout, graph: &TaskGraph, br: usize, bc: usize) -> PairRoute {
    let rb = &sym.bloks[br];
    let cb_ = &sym.bloks[bc];
    let tk = cb_.fcblk as usize;
    let tcb = &sym.cblks[tk];
    let col_off = (cb_.frow - tcb.fcol) as usize;
    let covering = sym.covering_blok(tk, rb.frow, rb.lrow);
    let head = graph.head_task_of_cblk[tk];
    match graph.kinds[head as usize] {
        TaskKind::Comp1d { .. } => {
            let row_off = layout.panel_row[covering] as usize + (rb.frow - sym.bloks[covering].frow) as usize;
            PairRoute {
                dst: head,
                row_off,
                col_off,
                ldr: layout.panel_rows(tk),
            }
        }
        TaskKind::Factor { .. } => {
            if covering == tcb.blok_start {
                // Lands on the diagonal block region (w × w).
                PairRoute {
                    dst: head,
                    row_off: (rb.frow - tcb.fcol) as usize,
                    col_off,
                    ldr: tcb.width(),
                }
            } else {
                let dst = graph.bdiv_task_of_blok[covering];
                PairRoute {
                    dst,
                    row_off: (rb.frow - sym.bloks[covering].frow) as usize,
                    col_off,
                    ldr: sym.bloks[covering].nrows(),
                }
            }
        }
        _ => unreachable!("head task of a cblk is Comp1d or Factor"),
    }
}

/// Enumerates the contribution pairs of a column block together with their
/// producer task ids.
fn pairs_of_cblk<'a>(
    sym: &'a SymbolMatrix,
    graph: &'a TaskGraph,
    k: usize,
) -> impl Iterator<Item = (u32 /*producer*/, usize /*br*/, usize /*bc*/)> + 'a {
    let cb = &sym.cblks[k];
    let m = cb.blok_end - cb.blok_start - 1;
    let head = graph.head_task_of_cblk[k];
    let is2d = matches!(graph.kinds[head as usize], TaskKind::Factor { .. });
    let base = graph.bmod_base[k];
    (0..m).flat_map(move |r| {
        (0..=r).map(move |c| {
            let producer = if is2d {
                base + (r * (r + 1) / 2 + c) as u32
            } else {
                head
            };
            (producer, cb.blok_start + 1 + r, cb.blok_start + 1 + c)
        })
    })
}

/// Builds the static routing tables.
fn build_routing(sym: &SymbolMatrix, layout: &PanelLayout, graph: &TaskGraph, sched: &Schedule) -> Routing {
    let n_tasks = graph.n_tasks();
    let mut pair_count: HashMap<(u32, u32), u32> = HashMap::new();
    let mut sender_sets: HashMap<u32, Vec<u32>> = HashMap::new();
    for k in 0..sym.n_cblks() {
        for (producer, br, bc) in pairs_of_cblk(sym, graph, k) {
            let route = route_pair(sym, layout, graph, br, bc);
            let p = sched.task_proc[producer as usize];
            let q = sched.task_proc[route.dst as usize];
            if p != q {
                *pair_count.entry((p, route.dst)).or_insert(0) += 1;
                sender_sets.entry(route.dst).or_default().push(p);
            }
        }
    }
    let mut remote_pairs = vec![0u32; n_tasks];
    for (dst, procs) in sender_sets {
        remote_pairs[dst as usize] = procs.len() as u32;
    }
    let region_len: Vec<usize> = (0..n_tasks)
        .map(|t| match graph.kinds[t] {
            TaskKind::Comp1d { cblk } => {
                layout.panel_rows(cblk as usize) * sym.cblks[cblk as usize].width()
            }
            TaskKind::Factor { cblk } => {
                let w = sym.cblks[cblk as usize].width();
                w * w
            }
            TaskKind::Bdiv { cblk, blok } => {
                sym.bloks[blok as usize].nrows() * sym.cblks[cblk as usize].width()
            }
            TaskKind::Bmod { .. } => 0,
        })
        .collect();
    Routing {
        remote_pairs,
        pair_count,
        region_len,
    }
}

/// Per-worker state.
struct Worker<'a, T> {
    rank: u32,
    sym: &'a SymbolMatrix,
    layout: &'a PanelLayout,
    graph: &'a TaskGraph,
    sched: &'a Schedule,
    routing: &'a Routing,
    /// Owned task regions. BDIV regions hold `[L | F]` (2·h·w scalars).
    regions: HashMap<u32, Vec<T>>,
    /// Remote AUBs still expected per owned task.
    aubs_pending: HashMap<u32, u32>,
    /// Outgoing AUB accumulation buffers: (buffer, pairs remaining,
    /// pairs accumulated since the last flush).
    aub_out: HashMap<u32, (Vec<T>, u32, u32)>,
    /// Fan-Both memory cap: when the outgoing AUB buffers hold more than
    /// this many scalars, the largest one is flushed partially aggregated.
    aub_memory_limit: Option<usize>,
    /// Recycled AUB buffers: applied incoming AUB payloads land here and
    /// are reused for outgoing accumulation instead of fresh allocations.
    aub_pool: Vec<Vec<T>>,
    /// Factor payloads, remote (received) and local (materialized once per
    /// producing task, then shared by every consumer send).
    fac_cache: HashMap<u32, Arc<[T]>>,
    /// AUBs already applied, keyed by (sender, sender-sequence): the
    /// duplicate-delivery fault replays a message verbatim, so this set is
    /// what makes AUB application exactly-once.
    seen_aubs: HashSet<(usize, u32)>,
    /// Next sequence number for this worker's outgoing AUBs.
    aub_seq: u32,
    aborted: Option<FactorError>,
    /// Deterministic fault injection (chaos suite only; `Default` is off).
    chaos: ChaosOptions,
    /// Block low-rank compression knobs (off by default).
    compression: CompressionConfig,
    /// Compressed factor bloks produced by this rank's comp1d tasks,
    /// keyed by global blok id; installed into the assembled storage
    /// after the run.
    lr_out: Vec<(usize, LowRankBlock<T>)>,
    /// Message-path counters, merged into the registry at run end.
    counters: RankCounters,
    /// Run-wide live gauges; `None` when tracing is off, so the untraced
    /// loop never touches an atomic.
    gauges: Option<&'a SharedGauges>,
    /// Gauge sampling cadence in completed tasks (0 disables sampling).
    sample_every: u32,
    /// Tasks completed since the last gauge sample.
    since_sample: u32,
    /// Scalars resident in the owned regions (fixed after scatter).
    region_scalars: usize,
    /// Scalars held by the factor-payload cache (received + materialized).
    fac_cache_scalars: usize,
    /// Largest live-bytes reading seen so far on this rank.
    peak_live_bytes: u64,
}

/// A factor payload as seen by one consumer task: a locally produced
/// region is *borrowed* — taken out of the region store for the duration
/// of the consumer and put back untouched — while remote (or already
/// materialized) payloads are refcount bumps of the cached `Arc`. This is
/// what keeps `fac_deep_copies` at zero for producers whose consumers are
/// all local: only `send_fac` materializes.
enum FacPayload<T> {
    /// Temporarily removed from `regions`; must be returned via
    /// [`Worker::put_fac`].
    Borrowed(Vec<T>),
    /// Shared cache entry (local materialized or remote received).
    Shared(Arc<[T]>),
}

impl<T> FacPayload<T> {
    #[inline]
    fn as_slice(&self) -> &[T] {
        match self {
            FacPayload::Borrowed(v) => v,
            FacPayload::Shared(a) => a,
        }
    }
}

impl<'a, T: Scalar> Worker<'a, T> {
    /// Handles one incoming message.
    fn handle(&mut self, from: usize, msg: PMsg<T>) {
        match msg {
            PMsg::Aub {
                dst,
                seq,
                pairs,
                data,
            } => {
                if !self.seen_aubs.insert((from, seq)) {
                    self.recycle_aub(data);
                    return; // duplicate delivery
                }
                // Updates commute: apply immediately into the region.
                let region = self.regions.get_mut(&dst).expect("AUB for unowned task");
                for (r, v) in region.iter_mut().zip(&data) {
                    *r -= *v;
                }
                let left = self.aubs_pending.get_mut(&dst).expect("unexpected AUB");
                *left -= pairs;
                self.recycle_aub(data);
            }
            PMsg::Fac { src, data } => {
                let len = data.len();
                if self.fac_cache.insert(src, data).is_none() {
                    self.fac_cache_scalars += len;
                }
            }
            PMsg::Abort { col } => {
                self.aborted = Some(FactorError::ZeroPivot(col as usize));
            }
        }
    }

    /// Blocks until every remote AUB of task `t` has been applied.
    fn wait_aubs<C: Comm<PMsg<T>> + ?Sized>(&mut self, ctx: &C, t: u32) -> Result<(), FactorError> {
        while self.aborted.is_none() && self.aubs_pending.get(&t).copied().unwrap_or(0) > 0 {
            let env = ctx.recv();
            self.handle(env.from, env.msg);
        }
        match self.aborted {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Materializes the finished factor region of locally owned task `t`
    /// as a shared payload — once; later callers (and every consumer send)
    /// get refcount bumps of the same allocation. Only remote sends pay
    /// this copy: purely local consumers borrow through [`Self::take_fac`].
    fn local_fac_payload(&mut self, t: u32) -> Arc<[T]> {
        if let Some(data) = self.fac_cache.get(&t) {
            return data.clone();
        }
        let region = self.regions.get(&t).expect("local factor region missing");
        self.counters.fac_deep_copies += 1;
        let arc: Arc<[T]> = Arc::from(region.as_slice());
        self.fac_cache_scalars += arc.len();
        self.fac_cache.insert(t, arc.clone());
        arc
    }

    /// Obtains factor data produced by task `src`. A locally owned region
    /// that was never materialized is moved out of the region store and
    /// read in place (zero copy; return it with [`Self::put_fac`]); remote
    /// payloads — and local ones already materialized for remote
    /// consumers — are refcount bumps of the cache entry.
    fn take_fac<C: Comm<PMsg<T>> + ?Sized>(
        &mut self,
        ctx: &C,
        src: u32,
    ) -> Result<FacPayload<T>, FactorError> {
        if let Some(data) = self.fac_cache.get(&src) {
            return Ok(FacPayload::Shared(data.clone()));
        }
        if self.sched.task_proc[src as usize] == self.rank {
            let region = self.regions.remove(&src).expect("local factor region missing");
            return Ok(FacPayload::Borrowed(region));
        }
        loop {
            if let Some(e) = self.aborted {
                return Err(e);
            }
            if let Some(data) = self.fac_cache.get(&src) {
                return Ok(FacPayload::Shared(data.clone()));
            }
            let env = ctx.recv();
            self.handle(env.from, env.msg);
        }
    }

    /// Returns a payload obtained from [`Self::take_fac`]: a borrowed
    /// local region goes back into the region store (shared payloads need
    /// nothing).
    fn put_fac(&mut self, src: u32, payload: FacPayload<T>) {
        if let FacPayload::Borrowed(region) = payload {
            self.regions.insert(src, region);
        }
    }

    /// Returns an applied incoming AUB payload to the pool for reuse as an
    /// outgoing accumulation buffer (bounded so the pool cannot hoard).
    fn recycle_aub(&mut self, buf: Vec<T>) {
        const AUB_POOL_CAP: usize = 16;
        if buf.capacity() > 0 && self.aub_pool.len() < AUB_POOL_CAP {
            self.aub_pool.push(buf);
        }
    }

    /// Takes a zeroed buffer of `len` scalars, recycling from the pool
    /// when possible.
    fn take_aub_buffer(&mut self, len: usize) -> Vec<T> {
        match self.aub_pool.pop() {
            Some(mut buf) => {
                self.counters.aub_pool_reuses += 1;
                buf.clear();
                buf.resize(len, T::zero());
                buf
            }
            None => {
                self.counters.aub_fresh_allocs += 1;
                vec![T::zero(); len]
            }
        }
    }

    /// Ships one AUB over the faulty path: drops are retried (the
    /// transport reports them), duplicates are filtered by the receiver's
    /// `seen_aubs`; a closed peer means the machine is unwinding (abort or
    /// injected panic) and the message no longer matters.
    fn send_aub<C: Comm<PMsg<T>> + ?Sized>(
        &mut self,
        ctx: &C,
        q: usize,
        dst: u32,
        pairs: u32,
        data: Vec<T>,
    ) {
        let seq = self.aub_seq;
        self.aub_seq += 1;
        self.counters.aub_sends += 1;
        let _ = ctx.send_resilient(
            q,
            PMsg::Aub {
                dst,
                seq,
                pairs,
                data,
            },
        );
    }

    /// Routes one computed contribution (`hr × hc`, operands dispatched on
    /// their dense/low-rank representation): local regions are updated
    /// directly; remote ones accumulate into the AUB buffer, which is sent
    /// when its pair count reaches zero. For two dense operands the update
    /// kernel is byte-for-byte the classic `gemm_nt_acc`, so runs without
    /// compression are unchanged.
    #[allow(clippy::too_many_arguments)]
    fn apply_contribution<C: Comm<PMsg<T>> + ?Sized>(
        &mut self,
        ctx: &C,
        route: &PairRoute,
        hr: usize,
        hc: usize,
        w: usize,
        a: LrOp<'_, T>,
        b: LrOp<'_, T>,
    ) {
        let q = self.sched.task_proc[route.dst as usize];
        if q == self.rank {
            let region = self.regions.get_mut(&route.dst).expect("local target region missing");
            let off = route.row_off + route.col_off * route.ldr;
            lr_gemm_nt_acc(hr, hc, w, -T::one(), a, b, &mut region[off..], route.ldr);
        } else {
            let len = self.routing.region_len[route.dst as usize];
            let total = *self
                .routing
                .pair_count
                .get(&(self.rank, route.dst))
                .expect("pair count missing");
            if self
                .aub_out
                .get(&route.dst)
                .is_none_or(|(buf, _, _)| buf.is_empty())
            {
                // (Re-)acquire lazily: a Fan-Both flush leaves an empty
                // placeholder holding the remaining pair budget. Buffers
                // come from the recycling pool when it has one.
                let buf = self.take_aub_buffer(len);
                let entry = self
                    .aub_out
                    .entry(route.dst)
                    .or_insert_with(|| (Vec::new(), total, 0u32));
                entry.0 = buf;
            }
            let entry = self.aub_out.get_mut(&route.dst).expect("AUB entry just ensured");
            let off = route.row_off + route.col_off * route.ldr;
            lr_gemm_nt_acc(hr, hc, w, T::one(), a, b, &mut entry.0[off..], route.ldr);
            entry.1 -= 1;
            entry.2 += 1;
            if entry.1 == 0 {
                // Total local aggregation complete: ship the AUB.
                let (data, _, pairs) = self.aub_out.remove(&route.dst).unwrap();
                self.send_aub(ctx, q as usize, route.dst, pairs, data);
            } else if let Some(limit) = self.aub_memory_limit {
                // Fan-Both fallback: "an aggregated update block can be
                // sent with partial aggregation to free memory space".
                let held: usize = self.aub_out.values().map(|(v, _, _)| v.len()).sum();
                if held > limit {
                    self.flush_largest_aub(ctx);
                }
            }
        }
    }

    /// Sends the largest outgoing AUB buffer with whatever it has
    /// aggregated so far (its pair budget stays open; the buffer is
    /// re-created on the next contribution).
    fn flush_largest_aub<C: Comm<PMsg<T>> + ?Sized>(&mut self, ctx: &C) {
        let Some((&dst, _)) = self
            .aub_out
            .iter()
            .filter(|(_, (_, _, acc))| *acc > 0)
            .max_by_key(|(_, (v, _, _))| v.len())
        else {
            return;
        };
        let (data, left, pairs) = self.aub_out.remove(&dst).unwrap();
        let q = self.sched.task_proc[dst as usize] as usize;
        self.send_aub(ctx, q, dst, pairs, data);
        if left > 0 {
            // Keep the remaining pair budget with an empty placeholder;
            // the buffer is re-allocated on the next contribution.
            self.aub_out.insert(dst, (Vec::new(), left, 0));
        }
    }

    fn abort<C: Comm<PMsg<T>> + ?Sized>(&mut self, ctx: &C, col: usize) {
        for q in 0..ctx.n_procs() {
            if q != self.rank as usize {
                // A peer that already exited no longer needs the abort.
                let _ = ctx.send_resilient(q, PMsg::Abort { col: col as u32 });
            }
        }
    }

    /// Sends factor data of task `t` to every remote consumer processor
    /// (deduplicated).
    fn send_fac<C: Comm<PMsg<T>> + ?Sized>(&mut self, ctx: &C, t: u32) {
        let mut procs: Vec<u32> = self
            .graph
            .out_edges(t as usize)
            .iter()
            .map(|&d| self.sched.task_proc[d as usize])
            .filter(|&q| q != self.rank)
            .collect();
        procs.sort_unstable();
        procs.dedup();
        if procs.is_empty() {
            return;
        }
        // One deep copy (shared with later local readers), N refcount
        // bumps — the seed cloned the whole region once per consumer.
        let data = self.local_fac_payload(t);
        for q in procs {
            // Retried on drop; a closed peer is already unwinding.
            self.counters.fac_sends += 1;
            let _ = ctx.send_resilient(q as usize, PMsg::Fac { src: t, data: data.clone() });
        }
    }

    /// Executes the tasks of `K_p` in schedule order.
    fn run<C: Comm<PMsg<T>> + ?Sized>(&mut self, ctx: &C) -> Result<(), FactorError> {
        let order: Vec<u32> = self.sched.proc_tasks[self.rank as usize].clone();
        for (idx, t) in order.into_iter().enumerate() {
            if let Some(e) = self.aborted {
                return Err(e);
            }
            if self.chaos.panic_at == Some((self.rank, idx)) {
                panic!(
                    "chaos: injected panic on rank {} at local task index {idx} (task {t})",
                    self.rank
                );
            }
            // The span guard closes on every exit path, including the `?`
            // error returns and the injected chaos panics below it.
            match self.graph.kinds[t as usize] {
                TaskKind::Comp1d { cblk } => {
                    let _span = task_span(t, TaskClass::Comp1d);
                    self.run_comp1d(ctx, t, cblk as usize)?
                }
                TaskKind::Factor { cblk } => {
                    let _span = task_span(t, TaskClass::Factor);
                    self.run_factor(ctx, t, cblk as usize)?
                }
                TaskKind::Bdiv { cblk, blok } => {
                    let _span = task_span(t, TaskClass::Bdiv);
                    self.run_bdiv(ctx, t, cblk as usize, blok as usize)?
                }
                TaskKind::Bmod { cblk, blok_row, blok_col } => {
                    let _span = task_span(t, TaskClass::Bmod);
                    self.run_bmod(ctx, t, cblk as usize, blok_row as usize, blok_col as usize)?
                }
            }
            if let Some(gauges) = self.gauges {
                // Heartbeat: stamp this completion with the run-global
                // count, so gaps in one rank's sequence measure how far
                // the rest of the machine ran while it was stuck.
                let seq = gauges.progress.fetch_add(1, Ordering::Relaxed) + 1;
                heartbeat(seq);
                self.since_sample += 1;
                if self.sample_every > 0 && self.since_sample >= self.sample_every {
                    self.since_sample = 0;
                    self.sample_gauges(gauges);
                }
            }
        }
        Ok(())
    }

    /// Records one reading of every resource gauge onto this rank's trace
    /// track. Runs every `sample_every`-th completed task; everything read
    /// here is either a plain field or a relaxed atomic load, so the cost
    /// stays a small fraction of one task's kernel work.
    fn sample_gauges(&mut self, gauges: &SharedGauges) {
        let elem = std::mem::size_of::<T>() as u64;
        let aub_out_scalars: usize = self.aub_out.values().map(|(v, _, _)| v.len()).sum();
        let live = (self.region_scalars + self.fac_cache_scalars + aub_out_scalars) as u64 * elem;
        self.peak_live_bytes = self.peak_live_bytes.max(live);
        sample_gauge(GaugeId::AubPoolBuffers, self.aub_pool.len() as u64);
        sample_gauge(GaugeId::AubOutBytes, aub_out_scalars as u64 * elem);
        sample_gauge(
            GaugeId::InflightMsgs,
            gauges.inflight_bytes.load(Ordering::Relaxed).max(0) as u64,
        );
        sample_gauge(GaugeId::LiveRegionBytes, live);
        sample_gauge(GaugeId::PeakLiveBytes, self.peak_live_bytes);
        sample_gauge(
            GaugeId::MailboxDepth,
            gauges.mailbox_depth[self.rank as usize].load(Ordering::Relaxed).max(0) as u64,
        );
    }

    fn run_comp1d<C: Comm<PMsg<T>> + ?Sized>(&mut self, ctx: &C, t: u32, k: usize) -> Result<(), FactorError> {
        self.wait_aubs(ctx, t)?;
        let cb = &self.sym.cblks[k];
        let w = cb.width();
        let lda = self.layout.panel_rows(k);
        let h = lda - w;
        let mut panel = self.regions.remove(&t).expect("comp1d panel missing");
        if self.chaos.zero_pivot_task == Some(t) {
            panel[0] = T::zero();
        }
        // Factor + panel solve (same steps as the sequential COMP1D).
        let mut fwork = Vec::new();
        if let Err(FactorError::ZeroPivot(i)) = ldlt_factor_blocked(w, &mut panel, lda, NB_FACTOR, &mut fwork) {
            let col = cb.fcol as usize + i;
            self.abort(ctx, col);
            self.regions.insert(t, panel);
            return Err(FactorError::ZeroPivot(col));
        }
        if h > 0 && self.compression.enabled() {
            // Compressed comp1d: the panel is final here (right-looking
            // order), so qualifying bloks compress just-in-time and every
            // outgoing contribution dispatches on its representation. The
            // un-TRSM'd rows a compressed blok leaves behind in `panel` are
            // discarded when the overlay is installed after assembly.
            let mut dtmp = vec![T::zero(); w * w];
            pastix_kernels::dense::copy_panel(w, w, &panel, lda, &mut dtmp, w);
            let sym = self.sym;
            let layout = self.layout;
            let graph = self.graph;
            let cc = self.compression;
            let lrs = comp1d_tail_compressed(
                sym,
                layout,
                k,
                &mut panel,
                lda,
                &dtmp,
                &cc,
                &mut |br, bc, a_op, b_op| {
                    let route = route_pair(sym, layout, graph, br, bc);
                    let hr = sym.bloks[br].nrows();
                    let hc = sym.bloks[bc].nrows();
                    self.apply_contribution(ctx, &route, hr, hc, w, a_op, b_op);
                },
            );
            self.lr_out.extend(lrs);
        } else if h > 0 {
            let mut dtmp = vec![T::zero(); w * w];
            pastix_kernels::dense::copy_panel(w, w, &panel, lda, &mut dtmp, w);
            trsm_ldlt_panel(h, w, &dtmp, w, &mut panel[w..], lda);
            // F = L · D.
            let mut wbuf = vec![T::zero(); h * w];
            let d: Vec<T> = (0..w).map(|i| dtmp[i + i * w]).collect();
            scale_cols_by_diag_into(h, w, &panel[w..], lda, &d, &mut wbuf, h);
            // Contributions for every pair (r ≥ c).
            let m = cb.blok_end - cb.blok_start - 1;
            for c in 0..m {
                let bc = cb.blok_start + 1 + c;
                let hc = self.sym.bloks[bc].nrows();
                for r in c..m {
                    let br = cb.blok_start + 1 + r;
                    let hr = self.sym.bloks[br].nrows();
                    let route = route_pair(self.sym, self.layout, self.graph, br, bc);
                    let a_off = self.layout.panel_row[br] as usize;
                    let b_off = self.layout.panel_row[bc] as usize - w;
                    // The target may be another region of this very worker,
                    // so `panel` has already been removed from the region
                    // store and no aliasing is possible.
                    self.apply_contribution(
                        ctx,
                        &route,
                        hr,
                        hc,
                        w,
                        LrOp::Dense { a: &panel[a_off..], ld: lda },
                        LrOp::Dense { a: &wbuf[b_off..], ld: h },
                    );
                }
            }
        }
        self.regions.insert(t, panel);
        Ok(())
    }

    fn run_factor<C: Comm<PMsg<T>> + ?Sized>(&mut self, ctx: &C, t: u32, k: usize) -> Result<(), FactorError> {
        self.wait_aubs(ctx, t)?;
        let cb = &self.sym.cblks[k];
        let w = cb.width();
        let mut region = self.regions.remove(&t).expect("factor region missing");
        if self.chaos.zero_pivot_task == Some(t) {
            region[0] = T::zero();
        }
        let mut fwork = Vec::new();
        if let Err(FactorError::ZeroPivot(i)) = ldlt_factor_blocked(w, &mut region, w, NB_FACTOR, &mut fwork) {
            let col = cb.fcol as usize + i;
            self.abort(ctx, col);
            self.regions.insert(t, region);
            return Err(FactorError::ZeroPivot(col));
        }
        self.regions.insert(t, region);
        self.send_fac(ctx, t);
        Ok(())
    }

    fn run_bdiv<C: Comm<PMsg<T>> + ?Sized>(&mut self, ctx: &C, t: u32, k: usize, blok: usize) -> Result<(), FactorError> {
        self.wait_aubs(ctx, t)?;
        let w = self.sym.cblks[k].width();
        let hb = self.sym.bloks[blok].nrows();
        let factor_task = self.graph.head_task_of_cblk[k];
        let fac = self.take_fac(ctx, factor_task)?; // w×w, D on diag, L lower
        let mut region = self.regions.remove(&t).expect("bdiv region missing");
        debug_assert_eq!(region.len(), 2 * hb * w);
        {
            let fac = fac.as_slice();
            let (l_part, f_part) = region.split_at_mut(hb * w);
            trsm_ldlt_panel(hb, w, fac, w, l_part, hb);
            let d: Vec<T> = (0..w).map(|i| fac[i + i * w]).collect();
            scale_cols_by_diag_into(hb, w, l_part, hb, &d, f_part, hb);
        }
        self.put_fac(factor_task, fac);
        self.regions.insert(t, region);
        self.send_fac(ctx, t);
        Ok(())
    }

    fn run_bmod<C: Comm<PMsg<T>> + ?Sized>(
        &mut self,
        ctx: &C,
        _t: u32,
        k: usize,
        blok_row: usize,
        blok_col: usize,
    ) -> Result<(), FactorError> {
        let w = self.sym.cblks[k].width();
        let hr = self.sym.bloks[blok_row].nrows();
        let hc = self.sym.bloks[blok_col].nrows();
        let bdiv_r = self.graph.bdiv_task_of_blok[blok_row];
        let bdiv_c = self.graph.bdiv_task_of_blok[blok_col];
        let route = route_pair(self.sym, self.layout, self.graph, blok_row, blok_col);
        // L from the row block's BDIV, F from the column block's BDIV.
        // Both payloads are moved out of the worker (borrowed local region
        // or shared cache entry), so the contribution — which targets a
        // strictly later column block — can mutate the worker freely.
        let lr_data = self.take_fac(ctx, bdiv_r)?;
        if bdiv_c == bdiv_r {
            let (l_r, f_c) = lr_data.as_slice().split_at(hr * w);
            self.apply_contribution(
                ctx,
                &route,
                hr,
                hc,
                w,
                LrOp::Dense { a: l_r, ld: hr },
                LrOp::Dense { a: f_c, ld: hc },
            );
        } else {
            let fc_data = self.take_fac(ctx, bdiv_c)?;
            debug_assert_eq!(fc_data.as_slice().len(), 2 * hc * w);
            self.apply_contribution(
                ctx,
                &route,
                hr,
                hc,
                w,
                LrOp::Dense { a: &lr_data.as_slice()[..hr * w], ld: hr },
                LrOp::Dense { a: &fc_data.as_slice()[hc * w..], ld: hc },
            );
            self.put_fac(bdiv_c, fc_data);
        }
        self.put_fac(bdiv_r, lr_data);
        Ok(())
    }
}

/// Deterministic solver-level fault injection, used by the chaos suite to
/// exercise the abort and panic-unwind paths at a chosen point. All fields
/// default to "no fault".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosOptions {
    /// Panic on `(rank, local task index)` just before executing that
    /// entry of the rank's schedule — models a crashed processor.
    pub panic_at: Option<(u32, usize)>,
    /// Zero the leading pivot of this task's region right before its
    /// factorization kernel (the task must be a COMP1D or FACTOR), forcing
    /// the zero-pivot abort protocol deterministically.
    pub zero_pivot_task: Option<u32>,
}

/// The SPMD factorization engine (threads or simulator): `cfg.backend`
/// selects the execution substrate, `cfg.kernel_mode` is applied for the
/// run through a scoped guard, and the returned [`FactorRun`] carries the
/// factor together with the run's [`TraceLog`] and the metrics registry
/// handle. Called by [`crate::Plan::factorize`]. When `cfg.compression`
/// is enabled, each rank's comp1d tasks compress their off-diagonal bloks
/// just-in-time and the collected representations are installed into the
/// assembled storage (with the `MinimalMemory` post-pass) before the run
/// is returned.
pub(crate) fn factorize_static<T: Scalar>(
    sym: &SymbolMatrix,
    a: &SymCsc<T>,
    graph: &TaskGraph,
    sched: &Schedule,
    cfg: &SolverConfig,
) -> Result<FactorRun<T>, FactorError> {
    assert!(std::ptr::eq(sym, &graph.split.symbol) || sym == &graph.split.symbol,
        "schedule must be built on the same split symbol");
    let _mode = cfg.kernel_mode.scoped();
    let layout = PanelLayout::new(sym);
    let routing = build_routing(sym, &layout, graph, sched);
    // All ranks must share one epoch so the report can compare their wall
    // timestamps; resolve it once, right before the SPMD launch.
    let mut topts = cfg.trace;
    if topts.enabled && topts.epoch.is_none() {
        topts.epoch = Some(Instant::now());
    }
    let gauges = SharedGauges::new(sched.n_procs);
    let t0 = Instant::now();
    let outputs = run_spmd_with::<PMsg<T>, WorkerOutput<T>, _>(
        &cfg.backend,
        sched.n_procs,
        |ctx| worker_run(ctx, sym, &layout, graph, sched, &routing, a, cfg, &topts, &gauges),
    );
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let mut results = Vec::with_capacity(outputs.len());
    let mut ranks = Vec::new();
    let mut per_blok: Vec<Option<LowRankBlock<T>>> =
        (0..sym.bloks.len()).map(|_| None).collect();
    for (rank, out) in outputs.into_iter().enumerate() {
        merge_rank_counters(&cfg.metrics, rank as u32, &out.counters);
        if let Some(rt) = out.trace {
            ranks.push(rt);
        }
        for (b, lr) in out.lr {
            per_blok[b] = Some(lr);
        }
        results.push(out.result);
    }
    let trace = TraceLog {
        ranks,
        wall_ns,
        digest: sched.digest(),
    };
    merge_trace_metrics(&cfg.metrics, &trace);
    let mut storage = assemble(sym, &layout, graph, results)?;
    finalize_compression(sym, &mut storage, &cfg.compression, per_blok, &cfg.metrics);
    Ok(FactorRun::new(storage, trace, cfg.metrics.clone()))
}

/// What one logical processor hands back: its factor regions (or the
/// error), its compressed bloks, its recorded trace (when tracing was
/// on), and its counters.
struct WorkerOutput<T> {
    result: Result<HashMap<u32, Vec<T>>, FactorError>,
    lr: Vec<(usize, LowRankBlock<T>)>,
    trace: Option<RankTrace>,
    counters: RankCounters,
}

/// The SPMD body executed by one logical processor, on either backend.
#[allow(clippy::too_many_arguments)]
fn worker_run<T: Scalar, C: Comm<PMsg<T>> + ?Sized>(
    ctx: &C,
    sym: &SymbolMatrix,
    layout: &PanelLayout,
    graph: &TaskGraph,
    sched: &Schedule,
    routing: &Routing,
    a: &SymCsc<T>,
    cfg: &SolverConfig,
    topts: &TraceOptions,
    gauges: &SharedGauges,
) -> WorkerOutput<T> {
    let rank = ctx.rank() as u32;
    // Both backends run each logical processor on its own OS thread, so a
    // thread-local session captures exactly this rank's activity.
    let session = pastix_trace::begin_rank(ctx.rank(), topts);
    // Allocate and scatter the owned regions.
    let mut regions: HashMap<u32, Vec<T>> = HashMap::new();
    let mut aubs_pending: HashMap<u32, u32> = HashMap::new();
    {
        let _span = task_span(rank, TaskClass::Scatter);
        for &t in &sched.proc_tasks[rank as usize] {
            let len = match graph.kinds[t as usize] {
                TaskKind::Bdiv { .. } => 2 * routing.region_len[t as usize],
                _ => routing.region_len[t as usize],
            };
            if len > 0 {
                regions.insert(t, vec![T::zero(); len]);
            }
            let pairs = routing.remote_pairs[t as usize];
            if pairs > 0 {
                aubs_pending.insert(t, pairs);
            }
        }
        scatter_owned(sym, layout, graph, a, &mut regions);
    }
    let region_scalars: usize = regions.values().map(|v| v.len()).sum();
    let mut worker = Worker {
        rank,
        sym,
        layout,
        graph,
        sched,
        routing,
        regions,
        aubs_pending,
        aub_out: HashMap::new(),
        aub_memory_limit: cfg.aub_memory_limit,
        aub_pool: Vec::new(),
        fac_cache: HashMap::new(),
        seen_aubs: HashSet::new(),
        aub_seq: 0,
        aborted: None,
        chaos: cfg.chaos,
        compression: cfg.compression,
        lr_out: Vec::new(),
        counters: RankCounters::default(),
        gauges: topts.enabled.then_some(gauges),
        sample_every: topts.sample_every,
        since_sample: 0,
        region_scalars,
        fac_cache_scalars: 0,
        peak_live_bytes: 0,
    };
    // Only the traced path pays for the instrumented wrapper; the untraced
    // monomorphization is byte-for-byte the old hot loop.
    let run_result = if topts.enabled {
        let hook = (SessionHook, GaugeHook { rank: ctx.rank(), gauges });
        let ictx = Instrumented::new(ctx, hook, pmsg_meta::<T>);
        worker.run(&ictx)
    } else {
        worker.run(ctx)
    };
    WorkerOutput {
        result: run_result.map(|()| worker.regions),
        lr: worker.lr_out,
        trace: session.finish(),
        counters: worker.counters,
    }
}

/// Merges the per-processor region maps into one factor store.
fn assemble<T: Scalar>(
    sym: &SymbolMatrix,
    layout: &PanelLayout,
    graph: &TaskGraph,
    results: Vec<Result<HashMap<u32, Vec<T>>, FactorError>>,
) -> Result<FactorStorage<T>, FactorError> {
    let mut storage = FactorStorage::zeros(sym);
    let mut err: Option<FactorError> = None;
    for res in results {
        match res {
            Err(e) => err = Some(e),
            Ok(regions) => {
                for (t, data) in regions {
                    merge_region(sym, layout, graph, &mut storage, t, &data);
                }
            }
        }
    }
    match err {
        Some(e) => Err(e),
        None => Ok(storage),
    }
}

/// Scatters the owned part of `a` into each owned region.
fn scatter_owned<T: Scalar>(
    sym: &SymbolMatrix,
    layout: &PanelLayout,
    graph: &TaskGraph,
    a: &SymCsc<T>,
    regions: &mut HashMap<u32, Vec<T>>,
) {
    // Iterate columns; for each entry decide which task's region holds it.
    for k in 0..sym.n_cblks() {
        let cb = &sym.cblks[k];
        let head = graph.head_task_of_cblk[k];
        let is2d = matches!(graph.kinds[head as usize], TaskKind::Factor { .. });
        let w = cb.width();
        for j in cb.fcol..=cb.lcol {
            let local_col = (j - cb.fcol) as usize;
            for (&i, &v) in a.rows_of(j as usize).iter().zip(a.vals_of(j as usize)) {
                if !is2d {
                    if let Some(region) = regions.get_mut(&head) {
                        let lda = layout.panel_rows(k);
                        let row = crate::storage::panel_row_of(sym, layout, k, i);
                        region[row + local_col * lda] = v;
                    }
                } else if i <= cb.lcol {
                    // Diagonal block entry → FACTOR region.
                    if let Some(region) = regions.get_mut(&head) {
                        region[(i - cb.fcol) as usize + local_col * w] = v;
                    }
                } else {
                    // Off-diagonal entry → BDIV region (L part).
                    let b = sym.covering_blok(k, i, i);
                    let bd = graph.bdiv_task_of_blok[b];
                    if let Some(region) = regions.get_mut(&bd) {
                        let hb = sym.bloks[b].nrows();
                        region[(i - sym.bloks[b].frow) as usize + local_col * hb] = v;
                    }
                }
            }
        }
    }
}

/// Merges one task region into the assembled factor storage.
fn merge_region<T: Scalar>(
    sym: &SymbolMatrix,
    layout: &PanelLayout,
    graph: &TaskGraph,
    storage: &mut FactorStorage<T>,
    t: u32,
    data: &[T],
) {
    match graph.kinds[t as usize] {
        TaskKind::Comp1d { cblk } => {
            storage.panels[cblk as usize].copy_from_slice(data);
        }
        TaskKind::Factor { cblk } => {
            let k = cblk as usize;
            let w = sym.cblks[k].width();
            let lda = layout.panel_rows(k);
            for col in 0..w {
                for row in 0..w {
                    storage.panels[k][row + col * lda] = data[row + col * w];
                }
            }
        }
        TaskKind::Bdiv { cblk, blok } => {
            let k = cblk as usize;
            let w = sym.cblks[k].width();
            let hb = sym.bloks[blok as usize].nrows();
            let lda = layout.panel_rows(k);
            let prow = layout.panel_row[blok as usize] as usize;
            for col in 0..w {
                for row in 0..hb {
                    storage.panels[k][prow + row + col * lda] = data[row + col * hb];
                }
            }
        }
        TaskKind::Bmod { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{factorize_sequential, solve_in_place};
    use pastix_graph::gen::{grid_spd, Stencil, ValueKind};
    use pastix_graph::{canonical_solution, rhs_for_solution};
    use pastix_machine::MachineModel;
    use pastix_ordering::{nested_dissection, OrderingOptions};
    use pastix_sched::{map_and_schedule, DistStrategy, MappingOptions, SchedOptions};
    use pastix_symbolic::{analyze, AnalysisOptions};

    fn full_setup(
        nx: usize,
        ny: usize,
        nz: usize,
        procs: usize,
        strategy: DistStrategy,
        block: usize,
    ) -> (pastix_graph::SymCsc<f64>, pastix_sched::Mapping) {
        let a = grid_spd::<f64>(nx, ny, nz, Stencil::Star, false, ValueKind::RandomSpd(21));
        let g = a.to_graph();
        let ord = nested_dissection(&g, &OrderingOptions { leaf_size: 8, ..Default::default() });
        let an = analyze(&g, &ord, &AnalysisOptions::default());
        let machine = MachineModel::sp2(procs);
        let opts = SchedOptions {
            block_size: block,
            mapping: MappingOptions {
                procs_2d_min: 2.0,
                width_2d_min: 4,
                strategy,
            },
            ..Default::default()
        };
        let mapping = map_and_schedule(&an.symbol, &machine, &opts);
        (a.permuted(&an.perm), mapping)
    }

    fn check_against_sequential(ap: &pastix_graph::SymCsc<f64>, mapping: &pastix_sched::Mapping) {
        let sym = &mapping.graph.split.symbol;
        let par = factorize_static(sym, ap, &mapping.graph, &mapping.schedule, &SolverConfig::default())
            .unwrap()
            .into_storage();
        let mut seq = FactorStorage::zeros(sym);
        seq.scatter(sym, ap);
        factorize_sequential(sym, &mut seq).unwrap();
        let n = ap.n();
        for j in 0..n {
            for i in j..n {
                let a = seq.get(sym, i, j);
                let b = par.get(sym, i, j);
                assert!(
                    (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                    "factor mismatch at ({i},{j}): seq {a} vs par {b}"
                );
            }
        }
        // And the factor actually solves the system.
        let x_exact = canonical_solution::<f64>(n);
        let b = rhs_for_solution(ap, &x_exact);
        let mut x = b.clone();
        solve_in_place(sym, &par, &mut x);
        let res = ap.residual_norm(&x, &b);
        assert!(res < 1e-12, "residual {res}");
    }

    #[test]
    fn parallel_matches_sequential_1d() {
        for procs in [1, 2, 4] {
            let (ap, mapping) = full_setup(8, 8, 1, procs, DistStrategy::Only1d, 4);
            check_against_sequential(&ap, &mapping);
        }
    }

    #[test]
    fn parallel_matches_sequential_mixed() {
        for procs in [2, 4, 8] {
            let (ap, mapping) = full_setup(10, 10, 1, procs, DistStrategy::Mixed1d2d, 4);
            check_against_sequential(&ap, &mapping);
        }
    }

    #[test]
    fn parallel_3d_problem() {
        let (ap, mapping) = full_setup(4, 4, 4, 4, DistStrategy::Mixed1d2d, 4);
        check_against_sequential(&ap, &mapping);
    }

    #[test]
    fn fan_both_memory_cap_still_correct() {
        // A punishing cap forces partially aggregated sends on every
        // processor; the factor must not change, only the message count.
        let (ap, mapping) = full_setup(10, 10, 1, 4, DistStrategy::Mixed1d2d, 4);
        let sym = &mapping.graph.split.symbol;
        let fanin =
            factorize_static(sym, &ap, &mapping.graph, &mapping.schedule, &SolverConfig::default())
                .unwrap()
                .into_storage();
        let fanboth = factorize_static(
            sym,
            &ap,
            &mapping.graph,
            &mapping.schedule,
            &SolverConfig::new().with_aub_memory_limit(Some(16)),
        )
        .unwrap();
        for (pa, pb) in fanin.panels.iter().zip(&fanboth.panels) {
            for (x, y) in pa.iter().zip(pb) {
                assert!((x - y).abs() < 1e-9, "fan-both deviates: {x} vs {y}");
            }
        }
    }

    #[test]
    fn zero_pivot_aborts_cleanly() {
        let (ap, mapping) = full_setup(6, 6, 1, 2, DistStrategy::Only1d, 4);
        // Zero out the matrix (same pattern): the very first pivot dies.
        let n = ap.n();
        let mut triplets = Vec::new();
        for j in 0..n {
            for &i in ap.rows_of(j) {
                triplets.push((i, j as u32, 0.0));
            }
        }
        let zero = pastix_graph::SymCsc::from_triplets(n, &triplets);
        let sym = &mapping.graph.split.symbol;
        let res =
            factorize_static(sym, &zero, &mapping.graph, &mapping.schedule, &SolverConfig::default());
        assert!(res.is_err());
    }
}
