//! Message-path metrics: the typed view over the `solver.*` counters.
//!
//! The zero-copy message path makes two claims that a unit test cannot
//! check by inspection: factor regions are deep-copied **at most once per
//! producing task with a remote consumer** (the `Arc<[T]>` payload is then
//! reference-bumped per consumer send, and purely local consumers borrow
//! the region in place) instead of once per send, and outgoing AUB
//! accumulation buffers are recycled from received/flushed Fan-Both blocks
//! instead of freshly allocated. Those counts live in the
//! [`pastix_trace::MetricsRegistry`] carried by each run's `SolverConfig`;
//! read them from the `FactorRun` with
//! [`MessagePathMetrics::from_registry`].

use pastix_trace::MetricsRegistry;

/// Point-in-time reading of the message-path counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessagePathMetrics {
    /// Factor regions materialized into an `Arc<[T]>` payload (at most one
    /// per factor-producing task *with a remote consumer*; the seed paid
    /// one per send, and purely local fan-out pays none at all).
    pub fac_deep_copies: u64,
    /// Factor messages actually sent (each is an `Arc` refcount bump).
    pub fac_sends: u64,
    /// AUB messages sent (complete or partially aggregated).
    pub aub_sends: u64,
    /// Outgoing AUB buffers that had to be freshly allocated.
    pub aub_fresh_allocs: u64,
    /// Outgoing AUB buffers recycled from the per-rank pool.
    pub aub_pool_reuses: u64,
}

impl MessagePathMetrics {
    /// Reads the message-path counters out of `registry` (sums over
    /// ranks). Counter names are the `solver.*` family written by the
    /// factorization.
    pub fn from_registry(registry: &MetricsRegistry) -> Self {
        Self {
            fac_deep_copies: registry.counter("solver.fac_deep_copies"),
            fac_sends: registry.counter("solver.fac_sends"),
            aub_sends: registry.counter("solver.aub_sends"),
            aub_fresh_allocs: registry.counter("solver.aub_fresh_allocs"),
            aub_pool_reuses: registry.counter("solver.aub_pool_reuses"),
        }
    }
}
