//! Message-path metrics: the typed view and the deprecated process-global
//! accessors.
//!
//! The zero-copy message path makes two claims that a unit test cannot
//! check by inspection: factor regions are deep-copied **once per
//! producing task** (the `Arc<[T]>` payload is then reference-bumped per
//! consumer send) instead of once per send, and outgoing AUB accumulation
//! buffers are recycled from received/flushed Fan-Both blocks instead of
//! freshly allocated. Those counts now live in a
//! [`pastix_trace::MetricsRegistry`]: every `factorize_parallel_with` run
//! merges its per-rank counters into the registry handle carried by its
//! `SolverConfig` **and** into [`MetricsRegistry::global`]. The global
//! mirror exists only so the deprecated free functions below keep working
//! for one release; new code should read `run.metrics` from the returned
//! `FactorRun` instead.

use pastix_trace::MetricsRegistry;

/// Point-in-time reading of the message-path counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessagePathMetrics {
    /// Factor regions materialized into an `Arc<[T]>` payload (at most one
    /// per factor-producing task; the seed paid one per send).
    pub fac_deep_copies: u64,
    /// Factor messages actually sent (each is an `Arc` refcount bump).
    pub fac_sends: u64,
    /// AUB messages sent (complete or partially aggregated).
    pub aub_sends: u64,
    /// Outgoing AUB buffers that had to be freshly allocated.
    pub aub_fresh_allocs: u64,
    /// Outgoing AUB buffers recycled from the per-rank pool.
    pub aub_pool_reuses: u64,
}

impl MessagePathMetrics {
    /// Reads the message-path counters out of `registry` (sums over
    /// ranks). Counter names are the `solver.*` family written by the
    /// factorization.
    pub fn from_registry(registry: &MetricsRegistry) -> Self {
        Self {
            fac_deep_copies: registry.counter("solver.fac_deep_copies"),
            fac_sends: registry.counter("solver.fac_sends"),
            aub_sends: registry.counter("solver.aub_sends"),
            aub_fresh_allocs: registry.counter("solver.aub_fresh_allocs"),
            aub_pool_reuses: registry.counter("solver.aub_pool_reuses"),
        }
    }
}

/// Reads all counters from the process-global registry.
#[deprecated(
    since = "0.1.0",
    note = "read `MessagePathMetrics::from_registry(&run.metrics)` from the `FactorRun` returned by `factorize_parallel_with`"
)]
pub fn snapshot() -> MessagePathMetrics {
    MessagePathMetrics::from_registry(MetricsRegistry::global())
}

/// Zeroes the process-global registry (do this before the region you want
/// to measure).
#[deprecated(
    since = "0.1.0",
    note = "give each run its own registry via `SolverConfig::with_metrics` instead of resetting a process-global"
)]
pub fn reset() {
    MetricsRegistry::global().reset();
}
