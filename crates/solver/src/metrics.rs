//! Message-path allocation and traffic counters.
//!
//! The zero-copy message path makes two claims that a unit test cannot
//! check by inspection: factor regions are deep-copied **once per
//! producing task** (the `Arc<[T]>` payload is then reference-bumped per
//! consumer send) instead of once per send, and outgoing AUB accumulation
//! buffers are recycled from received/flushed Fan-Both blocks instead of
//! freshly allocated. These process-wide atomic counters make both
//! properties assertable without a counting global allocator: the
//! regression test in `tests/zero_copy.rs` resets them, runs a
//! factorization, and checks the relations on the snapshot.
//!
//! Counters are cumulative across the process; call [`reset`] before the
//! region you want to measure (the test lives alone in its own integration
//! binary so nothing races it).

use std::sync::atomic::{AtomicU64, Ordering};

static FAC_DEEP_COPIES: AtomicU64 = AtomicU64::new(0);
static FAC_SENDS: AtomicU64 = AtomicU64::new(0);
static AUB_SENDS: AtomicU64 = AtomicU64::new(0);
static AUB_FRESH_ALLOCS: AtomicU64 = AtomicU64::new(0);
static AUB_POOL_REUSES: AtomicU64 = AtomicU64::new(0);

#[inline]
pub(crate) fn count_fac_deep_copy() {
    FAC_DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_fac_send() {
    FAC_SENDS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_aub_send() {
    AUB_SENDS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_aub_fresh_alloc() {
    AUB_FRESH_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_aub_pool_reuse() {
    AUB_POOL_REUSES.fetch_add(1, Ordering::Relaxed);
}

/// Point-in-time reading of the message-path counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessagePathMetrics {
    /// Factor regions materialized into an `Arc<[T]>` payload (at most one
    /// per factor-producing task; the seed paid one per send).
    pub fac_deep_copies: u64,
    /// Factor messages actually sent (each is an `Arc` refcount bump).
    pub fac_sends: u64,
    /// AUB messages sent (complete or partially aggregated).
    pub aub_sends: u64,
    /// Outgoing AUB buffers that had to be freshly allocated.
    pub aub_fresh_allocs: u64,
    /// Outgoing AUB buffers recycled from the per-rank pool.
    pub aub_pool_reuses: u64,
}

/// Reads all counters.
pub fn snapshot() -> MessagePathMetrics {
    MessagePathMetrics {
        fac_deep_copies: FAC_DEEP_COPIES.load(Ordering::Relaxed),
        fac_sends: FAC_SENDS.load(Ordering::Relaxed),
        aub_sends: AUB_SENDS.load(Ordering::Relaxed),
        aub_fresh_allocs: AUB_FRESH_ALLOCS.load(Ordering::Relaxed),
        aub_pool_reuses: AUB_POOL_REUSES.load(Ordering::Relaxed),
    }
}

/// Zeroes all counters (do this before the region you want to measure).
pub fn reset() {
    FAC_DEEP_COPIES.store(0, Ordering::Relaxed);
    FAC_SENDS.store(0, Ordering::Relaxed);
    AUB_SENDS.store(0, Ordering::Relaxed);
    AUB_FRESH_ALLOCS.store(0, Ordering::Relaxed);
    AUB_POOL_REUSES.store(0, Ordering::Relaxed);
}
