//! Solver-side block low-rank (BLR) compression: configuration, the
//! compressed comp1d pipeline shared by every backend, and the
//! finalization pass that installs the overlay into [`FactorStorage`].
//!
//! Compression is *just-in-time* in the PaStiX sense: a 1D column block's
//! off-diagonal bloks are compressed inside its comp1d task, right after
//! the diagonal factorization — the panel has received every incoming
//! update by then (right-looking order), so the compressed form is final
//! and all outgoing contributions can run through the low-rank kernels.
//! 2D-distributed column blocks stay dense while FACTOR/BDIV/BMOD tasks
//! are in flight (the fan-in message protocol is untouched); under
//! [`CompressionStrategy::MinimalMemory`] a post-factorization sweep
//! compresses their final bloks too, for the memory win alone.

use crate::storage::{BlockStore, FactorStorage, PanelLayout};
use pastix_kernels::{
    compress_block, lr_trsm_ldlt, scale_cols_by_diag_into, trsm_ldlt_panel, LowRankBlock, LrOp,
    LrRef, Scalar,
};
use pastix_symbolic::SymbolMatrix;
use pastix_trace::MetricsRegistry;

/// What block low-rank compression optimizes for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompressionStrategy {
    /// Compress inside comp1d and accept a block only when the low-rank
    /// form also wins *flops* on the update path (`2·r·(m+n) ≤ m·n`);
    /// blocks the factorization left dense stay dense.
    #[default]
    JustInTime,
    /// Accept any representation that is bytes-smaller
    /// (`r·(m+n) < m·n`), and additionally sweep the finished factor —
    /// including the 2D-distributed column blocks the in-flight message
    /// protocol keeps dense — compressing everything that still
    /// qualifies. Maximizes the memory footprint reduction.
    MinimalMemory,
}

/// Block low-rank compression knobs, carried on
/// [`SolverConfig`](crate::SolverConfig).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionConfig {
    /// Relative Frobenius-norm tolerance of each block's approximation
    /// (`‖A − U·Vᵀ‖_F ≤ tolerance·‖A‖_F`). `0.0` disables compression —
    /// the factorization takes the classic dense path, bitwise unchanged.
    pub tolerance: f64,
    /// Minimum rows *and* owning-panel width for a blok to be considered
    /// (see [`SymbolMatrix::blok_compressible`]).
    pub min_block: usize,
    /// Acceptance policy.
    pub strategy: CompressionStrategy,
}

impl Default for CompressionConfig {
    fn default() -> Self {
        Self { tolerance: 0.0, min_block: 32, strategy: CompressionStrategy::default() }
    }
}

impl CompressionConfig {
    /// Compression off (the default): tolerance `0.0`.
    pub fn off() -> Self {
        Self::default()
    }

    /// Enabled config at `tolerance` with default gating.
    pub fn with_tolerance(tolerance: f64) -> Self {
        Self { tolerance, ..Self::default() }
    }

    /// Returns `self` with the blok-dimension gate replaced.
    pub fn min_block(mut self, min_block: usize) -> Self {
        self.min_block = min_block;
        self
    }

    /// Returns `self` with the acceptance strategy replaced.
    pub fn strategy(mut self, strategy: CompressionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// `true` when compression participates in the factorization at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.tolerance > 0.0
    }

    /// Acceptance test for a compressed block per the strategy.
    pub(crate) fn accepts<T: Scalar>(&self, lr: &LowRankBlock<T>) -> bool {
        let (m, n, r) = (lr.m, lr.n, lr.rank);
        match self.strategy {
            CompressionStrategy::JustInTime => 2 * r * (m + n) <= m * n,
            CompressionStrategy::MinimalMemory => r * (m + n) < m * n,
        }
    }
}

/// Per-pair update callback of [`comp1d_tail_compressed`]: receives the
/// target's global blok ids `(br, bc)` and the two operand views for the
/// `C −= A·Bᵀ` contribution.
pub(crate) type LrApply<'a, T> = dyn FnMut(usize, usize, LrOp<'_, T>, LrOp<'_, T>) + 'a;

/// Post-diagonal steps of a compressed `comp1d(k)`: per-blok TRSM
/// (low-rank where the compressor and the strategy accept), formation of
/// the scaled panel `F = L·D` for the still-dense bloks, and the pair
/// contributions dispatched on representation via `apply`.
///
/// `panel` is the full column-block panel (leading dimension `lda`) whose
/// diagonal block is already factored; `dtmp` is the compact `w × w`
/// factored diagonal. `apply(br, bc, a, b)` receives each contribution's
/// global blok ids (`br ≥ bc`, both off-diagonal bloks of `k`) and the
/// operand views: `A` the rows blok and `B` the `F` form of the pivot
/// blok, for `C −= A·Bᵀ` at the target.
///
/// Returns the compressed factor bloks of `k` keyed by global blok id
/// (their `v` already carries the `D⁻¹·L⁻¹` substitution). The per-blok
/// dense TRSM is bitwise-identical to the whole-panel call of the
/// uncompressed engines (row-independent substitution), so a run where no
/// blok wins compression still matches the dense path exactly.
#[allow(clippy::too_many_arguments)]
pub(crate) fn comp1d_tail_compressed<T: Scalar>(
    sym: &SymbolMatrix,
    layout: &PanelLayout,
    k: usize,
    panel: &mut [T],
    lda: usize,
    dtmp: &[T],
    cc: &CompressionConfig,
    apply: &mut LrApply<'_, T>,
) -> Vec<(usize, LowRankBlock<T>)> {
    let cb = &sym.cblks[k];
    let w = cb.width();
    let mbelow = lda - w;
    let d: Vec<T> = (0..w).map(|t| dtmp[t + t * w]).collect();
    let nob = cb.blok_end - cb.blok_start - 1;
    let mut l: Vec<Option<LowRankBlock<T>>> = Vec::with_capacity(nob);
    let mut vf: Vec<Vec<T>> = Vec::with_capacity(nob);
    let mut fbuf = vec![T::zero(); mbelow * w];
    for b in cb.blok_start + 1..cb.blok_end {
        let h = sym.bloks[b].nrows();
        let row = layout.panel_row[b] as usize;
        let mut stored = None;
        if sym.blok_compressible(b, cc.min_block) {
            if let Some(mut lr) = compress_block(h, w, &panel[row..], lda, 0.0, cc.tolerance) {
                if cc.accepts(&lr) {
                    let f = lr_trsm_ldlt(w, dtmp, w, &d, &mut lr);
                    stored = Some((lr, f));
                }
            }
        }
        match stored {
            Some((lr, f)) => {
                l.push(Some(lr));
                vf.push(f);
            }
            None => {
                trsm_ldlt_panel(h, w, dtmp, w, &mut panel[row..], lda);
                scale_cols_by_diag_into(h, w, &panel[row..], lda, &d, &mut fbuf[row - w..], mbelow);
                l.push(None);
                vf.push(Vec::new());
            }
        }
    }
    // Pair contributions: pivot blok `bc` supplies B = F(bc), rows blok
    // `br ≥ bc` supplies A = L(br); the target gets C −= A·Bᵀ.
    for (c, bc) in (cb.blok_start + 1..cb.blok_end).enumerate() {
        let hc = sym.bloks[bc].nrows();
        let b_op = match &l[c] {
            Some(lr) => {
                LrOp::Lr(LrRef { m: hc, n: w, rank: lr.rank, u: &lr.u, v: &vf[c] })
            }
            None => LrOp::Dense {
                a: &fbuf[layout.panel_row[bc] as usize - w..],
                ld: mbelow,
            },
        };
        for (r, br) in (cb.blok_start + 1..cb.blok_end).enumerate().skip(c) {
            let a_op = match &l[r] {
                Some(lr) => LrOp::Lr(lr.as_ref()),
                None => LrOp::Dense { a: &panel[layout.panel_row[br] as usize..], ld: lda },
            };
            apply(br, bc, a_op, b_op);
        }
    }
    (cb.blok_start + 1..cb.blok_end)
        .zip(l)
        .filter_map(|(b, lr)| lr.map(|lr| (b, lr)))
        .collect()
}

/// Installs the collected just-in-time compressions into `storage`, after
/// the [`CompressionStrategy::MinimalMemory`] post-pass over the bloks the
/// factorization left dense (2D column blocks, rejected candidates), and
/// publishes the `lowrank.*` metrics.
pub(crate) fn finalize_compression<T: Scalar>(
    sym: &SymbolMatrix,
    storage: &mut FactorStorage<T>,
    cc: &CompressionConfig,
    mut per_blok: Vec<Option<LowRankBlock<T>>>,
    metrics: &MetricsRegistry,
) {
    if !cc.enabled() {
        return;
    }
    if cc.strategy == CompressionStrategy::MinimalMemory {
        for k in 0..sym.n_cblks() {
            let cb = &sym.cblks[k];
            let w = cb.width();
            let lda = storage.layout.panel_rows(k);
            for b in cb.blok_start + 1..cb.blok_end {
                if per_blok[b].is_some() || !sym.blok_compressible(b, cc.min_block) {
                    continue;
                }
                let h = sym.bloks[b].nrows();
                let row = storage.layout.panel_row[b] as usize;
                if let Some(lr) =
                    compress_block(h, w, &storage.panels[k][row..], lda, 0.0, cc.tolerance)
                {
                    if cc.accepts(&lr) {
                        per_blok[b] = Some(lr);
                    }
                }
            }
        }
    }
    storage.install_compression(sym, per_blok);
    publish_compression_metrics(storage, metrics);
}

/// Publishes the `lowrank.*` counters and the factor-bytes gauge for a
/// finished factorization.
pub(crate) fn publish_compression_metrics<T: Scalar>(
    storage: &FactorStorage<T>,
    metrics: &MetricsRegistry,
) {
    let mut blocks = 0u64;
    let mut rank_sum = 0u64;
    for pc in storage.compression.iter().flatten() {
        for bs in &pc.bloks {
            if let BlockStore::LowRank(lr) = bs {
                blocks += 1;
                rank_sum += lr.rank as u64;
            }
        }
    }
    let fb = storage.factor_bytes();
    let db = storage.dense_factor_bytes();
    metrics.add_counter("lowrank.compressed_blocks", blocks);
    metrics.add_counter("lowrank.rank_sum", rank_sum);
    metrics.add_counter("lowrank.bytes_saved", db.saturating_sub(fb));
    metrics.set_gauge("lowrank.factor_bytes", fb as f64);
}
