//! Distributed triangular solves driven by the static schedule's ownership.
//!
//! The paper's solver performs the factorization in parallel; the solve
//! phase follows the same data distribution, and this module implements it
//! with the same fan-in discipline: during the forward sweep `L·y = b`,
//! each off-diagonal block owner computes its contribution `L_b·x_k` as
//! soon as the solved segment `x_k` reaches it, and contributions bound for
//! the same column block from the same processor travel as one aggregated
//! update; the backward sweep `Lᵀ·x = D⁻¹y` runs the mirror-image protocol
//! down the elimination order.
//!
//! The factor panels are shared read-only between the logical processors
//! (they were just computed; re-distributing them would only model memory
//! placement, not the solve's data flow). What is exercised for real is the
//! message-passing structure of the solve: segment broadcasts, update
//! aggregation, and the demand-driven reception the static order allows.

use crate::config::SolverConfig;
use crate::storage::{BlokView, FactorStorage};
use pastix_kernels::{
    gemm_nn_acc, gemm_tn_acc, lr_gemm_nn_acc, lr_gemm_tn_acc, solve_unit_lower_panel,
    solve_unit_lower_trans_panel, Scalar,
};
use pastix_runtime::{run_spmd_with, Comm, CommHook, Instrumented};
use pastix_sched::{Schedule, TaskGraph};
use pastix_symbolic::SymbolMatrix;
use pastix_trace::{
    heartbeat, sample_gauge, task_span, GaugeId, RankTrace, SessionHook, TaskClass, TraceLog,
    TraceOptions,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Messages of the distributed solve. (`Clone` is only exercised by the
/// simulator's duplicate-delivery fault.) Every variant is naturally
/// keyed — `XFwd`/`XBwd` by the column block, the AUBs by (sender, column
/// block) since each sender aggregates at most one AUB per target — so
/// receivers deduplicate injected duplicate deliveries with seen-sets
/// instead of sequence numbers.
///
/// Solved segments are broadcast to every blok owner, so they travel as
/// `Arc<[T]>` (one materialization, refcount bumps per send); the AUBs have
/// exactly one destination each and stay owned `Vec`s.
#[derive(Clone)]
enum SMsg<T> {
    /// Solved segment of a column block (forward sweep).
    XFwd { cblk: u32, data: Arc<[T]> },
    /// Final segment of a column block (backward sweep).
    XBwd { cblk: u32, data: Arc<[T]> },
    /// Aggregated forward updates targeting a column block's segment.
    FwdAub { cblk: u32, data: Vec<T> },
    /// Aggregated backward partial dot-products targeting a column block.
    BwdAub { cblk: u32, data: Vec<T> },
}

/// Trace metadata of a solve message: `(kind tag, payload bytes)`.
/// Tags: `XFwd`=0, `XBwd`=1, `FwdAub`=2, `BwdAub`=3.
fn smsg_meta<T>(m: &SMsg<T>) -> (u8, u64) {
    let scalar = std::mem::size_of::<T>() as u64;
    match m {
        SMsg::XFwd { data, .. } => (0, data.len() as u64 * scalar),
        SMsg::XBwd { data, .. } => (1, data.len() as u64 * scalar),
        SMsg::FwdAub { data, .. } => (2, data.len() as u64 * scalar),
        SMsg::BwdAub { data, .. } => (3, data.len() as u64 * scalar),
    }
}

/// Run-global gauges of a traced solve: the progress counter stamped into
/// every rank's heartbeats and the per-rank mailbox depths the watchdog's
/// backlog signal reads — the solve-phase mirror of the factorization's
/// gauge aggregator.
struct SolveGauges {
    /// Run-global completed-solve-task counter; each completed forward or
    /// backward cblk solve stamps the finishing rank's heartbeat with the
    /// post-increment value.
    progress: AtomicU64,
    /// Messages sent to each rank and not yet received by it. Signed
    /// because the simulator's duplicate-delivery fault can make recvs
    /// overtake sends; samples clamp at zero.
    mailbox_depth: Vec<AtomicI64>,
}

impl SolveGauges {
    fn new(n_procs: usize) -> Self {
        Self {
            progress: AtomicU64::new(0),
            mailbox_depth: (0..n_procs).map(|_| AtomicI64::new(0)).collect(),
        }
    }
}

/// The [`CommHook`] feeding [`SolveGauges`] from one rank's traffic;
/// composed with [`SessionHook`] through the runtime's tuple hook.
struct SolveGaugeHook<'g> {
    rank: usize,
    gauges: &'g SolveGauges,
}

impl CommHook for SolveGaugeHook<'_> {
    #[inline]
    fn on_send(&self, to: usize, _bytes: u64, _kind: u8) {
        self.gauges.mailbox_depth[to].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn on_send_dropped(&self, _to: usize, _bytes: u64, _kind: u8) {}

    #[inline]
    fn on_recv(&self, _from: usize, _bytes: u64, _kind: u8, _wait_ns: u64) {
        self.gauges.mailbox_depth[self.rank].fetch_sub(1, Ordering::Relaxed);
    }
}

/// Static ownership and routing tables of the solve phase.
struct SolveRouting {
    /// Owner of each column block's diagonal solve (head-task owner).
    cblk_owner: Vec<u32>,
    /// Owner of each global blok's data.
    blok_owner: Vec<u32>,
    /// Bloks facing each column block (global blok id, source cblk).
    facing: Vec<Vec<(u32, u32)>>,
    /// Forward: remote AUB senders per cblk.
    fwd_remote: Vec<u32>,
    /// Forward: local contribution events per cblk.
    fwd_local: Vec<u32>,
    /// Backward: remote AUB senders per cblk.
    bwd_remote: Vec<u32>,
    /// Backward: local partial events per cblk.
    bwd_local: Vec<u32>,
}

fn build_solve_routing(sym: &SymbolMatrix, graph: &TaskGraph, sched: &Schedule) -> SolveRouting {
    let ns = sym.n_cblks();
    let mut cblk_owner = vec![0u32; ns];
    for k in 0..ns {
        cblk_owner[k] = sched.task_proc[graph.head_task_of_cblk[k] as usize];
    }
    let mut blok_owner = vec![0u32; sym.bloks.len()];
    let mut facing: Vec<Vec<(u32, u32)>> = vec![Vec::new(); ns];
    for k in 0..ns {
        let cb = &sym.cblks[k];
        blok_owner[cb.blok_start] = cblk_owner[k];
        for b in cb.blok_start + 1..cb.blok_end {
            let bd = graph.bdiv_task_of_blok[b];
            blok_owner[b] = if bd == u32::MAX {
                cblk_owner[k]
            } else {
                sched.task_proc[bd as usize]
            };
            facing[sym.bloks[b].fcblk as usize].push((b as u32, k as u32));
        }
    }
    // Forward: contributions into cblk t come from every blok facing t.
    let mut fwd_remote_sets: Vec<Vec<u32>> = vec![Vec::new(); ns];
    let mut fwd_local = vec![0u32; ns];
    // Backward: partials into cblk k come from every blok *of* k.
    let mut bwd_remote_sets: Vec<Vec<u32>> = vec![Vec::new(); ns];
    let mut bwd_local = vec![0u32; ns];
    for t in 0..ns {
        for &(b, _src) in &facing[t] {
            let owner = blok_owner[b as usize];
            if owner == cblk_owner[t] {
                fwd_local[t] += 1;
            } else {
                fwd_remote_sets[t].push(owner);
            }
        }
    }
    for k in 0..ns {
        let cb = &sym.cblks[k];
        for b in cb.blok_start + 1..cb.blok_end {
            let owner = blok_owner[b];
            if owner == cblk_owner[k] {
                bwd_local[k] += 1;
            } else {
                bwd_remote_sets[k].push(owner);
            }
        }
    }
    let dedup_count = |mut v: Vec<u32>| -> u32 {
        v.sort_unstable();
        v.dedup();
        v.len() as u32
    };
    SolveRouting {
        cblk_owner,
        blok_owner,
        facing,
        fwd_remote: fwd_remote_sets.into_iter().map(dedup_count).collect(),
        fwd_local,
        bwd_remote: bwd_remote_sets.into_iter().map(dedup_count).collect(),
        bwd_local,
    }
}

/// The SPMD **multi-RHS panel** solve engine (threads or simulator),
/// called by [`crate::SolveRequest`]-driven solves on [`crate::FactorRun`]:
/// `b_panel` is `n × nrhs` column-major in elimination order; returns the
/// `n × nrhs` solution panel (also elimination order) and the run's
/// [`TraceLog`] (empty when `cfg.trace` is disabled).
///
/// Every per-cblk segment travels and solves as a `width × nrhs` panel:
/// the diagonal substitutions run the blocked
/// [`solve_unit_lower_panel`]/[`solve_unit_lower_trans_panel`] kernels and
/// the per-blok trailing updates are GEMM-shaped (`h_b × nrhs × width`)
/// through the packed paths instead of one GEMV per right-hand side, so a
/// batch of coalesced requests pays the solve's message protocol once.
/// Per-blok products dispatch on the stored representation — a compressed
/// blok's contribution runs through the rank
/// ([`lr_gemm_nn_acc`]/[`lr_gemm_tn_acc`]) instead of the dense GEMM.
///
/// When tracing is enabled, every completed forward/backward cblk solve
/// additionally stamps a run-global progress heartbeat and the rank's
/// mailbox-depth gauge is sampled every `trace.sample_every` tasks, so a
/// serving run feeds the [`pastix_trace::watchdog`] exactly like the
/// factorization does.
pub(crate) fn solve_panel_static<T: Scalar>(
    sym: &SymbolMatrix,
    storage: &FactorStorage<T>,
    graph: &TaskGraph,
    sched: &Schedule,
    b_panel: &[T],
    nrhs: usize,
    cfg: &SolverConfig,
) -> (Vec<T>, TraceLog) {
    assert!(nrhs >= 1, "panel solve needs at least one right-hand side");
    assert_eq!(b_panel.len(), sym.n * nrhs, "b_panel must be n × nrhs");
    let routing = build_solve_routing(sym, graph, sched);
    let mut topts = cfg.trace;
    if topts.enabled && topts.epoch.is_none() {
        topts.epoch = Some(Instant::now());
    }
    let gauges = topts.enabled.then(|| SolveGauges::new(sched.n_procs));
    let t0 = Instant::now();
    let results = run_spmd_with::<SMsg<T>, (Vec<(u32, Vec<T>)>, Option<RankTrace>), _>(
        &cfg.backend,
        sched.n_procs,
        |ctx| solve_worker_run(ctx, sym, storage, &routing, b_panel, nrhs, &topts, gauges.as_ref()),
    );
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let mut segs = Vec::with_capacity(results.len());
    let mut ranks = Vec::new();
    for (seg, rt) in results {
        segs.push(seg);
        if let Some(rt) = rt {
            ranks.push(rt);
        }
    }
    let trace = TraceLog {
        ranks,
        wall_ns,
        digest: sched.digest(),
    };
    (gather_solution(sym, segs, nrhs), trace)
}

/// The SPMD body of one logical processor of the solve, on either backend.
#[allow(clippy::too_many_arguments)]
fn solve_worker_run<T: Scalar, C: Comm<SMsg<T>> + ?Sized>(
    ctx: &C,
    sym: &SymbolMatrix,
    storage: &FactorStorage<T>,
    routing: &SolveRouting,
    b_panel: &[T],
    nrhs: usize,
    topts: &TraceOptions,
    gauges: Option<&SolveGauges>,
) -> (Vec<(u32, Vec<T>)>, Option<RankTrace>) {
    let ns = sym.n_cblks();
    let n = sym.n;
    let me = ctx.rank() as u32;
    let session = pastix_trace::begin_rank(ctx.rank(), topts);
    let mut w = SolveWorker {
        sym,
        storage,
        routing,
        me,
        nrhs,
        x: HashMap::new(),
        fwd_pending: HashMap::new(),
        bwd_pending: HashMap::new(),
        fwd_aub_out: HashMap::new(),
        bwd_aub_out: HashMap::new(),
        bwd_partial_in: HashMap::new(),
        fwd_x_seen: HashSet::new(),
        bwd_x_seen: HashSet::new(),
        fwd_aub_seen: HashSet::new(),
        bwd_aub_seen: HashSet::new(),
        bwd_early: Vec::new(),
        scratch: Vec::new(),
        gauges,
        sample_every: topts.sample_every as usize,
        tasks_done: 0,
    };
    // Initialize owned segments with b (width × nrhs panels), and pending
    // counters.
    for k in 0..ns {
        if routing.cblk_owner[k] != me {
            continue;
        }
        let cb = &sym.cblks[k];
        let width = cb.width();
        let mut seg = vec![T::zero(); width * nrhs];
        for r in 0..nrhs {
            seg[r * width..(r + 1) * width]
                .copy_from_slice(&b_panel[r * n + cb.fcol as usize..=r * n + cb.lcol as usize]);
        }
        w.x.insert(k as u32, seg);
        w.fwd_pending
            .insert(k as u32, routing.fwd_remote[k] + routing.fwd_local[k]);
        w.bwd_pending
            .insert(k as u32, routing.bwd_remote[k] + routing.bwd_local[k]);
    }
    // Only the traced path pays for the instrumented wrapper.
    if topts.enabled {
        let g = gauges.expect("a traced solve always carries gauges");
        let hook = (SessionHook, SolveGaugeHook { rank: ctx.rank(), gauges: g });
        let ictx = Instrumented::new(ctx, hook, smsg_meta::<T>);
        w.forward(&ictx);
        w.backward(&ictx);
    } else {
        w.forward(ctx);
        w.backward(ctx);
    }
    (w.x.into_iter().collect(), session.finish())
}

/// Stitches the per-processor owned segment panels into the full `n × nrhs`
/// solution panel.
fn gather_solution<T: Scalar>(
    sym: &SymbolMatrix,
    results: Vec<Vec<(u32, Vec<T>)>>,
    nrhs: usize,
) -> Vec<T> {
    let n = sym.n;
    let mut x = vec![T::zero(); n * nrhs];
    for segs in results {
        for (k, seg) in segs {
            let cb = &sym.cblks[k as usize];
            let width = cb.width();
            for r in 0..nrhs {
                x[r * n + cb.fcol as usize..=r * n + cb.lcol as usize]
                    .copy_from_slice(&seg[r * width..(r + 1) * width]);
            }
        }
    }
    x
}

struct SolveWorker<'a, T> {
    sym: &'a SymbolMatrix,
    storage: &'a FactorStorage<T>,
    routing: &'a SolveRouting,
    me: u32,
    /// Panel width: every segment, AUB and partial is `width × nrhs`.
    nrhs: usize,
    /// Owned segment panels (b on entry, x on exit), column-major with
    /// leading dimension the cblk width.
    x: HashMap<u32, Vec<T>>,
    /// Remaining contribution events before a cblk's forward solve.
    fwd_pending: HashMap<u32, u32>,
    /// Remaining partial events before a cblk's backward solve.
    bwd_pending: HashMap<u32, u32>,
    /// Outgoing forward AUB accumulators: (target cblk) → (buffer, left).
    fwd_aub_out: HashMap<u32, (Vec<T>, u32)>,
    /// Outgoing backward AUB accumulators.
    bwd_aub_out: HashMap<u32, (Vec<T>, u32)>,
    /// Incoming backward partials per owned cblk, buffered until after the
    /// D division (the sequential order is D-divide, then subtract the
    /// `Lᵀ·x` partials, then the transposed diagonal solve).
    bwd_partial_in: HashMap<u32, Vec<T>>,
    /// Segments already processed, for exactly-once application under the
    /// simulator's duplicate-delivery fault.
    fwd_x_seen: HashSet<u32>,
    bwd_x_seen: HashSet<u32>,
    /// AUBs already applied, keyed (sender, target cblk).
    fwd_aub_seen: HashSet<(usize, u32)>,
    bwd_aub_seen: HashSet<(usize, u32)>,
    /// Backward-sweep traffic that arrived while this processor was still
    /// in its forward sweep (a faster peer may legitimately race ahead);
    /// drained at the start of the backward sweep.
    bwd_early: Vec<(usize, SMsg<T>)>,
    /// Reused per-blok scratch of both sweeps (`L_b·x_k` contributions,
    /// `L_bᵀ·x` partials): one allocation per worker instead of one per
    /// owned blok per supernode.
    scratch: Vec<T>,
    /// Present iff the run is traced: the shared progress counter and
    /// mailbox depths behind the heartbeat/gauge events.
    gauges: Option<&'a SolveGauges>,
    /// Gauge sampling cadence (tasks between samples; 0 disables).
    sample_every: usize,
    /// Tasks this rank has completed (heartbeat pacing).
    tasks_done: u64,
}

impl<T: Scalar> SolveWorker<'_, T> {
    /// Owners of the off-diagonal bloks of `k`, deduplicated, minus self.
    fn blok_owner_procs(&self, k: usize) -> Vec<u32> {
        let cb = &self.sym.cblks[k];
        let mut v: Vec<u32> = (cb.blok_start + 1..cb.blok_end)
            .map(|b| self.routing.blok_owner[b])
            .filter(|&q| q != self.me)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Heartbeat + gauge bookkeeping after one completed cblk solve task
    /// (forward or backward). A no-op on untraced runs.
    fn note_task_done(&mut self) {
        if let Some(g) = self.gauges {
            let seq = g.progress.fetch_add(1, Ordering::Relaxed) + 1;
            heartbeat(seq);
            self.tasks_done += 1;
            if self.sample_every > 0 && self.tasks_done.is_multiple_of(self.sample_every as u64) {
                let depth = g.mailbox_depth[self.me as usize].load(Ordering::Relaxed).max(0);
                sample_gauge(GaugeId::MailboxDepth, depth as u64);
            }
        }
    }

    /// Owners of the bloks *facing* `k`, deduplicated, minus self.
    fn facing_owner_procs(&self, k: usize) -> Vec<u32> {
        let mut v: Vec<u32> = self.routing.facing[k]
            .iter()
            .map(|&(b, _)| self.routing.blok_owner[b as usize])
            .filter(|&q| q != self.me)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    // ------------------------------------------------------------------
    // Forward sweep: L·y = b, ascending column blocks.
    // ------------------------------------------------------------------

    fn forward<C: Comm<SMsg<T>> + ?Sized>(&mut self, ctx: &C) {
        let ns = self.sym.n_cblks();
        // Expected remote x segments whose bloks I own.
        let mut expected_x: Vec<u32> = Vec::new();
        for k in 0..ns {
            if self.routing.cblk_owner[k] == self.me {
                continue;
            }
            let cb = &self.sym.cblks[k];
            if (cb.blok_start + 1..cb.blok_end).any(|b| self.routing.blok_owner[b] == self.me) {
                expected_x.push(k as u32);
            }
        }
        let mut expected_left = expected_x.len();
        let own: Vec<u32> = (0..ns as u32)
            .filter(|&k| self.routing.cblk_owner[k as usize] == self.me)
            .collect();
        let mut next = 0usize;
        while next < own.len() || expected_left > 0 {
            if next < own.len() {
                let k = own[next];
                if self.fwd_pending.get(&k).copied().unwrap_or(0) == 0 {
                    self.fwd_solve_cblk(ctx, k as usize);
                    self.note_task_done();
                    next += 1;
                    continue;
                }
            }
            let env = ctx.recv();
            match env.msg {
                SMsg::XFwd { cblk, data } => {
                    if !self.fwd_x_seen.insert(cblk) {
                        continue; // duplicate delivery
                    }
                    self.fwd_blok_contributions(ctx, cblk as usize, &data);
                    expected_left -= 1;
                }
                SMsg::FwdAub { cblk, data } => {
                    if !self.fwd_aub_seen.insert((env.from, cblk)) {
                        continue; // duplicate delivery
                    }
                    let seg = self.x.get_mut(&cblk).expect("AUB for unowned segment");
                    for (s, v) in seg.iter_mut().zip(&data) {
                        *s -= *v;
                    }
                    *self.fwd_pending.get_mut(&cblk).unwrap() -= 1;
                }
                msg @ (SMsg::XBwd { .. } | SMsg::BwdAub { .. }) => {
                    // A peer that finished its forward sweep may already be
                    // descending; park its traffic for our backward sweep.
                    self.bwd_early.push((env.from, msg));
                }
            }
        }
    }

    /// Diagonal forward solve of an owned cblk, then fan the segment out.
    fn fwd_solve_cblk<C: Comm<SMsg<T>> + ?Sized>(&mut self, ctx: &C, k: usize) {
        let _span = task_span(k as u32, TaskClass::FwdSolve);
        let cb = &self.sym.cblks[k];
        let w = cb.width();
        let lda = self.storage.panel_lda(k);
        let seg = self.x.get_mut(&(k as u32)).unwrap();
        solve_unit_lower_panel(w, &self.storage.panels[k], lda, seg, self.nrhs, w);
        // One shared materialization; every consumer send bumps a refcount.
        let seg: Arc<[T]> = Arc::from(seg.as_slice());
        // Ship to the owners of this cblk's off-diagonal bloks. Drops are
        // retried; a closed peer is already unwinding (panic teardown).
        for q in self.blok_owner_procs(k) {
            let _ = ctx.send_resilient(q as usize, SMsg::XFwd { cblk: k as u32, data: seg.clone() });
        }
        // Process my own bloks of k immediately.
        self.fwd_blok_contributions(ctx, k, &seg);
    }

    /// Computes `L_b · X_k` (an `h_b × nrhs` panel) for every blok of `k`
    /// this processor owns and routes the contributions.
    fn fwd_blok_contributions<C: Comm<SMsg<T>> + ?Sized>(&mut self, ctx: &C, k: usize, xk: &[T]) {
        let cb = &self.sym.cblks[k];
        let w = cb.width();
        let nrhs = self.nrhs;
        // Reused scratch: swapped out of the worker for the borrow's sake.
        let mut contrib = std::mem::take(&mut self.scratch);
        for b in cb.blok_start + 1..cb.blok_end {
            if self.routing.blok_owner[b] != self.me {
                continue;
            }
            let blok = &self.sym.bloks[b];
            let hb = blok.nrows();
            contrib.clear();
            contrib.resize(hb * nrhs, T::zero());
            match self.storage.blok_view(k, b - cb.blok_start, b) {
                BlokView::Dense { data, ld } => {
                    gemm_nn_acc(hb, nrhs, w, T::one(), data, ld, xk, w, &mut contrib, hb);
                }
                BlokView::LowRank(lr) => {
                    lr_gemm_nn_acc(T::one(), lr.as_ref(), xk, nrhs, w, &mut contrib, hb);
                }
            }
            let t = blok.fcblk as usize;
            let tcb = &self.sym.cblks[t];
            let width_t = tcb.width();
            let off = (blok.frow - tcb.fcol) as usize;
            let owner = self.routing.cblk_owner[t];
            if owner == self.me {
                let seg = self.x.get_mut(&(t as u32)).expect("local target segment");
                for r in 0..nrhs {
                    let rows = &mut seg[r * width_t + off..r * width_t + off + hb];
                    for (s, v) in rows.iter_mut().zip(&contrib[r * hb..(r + 1) * hb]) {
                        *s -= *v;
                    }
                }
                *self.fwd_pending.get_mut(&(t as u32)).unwrap() -= 1;
            } else {
                // One aggregated buffer per (me, target cblk); count my
                // bloks facing t to know when it is complete.
                let mine: u32 = self.routing.facing[t]
                    .iter()
                    .filter(|&&(bb, _)| self.routing.blok_owner[bb as usize] == self.me)
                    .count() as u32;
                let entry = self
                    .fwd_aub_out
                    .entry(t as u32)
                    .or_insert_with(|| (vec![T::zero(); width_t * nrhs], mine));
                for r in 0..nrhs {
                    let rows = &mut entry.0[r * width_t + off..r * width_t + off + hb];
                    for (s, v) in rows.iter_mut().zip(&contrib[r * hb..(r + 1) * hb]) {
                        *s += *v;
                    }
                }
                entry.1 -= 1;
                if entry.1 == 0 {
                    let (data, _) = self.fwd_aub_out.remove(&(t as u32)).unwrap();
                    let _ = ctx.send_resilient(owner as usize, SMsg::FwdAub { cblk: t as u32, data });
                }
            }
        }
        self.scratch = contrib;
    }

    // ------------------------------------------------------------------
    // Backward sweep: D·z = y then Lᵀ·x = z, descending column blocks.
    // ------------------------------------------------------------------

    fn backward<C: Comm<SMsg<T>> + ?Sized>(&mut self, ctx: &C) {
        let ns = self.sym.n_cblks();
        // Expected final segments of cblks whose *facing* bloks I own.
        let mut expected_left = 0usize;
        for t in 0..ns {
            if self.routing.cblk_owner[t] == self.me {
                continue;
            }
            if self.routing.facing[t]
                .iter()
                .any(|&(b, _)| self.routing.blok_owner[b as usize] == self.me)
            {
                expected_left += 1;
            }
        }
        // First replay any backward traffic that overtook our forward sweep.
        let early = std::mem::take(&mut self.bwd_early);
        for (from, msg) in early {
            self.handle_bwd(ctx, from, msg, &mut expected_left);
        }
        let own: Vec<u32> = (0..ns as u32)
            .rev()
            .filter(|&k| self.routing.cblk_owner[k as usize] == self.me)
            .collect();
        let mut next = 0usize;
        while next < own.len() || expected_left > 0 {
            if next < own.len() {
                let k = own[next];
                if self.bwd_pending.get(&k).copied().unwrap_or(0) == 0 {
                    self.bwd_solve_cblk(ctx, k as usize);
                    self.note_task_done();
                    next += 1;
                    continue;
                }
            }
            let env = ctx.recv();
            self.handle_bwd(ctx, env.from, env.msg, &mut expected_left);
        }
    }

    /// Applies one backward-sweep message (live or parked during the
    /// forward sweep). Forward-sweep messages reaching this point can only
    /// be late duplicates — every original was consumed before the forward
    /// sweep could end — and are discarded.
    fn handle_bwd<C: Comm<SMsg<T>> + ?Sized>(
        &mut self,
        ctx: &C,
        from: usize,
        msg: SMsg<T>,
        expected_left: &mut usize,
    ) {
        match msg {
            SMsg::XBwd { cblk, data } => {
                if !self.bwd_x_seen.insert(cblk) {
                    return; // duplicate delivery
                }
                self.bwd_blok_partials(ctx, cblk as usize, &data);
                *expected_left -= 1;
            }
            SMsg::BwdAub { cblk, data } => {
                if !self.bwd_aub_seen.insert((from, cblk)) {
                    return; // duplicate delivery
                }
                let buf = self
                    .bwd_partial_in
                    .entry(cblk)
                    .or_insert_with(|| vec![T::zero(); data.len()]);
                for (s, v) in buf.iter_mut().zip(&data) {
                    *s += *v;
                }
                *self.bwd_pending.get_mut(&cblk).unwrap() -= 1;
            }
            SMsg::XFwd { .. } | SMsg::FwdAub { .. } => {}
        }
    }

    /// Backward step of an owned cblk: divide by D, subtract the (already
    /// received) partials, solve the transposed unit diagonal, broadcast.
    fn bwd_solve_cblk<C: Comm<SMsg<T>> + ?Sized>(&mut self, ctx: &C, k: usize) {
        let _span = task_span(k as u32, TaskClass::BwdSolve);
        let cb = &self.sym.cblks[k];
        let w = cb.width();
        let lda = self.storage.panel_lda(k);
        let panel = &self.storage.panels[k];
        let seg = self.x.get_mut(&(k as u32)).unwrap();
        // Order matters: D-divide the forward values first, then subtract
        // the buffered `Lᵀ·x` partials, then the transposed diagonal solve
        // — exactly the sequential sweep. All partials (local and remote)
        // were buffered in `bwd_partial_in`, never applied early.
        for t in 0..w {
            let dinv = panel[t + t * lda].recip();
            for r in 0..self.nrhs {
                seg[r * w + t] *= dinv;
            }
        }
        if let Some(pbuf) = self.bwd_partial_in.remove(&(k as u32)) {
            for (s, v) in seg.iter_mut().zip(&pbuf) {
                *s -= *v;
            }
        }
        solve_unit_lower_trans_panel(w, panel, lda, seg, self.nrhs, w);
        // One shared materialization; every consumer send bumps a refcount.
        let seg: Arc<[T]> = Arc::from(seg.as_slice());
        for q in self.facing_owner_procs(k) {
            let _ = ctx.send_resilient(q as usize, SMsg::XBwd { cblk: k as u32, data: seg.clone() });
        }
        self.bwd_blok_partials(ctx, k, &seg);
    }

    /// Computes `L_bᵀ · X_rows` (a `w × nrhs` panel) for every blok facing
    /// `t` this processor owns and routes the partials toward the blok's
    /// source cblk.
    fn bwd_blok_partials<C: Comm<SMsg<T>> + ?Sized>(&mut self, ctx: &C, t: usize, xt: &[T]) {
        let tcb = &self.sym.cblks[t];
        let w_t = tcb.width();
        let nrhs = self.nrhs;
        // Iterate bloks facing t that I own; each belongs to a source cblk
        // k < t and contributes to x_k.
        let facing: Vec<(u32, u32)> = self.routing.facing[t]
            .iter()
            .copied()
            .filter(|&(b, _)| self.routing.blok_owner[b as usize] == self.me)
            .collect();
        // Reused scratch: swapped out of the worker for the borrow's sake.
        let mut partial = std::mem::take(&mut self.scratch);
        for (b, k) in facing {
            let b = b as usize;
            let k = k as usize;
            let blok = &self.sym.bloks[b];
            let hb = blok.nrows();
            let w = self.sym.cblks[k].width();
            let off = (blok.frow - tcb.fcol) as usize;
            partial.clear();
            partial.resize(w * nrhs, T::zero());
            match self.storage.blok_view(k, b - self.sym.cblks[k].blok_start, b) {
                BlokView::Dense { data, ld } => {
                    gemm_tn_acc(w, nrhs, hb, T::one(), data, ld, &xt[off..], w_t, &mut partial, w);
                }
                BlokView::LowRank(lr) => {
                    lr_gemm_tn_acc(T::one(), lr.as_ref(), &xt[off..], nrhs, w_t, &mut partial, w);
                }
            }
            let owner = self.routing.cblk_owner[k];
            if owner == self.me {
                // Buffer locally; folded in at the cblk's backward step so
                // the D division always precedes the subtraction.
                let buf = self
                    .bwd_partial_in
                    .entry(k as u32)
                    .or_insert_with(|| vec![T::zero(); w * nrhs]);
                for (s, v) in buf.iter_mut().zip(&partial) {
                    *s += *v;
                }
                *self.bwd_pending.get_mut(&(k as u32)).unwrap() -= 1;
            } else {
                let mine: u32 = (self.sym.cblks[k].blok_start + 1..self.sym.cblks[k].blok_end)
                    .filter(|&bb| self.routing.blok_owner[bb] == self.me)
                    .count() as u32;
                let entry = self
                    .bwd_aub_out
                    .entry(k as u32)
                    .or_insert_with(|| (vec![T::zero(); w * nrhs], mine));
                for (s, v) in entry.0.iter_mut().zip(&partial) {
                    *s += *v;
                }
                entry.1 -= 1;
                if entry.1 == 0 {
                    let (data, _) = self.bwd_aub_out.remove(&(k as u32)).unwrap();
                    let _ = ctx.send_resilient(owner as usize, SMsg::BwdAub { cblk: k as u32, data });
                }
            }
        }
        self.scratch = partial;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{factorize_sequential, solve_in_place};
    use pastix_graph::gen::{grid_spd, Stencil, ValueKind};
    use pastix_graph::{canonical_solution, rhs_for_solution};
    use pastix_machine::MachineModel;
    use pastix_ordering::{nested_dissection, OrderingOptions};
    use pastix_sched::{map_and_schedule, DistStrategy, MappingOptions, SchedOptions};
    use pastix_symbolic::{analyze, AnalysisOptions};

    fn setup(
        nx: usize,
        ny: usize,
        nz: usize,
        procs: usize,
        strategy: DistStrategy,
    ) -> (pastix_graph::SymCsc<f64>, pastix_sched::Mapping, FactorStorage<f64>) {
        let a = grid_spd::<f64>(nx, ny, nz, Stencil::Star, false, ValueKind::RandomSpd(5));
        let g = a.to_graph();
        let ord = nested_dissection(&g, &OrderingOptions { leaf_size: 8, ..Default::default() });
        let an = analyze(&g, &ord, &AnalysisOptions::default());
        let machine = MachineModel::sp2(procs);
        let opts = SchedOptions {
            block_size: 6,
            mapping: MappingOptions {
                procs_2d_min: 2.0,
                width_2d_min: 6,
                strategy,
            },
            ..Default::default()
        };
        let mapping = map_and_schedule(&an.symbol, &machine, &opts);
        let ap = a.permuted(&an.perm);
        let sym = mapping.graph.split.symbol.clone();
        let mut st = FactorStorage::zeros(&sym);
        st.scatter(&sym, &ap);
        factorize_sequential(&sym, &mut st).unwrap();
        (ap, mapping, st)
    }

    fn check(ap: &pastix_graph::SymCsc<f64>, mapping: &pastix_sched::Mapping, st: &FactorStorage<f64>) {
        let sym = &mapping.graph.split.symbol;
        let x_exact = canonical_solution::<f64>(ap.n());
        let b = rhs_for_solution(ap, &x_exact);
        let x_par =
            solve_panel_static(sym, st, &mapping.graph, &mapping.schedule, &b, 1, &SolverConfig::default()).0;
        let mut x_seq = b.clone();
        solve_in_place(sym, st, &mut x_seq);
        for (u, v) in x_par.iter().zip(&x_seq) {
            assert!((u - v).abs() < 1e-9, "parallel {u} vs sequential {v}");
        }
        assert!(ap.residual_norm(&x_par, &b) < 1e-12);
    }

    #[test]
    fn distributed_solve_matches_sequential_1d() {
        for procs in [1usize, 2, 4] {
            let (ap, mapping, st) = setup(8, 8, 1, procs, DistStrategy::Only1d);
            check(&ap, &mapping, &st);
        }
    }

    #[test]
    fn distributed_solve_matches_sequential_mixed() {
        for procs in [2usize, 4, 8] {
            let (ap, mapping, st) = setup(9, 9, 1, procs, DistStrategy::Mixed1d2d);
            check(&ap, &mapping, &st);
        }
    }

    #[test]
    fn distributed_solve_works_under_cyclic_schedule() {
        // The solve protocol only depends on ownership, not on how it was
        // chosen: a block-cyclic schedule must drive it just as well.
        let (ap, mapping, st) = setup(8, 8, 1, 3, DistStrategy::Mixed1d2d);
        let machine = pastix_machine::MachineModel::sp2(3);
        let cyc = pastix_sched::cyclic_schedule(&mapping.graph, &machine);
        let sym = &mapping.graph.split.symbol;
        let x_exact = canonical_solution::<f64>(ap.n());
        let b = rhs_for_solution(&ap, &x_exact);
        let x = solve_panel_static(sym, &st, &mapping.graph, &cyc, &b, 1, &SolverConfig::default()).0;
        assert!(ap.residual_norm(&x, &b) < 1e-12);
    }

    #[test]
    fn distributed_solve_3d() {
        let (ap, mapping, st) = setup(4, 4, 4, 4, DistStrategy::Mixed1d2d);
        check(&ap, &mapping, &st);
    }

    #[test]
    fn panel_solve_matches_column_by_column() {
        // A width-k panel solve must agree entrywise with k independent
        // sequential solves of its columns.
        for procs in [1usize, 3, 4] {
            let (ap, mapping, st) = setup(9, 9, 1, procs, DistStrategy::Mixed1d2d);
            let sym = &mapping.graph.split.symbol;
            let n = ap.n();
            for nrhs in [1usize, 3, 5] {
                let mut panel = vec![0.0f64; n * nrhs];
                for r in 0..nrhs {
                    let x_exact: Vec<f64> =
                        (0..n).map(|i| 1.0 + ((i + r * 7) % 11) as f64 * 0.25).collect();
                    let b = rhs_for_solution(&ap, &x_exact);
                    panel[r * n..(r + 1) * n].copy_from_slice(&b);
                }
                let x_panel = solve_panel_static(
                    sym,
                    &st,
                    &mapping.graph,
                    &mapping.schedule,
                    &panel,
                    nrhs,
                    &SolverConfig::default(),
                )
                .0;
                for r in 0..nrhs {
                    let mut x_seq = panel[r * n..(r + 1) * n].to_vec();
                    solve_in_place(sym, &st, &mut x_seq);
                    for (u, v) in x_panel[r * n..(r + 1) * n].iter().zip(&x_seq) {
                        assert!(
                            (u - v).abs() < 1e-9,
                            "procs {procs} nrhs {nrhs} col {r}: panel {u} vs sequential {v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn panel_solve_single_rhs_is_bitwise_solve_parallel() {
        // On the deterministic sim backend the nrhs = 1 panel path must be
        // bit-for-bit the classic single-RHS solve.
        let (ap, mapping, st) = setup(8, 8, 1, 4, DistStrategy::Mixed1d2d);
        let sym = &mapping.graph.split.symbol;
        let x_exact = canonical_solution::<f64>(ap.n());
        let b = rhs_for_solution(&ap, &x_exact);
        let cfg = SolverConfig::default().with_backend(pastix_runtime::Backend::Sim(
            pastix_runtime::sim::FaultPlan::interleave_only(11),
        ));
        let x1 = solve_panel_static(sym, &st, &mapping.graph, &mapping.schedule, &b, 1, &cfg).0;
        let xp = solve_panel_static(sym, &st, &mapping.graph, &mapping.schedule, &b, 1, &cfg).0;
        assert_eq!(x1, xp);
    }
}
