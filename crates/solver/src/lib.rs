//! # pastix-solver
//!
//! Numeric factorization and solve for the PaStiX reproduction:
//!
//! * [`storage`] — the dense-panel factor storage (the real PaStiX layout:
//!   one contiguous column-major panel per column block);
//! * [`seq`] — the sequential supernodal `L·D·Lᵀ` reference (one `COMP1D`
//!   per column block with direct local aggregation) and the forward /
//!   diagonal / backward solve sweeps;
//! * [`parallel`] — the parallel supernodal **fan-in** solver of the
//!   paper's Fig. 1, fully driven by the static schedule from
//!   `pastix-sched` and running on the in-process message-passing runtime.
//!
//! The parallel factor is validated against the sequential one entry by
//! entry; both support `f64` (SPD) and `Complex64` (complex symmetric)
//! systems through the shared [`pastix_kernels::Scalar`] abstraction.

#![warn(missing_docs)]

pub mod config;
pub mod metrics;
pub mod parallel;
pub mod psolve;
pub mod seq;
pub mod seq_left;
pub mod storage;

pub use config::{FactorRun, SolverConfig};
pub use metrics::MessagePathMetrics;
pub use parallel::{factorize_parallel, factorize_parallel_with, ChaosOptions};
pub use pastix_runtime::Backend;
pub use pastix_trace::{MetricsRegistry, TraceLog, TraceOptions};
pub use psolve::{
    solve_panel_parallel, solve_panel_parallel_traced, solve_panel_parallel_with, solve_parallel,
    solve_parallel_traced, solve_parallel_with,
};
pub use seq::{factor_and_solve, factorize_sequential, reconstruction_error, solve_block_in_place, solve_in_place};
pub use seq_left::factorize_sequential_left;
pub use storage::{FactorStorage, PanelLayout};
