//! # pastix-solver
//!
//! Numeric factorization and solve for the PaStiX reproduction:
//!
//! * [`plan`] — **the entry path**: [`Plan::analyze`] bundles the whole
//!   pre-processing pipeline (ordering, symbolic analysis, mapping,
//!   optional static schedule); [`Plan::factorize`] runs the numeric
//!   phase on any backend and hands back a [`FactorRun`] whose
//!   [`SolveRequest`]-driven solve method covers single- and multi-RHS;
//! * [`storage`] — the dense-panel factor storage (the real PaStiX layout:
//!   one contiguous column-major panel per column block);
//! * [`seq`] — the sequential supernodal `L·D·Lᵀ` reference (one `COMP1D`
//!   per column block with direct local aggregation) and the forward /
//!   diagonal / backward solve sweeps;
//! * [`parallel`] — the parallel supernodal **fan-in** engine of the
//!   paper's Fig. 1, fully driven by the static schedule from
//!   `pastix-sched` and running on the in-process message-passing runtime;
//! * [`dynamic`] — the `Backend::Dynamic` engine: the same task graph
//!   executed by the work-stealing DAG executor, with the static mapping
//!   reduced to placement/priority hints.
//!
//! The parallel factor is validated against the sequential one entry by
//! entry; both support `f64` (SPD) and `Complex64` (complex symmetric)
//! systems through the shared [`pastix_kernels::Scalar`] abstraction.
//!
//! Off-diagonal factor blocks can be stored in block low-rank (BLR) form:
//! [`compress`] holds the [`CompressionConfig`] knobs and the shared
//! compressed-comp1d pipeline, [`storage`] the per-panel overlay, and
//! [`refine`] the iterative-refinement wrapper that recovers full
//! accuracy from a truncated factor.

#![warn(missing_docs)]

pub mod compress;
pub mod config;
pub mod dynamic;
pub mod metrics;
pub mod parallel;
pub mod plan;
pub mod psolve;
pub mod refine;
pub mod seq;
pub mod seq_left;
pub mod storage;

pub use compress::{CompressionConfig, CompressionStrategy};
pub use config::{FactorRun, SolverConfig};
pub use metrics::MessagePathMetrics;
pub use parallel::ChaosOptions;
pub use pastix_runtime::{Backend, DynamicOptions};
pub use pastix_trace::{MetricsRegistry, TraceLog, TraceOptions};
pub use plan::{run_from_storage, AnalyzeOptions, AnalyzeStats, Plan, SolveOutput, SolveRequest};
pub use refine::{RefineOptions, RefineOutput};
pub use seq::{
    factor_and_solve, factorize_sequential, factorize_sequential_compressed,
    reconstruction_error, solve_block_in_place, solve_in_place,
};
pub use seq_left::factorize_sequential_left;
pub use storage::{BlockStore, BlokView, FactorStorage, PanelCompression, PanelLayout};
