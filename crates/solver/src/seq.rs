//! Sequential supernodal `L·D·Lᵀ` factorization and triangular solves.
//!
//! The reference implementation: right-looking over column blocks, each
//! step being exactly one `COMP1D` task of the paper's Fig. 1 with the
//! contributions applied directly to the target panels (the sequential
//! degenerate case of the fan-in scheme, where every aggregation is local).
//! The parallel solver must produce the same factor; tests enforce it.

use crate::compress::{comp1d_tail_compressed, finalize_compression, CompressionConfig};
use crate::storage::{BlokView, FactorStorage, PanelLayout};
use pastix_kernels::factor::{ldlt_factor_blocked, ldlt_factor_inplace, FactorError, NB_FACTOR};
use pastix_kernels::{kernel_mode, KernelMode};
use pastix_kernels::{
    gemm_nn_acc, gemm_nt_acc, lr_gemm_nn_acc, lr_gemm_nt_acc, lr_gemm_tn_acc,
    scale_cols_by_diag_into, solve_unit_lower, solve_unit_lower_trans, trsm_ldlt_panel,
    LowRankBlock, Scalar,
};
use pastix_symbolic::SymbolMatrix;
use pastix_trace::MetricsRegistry;

/// Factorizes the scattered matrix in place, column block by column block.
pub fn factorize_sequential<T: Scalar>(
    sym: &SymbolMatrix,
    storage: &mut FactorStorage<T>,
) -> Result<(), FactorError> {
    let layout = storage.layout.clone();
    let mut wbuf: Vec<T> = Vec::new();
    let mut dtmp: Vec<T> = Vec::new();
    let mut ubuf: Vec<T> = Vec::new();
    for k in 0..sym.n_cblks() {
        // Traced as its own class so sequential baselines and the
        // parallel run stay distinguishable in a merged report.
        let _span = pastix_trace::task_span(k as u32, pastix_trace::TaskClass::Seq);
        comp1d_step(sym, &layout, &mut storage.panels, k, &mut wbuf, &mut dtmp, &mut ubuf)?;
    }
    Ok(())
}

/// Sequential factorization with block low-rank compression: comp1d
/// compresses qualifying off-diagonal bloks just-in-time (right after the
/// diagonal factor, when the panel is final) and routes contributions
/// through the low-rank update kernels; the finished factor carries the
/// compression overlay and the `lowrank.*` metrics land in `metrics`.
/// A disabled config (`tolerance: 0.0`) delegates to
/// [`factorize_sequential`] — bitwise-identical to the dense path.
pub fn factorize_sequential_compressed<T: Scalar>(
    sym: &SymbolMatrix,
    storage: &mut FactorStorage<T>,
    cc: &CompressionConfig,
    metrics: &MetricsRegistry,
) -> Result<(), FactorError> {
    if !cc.enabled() {
        return factorize_sequential(sym, storage);
    }
    let layout = storage.layout.clone();
    let mut wbuf: Vec<T> = Vec::new();
    let mut dtmp: Vec<T> = Vec::new();
    let mut per_blok: Vec<Option<LowRankBlock<T>>> =
        (0..sym.bloks.len()).map(|_| None).collect();
    for k in 0..sym.n_cblks() {
        let _span = pastix_trace::task_span(k as u32, pastix_trace::TaskClass::Seq);
        let cb = &sym.cblks[k];
        let w = cb.width();
        let lda = layout.panel_rows(k);
        let h = lda - w;
        let (left, right) = storage.panels.split_at_mut(k + 1);
        let panel = &mut left[k][..];
        ldlt_factor_blocked(w, panel, lda, NB_FACTOR, &mut wbuf)
            .map_err(|FactorError::ZeroPivot(i)| FactorError::ZeroPivot(cb.fcol as usize + i))?;
        if h == 0 {
            continue;
        }
        dtmp.clear();
        dtmp.resize(w * w, T::zero());
        pastix_kernels::dense::copy_panel(w, w, panel, lda, &mut dtmp, w);
        let lrs = comp1d_tail_compressed(
            sym,
            &layout,
            k,
            panel,
            lda,
            &dtmp,
            cc,
            &mut |br, bc, a_op, b_op| {
                let blok_c = &sym.bloks[bc];
                let blok_r = &sym.bloks[br];
                let (hr, hc) = (blok_r.nrows(), blok_c.nrows());
                let tk = blok_c.fcblk as usize;
                let tcb = &sym.cblks[tk];
                let tlda = layout.panel_rows(tk);
                let tcol = (blok_c.frow - tcb.fcol) as usize;
                let tb = sym.covering_blok(tk, blok_r.frow, blok_r.lrow);
                let trow =
                    layout.panel_row[tb] as usize + (blok_r.frow - sym.bloks[tb].frow) as usize;
                let target = &mut right[tk - (k + 1)][trow + tcol * tlda..];
                lr_gemm_nt_acc(hr, hc, w, -T::one(), a_op, b_op, target, tlda);
            },
        );
        for (b, lr) in lrs {
            per_blok[b] = Some(lr);
        }
    }
    finalize_compression(sym, storage, cc, per_blok, metrics);
    Ok(())
}

/// One `COMP1D(k)` with direct (local) application of every contribution.
fn comp1d_step<T: Scalar>(
    sym: &SymbolMatrix,
    layout: &PanelLayout,
    panels: &mut [Vec<T>],
    k: usize,
    wbuf: &mut Vec<T>,
    dtmp: &mut Vec<T>,
    ubuf: &mut Vec<T>,
) -> Result<(), FactorError> {
    let cb = &sym.cblks[k];
    let w = cb.width();
    let lda = layout.panel_rows(k);
    let h = lda - w;
    let (left, right) = panels.split_at_mut(k + 1);
    let panel = &mut left[k][..];

    // Factor the diagonal block (wbuf is dead here; it doubles as the
    // blocked kernel's panel scratch before being rebuilt as F below).
    // [`KernelMode::Reference`] freezes the seed hot path — unblocked
    // factor, per-pair contributions — as the bench harness's "before"
    // side; every other mode takes the blocked/fused formulation.
    let seed_path = kernel_mode() == KernelMode::Reference;
    if seed_path {
        ldlt_factor_inplace(w, panel, lda)
    } else {
        ldlt_factor_blocked(w, panel, lda, NB_FACTOR, wbuf)
    }
    .map_err(|FactorError::ZeroPivot(i)| FactorError::ZeroPivot(cb.fcol as usize + i))?;
    if h == 0 {
        return Ok(());
    }
    // Panel solve against a compact copy of the factored diagonal block.
    dtmp.clear();
    dtmp.resize(w * w, T::zero());
    pastix_kernels::dense::copy_panel(w, w, panel, lda, dtmp, w);
    {
        let off = &mut panel[w..];
        trsm_ldlt_panel(h, w, dtmp, w, off, lda);
    }
    // F = L_off · D.
    wbuf.clear();
    wbuf.resize(h * w, T::zero());
    {
        let mut d = Vec::with_capacity(w);
        for t in 0..w {
            d.push(dtmp[t + t * w]);
        }
        scale_cols_by_diag_into(h, w, &panel[w..], lda, &d, wbuf, h);
    }
    // Contributions: for every source block c, ONE product over *all* the
    // panel rows at and below it (they are contiguous in the panel) into a
    // scratch strip, scattered row-block by row-block into the target
    // panel. Fusing the per-pair GEMMs of the seed this way turns ~B²/2
    // tiny products per column block into B medium ones — the per-call
    // overhead disappears and the tall strips are exactly the shapes the
    // packed path is fastest on.
    let offs = sym.off_bloks_of(k);
    for c in 0..offs.len() {
        let bc = &offs[c];
        let hc = bc.nrows();
        let tk = bc.fcblk as usize;
        let tcb = &sym.cblks[tk];
        let tlda = layout.panel_rows(tk);
        let tcol = (bc.frow - tcb.fcol) as usize;
        let a_off = layout.panel_row[cb.blok_start + 1 + c] as usize;
        let b_off = a_off - w;
        let mbelow = lda - a_off;
        if seed_path {
            // Seed formulation: one small GEMM per block pair, applied
            // straight to the target region.
            for (r, br) in offs.iter().enumerate().skip(c) {
                let hr = br.nrows();
                let tb = sym.covering_blok(tk, br.frow, br.lrow);
                let trow = layout.panel_row[tb] as usize + (br.frow - sym.bloks[tb].frow) as usize;
                let ra_off = layout.panel_row[cb.blok_start + 1 + r] as usize;
                let target = &mut right[tk - (k + 1)][trow + tcol * tlda..];
                gemm_nt_acc(
                    hr,
                    hc,
                    w,
                    -T::one(),
                    &panel[ra_off..],
                    lda,
                    &wbuf[b_off..],
                    h,
                    target,
                    tlda,
                );
            }
            continue;
        }
        // U = −L_{c..} · F_cᵀ, an mbelow × hc strip.
        ubuf.clear();
        ubuf.resize(mbelow * hc, T::zero());
        gemm_nt_acc(
            mbelow,
            hc,
            w,
            -T::one(),
            &panel[a_off..],
            lda,
            &wbuf[b_off..],
            h,
            ubuf,
            mbelow,
        );
        // Scatter: row block r of the strip lands at its covering block's
        // row offset in the target panel.
        let target = &mut right[tk - (k + 1)][..];
        let mut urow = 0;
        for br in offs.iter().skip(c) {
            let hr = br.nrows();
            let tb = sym.covering_blok(tk, br.frow, br.lrow);
            let trow = layout.panel_row[tb] as usize + (br.frow - sym.bloks[tb].frow) as usize;
            for j in 0..hc {
                let src = &ubuf[urow + j * mbelow..urow + j * mbelow + hr];
                let dst = &mut target[trow + (tcol + j) * tlda..trow + (tcol + j) * tlda + hr];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += s;
                }
            }
            urow += hr;
        }
    }
    Ok(())
}

/// Solves `A·x = b` in place given the factored storage (`b` enters, `x`
/// leaves): forward sweep `L·y = b`, diagonal `D·z = y`, backward sweep
/// `Lᵀ·x = z`.
pub fn solve_in_place<T: Scalar>(sym: &SymbolMatrix, storage: &FactorStorage<T>, x: &mut [T]) {
    assert_eq!(x.len(), sym.n);
    let mut xk: Vec<T> = Vec::new();
    let mut tmp: Vec<T> = Vec::new();
    // Forward: L y = b.
    for k in 0..sym.n_cblks() {
        let cb = &sym.cblks[k];
        let w = cb.width();
        let lda = storage.panel_lda(k);
        let panel = &storage.panels[k];
        let fcol = cb.fcol as usize;
        solve_unit_lower(w, panel, lda, &mut x[fcol..fcol + w], 1, w);
        if cb.blok_start + 1 == cb.blok_end {
            continue;
        }
        xk.clear();
        xk.extend_from_slice(&x[fcol..fcol + w]);
        for b in cb.blok_start + 1..cb.blok_end {
            let blok = &sym.bloks[b];
            let hb = blok.nrows();
            let fr = blok.frow as usize;
            match storage.blok_view(k, b - cb.blok_start, b) {
                BlokView::Dense { data, ld } => {
                    gemm_nn_acc(hb, 1, w, -T::one(), data, ld, &xk, w, &mut x[fr..fr + hb], hb);
                }
                BlokView::LowRank(lr) => {
                    lr_gemm_nn_acc(-T::one(), lr.as_ref(), &xk, 1, w, &mut x[fr..fr + hb], hb);
                }
            }
        }
    }
    // Diagonal: D z = y.
    for k in 0..sym.n_cblks() {
        let cb = &sym.cblks[k];
        let lda = storage.panel_lda(k);
        let panel = &storage.panels[k];
        for t in 0..cb.width() {
            let d = panel[t + t * lda];
            x[cb.fcol as usize + t] *= d.recip();
        }
    }
    // Backward: Lᵀ x = z.
    for k in (0..sym.n_cblks()).rev() {
        let cb = &sym.cblks[k];
        let w = cb.width();
        let lda = storage.panel_lda(k);
        let panel = &storage.panels[k];
        let fcol = cb.fcol as usize;
        for b in cb.blok_start + 1..cb.blok_end {
            let blok = &sym.bloks[b];
            let hb = blok.nrows();
            let fr = blok.frow as usize;
            match storage.blok_view(k, b - cb.blok_start, b) {
                BlokView::Dense { data, ld } => {
                    for t in 0..w {
                        let mut acc = T::zero();
                        let col = &data[t * ld..t * ld + hb];
                        for (rr, &l) in col.iter().enumerate() {
                            acc += l * x[fr + rr];
                        }
                        x[fcol + t] -= acc;
                    }
                }
                BlokView::LowRank(lr) => {
                    tmp.clear();
                    tmp.resize(w, T::zero());
                    lr_gemm_tn_acc(T::one(), lr.as_ref(), &x[fr..fr + hb], 1, hb, &mut tmp, w);
                    for t in 0..w {
                        x[fcol + t] -= tmp[t];
                    }
                }
            }
        }
        solve_unit_lower_trans(w, panel, lda, &mut x[fcol..fcol + w], 1, w);
    }
}

/// Blocked multi-right-hand-side solve: `X`/`B` is `n × nrhs` column-major
/// (leading dimension `n`). The sweeps run all columns together, turning
/// the per-block updates into GEMMs — the standard way to amortize the
/// factor traffic over many right-hand sides.
pub fn solve_block_in_place<T: Scalar>(
    sym: &SymbolMatrix,
    storage: &FactorStorage<T>,
    x: &mut [T],
    nrhs: usize,
) {
    let n = sym.n;
    assert_eq!(x.len(), n * nrhs);
    if nrhs == 0 {
        return;
    }
    let mut xk: Vec<T> = Vec::new();
    let mut tmp: Vec<T> = Vec::new();
    // Forward: L Y = B for all columns at once.
    for k in 0..sym.n_cblks() {
        let cb = &sym.cblks[k];
        let w = cb.width();
        let lda = storage.panel_lda(k);
        let panel = &storage.panels[k];
        let fcol = cb.fcol as usize;
        // Gather the segment rows (strided by n across rhs columns).
        xk.clear();
        xk.resize(w * nrhs, T::zero());
        for r in 0..nrhs {
            for t in 0..w {
                xk[t + r * w] = x[fcol + t + r * n];
            }
        }
        solve_unit_lower(w, panel, lda, &mut xk, nrhs, w);
        for r in 0..nrhs {
            for t in 0..w {
                x[fcol + t + r * n] = xk[t + r * w];
            }
        }
        for b in cb.blok_start + 1..cb.blok_end {
            let blok = &sym.bloks[b];
            let hb = blok.nrows();
            let fr = blok.frow as usize;
            // C (hb × nrhs, strided ldc = n inside x) -= L_b · X_k.
            match storage.blok_view(k, b - cb.blok_start, b) {
                BlokView::Dense { data, ld } => {
                    gemm_nn_acc(hb, nrhs, w, -T::one(), data, ld, &xk, w, &mut x[fr..], n);
                }
                BlokView::LowRank(lr) => {
                    lr_gemm_nn_acc(-T::one(), lr.as_ref(), &xk, nrhs, w, &mut x[fr..], n);
                }
            }
        }
    }
    // Diagonal.
    for k in 0..sym.n_cblks() {
        let cb = &sym.cblks[k];
        let lda = storage.panel_lda(k);
        let panel = &storage.panels[k];
        for t in 0..cb.width() {
            let dinv = panel[t + t * lda].recip();
            for r in 0..nrhs {
                x[cb.fcol as usize + t + r * n] *= dinv;
            }
        }
    }
    // Backward: Lᵀ X = Z.
    for k in (0..sym.n_cblks()).rev() {
        let cb = &sym.cblks[k];
        let w = cb.width();
        let lda = storage.panel_lda(k);
        let panel = &storage.panels[k];
        let fcol = cb.fcol as usize;
        for b in cb.blok_start + 1..cb.blok_end {
            let blok = &sym.bloks[b];
            let hb = blok.nrows();
            let fr = blok.frow as usize;
            match storage.blok_view(k, b - cb.blok_start, b) {
                BlokView::Dense { data, ld } => {
                    for r in 0..nrhs {
                        for t in 0..w {
                            let mut acc = T::zero();
                            let col = &data[t * ld..t * ld + hb];
                            for (rr, &l) in col.iter().enumerate() {
                                acc += l * x[fr + rr + r * n];
                            }
                            x[fcol + t + r * n] -= acc;
                        }
                    }
                }
                BlokView::LowRank(lr) => {
                    // Accumulate Vᵀ-side partials in a compact buffer first
                    // (the strided source and destination columns of `x`
                    // interleave, so the product cannot run in place).
                    tmp.clear();
                    tmp.resize(w * nrhs, T::zero());
                    lr_gemm_tn_acc(T::one(), lr.as_ref(), &x[fr..], nrhs, n, &mut tmp, w);
                    for r in 0..nrhs {
                        for t in 0..w {
                            x[fcol + t + r * n] -= tmp[t + r * w];
                        }
                    }
                }
            }
        }
        xk.clear();
        xk.resize(w * nrhs, T::zero());
        for r in 0..nrhs {
            for t in 0..w {
                xk[t + r * w] = x[fcol + t + r * n];
            }
        }
        solve_unit_lower_trans(w, panel, lda, &mut xk, nrhs, w);
        for r in 0..nrhs {
            for t in 0..w {
                x[fcol + t + r * n] = xk[t + r * w];
            }
        }
    }
}

/// Convenience: factorize `a` (already permuted) over `sym` and solve for
/// one right-hand side; returns the solution and the factor.
///
/// ```
/// use pastix_graph::{CsrGraph, Permutation, SymCsc};
/// use pastix_symbolic::{analyze, AnalysisOptions};
/// use pastix_solver::factor_and_solve;
/// // Tridiagonal SPD system.
/// let mut tr = vec![(0u32, 0u32, 3.0)];
/// for i in 1..6u32 {
///     tr.push((i, i, 3.0));
///     tr.push((i, i - 1, -1.0));
/// }
/// let a = SymCsc::from_triplets(6, &tr);
/// let an = analyze(&a.to_graph(), &Permutation::identity(6), &AnalysisOptions::default());
/// let ap = a.permuted(&an.perm);
/// let x_exact = vec![1.0; 6];
/// let b = ap.matvec(&x_exact);
/// let (x, _factor) = factor_and_solve(&an.symbol, &ap, &b).unwrap();
/// assert!(ap.residual_norm(&x, &b) < 1e-14);
/// ```
pub fn factor_and_solve<T: Scalar>(
    sym: &SymbolMatrix,
    a: &pastix_graph::SymCsc<T>,
    b: &[T],
) -> Result<(Vec<T>, FactorStorage<T>), FactorError> {
    let mut storage = FactorStorage::zeros(sym);
    storage.scatter(sym, a);
    factorize_sequential(sym, &mut storage)?;
    let mut x = b.to_vec();
    solve_in_place(sym, &storage, &mut x);
    Ok((x, storage))
}

/// Multiplies the reconstructed factor against the original to measure
/// `max |(L·D·Lᵀ − A)(i,j)|` over the structure (small-problem test tool).
pub fn reconstruction_error<T: Scalar>(
    sym: &SymbolMatrix,
    storage: &FactorStorage<T>,
    a: &pastix_graph::SymCsc<T>,
) -> f64 {
    let n = sym.n;
    let mut err = 0.0f64;
    // Rebuild column by column: (L D L^T)(i,j) = sum_p L(i,p) d_p L(j,p).
    // Reads go through `FactorStorage::get`, which dispatches on the
    // stored representation — the tool works on compressed factors too.
    for j in 0..n {
        for i in j..n {
            let mut v = T::zero();
            for p in 0..=j {
                let lip = if i == p { T::one() } else { storage.get(sym, i, p) };
                let ljp = if j == p { T::one() } else { storage.get(sym, j, p) };
                if lip == T::zero() || ljp == T::zero() {
                    continue;
                }
                let d = storage.get(sym, p, p);
                v += lip * d * ljp;
            }
            err = err.max((v - a.get(i, j)).magnitude());
        }
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastix_graph::gen::{grid_spd, Stencil, ValueKind};
    use pastix_graph::{canonical_solution, rhs_for_solution};
    use pastix_ordering::{nested_dissection, OrderingOptions};
    use pastix_symbolic::{analyze, split_symbol, AnalysisOptions};

    fn pipeline(nx: usize, ny: usize, nz: usize) -> (pastix_graph::SymCsc<f64>, SymbolMatrix) {
        let a = grid_spd::<f64>(nx, ny, nz, Stencil::Star, false, ValueKind::RandomSpd(11));
        let g = a.to_graph();
        let ord = nested_dissection(&g, &OrderingOptions { leaf_size: 8, ..Default::default() });
        let an = analyze(&g, &ord, &AnalysisOptions::default());
        (a.permuted(&an.perm), an.symbol)
    }

    #[test]
    fn factorization_reconstructs_small() {
        let (ap, sym) = pipeline(4, 4, 1);
        let mut st = FactorStorage::zeros(&sym);
        st.scatter(&sym, &ap);
        factorize_sequential(&sym, &mut st).unwrap();
        let err = reconstruction_error(&sym, &st, &ap);
        assert!(err < 1e-10, "reconstruction error {err}");
    }

    #[test]
    fn solve_recovers_canonical_solution() {
        for (nx, ny, nz) in [(5, 5, 1), (6, 4, 2), (3, 3, 3)] {
            let (ap, sym) = pipeline(nx, ny, nz);
            let x_exact = canonical_solution::<f64>(ap.n());
            let b = rhs_for_solution(&ap, &x_exact);
            let (x, _) = factor_and_solve(&sym, &ap, &b).unwrap();
            let res = ap.residual_norm(&x, &b);
            assert!(res < 1e-12, "residual {res} on {nx}x{ny}x{nz}");
            for (xi, ei) in x.iter().zip(&x_exact) {
                assert!((xi - ei).abs() < 1e-8, "{xi} vs {ei}");
            }
        }
    }

    #[test]
    fn split_symbol_gives_identical_factor() {
        let (ap, sym) = pipeline(6, 6, 1);
        let mut st1 = FactorStorage::zeros(&sym);
        st1.scatter(&sym, &ap);
        factorize_sequential(&sym, &mut st1).unwrap();

        let split = split_symbol(&sym, 3);
        let mut st2 = FactorStorage::zeros(&split.symbol);
        st2.scatter(&split.symbol, &ap);
        factorize_sequential(&split.symbol, &mut st2).unwrap();

        let n = ap.n();
        for j in 0..n {
            for i in j..n {
                let a = st1.get(&sym, i, j);
                let b = st2.get(&split.symbol, i, j);
                assert!(
                    (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                    "split factor differs at ({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn complex_symmetric_pipeline() {
        use pastix_kernels::Complex64;
        // Build a complex symmetric matrix with the same pattern as a small
        // SPD grid: A = A_re + i*eps*A_im with dominance retained.
        let a_re = grid_spd::<f64>(4, 4, 1, Stencil::Star, false, ValueKind::RandomSpd(5));
        let n = a_re.n();
        let mut triplets = Vec::new();
        for j in 0..n {
            for (&i, &v) in a_re.rows_of(j).iter().zip(a_re.vals_of(j)) {
                let im = if i as usize == j { 0.3 } else { 0.05 * v };
                triplets.push((i, j as u32, Complex64::new(v, im)));
            }
        }
        let a = pastix_graph::SymCsc::<Complex64>::from_triplets(n, &triplets);
        let g = a.to_graph();
        let ord = nested_dissection(&g, &OrderingOptions { leaf_size: 6, ..Default::default() });
        let an = analyze(&g, &ord, &AnalysisOptions::default());
        let ap = a.permuted(&an.perm);
        let x_exact = canonical_solution::<Complex64>(n);
        let b = rhs_for_solution(&ap, &x_exact);
        let (x, _) = factor_and_solve(&an.symbol, &ap, &b).unwrap();
        let res = ap.residual_norm(&x, &b);
        assert!(res < 1e-10, "complex residual {res}");
    }

    #[test]
    fn blocked_multirhs_matches_single_rhs() {
        let (ap, sym) = pipeline(6, 5, 2);
        let n = ap.n();
        let mut st = FactorStorage::zeros(&sym);
        st.scatter(&sym, &ap);
        factorize_sequential(&sym, &mut st).unwrap();
        let nrhs = 4;
        // Build nrhs right-hand sides with known solutions.
        let mut xs_exact = Vec::new();
        let mut big = vec![0.0f64; n * nrhs];
        for r in 0..nrhs {
            let xe: Vec<f64> = (0..n).map(|i| (i + r) as f64 * 0.3 - 1.0).collect();
            let b = ap.matvec(&xe);
            big[r * n..(r + 1) * n].copy_from_slice(&b);
            xs_exact.push(xe);
        }
        solve_block_in_place(&sym, &st, &mut big, nrhs);
        for (r, xe) in xs_exact.iter().enumerate() {
            // Against the single-rhs path.
            let mut single = ap.matvec(xe);
            solve_in_place(&sym, &st, &mut single);
            for i in 0..n {
                assert!((big[i + r * n] - single[i]).abs() < 1e-12);
                assert!((big[i + r * n] - xe[i]).abs() < 1e-8);
            }
        }
        // Degenerate nrhs = 0 is a no-op.
        let mut empty: Vec<f64> = Vec::new();
        solve_block_in_place(&sym, &st, &mut empty, 0);
    }

    #[test]
    fn compressed_factorization_solves_and_delegates() {
        use crate::compress::{CompressionConfig, CompressionStrategy};
        let (ap, sym) = pipeline(8, 8, 2);
        let n = ap.n();
        let metrics = MetricsRegistry::default();

        // Dense reference factor.
        let mut dense = FactorStorage::zeros(&sym);
        dense.scatter(&sym, &ap);
        factorize_sequential(&sym, &mut dense).unwrap();

        // Tight tolerance: the compressed factor must still solve well.
        let cc = CompressionConfig::with_tolerance(1e-9)
            .min_block(4)
            .strategy(CompressionStrategy::MinimalMemory);
        let mut st = FactorStorage::zeros(&sym);
        st.scatter(&sym, &ap);
        factorize_sequential_compressed(&sym, &mut st, &cc, &metrics).unwrap();
        let x_exact = canonical_solution::<f64>(n);
        let b = rhs_for_solution(&ap, &x_exact);
        let mut x = b.clone();
        solve_in_place(&sym, &st, &mut x);
        let res = ap.residual_norm(&x, &b);
        assert!(res < 1e-7, "compressed residual {res}");
        // Blocked multi-rhs agrees with the single-rhs sweep on the same
        // (possibly compressed) storage.
        let nrhs = 3;
        let mut big = vec![0.0f64; n * nrhs];
        for r in 0..nrhs {
            big[r * n..(r + 1) * n].copy_from_slice(&b);
        }
        solve_block_in_place(&sym, &st, &mut big, nrhs);
        for r in 0..nrhs {
            for i in 0..n {
                assert!((big[i + r * n] - x[i]).abs() < 1e-12);
            }
        }

        // Loose tolerance: compression must actually engage and shrink the
        // resident footprint.
        let loose = CompressionConfig::with_tolerance(0.5)
            .min_block(2)
            .strategy(CompressionStrategy::MinimalMemory);
        let mut stl = FactorStorage::zeros(&sym);
        stl.scatter(&sym, &ap);
        factorize_sequential_compressed(&sym, &mut stl, &loose, &metrics).unwrap();
        assert!(stl.is_compressed(), "loose tolerance must compress something");
        assert!(stl.factor_bytes() < stl.dense_factor_bytes());

        // Tolerance 0 delegates to the dense path, bitwise.
        let mut st0 = FactorStorage::zeros(&sym);
        st0.scatter(&sym, &ap);
        factorize_sequential_compressed(&sym, &mut st0, &CompressionConfig::off(), &metrics)
            .unwrap();
        assert!(!st0.is_compressed());
        for (p0, pd) in st0.panels.iter().zip(&dense.panels) {
            assert_eq!(p0, pd, "tolerance 0 must be bitwise-identical to dense");
        }
    }

    #[test]
    fn singular_matrix_reports_zero_pivot() {
        // All-zero matrix on a path pattern: first pivot is zero.
        let n = 4;
        let triplets: Vec<(u32, u32, f64)> = (0..n as u32)
            .map(|i| (i, i, 0.0))
            .chain((0..n as u32 - 1).map(|i| (i + 1, i, 0.0)))
            .collect();
        let a = pastix_graph::SymCsc::from_triplets(n, &triplets);
        let g = a.to_graph();
        let an = analyze(&g, &pastix_graph::Permutation::identity(n), &AnalysisOptions::default());
        let ap = a.permuted(&an.perm);
        let mut st = FactorStorage::zeros(&an.symbol);
        st.scatter(&an.symbol, &ap);
        assert!(factorize_sequential(&an.symbol, &mut st).is_err());
    }
}
