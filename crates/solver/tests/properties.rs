//! Property-based tests of the numeric solver on random SPD systems:
//! the full pipeline (ordering → symbolic → scatter → factorize → solve)
//! must solve every diagonally dominant random system, sequentially and
//! in parallel, and the two factors must agree.

use pastix_graph::SymCsc;
use pastix_machine::MachineModel;
use pastix_ordering::{nested_dissection, OrderingOptions};
use pastix_sched::{map_and_schedule, MappingOptions, SchedOptions};
use pastix_solver::{
    factorize_sequential, solve_in_place, FactorStorage, Plan, SolverConfig,
};
use pastix_symbolic::{analyze, AnalysisOptions};
use proptest::prelude::*;

/// Builds a random diagonally dominant SPD matrix from edge and value data.
fn random_spd(n: usize, edges: Vec<(u32, u32)>, vals: Vec<f64>) -> SymCsc<f64> {
    let mut tr: Vec<(u32, u32, f64)> = Vec::new();
    for (k, (u, v)) in edges.into_iter().enumerate() {
        let (u, v) = (u % n as u32, v % n as u32);
        if u == v {
            continue;
        }
        let val = -(0.1 + vals[k % vals.len()].abs());
        tr.push((u.max(v), u.min(v), val));
    }
    for d in 0..n as u32 {
        tr.push((d, d, 1.0));
    }
    let mut a = SymCsc::from_triplets(n, &tr);
    a.make_diag_dominant(0.5);
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sequential_pipeline_solves_random_spd(
        n in 2usize..50,
        edges in prop::collection::vec((0u32..50, 0u32..50), 0..150),
        vals in prop::collection::vec(0.0f64..2.0, 1..16),
    ) {
        let a = random_spd(n, edges, vals);
        let g = a.to_graph();
        let ord = nested_dissection(&g, &OrderingOptions { leaf_size: 8, ..Default::default() });
        let an = analyze(&g, &ord, &AnalysisOptions::default());
        let ap = a.permuted(&an.perm);
        let x_exact: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let b = ap.matvec(&x_exact);
        let mut st = FactorStorage::zeros(&an.symbol);
        st.scatter(&an.symbol, &ap);
        factorize_sequential(&an.symbol, &mut st).unwrap();
        let mut x = b.clone();
        solve_in_place(&an.symbol, &st, &mut x);
        prop_assert!(ap.residual_norm(&x, &b) < 1e-11);
    }

    #[test]
    fn parallel_pipeline_matches_sequential_on_random_spd(
        n in 4usize..40,
        edges in prop::collection::vec((0u32..40, 0u32..40), 4..120),
        procs in 2usize..5,
        block in 2usize..10,
    ) {
        let a = random_spd(n, edges, vec![1.0]);
        let g = a.to_graph();
        let ord = nested_dissection(&g, &OrderingOptions { leaf_size: 6, ..Default::default() });
        let an = analyze(&g, &ord, &AnalysisOptions::default());
        let machine = MachineModel::sp2(procs);
        let opts = SchedOptions {
            block_size: block,
            mapping: MappingOptions {
                procs_2d_min: 2.0,
                width_2d_min: block,
                ..Default::default()
            },
            ..Default::default()
        };
        let mapping = map_and_schedule(&an.symbol, &machine, &opts);
        let sym = &mapping.graph.split.symbol;
        let ap = a.permuted(&an.perm);
        let plan = Plan::from_parts(None, mapping.graph.clone(), Some(mapping.schedule.clone()));
        let par = plan.factorize(&ap, &SolverConfig::default()).unwrap();
        let mut seq = FactorStorage::zeros(sym);
        seq.scatter(sym, &ap);
        factorize_sequential(sym, &mut seq).unwrap();
        for (pa, pb) in par.panels.iter().zip(&seq.panels) {
            for (x, y) in pa.iter().zip(pb) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn disconnected_random_systems_solve(
        blocks in prop::collection::vec(1usize..8, 1..5),
    ) {
        // A block-diagonal system of disjoint paths: exercises forests in
        // every phase (multiple etree roots, multiple candidate intervals).
        let mut tr: Vec<(u32, u32, f64)> = Vec::new();
        let mut base = 0u32;
        for &len in &blocks {
            for i in 0..len as u32 {
                tr.push((base + i, base + i, 4.0));
                if i > 0 {
                    tr.push((base + i, base + i - 1, -1.0));
                }
            }
            base += len as u32;
        }
        let n = base as usize;
        let a = SymCsc::from_triplets(n, &tr);
        let g = a.to_graph();
        let ord = nested_dissection(&g, &OrderingOptions { leaf_size: 4, ..Default::default() });
        let an = analyze(&g, &ord, &AnalysisOptions::default());
        let ap = a.permuted(&an.perm);
        let x_exact = vec![1.0; n];
        let b = ap.matvec(&x_exact);
        let (x, _) = pastix_solver::factor_and_solve(&an.symbol, &ap, &b).unwrap();
        for (u, v) in x.iter().zip(&x_exact) {
            prop_assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn single_vertex_and_tiny_systems(n in 1usize..4) {
        let mut tr: Vec<(u32, u32, f64)> = (0..n as u32).map(|i| (i, i, 2.0)).collect();
        if n > 1 {
            tr.push((1, 0, -0.5));
        }
        let a = SymCsc::from_triplets(n, &tr);
        let g = a.to_graph();
        let ord = nested_dissection(&g, &OrderingOptions::default());
        let an = analyze(&g, &ord, &AnalysisOptions::default());
        let ap = a.permuted(&an.perm);
        let b = ap.matvec(&vec![1.0; n]);
        let (x, _) = pastix_solver::factor_and_solve(&an.symbol, &ap, &b).unwrap();
        for v in &x {
            prop_assert!((v - 1.0).abs() < 1e-12);
        }
    }
}
