//! Allocation-count regression tests for the zero-copy message path.
//!
//! The claims under test (see `pastix_solver::metrics`):
//!
//! 1. factor regions are materialized into an `Arc<[T]>` payload at most
//!    once per producing task **with a remote consumer** — purely local
//!    consumers borrow the finished region in place, and consumer sends
//!    are refcount bumps, so with any fan-out the send count strictly
//!    exceeds the deep-copy count (the seed cloned the region on every
//!    send);
//! 2. under the Fan-Both memory cap, outgoing AUB accumulation buffers are
//!    recycled from applied incoming AUBs instead of freshly allocated.
//!
//! Each run reads its counters from the private `MetricsRegistry` carried
//! by its own `SolverConfig`, so the phases cannot contaminate each other.
//! The whole suite runs on **both** backends: the production thread
//! backend and the deterministic simulator follow the same message path,
//! so the structural counts must agree.

use pastix_graph::gen::{grid_spd, Stencil, ValueKind};
use pastix_machine::MachineModel;
use pastix_ordering::{nested_dissection, OrderingOptions};
use pastix_runtime::sim::FaultPlan;
use pastix_sched::{map_and_schedule, DistStrategy, MappingOptions, SchedOptions, TaskKind};
use pastix_solver::metrics::MessagePathMetrics;
use pastix_solver::{Backend, Plan, SolverConfig};
use pastix_symbolic::{analyze, AnalysisOptions};

fn check_zero_copy_on(backend: Backend) {
    // A mixed 1D/2D problem on 8 logical processors: plenty of factor
    // fan-out and cross-processor AUB traffic.
    let a = grid_spd::<f64>(12, 12, 1, Stencil::Star, false, ValueKind::RandomSpd(21));
    let g = a.to_graph();
    let ord = nested_dissection(&g, &OrderingOptions { leaf_size: 8, ..Default::default() });
    let an = analyze(&g, &ord, &AnalysisOptions::default());
    let machine = MachineModel::sp2(8);
    let opts = SchedOptions {
        block_size: 4,
        mapping: MappingOptions {
            procs_2d_min: 2.0,
            width_2d_min: 4,
            strategy: DistStrategy::Mixed1d2d,
        },
        ..Default::default()
    };
    let mapping = map_and_schedule(&an.symbol, &machine, &opts);
    let ap = a.permuted(&an.perm);
    let graph = &mapping.graph;
    let sched = &mapping.schedule;
    // `perm: None`: `ap` is already in elimination order.
    let plan = Plan::from_parts(None, graph.clone(), Some(sched.clone()));
    // The only lawful deep copies: factor-producing tasks with at least
    // one consumer scheduled on a different processor (the `Arc` payload
    // is materialized once for the sends; everything local borrows).
    let n_remote_producers = (0..graph.n_tasks())
        .filter(|&t| matches!(graph.kinds[t], TaskKind::Factor { .. } | TaskKind::Bdiv { .. }))
        .filter(|&t| {
            let p = sched.task_proc[t];
            graph.out_edges(t).iter().any(|&d| sched.task_proc[d as usize] != p)
        })
        .count() as u64;

    // Phase 1: plain fan-in factorization — factor-payload sharing. The
    // run's private registry isolates its counts.
    let fanin = plan
        .factorize(&ap, &SolverConfig::new().with_backend(backend))
        .unwrap();
    let m1 = MessagePathMetrics::from_registry(&fanin.metrics);
    assert!(m1.fac_sends > 0, "expected remote factor traffic: {m1:?}");
    assert!(
        m1.fac_deep_copies <= n_remote_producers,
        "factor regions must be deep-copied at most once per producing task \
         with a remote consumer ({n_remote_producers} such producers): {m1:?}"
    );
    assert!(
        m1.fac_deep_copies < m1.fac_sends,
        "with fan-out, sends must exceed deep copies (seed cloned per send): {m1:?}"
    );

    // Phase 2: punishing Fan-Both memory cap — AUB buffer recycling.
    let fanboth = plan
        .factorize(
            &ap,
            &SolverConfig::new()
                .with_backend(backend)
                .with_aub_memory_limit(Some(16)),
        )
        .unwrap();
    let m2 = MessagePathMetrics::from_registry(&fanboth.metrics);
    assert!(m2.aub_sends > 0, "the cap should force AUB traffic: {m2:?}");
    assert!(
        m2.aub_pool_reuses > 0,
        "flushed/applied AUB payloads must be recycled into outgoing buffers: {m2:?}"
    );
    assert!(
        m2.aub_fresh_allocs + m2.aub_pool_reuses >= m2.aub_sends,
        "every sent AUB consumed an acquired buffer: {m2:?}"
    );

    // The optimization must not change the numbers.
    for (pa, pb) in fanin.panels.iter().zip(&fanboth.panels) {
        for (x, y) in pa.iter().zip(pb) {
            assert!((x - y).abs() < 1e-9, "fan-both deviates: {x} vs {y}");
        }
    }
}

#[test]
fn factor_payloads_are_shared_and_aub_buffers_recycled_threads() {
    check_zero_copy_on(Backend::Threads);
}

#[test]
fn factor_payloads_are_shared_and_aub_buffers_recycled_sim() {
    check_zero_copy_on(Backend::Sim(FaultPlan::builder(21).build()));
}
