//! Allocation-count regression tests for the zero-copy message path.
//!
//! The claims under test (see `pastix_solver::metrics`):
//!
//! 1. factor regions are materialized into an `Arc<[T]>` payload at most
//!    once per producing task — consumer sends are refcount bumps, so with
//!    any fan-out the send count strictly exceeds the deep-copy count
//!    (the seed cloned the region on every send);
//! 2. under the Fan-Both memory cap, outgoing AUB accumulation buffers are
//!    recycled from applied incoming AUBs instead of freshly allocated.
//!
//! Each run reads its counters from the private `MetricsRegistry` carried
//! by its own `SolverConfig`, so the two phases cannot contaminate each
//! other; the deprecated process-global accessors are exercised once at
//! the end to pin the one-release compatibility shim.

use pastix_graph::gen::{grid_spd, Stencil, ValueKind};
use pastix_machine::MachineModel;
use pastix_ordering::{nested_dissection, OrderingOptions};
use pastix_sched::{map_and_schedule, DistStrategy, MappingOptions, SchedOptions, TaskKind};
use pastix_solver::metrics::MessagePathMetrics;
use pastix_solver::{factorize_parallel_with, metrics, SolverConfig};
use pastix_symbolic::{analyze, AnalysisOptions};

#[test]
fn factor_payloads_are_shared_and_aub_buffers_recycled() {
    // A mixed 1D/2D problem on 8 logical processors: plenty of factor
    // fan-out and cross-processor AUB traffic.
    let a = grid_spd::<f64>(12, 12, 1, Stencil::Star, false, ValueKind::RandomSpd(21));
    let g = a.to_graph();
    let ord = nested_dissection(&g, &OrderingOptions { leaf_size: 8, ..Default::default() });
    let an = analyze(&g, &ord, &AnalysisOptions::default());
    let machine = MachineModel::sp2(8);
    let opts = SchedOptions {
        block_size: 4,
        mapping: MappingOptions {
            procs_2d_min: 2.0,
            width_2d_min: 4,
            strategy: DistStrategy::Mixed1d2d,
        },
    };
    let mapping = map_and_schedule(&an.symbol, &machine, &opts);
    let ap = a.permuted(&an.perm);
    let sym = &mapping.graph.split.symbol;
    let n_producers = mapping
        .graph
        .kinds
        .iter()
        .filter(|k| matches!(k, TaskKind::Factor { .. } | TaskKind::Bdiv { .. }))
        .count() as u64;

    // Phase 1: plain fan-in factorization — factor-payload sharing. The
    // run's private registry isolates its counts.
    let fanin = factorize_parallel_with(
        sym,
        &ap,
        &mapping.graph,
        &mapping.schedule,
        &SolverConfig::default(),
    )
    .unwrap();
    let m1 = MessagePathMetrics::from_registry(&fanin.metrics);
    assert!(m1.fac_sends > 0, "expected remote factor traffic: {m1:?}");
    assert!(
        m1.fac_deep_copies <= n_producers,
        "factor regions must be deep-copied at most once per producing task \
         ({n_producers} producers): {m1:?}"
    );
    assert!(
        m1.fac_deep_copies < m1.fac_sends,
        "with fan-out, sends must exceed deep copies (seed cloned per send): {m1:?}"
    );

    // Phase 2: punishing Fan-Both memory cap — AUB buffer recycling.
    let fanboth = factorize_parallel_with(
        sym,
        &ap,
        &mapping.graph,
        &mapping.schedule,
        &SolverConfig::new().with_aub_memory_limit(Some(16)),
    )
    .unwrap();
    let m2 = MessagePathMetrics::from_registry(&fanboth.metrics);
    assert!(m2.aub_sends > 0, "the cap should force AUB traffic: {m2:?}");
    assert!(
        m2.aub_pool_reuses > 0,
        "flushed/applied AUB payloads must be recycled into outgoing buffers: {m2:?}"
    );
    assert!(
        m2.aub_fresh_allocs + m2.aub_pool_reuses >= m2.aub_sends,
        "every sent AUB consumed an acquired buffer: {m2:?}"
    );

    // The optimization must not change the numbers.
    for (pa, pb) in fanin.panels.iter().zip(&fanboth.panels) {
        for (x, y) in pa.iter().zip(pb) {
            assert!((x - y).abs() < 1e-9, "fan-both deviates: {x} vs {y}");
        }
    }

    // Deprecated shims, kept one release: every run also mirrors its
    // counters into the process-global registry, so `reset` + a run +
    // `snapshot` must still observe the message path.
    #[allow(deprecated)]
    {
        metrics::reset();
        let _ = factorize_parallel_with(
            sym,
            &ap,
            &mapping.graph,
            &mapping.schedule,
            &SolverConfig::default(),
        )
        .unwrap();
        let m3 = metrics::snapshot();
        // The fresh-alloc/pool-reuse split depends on thread timing; the
        // structural counts and the acquired-buffer total do not.
        assert_eq!(m3.fac_deep_copies, m1.fac_deep_copies);
        assert_eq!(m3.fac_sends, m1.fac_sends);
        assert_eq!(m3.aub_sends, m1.aub_sends);
        assert_eq!(
            m3.aub_fresh_allocs + m3.aub_pool_reuses,
            m1.aub_fresh_allocs + m1.aub_pool_reuses,
            "global shim must see the same acquired-buffer total"
        );
    }
}
