//! Request coalescing: the queue that turns a stream of single-RHS solve
//! requests into blocked multi-RHS panels.
//!
//! A panel of `k` coalesced right-hand sides pays the solve's message
//! protocol once and turns every per-blok trailing update into a
//! GEMM-shaped `h_b × k × w` product instead of `k` GEMVs — the whole
//! point of the serving layer's batching. The queue itself is clock-free:
//! arrival and completion timestamps are supplied by the caller (wall
//! nanoseconds in a live server, a virtual clock in `bench_serve`), so
//! batching behavior is reproducible.

use crate::session::SolverSession;
use pastix_graph::SymCsc;
use pastix_kernels::{FactorError, Scalar};
use std::collections::VecDeque;

/// One queued solve request.
#[derive(Debug, Clone)]
pub struct Request<T> {
    /// Ticket handed back by [`RequestQueue::submit`].
    pub id: u64,
    /// The right-hand side (original ordering).
    pub rhs: Vec<T>,
    /// Caller-supplied arrival timestamp (ns).
    pub arrival_ns: u64,
}

/// One served request.
#[derive(Debug, Clone)]
pub struct Completed<T> {
    /// Ticket of the originating request.
    pub id: u64,
    /// The solution vector (original ordering).
    pub x: Vec<T>,
    /// `finish_ns − arrival_ns`: queueing plus solve time.
    pub latency_ns: u64,
    /// Width of the panel this request was coalesced into.
    pub batch: usize,
}

/// FIFO queue of pending solve requests.
#[derive(Debug, Default)]
pub struct RequestQueue<T> {
    pending: VecDeque<Request<T>>,
    next_id: u64,
}

impl<T: Scalar> RequestQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self { pending: VecDeque::new(), next_id: 0 }
    }

    /// Enqueues a right-hand side; returns its ticket.
    pub fn submit(&mut self, rhs: Vec<T>, arrival_ns: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push_back(Request { id, rhs, arrival_ns });
        id
    }

    /// Pending requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Pops the oldest `max` (or fewer) requests — the next batch.
    pub fn take_batch(&mut self, max: usize) -> Vec<Request<T>> {
        let k = max.min(self.pending.len());
        self.pending.drain(..k).collect()
    }

    /// Coalesces the oldest pending requests (at most the session's
    /// `max_panel`) into one panel, solves it through `session`, and
    /// returns the completions stamped with `finish_ns`. Returns an empty
    /// vector when the queue is idle.
    pub fn serve_batch(
        &mut self,
        session: &mut SolverSession<T>,
        a: &SymCsc<T>,
        finish_ns: u64,
    ) -> Result<Vec<Completed<T>>, FactorError> {
        let batch = self.take_batch(session.options().max_panel);
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let n = a.n();
        let nrhs = batch.len();
        let panel = pack_panel(&batch, n);
        let (x, _) = session.solve_panel(a, &panel, nrhs)?;
        let done = unpack_completions(&batch, &x, n, finish_ns);
        let m = session.metrics();
        m.add_counter("serve.requests", nrhs as u64);
        m.add_counter("serve.batches", 1);
        m.observe("serve.batch_width", nrhs as u64);
        for c in &done {
            m.observe("serve.latency_ns", c.latency_ns);
        }
        Ok(done)
    }
}

/// Packs request right-hand sides into an `n × k` column-major panel.
pub fn pack_panel<T: Scalar>(batch: &[Request<T>], n: usize) -> Vec<T> {
    let mut panel = vec![T::zero(); n * batch.len()];
    for (r, req) in batch.iter().enumerate() {
        assert_eq!(req.rhs.len(), n, "request {} has wrong rhs length", req.id);
        panel[r * n..(r + 1) * n].copy_from_slice(&req.rhs);
    }
    panel
}

/// Splits a solved panel back into per-request completions, stamping
/// latencies against `finish_ns`.
pub fn unpack_completions<T: Scalar>(
    batch: &[Request<T>],
    x: &[T],
    n: usize,
    finish_ns: u64,
) -> Vec<Completed<T>> {
    batch
        .iter()
        .enumerate()
        .map(|(r, req)| Completed {
            id: req.id,
            x: x[r * n..(r + 1) * n].to_vec(),
            latency_ns: finish_ns.saturating_sub(req.arrival_ns),
            batch: batch.len(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionOptions;
    use pastix_graph::gen::{grid_spd, Stencil, ValueKind};
    use pastix_graph::rhs_for_solution;
    use pastix_sched::SchedOptions;

    #[test]
    fn queue_coalesces_and_serves_fifo() {
        let a = grid_spd::<f64>(6, 6, 1, Stencil::Star, false, ValueKind::RandomSpd(9));
        let n = a.n();
        let opts = SessionOptions {
            procs: 2,
            max_panel: 3,
            sched: SchedOptions { block_size: 8, ..Default::default() },
            ..Default::default()
        };
        let mut session = SolverSession::<f64>::new(opts);
        let mut q = RequestQueue::new();
        let mut exact = Vec::new();
        for r in 0..5 {
            let xe: Vec<f64> = (0..n).map(|i| ((i * 3 + r) % 5) as f64 - 2.0).collect();
            let id = q.submit(rhs_for_solution(&a, &xe), 100 * r as u64);
            assert_eq!(id, r as u64);
            exact.push(xe);
        }
        // First batch coalesces max_panel = 3, second the remaining 2.
        let d1 = q.serve_batch(&mut session, &a, 1_000).unwrap();
        assert_eq!(d1.len(), 3);
        assert_eq!(q.len(), 2);
        let d2 = q.serve_batch(&mut session, &a, 2_000).unwrap();
        assert_eq!(d2.len(), 2);
        assert!(q.is_empty());
        assert!(q.serve_batch(&mut session, &a, 3_000).unwrap().is_empty());
        for c in d1.iter().chain(&d2) {
            let xe = &exact[c.id as usize];
            for (u, v) in c.x.iter().zip(xe) {
                assert!((u - v).abs() < 1e-8, "request {}: {u} vs {v}", c.id);
            }
        }
        // FIFO: batch 1 holds tickets 0..3 at width 3.
        assert_eq!(d1.iter().map(|c| c.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(d1.iter().all(|c| c.batch == 3));
        assert_eq!(d1[0].latency_ns, 1_000);
        assert_eq!(d1[2].latency_ns, 800);
        let m = session.metrics();
        assert_eq!(m.counter("serve.requests"), 5);
        assert_eq!(m.counter("serve.batches"), 2);
        assert_eq!(m.counter("serve.cache.misses"), 1);
        assert_eq!(m.counter("serve.cache.hits"), 1);
        assert!(m.histogram("serve.latency_ns").is_some());
    }
}
