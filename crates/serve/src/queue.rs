//! Request coalescing: the queue that turns a stream of single-RHS solve
//! requests into blocked multi-RHS panels.
//!
//! A panel of `k` coalesced right-hand sides pays the solve's message
//! protocol once and turns every per-blok trailing update into a
//! GEMM-shaped `h_b × k × w` product instead of `k` GEMVs — the whole
//! point of the serving layer's batching. The queue itself is clock-free:
//! arrival and completion timestamps are supplied by the caller (wall
//! nanoseconds in a live server, a virtual clock in `bench_serve`), so
//! batching behavior is reproducible.

use crate::rtrace::RequestTrace;
use crate::session::SolverSession;
use pastix_graph::SymCsc;
use pastix_kernels::{FactorError, Scalar};
use pastix_trace::flight::{self, FlightKind};
use pastix_trace::TraceLog;
use std::collections::VecDeque;

/// One queued solve request.
#[derive(Debug, Clone)]
pub struct Request<T> {
    /// Ticket handed back by [`RequestQueue::submit`].
    pub id: u64,
    /// The right-hand side (original ordering).
    pub rhs: Vec<T>,
    /// Caller-supplied arrival timestamp (ns).
    pub arrival_ns: u64,
}

/// One served request.
#[derive(Debug, Clone)]
pub struct Completed<T> {
    /// Ticket of the originating request.
    pub id: u64,
    /// The solution vector (original ordering).
    pub x: Vec<T>,
    /// `finish_ns − arrival_ns`: queueing plus solve time.
    pub latency_ns: u64,
    /// Width of the panel this request was coalesced into.
    pub batch: usize,
}

/// FIFO queue of pending solve requests.
#[derive(Debug, Default)]
pub struct RequestQueue<T> {
    pending: VecDeque<Request<T>>,
    next_id: u64,
    batches: u64,
    tracer: Option<RequestTrace>,
}

impl<T: Scalar> RequestQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue with per-request tracing: every admitted request
    /// becomes a parent async span on the serve track of
    /// [`RequestQueue::take_trace`]'s log, with stage children and flow
    /// arrows into the solver ranks (see [`crate::rtrace`]).
    pub fn traced() -> Self {
        Self { tracer: Some(RequestTrace::new()), ..Self::default() }
    }

    /// Detaches and assembles the request trace recorded so far (empty
    /// log for untraced queues). Tracing continues in a fresh builder.
    pub fn take_trace(&mut self) -> TraceLog {
        match self.tracer.take() {
            Some(t) => {
                self.tracer = Some(RequestTrace::new());
                t.finish()
            }
            None => TraceLog::default(),
        }
    }

    /// Enqueues a right-hand side; returns its ticket.
    pub fn submit(&mut self, rhs: Vec<T>, arrival_ns: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        flight::record(FlightKind::RequestStart, id, 0);
        if let Some(t) = &mut self.tracer {
            t.begin_request(id, arrival_ns);
        }
        self.pending.push_back(Request { id, rhs, arrival_ns });
        id
    }

    /// Pending requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Pops the oldest `max` (or fewer) requests — the next batch.
    pub fn take_batch(&mut self, max: usize) -> Vec<Request<T>> {
        let k = max.min(self.pending.len());
        self.pending.drain(..k).collect()
    }

    /// Coalesces the oldest pending requests (at most the session's
    /// `max_panel`) into one panel, solves it through `session`, and
    /// returns the completions stamped with `finish_ns`. `dispatch_ns` is
    /// the caller's clock at the moment the batch leaves the queue — it
    /// splits each request's latency into queue wait
    /// (`dispatch − arrival`) and solve (`finish − dispatch`), recorded
    /// in the `serve.queue_wait_ns` / `serve.solve_ns` histograms and on
    /// the request trace's stage spans. Returns an empty vector when the
    /// queue is idle.
    pub fn serve_batch(
        &mut self,
        session: &mut SolverSession<T>,
        a: &SymCsc<T>,
        dispatch_ns: u64,
        finish_ns: u64,
    ) -> Result<Vec<Completed<T>>, FactorError> {
        let batch = self.take_batch(session.options().max_panel);
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let n = a.n();
        let nrhs = batch.len();
        let seq = self.batches;
        self.batches += 1;
        flight::record(FlightKind::BatchDispatch, seq, nrhs as u64);
        let panel = pack_panel(&batch, n);
        // The batch's lead ticket tags the solve, linking the rank-side
        // solve spans to the requests riding this panel.
        let tag = self.tracer.as_ref().map(|_| batch[0].id);
        let out = session.solve_panel_tagged(a, &panel, nrhs, tag)?;
        // Health check on the fresh solve trace *before* the requests are
        // marked complete in the flight ring: a watchdog trip here dumps a
        // black box that still names this batch's tickets as in flight.
        if !out.trace.ranks.is_empty() {
            let wd = pastix_trace::watchdog::WatchdogOptions::from_env();
            let (report, _) = pastix_trace::watchdog::analyze_and_dump(&out.trace, &wd);
            if report.any_stalled() {
                session.metrics().add_counter("serve.watchdog.trips", 1);
            }
        }
        if let Some(t) = &mut self.tracer {
            let ids: Vec<u64> = batch.iter().map(|r| r.id).collect();
            t.record_batch(&ids, dispatch_ns, finish_ns, out.cache_hit, &out.trace);
        }
        let done = unpack_completions(&batch, &out.x, n, finish_ns);
        let m = session.metrics();
        m.add_counter("serve.requests", nrhs as u64);
        m.add_counter("serve.batches", 1);
        m.observe("serve.batch_width", nrhs as u64);
        for (c, r) in done.iter().zip(&batch) {
            m.observe("serve.latency_ns", c.latency_ns);
            m.observe("serve.queue_wait_ns", dispatch_ns.saturating_sub(r.arrival_ns));
            m.observe("serve.solve_ns", finish_ns.saturating_sub(dispatch_ns));
            flight::record(FlightKind::RequestEnd, c.id, c.latency_ns);
        }
        Ok(done)
    }
}

/// Packs request right-hand sides into an `n × k` column-major panel.
pub fn pack_panel<T: Scalar>(batch: &[Request<T>], n: usize) -> Vec<T> {
    let mut panel = vec![T::zero(); n * batch.len()];
    for (r, req) in batch.iter().enumerate() {
        assert_eq!(req.rhs.len(), n, "request {} has wrong rhs length", req.id);
        panel[r * n..(r + 1) * n].copy_from_slice(&req.rhs);
    }
    panel
}

/// Splits a solved panel back into per-request completions, stamping
/// latencies against `finish_ns`.
pub fn unpack_completions<T: Scalar>(
    batch: &[Request<T>],
    x: &[T],
    n: usize,
    finish_ns: u64,
) -> Vec<Completed<T>> {
    batch
        .iter()
        .enumerate()
        .map(|(r, req)| Completed {
            id: req.id,
            x: x[r * n..(r + 1) * n].to_vec(),
            latency_ns: finish_ns.saturating_sub(req.arrival_ns),
            batch: batch.len(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionOptions;
    use pastix_graph::gen::{grid_spd, Stencil, ValueKind};
    use pastix_graph::rhs_for_solution;
    use pastix_sched::SchedOptions;

    #[test]
    fn queue_coalesces_and_serves_fifo() {
        let a = grid_spd::<f64>(6, 6, 1, Stencil::Star, false, ValueKind::RandomSpd(9));
        let n = a.n();
        let opts = SessionOptions {
            procs: 2,
            max_panel: 3,
            sched: SchedOptions { block_size: 8, ..Default::default() },
            ..Default::default()
        };
        let mut session = SolverSession::<f64>::new(opts);
        let mut q = RequestQueue::new();
        let mut exact = Vec::new();
        for r in 0..5 {
            let xe: Vec<f64> = (0..n).map(|i| ((i * 3 + r) % 5) as f64 - 2.0).collect();
            let id = q.submit(rhs_for_solution(&a, &xe), 100 * r as u64);
            assert_eq!(id, r as u64);
            exact.push(xe);
        }
        // First batch coalesces max_panel = 3, second the remaining 2.
        let d1 = q.serve_batch(&mut session, &a, 500, 1_000).unwrap();
        assert_eq!(d1.len(), 3);
        assert_eq!(q.len(), 2);
        let d2 = q.serve_batch(&mut session, &a, 1_500, 2_000).unwrap();
        assert_eq!(d2.len(), 2);
        assert!(q.is_empty());
        assert!(q.serve_batch(&mut session, &a, 2_500, 3_000).unwrap().is_empty());
        for c in d1.iter().chain(&d2) {
            let xe = &exact[c.id as usize];
            for (u, v) in c.x.iter().zip(xe) {
                assert!((u - v).abs() < 1e-8, "request {}: {u} vs {v}", c.id);
            }
        }
        // FIFO: batch 1 holds tickets 0..3 at width 3.
        assert_eq!(d1.iter().map(|c| c.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(d1.iter().all(|c| c.batch == 3));
        assert_eq!(d1[0].latency_ns, 1_000);
        assert_eq!(d1[2].latency_ns, 800);
        let m = session.metrics();
        assert_eq!(m.counter("serve.requests"), 5);
        assert_eq!(m.counter("serve.batches"), 2);
        assert_eq!(m.counter("serve.cache.misses"), 1);
        assert_eq!(m.counter("serve.cache.hits"), 1);
        assert!(m.histogram("serve.latency_ns").is_some());
        // The dispatch split: waits run arrival→dispatch, solves 500 each.
        let qw = m.histogram("serve.queue_wait_ns").unwrap();
        assert_eq!(qw.count, 5);
        assert_eq!(qw.max, 1_200); // ticket 3: arrived 300, dispatched 1_500
        let sv = m.histogram("serve.solve_ns").unwrap();
        assert_eq!(sv.count, 5);
        assert_eq!(sv.min, 500);
        assert_eq!(sv.max, 500);
        assert_eq!(m.histogram("serve.factorize_ns").unwrap().count, 1);
    }

    #[test]
    fn traced_queue_builds_request_spans() {
        use pastix_trace::export::{chrome_trace, validate_chrome_trace};
        let a = grid_spd::<f64>(6, 6, 1, Stencil::Star, false, ValueKind::RandomSpd(9));
        let n = a.n();
        let opts = SessionOptions {
            procs: 2,
            max_panel: 2,
            sched: SchedOptions { block_size: 8, ..Default::default() },
            ..Default::default()
        };
        // Tracing must be on for solve traces to exist at all.
        let mut opts = opts;
        opts.solver = opts.solver.with_trace(pastix_trace::TraceOptions::wall());
        let mut session = SolverSession::<f64>::new(opts);
        let mut q = RequestQueue::traced();
        for r in 0..3u64 {
            let xe: Vec<f64> = (0..n).map(|i| (i as f64) - r as f64).collect();
            q.submit(rhs_for_solution(&a, &xe), 10 * r);
        }
        q.serve_batch(&mut session, &a, 100, 200).unwrap();
        q.serve_batch(&mut session, &a, 300, 400).unwrap();
        let log = q.take_trace();
        assert_eq!(log.ranks[0].rank, pastix_trace::SERVE_RANK);
        assert!(log.ranks.len() > 1, "solve ranks must be merged in");
        let j = chrome_trace(&log);
        validate_chrome_trace(&j).unwrap();
        let text = j.compact();
        for stage in ["request", "queue_wait", "coalesce", "analyze", "factorize", "solve"] {
            assert!(text.contains(&format!("\"{stage}\"")), "missing stage {stage}");
        }
        // After take_trace the builder is fresh but still tracing.
        let empty = q.take_trace();
        assert_eq!(empty.ranks.len(), 1);
        assert!(empty.ranks[0].events.is_empty());
    }
}
