//! The persistent solver session: an LRU cache of factorizations keyed by
//! matrix fingerprint, fronting the distributed panel solve.
//!
//! The production shape of a direct solver is factorize-once,
//! solve-millions-of-times. [`SolverSession`] keeps the expensive
//! artifacts of each distinct matrix — ordering, symbol, static schedule,
//! assembled factor, and the level-set [`SolveSchedule`] of the solve DAG
//! — behind a [`MatrixFingerprint`] key, so repeat requests against a
//! known matrix skip straight to the triangular sweeps. Capacity and
//! byte-budget eviction bound the resident set; hit/miss/eviction
//! counters land in the session's [`MetricsRegistry`].

use crate::fingerprint::MatrixFingerprint;
use pastix_graph::{Parallelism, SymCsc};
use pastix_kernels::{FactorError, Scalar};
use pastix_ordering::OrderingOptions;
use pastix_sched::{solve_schedule, SchedOptions, SolveSchedule};
use pastix_solver::{
    AnalyzeOptions, FactorRun, Plan, SolveRequest, SolverConfig,
};
use pastix_symbolic::AnalysisOptions;
use pastix_trace::{MetricsRegistry, TraceLog};
use std::sync::Arc;

/// Knobs of a serving session.
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Logical processors of every factorization and solve.
    pub procs: usize,
    /// Maximum resident factorizations (≥ 1).
    pub capacity: usize,
    /// Optional cap on the summed factor bytes of resident entries. An
    /// entry larger than the whole budget is served but never cached, so
    /// the budget is a true invariant, not a soft target.
    pub byte_budget: Option<u64>,
    /// Widest multi-RHS panel a request batch coalesces into.
    pub max_panel: usize,
    /// Parallelism of the analyze phase on cache misses (uniform across
    /// ordering/symbolic/scheduling; overridable per deployment via
    /// `PASTIX_ANALYZE_THREADS`).
    pub parallelism: Parallelism,
    /// Ordering-phase knobs.
    pub ordering: OrderingOptions,
    /// Symbolic-phase knobs.
    pub analysis: AnalysisOptions,
    /// Repartitioning/scheduling knobs.
    pub sched: SchedOptions,
    /// Execution and observability configuration shared by the
    /// factorization and every solve (backend, kernel mode, tracing,
    /// metrics).
    pub solver: SolverConfig,
    /// Opt-in Prometheus scrape endpoint: bind address (e.g.
    /// `"127.0.0.1:0"` for an ephemeral port) serving the session
    /// registry's text exposition over HTTP for the session's lifetime.
    /// `None` (default) opens no socket.
    pub metrics_addr: Option<String>,
    /// Opt-in periodic metrics snapshot file (Prometheus text format,
    /// atomically replaced every [`SessionOptions::snapshot_every`]) for
    /// file-based scraping. `None` (default) writes nothing.
    pub snapshot_path: Option<std::path::PathBuf>,
    /// Rewrite period of `snapshot_path`.
    pub snapshot_every: std::time::Duration,
}

impl Default for SessionOptions {
    fn default() -> Self {
        Self {
            procs: 4,
            capacity: 4,
            byte_budget: None,
            max_panel: 8,
            parallelism: Parallelism::Auto,
            ordering: OrderingOptions::scotch_like(),
            analysis: AnalysisOptions::default(),
            sched: SchedOptions::default(),
            solver: SolverConfig::default(),
            metrics_addr: None,
            snapshot_path: None,
            snapshot_every: std::time::Duration::from_secs(1),
        }
    }
}

/// Everything the session caches per distinct matrix.
#[derive(Debug)]
pub struct CachedFactor<T> {
    /// The key this entry is resident under.
    pub fingerprint: MatrixFingerprint,
    /// The analyzed plan: permutation, task graph, static schedule.
    pub plan: Plan,
    /// The assembled factor with its observability artifacts (carries the
    /// plan, so [`FactorRun::solve_request`] works directly).
    pub run: FactorRun<T>,
    /// Level-set schedule of the solve DAG, reconcilable against solve
    /// traces via `pastix_trace::report::build_solve_report`.
    pub ssched: SolveSchedule,
    /// Resident factor bytes **as stored**: dense panel bytes plus the
    /// `U`/`V` bytes of compressed bloks ([`FactorStorage::factor_bytes`]
    /// of the run), so a block-low-rank factor charges the byte budget
    /// only for what it actually keeps resident.
    ///
    /// [`FactorStorage::factor_bytes`]: pastix_solver::FactorStorage::factor_bytes
    pub bytes: u64,
}

/// A persistent factorize-once, solve-many session.
///
/// Entries are kept in least-recently-used order; every hit refreshes the
/// entry, every insert evicts from the cold end until both the capacity
/// and the byte budget hold.
pub struct SolverSession<T> {
    opts: SessionOptions,
    /// LRU order: index 0 is coldest, the last entry hottest.
    entries: Vec<(MatrixFingerprint, Arc<CachedFactor<T>>)>,
    bytes: u64,
    metrics: MetricsRegistry,
    metrics_server: Option<pastix_trace::expose::MetricsServer>,
    snapshot_writer: Option<pastix_trace::expose::SnapshotWriter>,
}

impl<T: Scalar> SolverSession<T> {
    /// Creates an empty session. The metrics handle is shared with
    /// `opts.solver.metrics`, so factorization counters and serving
    /// counters land in one registry. When `opts.metrics_addr` /
    /// `opts.snapshot_path` are set, the scrape endpoint and snapshot
    /// writer run for the session's lifetime (dropped with it). Also
    /// installs the process-wide flight-recorder panic hook: a serving
    /// process that dies leaves a black box.
    pub fn new(opts: SessionOptions) -> Self {
        assert!(opts.capacity >= 1, "session cache needs capacity >= 1");
        assert!(opts.max_panel >= 1, "panel width must be >= 1");
        pastix_trace::flight::install_panic_hook();
        let metrics = opts.solver.metrics.clone();
        let metrics_server = opts.metrics_addr.as_deref().map(|addr| {
            pastix_trace::expose::MetricsServer::bind(addr, metrics.clone())
                .expect("metrics endpoint failed to bind")
        });
        let snapshot_writer = opts.snapshot_path.clone().map(|path| {
            pastix_trace::expose::SnapshotWriter::start(path, opts.snapshot_every, metrics.clone())
                .expect("metrics snapshot writer failed to start")
        });
        Self {
            opts,
            entries: Vec::new(),
            bytes: 0,
            metrics,
            metrics_server,
            snapshot_writer,
        }
    }

    /// The session's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The bound address of the scrape endpoint (when
    /// [`SessionOptions::metrics_addr`] was set) — resolves port 0.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.metrics_server.as_ref().map(|s| s.local_addr())
    }

    /// The periodic snapshot file (when [`SessionOptions::snapshot_path`]
    /// was set).
    pub fn snapshot_path(&self) -> Option<&std::path::Path> {
        self.snapshot_writer.as_ref().map(|w| w.path())
    }

    /// The session's options.
    pub fn options(&self) -> &SessionOptions {
        &self.opts
    }

    /// Resident entries, cold-to-hot order.
    pub fn resident(&self) -> Vec<MatrixFingerprint> {
        self.entries.iter().map(|(fp, _)| *fp).collect()
    }

    /// Number of resident factorizations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Summed resident factor bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.bytes
    }

    fn publish_gauges(&self) {
        self.metrics.set_gauge("serve.cache.entries", self.entries.len() as f64);
        self.metrics.set_gauge("serve.cache.bytes", self.bytes as f64);
    }

    /// Returns the cached factorization of `a`, running the full
    /// pipeline (ordering → symbol → schedule → numeric factorization →
    /// solve schedule) on a miss.
    pub fn get_or_factorize(&mut self, a: &SymCsc<T>) -> Result<Arc<CachedFactor<T>>, FactorError> {
        Ok(self.get_or_factorize_info(a)?.0)
    }

    /// [`get_or_factorize`](Self::get_or_factorize) plus the lookup
    /// outcome the request tracer needs: whether it was a cache hit.
    pub fn get_or_factorize_info(
        &mut self,
        a: &SymCsc<T>,
    ) -> Result<(Arc<CachedFactor<T>>, bool), FactorError> {
        let fp = MatrixFingerprint::of(a);
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == fp) {
            // Refresh to the hot end.
            let e = self.entries.remove(i);
            let hit = e.1.clone();
            self.entries.push(e);
            self.metrics.add_counter("serve.cache.hits", 1);
            return Ok((hit, true));
        }
        self.metrics.add_counter("serve.cache.misses", 1);

        let cfg = self.opts.solver.clone().with_analyze(AnalyzeOptions {
            procs: self.opts.procs,
            machine: None,
            parallelism: self.opts.parallelism,
            ordering: self.opts.ordering.clone(),
            analysis: self.opts.analysis.clone(),
            sched: self.opts.sched.clone(),
            static_schedule: true,
        });
        let plan = Plan::analyze(a, &cfg);
        if let Some(stats) = plan.analyze_stats() {
            // Time-to-first-solve visibility: analyze wall time spent on
            // this miss, in nanoseconds.
            self.metrics.add_counter("serve.analyze_ns", stats.analyze_ns);
        }
        let t0 = std::time::Instant::now();
        let run = plan.factorize(a, &cfg)?;
        self.metrics.observe("serve.factorize_ns", t0.elapsed().as_nanos() as u64);
        let ssched = solve_schedule(
            plan.graph(),
            plan.schedule().expect("session plans always carry a static schedule"),
        );
        let bytes = run.storage.factor_bytes();
        let entry = Arc::new(CachedFactor {
            fingerprint: fp,
            plan,
            run,
            ssched,
            bytes,
        });

        if self.opts.byte_budget.is_some_and(|budget| bytes > budget) {
            // Larger than the whole budget: serve it, never cache it.
            self.metrics.add_counter("serve.cache.uncacheable", 1);
            return Ok((entry, false));
        }
        self.entries.push((fp, entry.clone()));
        self.bytes += bytes;
        while self.entries.len() > self.opts.capacity
            || self.opts.byte_budget.is_some_and(|budget| self.bytes > budget)
        {
            let (cold_fp, cold) = self.entries.remove(0);
            self.bytes -= cold.bytes;
            self.metrics.add_counter("serve.cache.evictions", 1);
            pastix_trace::flight::record(
                pastix_trace::flight::FlightKind::CacheEvict,
                cold_fp.structure,
                cold.bytes,
            );
        }
        self.publish_gauges();
        Ok((entry, false))
    }

    /// Solves an `n × nrhs` right-hand-side panel (column-major, original
    /// ordering) against `a` with the distributed panel sweeps, returning
    /// the solution panel and the solve's [`TraceLog`] (empty when
    /// tracing is off). Factorizes on a cache miss.
    pub fn solve_panel(
        &mut self,
        a: &SymCsc<T>,
        b_panel: &[T],
        nrhs: usize,
    ) -> Result<(Vec<T>, TraceLog), FactorError> {
        let out = self.solve_panel_tagged(a, b_panel, nrhs, None)?;
        Ok((out.x, out.trace))
    }

    /// [`solve_panel`](Self::solve_panel) for the request tracer: `tag`
    /// threads a request id into the solve trace's per-rank async spans
    /// (see [`pastix_solver::SolveRequest::tagged`]) and the outcome says
    /// whether the factor came from cache.
    pub fn solve_panel_tagged(
        &mut self,
        a: &SymCsc<T>,
        b_panel: &[T],
        nrhs: usize,
        tag: Option<u64>,
    ) -> Result<PanelSolve<T>, FactorError> {
        let n = a.n();
        assert_eq!(b_panel.len(), n * nrhs, "b_panel must be n × nrhs");
        let (cached, cache_hit) = self.get_or_factorize_info(a)?;
        let mut req = SolveRequest::panel(b_panel, nrhs);
        req.trace = self.opts.solver.trace.enabled;
        req.tag = tag;
        let out = cached.run.solve_request(req);
        self.metrics.add_counter("serve.solves", 1);
        self.metrics.observe("serve.panel_width", nrhs as u64);
        Ok(PanelSolve { x: out.x, trace: out.trace, cache_hit })
    }

    /// Single right-hand-side convenience over [`solve_panel`](Self::solve_panel).
    pub fn solve(&mut self, a: &SymCsc<T>, b: &[T]) -> Result<Vec<T>, FactorError> {
        Ok(self.solve_panel(a, b, 1)?.0)
    }
}

/// Result of [`SolverSession::solve_panel_tagged`]: the solution panel,
/// the solve's trace, and whether the factor was served from cache.
#[derive(Debug)]
pub struct PanelSolve<T> {
    /// Solution, `n × nrhs` column-major, original row order.
    pub x: Vec<T>,
    /// The solve's trace (empty when tracing is off).
    pub trace: TraceLog,
    /// `true` when the factor came from the session cache.
    pub cache_hit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastix_graph::gen::{grid_spd, Stencil, ValueKind};
    use pastix_graph::{canonical_solution, rhs_for_solution};

    fn mat(seed: u64) -> SymCsc<f64> {
        grid_spd::<f64>(7, 7, 1, Stencil::Star, false, ValueKind::RandomSpd(seed))
    }

    fn small_opts() -> SessionOptions {
        SessionOptions {
            procs: 2,
            capacity: 2,
            sched: SchedOptions { block_size: 8, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn hit_then_miss_counters() {
        let mut s = SolverSession::<f64>::new(small_opts());
        let a = mat(1);
        let b = rhs_for_solution(&a, &canonical_solution::<f64>(a.n()));
        let x1 = s.solve(&a, &b).unwrap();
        assert!(a.residual_norm(&x1, &b) < 1e-10);
        assert_eq!(s.metrics().counter("serve.cache.misses"), 1);
        assert_eq!(s.metrics().counter("serve.cache.hits"), 0);
        let x2 = s.solve(&a, &b).unwrap();
        assert_eq!(x1, x2);
        assert_eq!(s.metrics().counter("serve.cache.hits"), 1);
        assert_eq!(s.len(), 1);
        assert!(s.resident_bytes() > 0);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut s = SolverSession::<f64>::new(small_opts());
        let (a, b, c) = (mat(1), mat(2), mat(3));
        s.get_or_factorize(&a).unwrap();
        s.get_or_factorize(&b).unwrap();
        // Touch `a` so `b` is coldest, then insert `c`.
        s.get_or_factorize(&a).unwrap();
        s.get_or_factorize(&c).unwrap();
        let resident = s.resident();
        assert_eq!(resident.len(), 2);
        assert!(resident.contains(&MatrixFingerprint::of(&a)));
        assert!(resident.contains(&MatrixFingerprint::of(&c)));
        assert!(!resident.contains(&MatrixFingerprint::of(&b)));
        assert_eq!(s.metrics().counter("serve.cache.evictions"), 1);
        // The evicted matrix refactorizes on demand and still solves.
        let rhs = rhs_for_solution(&b, &canonical_solution::<f64>(b.n()));
        let x = s.solve(&b, &rhs).unwrap();
        assert!(b.residual_norm(&x, &rhs) < 1e-10);
        assert_eq!(s.metrics().counter("serve.cache.misses"), 4);
    }

    #[test]
    fn resident_bytes_track_compressed_storage() {
        use pastix_solver::{CompressionConfig, CompressionStrategy};
        // A grid whose separator blocks compress at the loose tolerance.
        let a = grid_spd::<f64>(20, 20, 1, Stencil::Star, false, ValueKind::RandomSpd(3));
        let mut opts = small_opts();
        opts.solver = opts.solver.with_compression(
            CompressionConfig::with_tolerance(1e-2)
                .min_block(4)
                .strategy(CompressionStrategy::MinimalMemory),
        );
        let mut s = SolverSession::<f64>::new(opts);
        let cached = s.get_or_factorize(&a).unwrap();
        assert!(cached.run.storage.is_compressed(), "factor should compress");
        // The budgeted bytes are the storage's own accounting — packed
        // panels plus U/V — not the dense panel estimate.
        assert_eq!(cached.bytes, cached.run.storage.factor_bytes());
        assert_eq!(s.resident_bytes(), cached.bytes);
        assert!(
            cached.bytes < cached.run.storage.dense_factor_bytes(),
            "compressed factor must charge less than the dense layout"
        );
    }

    #[test]
    fn panel_solve_matches_singles() {
        let mut s = SolverSession::<f64>::new(small_opts());
        let a = mat(5);
        let n = a.n();
        let nrhs = 3;
        let mut panel = vec![0.0; n * nrhs];
        let mut singles = Vec::new();
        for r in 0..nrhs {
            let xe: Vec<f64> = (0..n).map(|i| ((i + r) % 7) as f64 - 3.0).collect();
            let b = rhs_for_solution(&a, &xe);
            panel[r * n..(r + 1) * n].copy_from_slice(&b);
            singles.push(b);
        }
        let (x, _) = s.solve_panel(&a, &panel, nrhs).unwrap();
        for (r, b) in singles.iter().enumerate() {
            assert!(a.residual_norm(&x[r * n..(r + 1) * n], b) < 1e-10);
        }
        assert_eq!(s.metrics().counter("serve.cache.misses"), 1);
        assert_eq!(s.metrics().counter("serve.solves"), 1);
    }
}
