//! Matrix fingerprinting: the cache key of the serving session.
//!
//! A factor is reusable exactly when the matrix is the same — same
//! sparsity structure (which fixes ordering, symbol and schedule) and
//! same numeric values (which fix the factor). The fingerprint captures
//! both as independent FNV-1a digests over the matrix's *canonical* CSC
//! form: [`pastix_graph::SymCsc::from_triplets`] sorts rows within each
//! column, folds duplicates and mirrors the upper triangle, so two
//! assemblies of the same matrix — triplets permuted, entries given as
//! `(i,j)` or `(j,i)`, duplicates split differently — canonicalize to
//! identical arrays and therefore identical fingerprints.
//!
//! The numeric digest hashes the `Display` form of every stored value.
//! For `f64` the standard formatter prints the shortest representation
//! that round-trips, so distinct values always print differently — the
//! digest is injective on the value array without the trait needing bit
//! access.

use pastix_graph::SymCsc;
use pastix_kernels::Scalar;
use std::fmt::Write as _;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The two-part cache key: structure digest and numeric checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixFingerprint {
    /// FNV-1a over `(n, colptr, rowind)` of the canonical lower CSC —
    /// identical iff the sparsity patterns are identical.
    pub structure: u64,
    /// FNV-1a over the `Display` forms of the stored values, in canonical
    /// order — identical iff the numeric content is identical.
    pub numeric: u64,
}

impl MatrixFingerprint {
    /// Fingerprints a matrix in canonical [`SymCsc`] form.
    pub fn of<T: Scalar>(a: &SymCsc<T>) -> Self {
        let mut s = fnv(FNV_OFFSET, &(a.n() as u64).to_le_bytes());
        for &p in a.colptr() {
            s = fnv(s, &(p as u64).to_le_bytes());
        }
        for &r in a.rowind() {
            s = fnv(s, &r.to_le_bytes());
        }
        let mut buf = String::new();
        let mut v = FNV_OFFSET;
        for val in a.values() {
            buf.clear();
            let _ = write!(buf, "{val};");
            v = fnv(v, buf.as_bytes());
        }
        Self { structure: s, numeric: v }
    }

    /// Compact hex rendering (`structure:numeric`), the form metrics and
    /// logs print.
    pub fn render(&self) -> String {
        format!("{:016x}:{:016x}", self.structure, self.numeric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> Vec<(u32, u32, f64)> {
        vec![
            (0, 0, 4.0),
            (1, 1, 5.0),
            (2, 2, 6.0),
            (1, 0, -1.0),
            (2, 1, -2.0),
        ]
    }

    #[test]
    fn permuted_triplets_fingerprint_identically() {
        let a = SymCsc::from_triplets(3, &tri());
        // Same matrix, different assembly: reversed entry order, one
        // entry given in the upper triangle, one split into two summands.
        let alt = vec![
            (2, 1, -0.5),
            (1, 2, -1.5),
            (2, 2, 6.0),
            (0, 1, -1.0),
            (1, 1, 5.0),
            (0, 0, 4.0),
        ];
        let b = SymCsc::from_triplets(3, &alt);
        assert_eq!(MatrixFingerprint::of(&a), MatrixFingerprint::of(&b));
    }

    #[test]
    fn value_change_flips_numeric_only() {
        let a = SymCsc::from_triplets(3, &tri());
        let mut t = tri();
        t[0].2 = 4.5;
        let b = SymCsc::from_triplets(3, &t);
        let (fa, fb) = (MatrixFingerprint::of(&a), MatrixFingerprint::of(&b));
        assert_eq!(fa.structure, fb.structure);
        assert_ne!(fa.numeric, fb.numeric);
    }

    #[test]
    fn structure_change_flips_structure() {
        let a = SymCsc::from_triplets(3, &tri());
        let mut t = tri();
        t.push((2, 0, 0.25));
        let b = SymCsc::from_triplets(3, &t);
        assert_ne!(
            MatrixFingerprint::of(&a).structure,
            MatrixFingerprint::of(&b).structure
        );
    }

    #[test]
    fn nearby_floats_are_distinguished() {
        let mut t = tri();
        t[0].2 = 1.0;
        let a = SymCsc::from_triplets(3, &t);
        t[0].2 = 1.0 + f64::EPSILON;
        let b = SymCsc::from_triplets(3, &t);
        assert_ne!(MatrixFingerprint::of(&a).numeric, MatrixFingerprint::of(&b).numeric);
        assert!(!MatrixFingerprint::of(&a).render().is_empty());
    }
}
