//! Per-request distributed tracing: the builder that assembles one
//! serving-session [`TraceLog`] out of request lifecycles and per-batch
//! solve traces.
//!
//! Every request admitted to the [`crate::RequestQueue`] becomes a
//! parent async span (`request`, id = its ticket) on a reserved **serve
//! track** ([`pastix_trace::SERVE_RANK`]), with child stage spans
//! (`queue_wait`, `coalesce`, `analyze`/`factorize` on a cache miss,
//! `solve`) nested under the same async id, and a flow arrow from the
//! dispatch point into each solver rank that executed the batch's solve
//! DAG. The per-rank solve traces are merged in with a running per-rank
//! time offset so successive batches occupy disjoint windows of each
//! rank's track.
//!
//! Timestamps on the serve track are the *caller-supplied* virtual
//! clocks of the queue (arrival / dispatch / finish); solver-rank
//! timestamps keep whatever clock the backend recorded. On the sim
//! backend with logical clocks both are pure functions of
//! `(seed, policy)` — so the exported Chrome trace is byte-identical
//! across runs, which `bench_serve` gates.

use pastix_trace::{CommCounters, Event, EventKind, RankTrace, ServeStage, TraceLog, SERVE_RANK};
use std::collections::HashMap;

/// Accumulates one serving session's request spans and solve traces into
/// a single exportable [`TraceLog`].
#[derive(Debug, Default)]
pub struct RequestTrace {
    serve_events: Vec<Event>,
    ranks: Vec<RankTrace>,
    offsets: HashMap<u32, u64>,
    digest: u64,
    next_flow_id: u64,
}

impl RequestTrace {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, at: u64, kind: EventKind) {
        self.serve_events.push(Event { at, kind });
    }

    /// Opens the parent `request` span and its `queue_wait` child at
    /// admission time.
    pub fn begin_request(&mut self, id: u64, arrival_ns: u64) {
        self.push(arrival_ns, EventKind::AsyncBegin { id, stage: ServeStage::Request as u8 });
        self.push(arrival_ns, EventKind::AsyncBegin { id, stage: ServeStage::QueueWait as u8 });
    }

    /// Records one served batch: closes each request's `queue_wait` at
    /// dispatch, marks the `coalesce` (and, on a cache miss, `analyze` +
    /// `factorize`) stages, brackets the `solve` stage between dispatch
    /// and finish, merges the batch's solve trace onto the per-rank
    /// tracks, draws one flow arrow per participating solver rank, and
    /// closes the parent spans at finish.
    pub fn record_batch(
        &mut self,
        ids: &[u64],
        dispatch_ns: u64,
        finish_ns: u64,
        cache_hit: bool,
        solve_trace: &TraceLog,
    ) {
        for &id in ids {
            self.push(dispatch_ns, EventKind::AsyncEnd { id, stage: ServeStage::QueueWait as u8 });
            self.push(dispatch_ns, EventKind::AsyncBegin { id, stage: ServeStage::Coalesce as u8 });
            self.push(dispatch_ns, EventKind::AsyncEnd { id, stage: ServeStage::Coalesce as u8 });
            if !cache_hit {
                // Analyze + factorize ran once for the whole batch on the
                // miss; each rider request shows the amortized markers.
                for stage in [ServeStage::Analyze, ServeStage::Factorize] {
                    self.push(dispatch_ns, EventKind::AsyncBegin { id, stage: stage as u8 });
                    self.push(dispatch_ns, EventKind::AsyncEnd { id, stage: stage as u8 });
                }
            }
            self.push(dispatch_ns, EventKind::AsyncBegin { id, stage: ServeStage::Solve as u8 });
        }
        self.merge_solve(dispatch_ns, solve_trace);
        for &id in ids {
            self.push(finish_ns, EventKind::AsyncEnd { id, stage: ServeStage::Solve as u8 });
            self.push(finish_ns, EventKind::AsyncEnd { id, stage: ServeStage::Request as u8 });
        }
    }

    /// Appends a batch's solve trace: each rank's events are shifted by
    /// that rank's running offset (so batches never overlap on a track),
    /// and a fresh flow arrow runs from the serve track's dispatch point
    /// to the first event of each rank's new segment.
    fn merge_solve(&mut self, dispatch_ns: u64, trace: &TraceLog) {
        if self.digest == 0 {
            self.digest = trace.digest;
        }
        for rt in &trace.ranks {
            if rt.events.is_empty() {
                continue;
            }
            let flow = self.next_flow_id;
            self.next_flow_id += 1;
            self.push(dispatch_ns, EventKind::FlowStart { id: flow });

            let offset = self.offsets.get(&rt.rank).copied().unwrap_or(0);
            let target = match self.ranks.iter_mut().find(|r| r.rank == rt.rank) {
                Some(t) => t,
                None => {
                    self.ranks.push(RankTrace {
                        rank: rt.rank,
                        events: Vec::new(),
                        dropped_events: 0,
                        comm: CommCounters::default(),
                    });
                    self.ranks.last_mut().unwrap()
                }
            };
            let first_at = rt.events[0].at + offset;
            target.events.push(Event { at: first_at, kind: EventKind::FlowEnd { id: flow } });
            let mut last = first_at;
            for ev in &rt.events {
                let at = ev.at + offset;
                last = last.max(at);
                target.events.push(Event { at, kind: ev.kind });
            }
            self.offsets.insert(rt.rank, last + 1);
            target.dropped_events += rt.dropped_events;
            target.comm.merge(&rt.comm);
        }
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.serve_events.is_empty() && self.ranks.is_empty()
    }

    /// Assembles the final log: the serve track first, then the merged
    /// solver-rank tracks in ascending rank order.
    pub fn finish(mut self) -> TraceLog {
        let mut ranks = Vec::with_capacity(self.ranks.len() + 1);
        ranks.push(RankTrace {
            rank: SERVE_RANK,
            events: std::mem::take(&mut self.serve_events),
            dropped_events: 0,
            comm: CommCounters::default(),
        });
        self.ranks.sort_by_key(|r| r.rank);
        ranks.extend(self.ranks);
        TraceLog { ranks, wall_ns: 0, digest: self.digest }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastix_trace::export::{chrome_trace, validate_chrome_trace};
    use pastix_trace::TaskClass;

    fn solve_trace(rank_events: &[(u32, &[u64])]) -> TraceLog {
        let ranks = rank_events
            .iter()
            .map(|&(rank, ats)| RankTrace {
                rank,
                events: ats
                    .iter()
                    .flat_map(|&at| {
                        [
                            Event {
                                at,
                                kind: EventKind::TaskBegin { task: at as u32, class: TaskClass::Bdiv },
                            },
                            Event {
                                at: at + 1,
                                kind: EventKind::TaskEnd { task: at as u32, class: TaskClass::Bdiv },
                            },
                        ]
                    })
                    .collect(),
                dropped_events: 0,
                comm: CommCounters::default(),
            })
            .collect();
        TraceLog { ranks, wall_ns: 0, digest: 77 }
    }

    #[test]
    fn request_spans_nest_and_validate() {
        let mut rt = RequestTrace::new();
        rt.begin_request(0, 100);
        rt.begin_request(1, 180);
        // Batch of both requests, cache miss, two solver ranks.
        rt.record_batch(&[0, 1], 300, 900, false, &solve_trace(&[(0, &[0, 4]), (1, &[2])]));
        // Second single-request batch on a hit: rank offsets advance.
        rt.begin_request(2, 950);
        rt.record_batch(&[2], 1000, 1500, true, &solve_trace(&[(0, &[0])]));
        let log = rt.finish();
        assert_eq!(log.ranks[0].rank, SERVE_RANK);
        assert_eq!(log.digest, 77);
        // Rank 0 carries both batches in disjoint windows: the second
        // batch's events sit above the first's (offset = last + 1).
        let r0 = log.ranks.iter().find(|r| r.rank == 0).unwrap();
        let mut prev_end = 0;
        let mut flow_ends = 0;
        for ev in &r0.events {
            if matches!(ev.kind, EventKind::FlowEnd { .. }) {
                flow_ends += 1;
                if flow_ends == 2 {
                    assert!(ev.at > prev_end, "second batch must not overlap the first");
                }
            }
            prev_end = prev_end.max(ev.at);
        }
        assert_eq!(flow_ends, 2);

        let j = chrome_trace(&log);
        validate_chrome_trace(&j).unwrap();
        let evs = j.get("traceEvents").unwrap().as_arr().unwrap();
        // 3 request parents + 3 queue_waits + 3 coalesces + 2 analyze +
        // 2 factorize + 3 solves = 16 async begins, all matched.
        let n_b = evs.iter().filter(|e| e.get("ph").unwrap().as_str().ok() == Some("b")).count();
        assert_eq!(n_b, 16);
        // 3 flow arrows (two ranks in batch 1, one in batch 2).
        let n_s = evs.iter().filter(|e| e.get("ph").unwrap().as_str().ok() == Some("s")).count();
        assert_eq!(n_s, 3);
        // Byte-identical re-export.
        assert_eq!(j.compact(), chrome_trace(&log).compact());
    }

    #[test]
    fn empty_builder_finishes_clean() {
        let log = RequestTrace::new().finish();
        assert_eq!(log.ranks.len(), 1);
        assert!(log.ranks[0].events.is_empty());
        validate_chrome_trace(&chrome_trace(&log)).unwrap();
    }
}
