//! # pastix-serve
//!
//! Factorization-as-a-service on top of the PaStiX reproduction: the
//! session layer that turns the solver into a servable system.
//!
//! The production shape of a sparse direct solver is factorize-once,
//! solve-millions-of-times — at scale the triangular solve, not the
//! factorization, is the hot path. This crate provides:
//!
//! * [`MatrixFingerprint`] — a structure digest plus numeric checksum
//!   over the canonical CSC form, stable under permuted-but-identical
//!   assembly: the cache key;
//! * [`SolverSession`] — an LRU cache of [`CachedFactor`]s (the analyzed
//!   `pastix_solver::Plan` — permutation, symbol, static schedule — plus
//!   factor and solve schedule) with capacity and byte-budget eviction
//!   and hit/miss counters in the session's `MetricsRegistry`;
//! * [`RequestQueue`] — coalesces incoming right-hand sides into blocked
//!   multi-RHS panels served through `FactorRun::solve_request`, whose
//!   per-blok trailing updates are GEMM-shaped instead of one GEMV per
//!   RHS;
//! * the level-set solve schedule (`pastix_sched::solve_schedule`) rides
//!   in every cache entry, so serving traces reconcile predicted-vs-
//!   measured through `pastix_trace::report::build_solve_report` exactly
//!   like the factorization;
//! * [`RequestTrace`] — per-request distributed tracing: every admitted
//!   request becomes a parent async span on a reserved serve track with
//!   child stage spans (queue wait, coalesce, analyze, factorize, solve)
//!   and flow arrows into the solver ranks that executed its batch, all
//!   exportable through `pastix_trace::export::chrome_trace`;
//! * observability wiring — the session installs the
//!   `pastix_trace::flight` panic hook (always-on flight recorder with
//!   black-box dumps), can expose its metrics over a plain-text
//!   Prometheus scrape endpoint (`pastix_trace::expose::MetricsServer`),
//!   and can write periodic metric snapshots to disk.

#![warn(missing_docs)]

pub mod fingerprint;
pub mod queue;
pub mod rtrace;
pub mod session;

pub use fingerprint::MatrixFingerprint;
pub use queue::{pack_panel, unpack_completions, Completed, Request, RequestQueue};
pub use rtrace::RequestTrace;
pub use session::{CachedFactor, PanelSolve, SessionOptions, SolverSession};
