//! Property tests for the serving cache: LRU order, the byte-budget
//! invariant, fingerprint canonicalization, and the re-factorize-on-miss
//! round trip.
//!
//! The session is modeled against a reference LRU (a plain `Vec` with
//! most-recent at the tail); hits, misses, and evictions must match the
//! model on every access of a random request sequence. The byte budget
//! is a *hard* invariant: `resident_bytes() ≤ budget` after every
//! access, with larger-than-budget factors served but never cached.

use pastix_graph::gen::{grid_spd, Stencil, ValueKind};
use pastix_graph::{rhs_for_solution, SymCsc};
use pastix_sched::SchedOptions;
use pastix_serve::{MatrixFingerprint, SessionOptions, SolverSession};
use proptest::prelude::*;

/// Distinct small SPD problems: same structure, seed-dependent values —
/// distinct numeric fingerprints, near-identical factor sizes.
fn mat(seed: u64) -> SymCsc<f64> {
    grid_spd::<f64>(6, 6, 1, Stencil::Star, false, ValueKind::RandomSpd(seed))
}

fn opts(capacity: usize, byte_budget: Option<u64>) -> SessionOptions {
    SessionOptions {
        procs: 2,
        capacity,
        byte_budget,
        sched: SchedOptions {
            block_size: 8,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Solves a fresh RHS against `a` and checks the answer, so every cache
/// probe is also a correctness probe.
fn solve_and_check(session: &mut SolverSession<f64>, a: &SymCsc<f64>, tag: u64) {
    let n = a.n();
    let xe: Vec<f64> = (0..n).map(|i| 1.0 + ((i as u64 + tag) % 7) as f64).collect();
    let x = session.solve(a, &rhs_for_solution(a, &xe)).expect("solve");
    for (u, v) in x.iter().zip(&xe) {
        assert!((u - v).abs() < 1e-8, "wrong solution: {u} vs {v}");
    }
}

/// SplitMix64 for reproducible shuffles inside a case.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stored lower triangle as assembly triplets.
fn triplets(a: &SymCsc<f64>) -> Vec<(u32, u32, f64)> {
    let mut t = Vec::new();
    for j in 0..a.n() {
        for (&i, &v) in a.rows_of(j).iter().zip(a.vals_of(j)) {
            t.push((i, j as u32, v));
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Hits, misses, and evictions track a reference LRU exactly, for any
    /// request sequence and capacity — the cache refreshes on hit and
    /// evicts the coldest entry, never anything else.
    #[test]
    fn cache_follows_lru_model(
        cap in 1usize..4,
        seq in prop::collection::vec(0u64..4, 8..14),
    ) {
        let pool: Vec<SymCsc<f64>> = (0..4).map(|s| mat(100 + s)).collect();
        let mut session = SolverSession::<f64>::new(opts(cap, None));
        let mut model: Vec<u64> = Vec::new(); // most-recent at the tail
        let (mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64);
        for (step, &m) in seq.iter().enumerate() {
            if let Some(i) = model.iter().position(|&e| e == m) {
                model.remove(i);
                hits += 1;
            } else {
                misses += 1;
                if model.len() == cap {
                    model.remove(0);
                    evictions += 1;
                }
            }
            model.push(m);
            solve_and_check(&mut session, &pool[m as usize], step as u64);
            prop_assert!(session.len() <= cap, "capacity exceeded");
            prop_assert_eq!(session.len(), model.len());
            prop_assert_eq!(session.metrics().counter("serve.cache.hits"), hits);
            prop_assert_eq!(session.metrics().counter("serve.cache.misses"), misses);
            prop_assert_eq!(session.metrics().counter("serve.cache.evictions"), evictions);
        }
    }

    /// `resident_bytes() ≤ budget` after every access, for any budget —
    /// including budgets smaller than a single factor, which must be
    /// served uncached rather than break the invariant.
    #[test]
    fn byte_budget_is_never_exceeded(
        frac in 0.1f64..1.2,
        seq in prop::collection::vec(0u64..3, 6..12),
    ) {
        // Measure the pool's total factor footprint with an unbounded
        // session, then replay under a budget that is a fraction of it.
        let pool: Vec<SymCsc<f64>> = (0..3).map(|s| mat(200 + s)).collect();
        let mut probe = SolverSession::<f64>::new(opts(8, None));
        for a in &pool {
            probe.get_or_factorize(a).expect("probe factorization");
        }
        let total = probe.resident_bytes();
        prop_assert!(total > 0);
        let budget = ((total as f64) * frac / 3.0) as u64;

        let mut session = SolverSession::<f64>::new(opts(8, Some(budget)));
        for (step, &m) in seq.iter().enumerate() {
            solve_and_check(&mut session, &pool[m as usize], step as u64);
            prop_assert!(
                session.resident_bytes() <= budget,
                "resident {} exceeds budget {}",
                session.resident_bytes(),
                budget
            );
        }
        let m = session.metrics();
        let touched = m.counter("serve.cache.hits")
            + m.counter("serve.cache.misses");
        prop_assert_eq!(touched, seq.len() as u64);
        // Budgets below one factor force the uncacheable path; nothing
        // may be resident afterwards.
        if m.counter("serve.cache.uncacheable") > 0 {
            prop_assert!(session.resident_bytes() <= budget);
        }
    }

    /// The fingerprint is a function of the *matrix*, not the assembly:
    /// shuffled triplet order, upper-triangle mirroring, and split
    /// duplicate entries all canonicalize to the same key, while any
    /// numeric change misses.
    #[test]
    fn fingerprint_is_stable_under_assembly_permutation(
        seed in 0u64..64,
        mseed in 0u64..1024,
    ) {
        let a = mat(300 + seed);
        let n = a.n();
        let fp = MatrixFingerprint::of(&a);
        let mut trips = triplets(&a);
        let mut rng = mseed.wrapping_mul(0x9E37).wrapping_add(1);

        // Fisher–Yates shuffle of assembly order.
        for i in (1..trips.len()).rev() {
            let j = (splitmix(&mut rng) % (i as u64 + 1)) as usize;
            trips.swap(i, j);
        }
        // Mirror roughly half the off-diagonal entries to the upper
        // triangle; from_triplets folds them back.
        for t in trips.iter_mut() {
            if t.0 != t.1 && splitmix(&mut rng).is_multiple_of(2) {
                *t = (t.1, t.0, t.2);
            }
        }
        // Split one off-diagonal value into two duplicate summands.
        if let Some(pos) = trips.iter().position(|t| t.0 != t.1) {
            let (i, j, v) = trips[pos];
            trips[pos] = (i, j, v * 0.25);
            trips.push((j, i, v * 0.75));
        }
        let b = SymCsc::<f64>::from_triplets(n, &trips);
        prop_assert_eq!(MatrixFingerprint::of(&b), fp, "assembly permutation changed the key");

        // A genuine numeric change must change the numeric half only.
        let mut t2 = triplets(&a);
        t2[0].2 *= 1.0 + 1e-3;
        let c = SymCsc::<f64>::from_triplets(n, &t2);
        let fpc = MatrixFingerprint::of(&c);
        prop_assert_eq!(fpc.structure, fp.structure);
        prop_assert!(fpc.numeric != fp.numeric, "value perturbation must miss");
    }

    /// Eviction is not corruption: a capacity-1 session bouncing between
    /// two matrices re-factorizes on every access and still returns each
    /// matrix's own solution — the full round trip through miss → evict →
    /// miss again.
    #[test]
    fn evicted_matrices_refactorize_correctly(seed in 0u64..32) {
        let a = mat(400 + seed);
        let b = mat(500 + seed);
        let mut session = SolverSession::<f64>::new(opts(1, None));
        for round in 0..3u64 {
            solve_and_check(&mut session, &a, round);
            solve_and_check(&mut session, &b, round);
        }
        let m = session.metrics();
        prop_assert_eq!(m.counter("serve.cache.hits"), 0);
        prop_assert_eq!(m.counter("serve.cache.misses"), 6);
        prop_assert_eq!(m.counter("serve.cache.evictions"), 5);
        prop_assert_eq!(session.len(), 1);
    }
}
