//! # pastix-trace
//!
//! The observability layer of the reproduction: per-rank event rings, a
//! typed metrics registry, and the post-run report that joins a recorded
//! trace against the static schedule's predictions.
//!
//! The paper's whole bet is that a *static* schedule built from a cost
//! model matches what actually happens at run time. This crate makes that
//! claim observable:
//!
//! * [`begin_rank`] installs a **thread-local recorder** on the calling
//!   worker thread (both runtime backends give every logical processor its
//!   own OS thread, so thread-locality *is* rank-locality). Recording a
//!   span or a message event is a thread-local ring push — no locks, no
//!   atomics, no allocation after session start.
//! * [`task_span`] emits `TaskBegin`/`TaskEnd` pairs keyed by task id;
//!   [`SessionHook`] implements the runtime's `CommHook` so every
//!   send/recv/drop on an instrumented [`pastix_runtime::Comm`] lands in
//!   the ring with byte counts.
//! * [`ClockMode::Logical`] replaces wall timestamps with a per-rank event
//!   counter, making the whole trace a **pure function of the sim
//!   backend's `(seed, policy)`** — chaos failures come with a replayable,
//!   byte-comparable event log ([`TraceLog::canonical_bytes`]).
//! * [`MetricsRegistry`] is the typed counters/gauges/histograms store
//!   (per-rank shards merged at run end) that replaces the ad-hoc global
//!   atomics the solver used to keep.
//! * [`report::build_report`] joins the trace with the schedule:
//!   per-task predicted-vs-measured time, critical-path breakdown, and
//!   idle/comm/compute fractions per rank.
//!
//! Compiling the crate without the default `record` feature turns every
//! record call into an empty `#[inline]` function: the fast path is
//! compile-out-to-nothing.

#![warn(missing_docs)]

pub mod export;
pub mod expose;
pub mod flight;
pub mod metrics;
pub mod report;
pub mod watchdog;

pub use metrics::{MetricsRegistry, MetricsSnapshot};

use std::time::Instant;

/// Reserved rank id of the serving layer's own track in a merged
/// request trace: the request/stage async spans live here, next to the
/// per-rank solve tracks they fan into. Exported as the `serve` thread.
pub const SERVE_RANK: u32 = u32::MAX;

/// The request-scoped span vocabulary of the serving layer: the stages a
/// request passes through between queue admission and completion. Each is
/// recorded as an async span ([`EventKind::AsyncBegin`]/[`EventKind::AsyncEnd`])
/// keyed by the request id, so one request's spans nest into one async
/// track in the Chrome/Perfetto export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ServeStage {
    /// The whole request: admission to completion (the parent span).
    Request = 0,
    /// Admission to batch dispatch: time spent queued.
    QueueWait = 1,
    /// Panel packing: the request is coalesced into a multi-RHS batch.
    Coalesce = 2,
    /// Analyze pipeline ran for this request's matrix (cache miss).
    Analyze = 3,
    /// Numeric factorization ran for this request's matrix (cache miss);
    /// its cost is amortized over every request that hits the entry.
    Factorize = 4,
    /// The triangular panel solve that produced this request's solution.
    Solve = 5,
}

impl ServeStage {
    /// Stable span name (export JSON, histogram keys).
    pub fn name(self) -> &'static str {
        match self {
            ServeStage::Request => "request",
            ServeStage::QueueWait => "queue_wait",
            ServeStage::Coalesce => "coalesce",
            ServeStage::Analyze => "analyze",
            ServeStage::Factorize => "factorize",
            ServeStage::Solve => "solve",
        }
    }

    /// Recovers the span name from a recorded raw stage id.
    pub fn name_of(stage: u8) -> &'static str {
        match stage {
            0 => ServeStage::Request.name(),
            1 => ServeStage::QueueWait.name(),
            2 => ServeStage::Coalesce.name(),
            3 => ServeStage::Analyze.name(),
            4 => ServeStage::Factorize.name(),
            5 => ServeStage::Solve.name(),
            _ => "stage_unknown",
        }
    }
}

/// What a task span was executing; mirrors the schedule's task kinds plus
/// the solver phases that have no task-graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TaskClass {
    /// A 1D `COMP1D` supernode task.
    Comp1d = 0,
    /// A 2D diagonal-block factorization task.
    Factor = 1,
    /// A 2D off-diagonal panel solve task.
    Bdiv = 2,
    /// A 2D contribution product task.
    Bmod = 3,
    /// Forward-sweep solve of one column block.
    FwdSolve = 4,
    /// Backward-sweep solve of one column block.
    BwdSolve = 5,
    /// Initial scatter of the matrix into the owned regions.
    Scatter = 6,
    /// A sequential-solver step (task id = column block).
    Seq = 7,
    /// The analyze phase's fill-reducing ordering (nested dissection +
    /// leaf min degree); task id 0, one span per analyze.
    Ordering = 8,
    /// The analyze phase's block symbolic factorization.
    Symbolic = 9,
    /// The analyze phase's repartitioning + static scheduling.
    Sched = 10,
}

impl TaskClass {
    /// Stable short name (report tables, JSON).
    pub fn name(self) -> &'static str {
        match self {
            TaskClass::Comp1d => "comp1d",
            TaskClass::Factor => "factor",
            TaskClass::Bdiv => "bdiv",
            TaskClass::Bmod => "bmod",
            TaskClass::FwdSolve => "fwd",
            TaskClass::BwdSolve => "bwd",
            TaskClass::Scatter => "scatter",
            TaskClass::Seq => "seq",
            TaskClass::Ordering => "ordering",
            TaskClass::Symbolic => "symbolic",
            TaskClass::Sched => "sched",
        }
    }

    /// Whether this class is an analyze-phase span (no task-graph node).
    pub fn is_analyze(self) -> bool {
        matches!(self, TaskClass::Ordering | TaskClass::Symbolic | TaskClass::Sched)
    }
}

/// One recorded event. `at` is nanoseconds since the session epoch under
/// [`ClockMode::Wall`], or a per-rank monotone event counter under
/// [`ClockMode::Logical`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Timestamp (see [`ClockMode`]).
    pub at: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The event vocabulary of the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A task started executing on this rank.
    TaskBegin {
        /// Task id (task-graph id, or column block for solve/seq spans).
        task: u32,
        /// Task class.
        class: TaskClass,
    },
    /// The matching end of a [`EventKind::TaskBegin`].
    TaskEnd {
        /// Task id.
        task: u32,
        /// Task class.
        class: TaskClass,
    },
    /// A message was accepted by the transport.
    Send {
        /// Destination rank.
        peer: u32,
        /// Payload size in bytes.
        bytes: u64,
        /// Message kind tag (solver-defined).
        kind: u8,
    },
    /// A lossy send was dropped by fault injection (the retry, if any,
    /// records its own `Send`).
    SendDropped {
        /// Destination rank.
        peer: u32,
        /// Payload size in bytes.
        bytes: u64,
        /// Message kind tag.
        kind: u8,
    },
    /// A message was received.
    Recv {
        /// Sender rank.
        peer: u32,
        /// Payload size in bytes.
        bytes: u64,
        /// Message kind tag.
        kind: u8,
        /// Time spent blocked in `recv()` (0 under the logical clock).
        wait_ns: u64,
    },
    /// A phase fence (collective boundary, session begin/end).
    Fence {
        /// Caller-chosen phase id; session begin emits 0 and session end
        /// `u64::MAX`.
        phase: u64,
    },
    /// A sampled resource gauge reading (time-series counter track).
    Gauge {
        /// Which gauge (see [`GaugeId`]).
        id: u8,
        /// The sampled value.
        value: u64,
    },
    /// A progress heartbeat: `seq` is the run-global count of completed
    /// tasks at the moment this rank finished one. Gaps in one rank's
    /// heartbeat sequence measure how much the *rest* of the machine
    /// advanced while that rank was stuck — the watchdog's signal.
    Heartbeat {
        /// Global completed-task count after this rank's completion.
        seq: u64,
    },
    /// Begin of a request-scoped async span (`ph:"b"` in the export):
    /// spans with the same `id` form one async track, so the `Request`
    /// parent and its stage children nest under the request's identity.
    AsyncBegin {
        /// Request id (the [`ServeStage::Request`] span and every stage
        /// child of the same request share it).
        id: u64,
        /// Which stage (a [`ServeStage`] as its raw `u8`).
        stage: u8,
    },
    /// The matching end of an [`EventKind::AsyncBegin`].
    AsyncEnd {
        /// Request id.
        id: u64,
        /// Which stage.
        stage: u8,
    },
    /// Start of a recorded flow arrow (`ph:"s"`): the serving layer emits
    /// one per (batch, solve rank) when it hands a coalesced panel to the
    /// solver, pointing into that rank's solve activity.
    FlowStart {
        /// Arrow id; exactly one [`EventKind::FlowEnd`] with the same id
        /// exists in a well-formed log.
        id: u64,
    },
    /// End of a recorded flow arrow (`ph:"f"`), recorded on the track the
    /// arrow lands on.
    FlowEnd {
        /// Arrow id.
        id: u64,
    },
}

impl EventKind {
    fn tag(&self) -> u8 {
        match self {
            EventKind::TaskBegin { .. } => 0,
            EventKind::TaskEnd { .. } => 1,
            EventKind::Send { .. } => 2,
            EventKind::SendDropped { .. } => 3,
            EventKind::Recv { .. } => 4,
            EventKind::Fence { .. } => 5,
            EventKind::Gauge { .. } => 6,
            EventKind::Heartbeat { .. } => 7,
            EventKind::AsyncBegin { .. } => 8,
            EventKind::AsyncEnd { .. } => 9,
            EventKind::FlowStart { .. } => 10,
            EventKind::FlowEnd { .. } => 11,
        }
    }
}

/// The resource-gauge vocabulary: stable ids (and track names) for the
/// sampled time-series the solver records alongside task spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum GaugeId {
    /// Buffers parked in the rank's AUB recycling pool.
    AubPoolBuffers = 0,
    /// Bytes held in partially aggregated outgoing AUBs (Fan-Both).
    AubOutBytes = 1,
    /// Messages this rank has sent that have not been received yet
    /// (from the sender's perspective: sends minus recvs observed).
    InflightMsgs = 2,
    /// Bytes resident in the rank's owned block regions.
    LiveRegionBytes = 3,
    /// Peak of [`GaugeId::LiveRegionBytes`] over the run so far.
    PeakLiveBytes = 4,
    /// Messages queued in this rank's mailbox (sent to it, not yet
    /// received), from the run-wide gauge aggregator.
    MailboxDepth = 5,
    /// Ready-task queue depth of the worker, sampled by the dynamic
    /// work-stealing backend after each pop.
    ReadyQueueDepth = 6,
}

impl GaugeId {
    /// Stable track name (export JSON, report tables).
    pub fn name(self) -> &'static str {
        match self {
            GaugeId::AubPoolBuffers => "aub_pool_buffers",
            GaugeId::AubOutBytes => "aub_out_bytes",
            GaugeId::InflightMsgs => "inflight_msgs",
            GaugeId::LiveRegionBytes => "live_region_bytes",
            GaugeId::PeakLiveBytes => "peak_live_bytes",
            GaugeId::MailboxDepth => "mailbox_depth",
            GaugeId::ReadyQueueDepth => "ready_queue_depth",
        }
    }

    /// Recovers the track name from a recorded raw id.
    pub fn name_of(id: u8) -> &'static str {
        match id {
            0 => GaugeId::AubPoolBuffers.name(),
            1 => GaugeId::AubOutBytes.name(),
            2 => GaugeId::InflightMsgs.name(),
            3 => GaugeId::LiveRegionBytes.name(),
            4 => GaugeId::PeakLiveBytes.name(),
            5 => GaugeId::MailboxDepth.name(),
            6 => GaugeId::ReadyQueueDepth.name(),
            _ => "gauge_unknown",
        }
    }
}

/// Timestamp source of a trace session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Monotonic wall clock (nanoseconds since the session epoch): what
    /// the predicted-vs-measured report needs.
    #[default]
    Wall,
    /// A per-rank event counter; recv wait times are recorded as 0. On the
    /// sim backend this makes the whole trace a pure function of
    /// `(seed, policy)` — byte-identical across repeats.
    Logical,
}

/// Tracing knobs, carried by the solver's `SolverConfig`.
#[derive(Debug, Clone, Copy)]
pub struct TraceOptions {
    /// Master switch; `false` (default) records nothing and adds only a
    /// thread-local `None` check per record site.
    pub enabled: bool,
    /// Timestamp source.
    pub clock: ClockMode,
    /// Per-rank ring capacity in events; when full the oldest events are
    /// overwritten and counted in [`RankTrace::dropped_events`].
    pub capacity: usize,
    /// Shared epoch for [`ClockMode::Wall`] timestamps, so ranks agree on
    /// time zero. The solver sets this right before launching the SPMD
    /// run; `None` makes each rank use its session start.
    pub epoch: Option<Instant>,
    /// Resource-gauge sampling cadence: the solver samples its gauges
    /// after every `sample_every`-th completed task per rank (0 disables
    /// sampling). The default of 8 keeps the sampler's cost a fraction of
    /// a task's work, preserving the < 2% overhead gate.
    pub sample_every: u32,
}

impl Default for TraceOptions {
    fn default() -> Self {
        Self {
            enabled: false,
            clock: ClockMode::Wall,
            capacity: 1 << 16,
            epoch: None,
            sample_every: 8,
        }
    }
}

impl TraceOptions {
    /// Tracing off (the default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Wall-clock tracing: what `bench_trace` and the report use.
    pub fn wall() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Deterministic tracing (logical clock): on the sim backend the
    /// resulting [`TraceLog`] is a pure function of `(seed, policy)`.
    pub fn deterministic() -> Self {
        Self {
            enabled: true,
            clock: ClockMode::Logical,
            ..Self::default()
        }
    }
}

/// Fixed-capacity event ring: pushes are O(1) and never allocate after
/// construction; overflow overwrites the oldest events and counts them.
#[derive(Debug)]
pub struct EventRing {
    buf: Vec<Event>,
    cap: usize,
    head: usize,
    dropped: u64,
}

impl EventRing {
    /// An empty ring holding up to `cap` events (min 8).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(8);
        Self {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    /// Records one event.
    #[inline]
    pub fn push(&mut self, ev: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events lost to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the ring, returning retained events oldest-first.
    pub fn into_events(mut self) -> Vec<Event> {
        self.buf.rotate_left(self.head);
        self.buf
    }
}

/// Message-level counters a session accumulates alongside the ring (these
/// survive ring overflow, so the metrics invariants hold even when the
/// event log is truncated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommCounters {
    /// Messages accepted by the transport.
    pub sends: u64,
    /// Lossy sends dropped by fault injection.
    pub send_drops: u64,
    /// Messages received.
    pub recvs: u64,
    /// Bytes accepted by the transport.
    pub send_bytes: u64,
    /// Bytes received.
    pub recv_bytes: u64,
}

impl CommCounters {
    /// Folds another rank-segment's counters in (used when merging
    /// per-batch traces onto one long-lived track).
    pub fn merge(&mut self, other: &CommCounters) {
        self.sends += other.sends;
        self.send_drops += other.send_drops;
        self.recvs += other.recvs;
        self.send_bytes += other.send_bytes;
        self.recv_bytes += other.recv_bytes;
    }
}

/// Everything one rank recorded: its events (oldest first), overflow
/// count, and the message counters.
#[derive(Debug, Clone, Default)]
pub struct RankTrace {
    /// The rank that recorded this.
    pub rank: u32,
    /// Events, oldest first.
    pub events: Vec<Event>,
    /// Events lost to ring overflow.
    pub dropped_events: u64,
    /// Transport-level counters (overflow-proof).
    pub comm: CommCounters,
}

/// A whole run's trace: one [`RankTrace`] per rank plus run-level context.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// Per-rank traces, rank order.
    pub ranks: Vec<RankTrace>,
    /// Wall time of the SPMD run in nanoseconds (0 when unknown).
    pub wall_ns: u64,
    /// `Schedule::digest()` of the schedule that drove the run (0 when not
    /// applicable) — together with the sim backend's `(seed, policy)` this
    /// is the replay key.
    pub digest: u64,
}

impl TraceLog {
    /// Total retained events across ranks.
    pub fn event_count(&self) -> usize {
        self.ranks.iter().map(|r| r.events.len()).sum()
    }

    /// Sums the per-rank message counters.
    pub fn comm_totals(&self) -> CommCounters {
        let mut t = CommCounters::default();
        for r in &self.ranks {
            t.sends += r.comm.sends;
            t.send_drops += r.comm.send_drops;
            t.recvs += r.comm.recvs;
            t.send_bytes += r.comm.send_bytes;
            t.recv_bytes += r.comm.recv_bytes;
        }
        t
    }

    /// Canonical byte serialization of every event, rank by rank: two
    /// logical-clock traces of the same `(seed, policy, digest)` must
    /// compare byte-identical. (`wall_ns` is deliberately excluded — it is
    /// host timing, not execution structure.)
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.event_count() * 24);
        out.extend_from_slice(&self.digest.to_le_bytes());
        out.extend_from_slice(&(self.ranks.len() as u64).to_le_bytes());
        for r in &self.ranks {
            out.extend_from_slice(&r.rank.to_le_bytes());
            out.extend_from_slice(&(r.events.len() as u64).to_le_bytes());
            out.extend_from_slice(&r.dropped_events.to_le_bytes());
            for c in [r.comm.sends, r.comm.send_drops, r.comm.recvs, r.comm.send_bytes, r.comm.recv_bytes] {
                out.extend_from_slice(&c.to_le_bytes());
            }
            for ev in &r.events {
                out.extend_from_slice(&ev.at.to_le_bytes());
                out.push(ev.kind.tag());
                match ev.kind {
                    EventKind::TaskBegin { task, class } | EventKind::TaskEnd { task, class } => {
                        out.extend_from_slice(&task.to_le_bytes());
                        out.push(class as u8);
                    }
                    EventKind::Send { peer, bytes, kind }
                    | EventKind::SendDropped { peer, bytes, kind } => {
                        out.extend_from_slice(&peer.to_le_bytes());
                        out.extend_from_slice(&bytes.to_le_bytes());
                        out.push(kind);
                    }
                    EventKind::Recv { peer, bytes, kind, wait_ns } => {
                        out.extend_from_slice(&peer.to_le_bytes());
                        out.extend_from_slice(&bytes.to_le_bytes());
                        out.push(kind);
                        out.extend_from_slice(&wait_ns.to_le_bytes());
                    }
                    EventKind::Fence { phase } => out.extend_from_slice(&phase.to_le_bytes()),
                    EventKind::Gauge { id, value } => {
                        out.push(id);
                        out.extend_from_slice(&value.to_le_bytes());
                    }
                    EventKind::Heartbeat { seq } => out.extend_from_slice(&seq.to_le_bytes()),
                    EventKind::AsyncBegin { id, stage } | EventKind::AsyncEnd { id, stage } => {
                        out.extend_from_slice(&id.to_le_bytes());
                        out.push(stage);
                    }
                    EventKind::FlowStart { id } | EventKind::FlowEnd { id } => {
                        out.extend_from_slice(&id.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    /// FNV-1a digest of [`Self::canonical_bytes`] — the compact replay
    /// fingerprint printed by chaos diagnostics.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.canonical_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

// ---------------------------------------------------------------------
// Thread-local rank session (the `record` fast path).
// ---------------------------------------------------------------------

#[cfg(feature = "record")]
mod session {
    use super::*;
    use std::cell::RefCell;

    pub(super) struct Active {
        pub rank: u32,
        pub clock: ClockMode,
        pub epoch: Instant,
        pub tick: u64,
        pub ring: EventRing,
        pub comm: CommCounters,
    }

    impl Active {
        #[inline]
        pub fn now(&mut self) -> u64 {
            match self.clock {
                ClockMode::Wall => self.epoch.elapsed().as_nanos() as u64,
                ClockMode::Logical => {
                    self.tick += 1;
                    self.tick
                }
            }
        }
    }

    thread_local! {
        pub(super) static ACTIVE: RefCell<Option<Active>> = const { RefCell::new(None) };
    }

    /// Runs `f` on the active session, if any. One thread-local lookup and
    /// an `Option` check when tracing is off.
    #[inline]
    pub(super) fn with_active<R>(f: impl FnOnce(&mut Active) -> R) -> Option<R> {
        ACTIVE.with(|a| a.borrow_mut().as_mut().map(f))
    }
}

/// Guard of one rank's recording session; [`RankSession::finish`] takes
/// the recorded trace, dropping without finishing discards it (panic
/// unwind safety).
#[must_use = "finish() returns the recorded trace"]
#[derive(Debug)]
pub struct RankSession {
    armed: bool,
}

/// Installs a recording session on the *calling thread* for logical
/// processor `rank`. Both runtime backends run each rank on its own OS
/// thread, so installing at SPMD-body entry captures exactly that rank's
/// activity. Returns an inert guard when `opts.enabled` is false (or the
/// crate was built without the `record` feature).
pub fn begin_rank(rank: usize, opts: &TraceOptions) -> RankSession {
    #[cfg(feature = "record")]
    {
        if opts.enabled {
            let epoch = opts.epoch.unwrap_or_else(Instant::now);
            let mut active = session::Active {
                rank: rank as u32,
                clock: opts.clock,
                epoch,
                tick: 0,
                ring: EventRing::new(opts.capacity),
                comm: CommCounters::default(),
            };
            let at = active.now();
            active.ring.push(Event { at, kind: EventKind::Fence { phase: 0 } });
            session::ACTIVE.with(|a| *a.borrow_mut() = Some(active));
            return RankSession { armed: true };
        }
    }
    let _ = (rank, opts);
    RankSession { armed: false }
}

impl RankSession {
    /// Ends the session and returns the rank's trace (`None` when the
    /// session was inert).
    pub fn finish(mut self) -> Option<RankTrace> {
        if !self.armed {
            return None;
        }
        self.armed = false;
        #[cfg(feature = "record")]
        {
            return session::ACTIVE.with(|a| {
                a.borrow_mut().take().map(|mut s| {
                    let at = s.now();
                    s.ring.push(Event { at, kind: EventKind::Fence { phase: u64::MAX } });
                    RankTrace {
                        rank: s.rank,
                        dropped_events: s.ring.dropped(),
                        events: s.ring.into_events(),
                        comm: s.comm,
                    }
                })
            });
        }
        #[allow(unreachable_code)]
        None
    }
}

impl Drop for RankSession {
    fn drop(&mut self) {
        if self.armed {
            #[cfg(feature = "record")]
            session::ACTIVE.with(|a| *a.borrow_mut() = None);
        }
    }
}

/// Span guard for one task: records `TaskBegin` now and `TaskEnd` on drop
/// (so error paths still close their spans). A no-op when no session is
/// active on this thread.
#[must_use = "the span ends when this guard drops"]
#[derive(Debug)]
pub struct TaskSpan {
    task: u32,
    class: TaskClass,
}

/// Opens a task span. See [`TaskSpan`].
#[inline]
pub fn task_span(task: u32, class: TaskClass) -> TaskSpan {
    #[cfg(feature = "record")]
    session::with_active(|s| {
        let at = s.now();
        s.ring.push(Event { at, kind: EventKind::TaskBegin { task, class } });
    });
    TaskSpan { task, class }
}

impl Drop for TaskSpan {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "record")]
        session::with_active(|s| {
            let at = s.now();
            s.ring.push(Event {
                at,
                kind: EventKind::TaskEnd { task: self.task, class: self.class },
            });
        });
        let _ = (self.task, self.class);
    }
}

/// Records a phase fence (collective boundary).
#[inline]
pub fn fence(phase: u64) {
    #[cfg(feature = "record")]
    session::with_active(|s| {
        let at = s.now();
        s.ring.push(Event { at, kind: EventKind::Fence { phase } });
    });
    let _ = phase;
}

/// Records one resource-gauge sample on the calling rank's track. A no-op
/// when no session is active.
#[inline]
pub fn sample_gauge(id: GaugeId, value: u64) {
    #[cfg(feature = "record")]
    session::with_active(|s| {
        let at = s.now();
        s.ring.push(Event { at, kind: EventKind::Gauge { id: id as u8, value } });
    });
    let _ = (id, value);
}

/// Records a progress heartbeat carrying the run-global completed-task
/// count (see [`EventKind::Heartbeat`]). A no-op when no session is
/// active.
#[inline]
pub fn heartbeat(seq: u64) {
    #[cfg(feature = "record")]
    session::with_active(|s| {
        let at = s.now();
        s.ring.push(Event { at, kind: EventKind::Heartbeat { seq } });
    });
    let _ = seq;
}

/// The [`pastix_runtime::CommHook`] that routes message events into the
/// calling thread's active session. Zero-sized; pass by value to
/// [`pastix_runtime::Instrumented`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionHook;

impl pastix_runtime::CommHook for SessionHook {
    #[inline]
    fn on_send(&self, to: usize, bytes: u64, kind: u8) {
        #[cfg(feature = "record")]
        session::with_active(|s| {
            s.comm.sends += 1;
            s.comm.send_bytes += bytes;
            let at = s.now();
            s.ring.push(Event { at, kind: EventKind::Send { peer: to as u32, bytes, kind } });
        });
        let _ = (to, bytes, kind);
    }

    #[inline]
    fn on_send_dropped(&self, to: usize, bytes: u64, kind: u8) {
        #[cfg(feature = "record")]
        session::with_active(|s| {
            s.comm.send_drops += 1;
            let at = s.now();
            s.ring.push(Event { at, kind: EventKind::SendDropped { peer: to as u32, bytes, kind } });
        });
        let _ = (to, bytes, kind);
    }

    #[inline]
    fn on_recv(&self, from: usize, bytes: u64, kind: u8, wait_ns: u64) {
        #[cfg(feature = "record")]
        session::with_active(|s| {
            s.comm.recvs += 1;
            s.comm.recv_bytes += bytes;
            let wait = match s.clock {
                ClockMode::Wall => wait_ns,
                // Host timing would break (seed, policy) determinism.
                ClockMode::Logical => 0,
            };
            let at = s.now();
            s.ring.push(Event {
                at,
                kind: EventKind::Recv { peer: from as u32, bytes, kind, wait_ns: wait },
            });
        });
        let _ = (from, bytes, kind, wait_ns);
    }
}

/// `true` when the crate was built with event recording compiled in.
pub const fn recording_compiled() -> bool {
    cfg!(feature = "record")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest() {
        let mut r = EventRing::new(8);
        for i in 0..12u64 {
            r.push(Event { at: i, kind: EventKind::Fence { phase: i } });
        }
        assert_eq!(r.len(), 8);
        assert_eq!(r.dropped(), 4);
        let evs = r.into_events();
        assert_eq!(evs.first().unwrap().at, 4);
        assert_eq!(evs.last().unwrap().at, 11);
    }

    #[test]
    fn session_records_spans_and_fences() {
        let s = begin_rank(3, &TraceOptions::wall());
        {
            let _sp = task_span(42, TaskClass::Comp1d);
            fence(7);
        }
        let t = s.finish().expect("enabled session yields a trace");
        assert_eq!(t.rank, 3);
        // begin fence, task begin, fence(7), task end, end fence.
        assert_eq!(t.events.len(), 5);
        assert!(matches!(t.events[1].kind, EventKind::TaskBegin { task: 42, .. }));
        assert!(matches!(t.events[3].kind, EventKind::TaskEnd { task: 42, .. }));
        // Wall timestamps are monotone.
        for w in t.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn disabled_session_records_nothing() {
        let s = begin_rank(0, &TraceOptions::disabled());
        let _sp = task_span(1, TaskClass::Seq);
        assert!(s.finish().is_none());
    }

    #[test]
    fn logical_clock_is_deterministic() {
        let run = || {
            let s = begin_rank(0, &TraceOptions::deterministic());
            for t in 0..5u32 {
                let _sp = task_span(t, TaskClass::Bmod);
            }
            let log = TraceLog {
                ranks: vec![s.finish().unwrap()],
                wall_ns: 0,
                digest: 99,
            };
            log.canonical_bytes()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn span_closes_on_unwind() {
        let s = begin_rank(0, &TraceOptions::wall());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _sp = task_span(9, TaskClass::Factor);
            panic!("boom");
        }));
        assert!(caught.is_err());
        let t = s.finish().unwrap();
        assert!(t
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::TaskEnd { task: 9, .. })));
    }

    #[test]
    fn gauges_and_heartbeats_round_trip() {
        let s = begin_rank(0, &TraceOptions::deterministic());
        sample_gauge(GaugeId::AubPoolBuffers, 3);
        heartbeat(17);
        sample_gauge(GaugeId::LiveRegionBytes, 4096);
        let t = s.finish().unwrap();
        let gauges: Vec<_> = t
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Gauge { id, value } => Some((id, value)),
                _ => None,
            })
            .collect();
        assert_eq!(gauges, vec![(0, 3), (3, 4096)]);
        assert!(t
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Heartbeat { seq: 17 })));
        // The new variants serialize canonically (distinct tags).
        let log = TraceLog { ranks: vec![t], wall_ns: 0, digest: 1 };
        let bytes = log.canonical_bytes();
        assert!(bytes.windows(1).any(|w| w[0] == 6));
        assert!(bytes.windows(1).any(|w| w[0] == 7));
    }

    #[test]
    fn comm_counters_via_hook() {
        use pastix_runtime::CommHook;
        let s = begin_rank(1, &TraceOptions::deterministic());
        let h = SessionHook;
        h.on_send(0, 128, 2);
        h.on_send_dropped(0, 128, 2);
        h.on_send(0, 128, 2);
        h.on_recv(2, 64, 1, 555);
        let t = s.finish().unwrap();
        assert_eq!(t.comm.sends, 2);
        assert_eq!(t.comm.send_drops, 1);
        assert_eq!(t.comm.recvs, 1);
        assert_eq!(t.comm.send_bytes, 256);
        assert_eq!(t.comm.recv_bytes, 64);
        // Logical clock zeroes recv wait for determinism.
        assert!(t
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Recv { wait_ns: 0, .. })));
    }
}
