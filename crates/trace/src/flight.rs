//! The always-on flight recorder: a fixed-capacity, lock-free ring of
//! coarse serving events, dumped as a black-box JSON when something goes
//! wrong.
//!
//! Task-level tracing ([`crate::begin_rank`]) is opt-in and scoped to one
//! run; a production incident — a rank panic mid-factorization, a
//! watchdog trip under starvation — usually happens on a run nobody was
//! tracing. The flight recorder is the layer below: it is **always on**,
//! records only *coarse* events (request admission/completion, batch
//! dispatch, factorize begin/end, cache evictions, watchdog trips, rank
//! panics), and costs one `fetch_add` plus four relaxed atomic stores per
//! event — negligible against the work each event represents, and safe to
//! call from any thread including a panic hook.
//!
//! On a panic unwind (via [`install_panic_hook`]) or a watchdog trip (via
//! [`crate::watchdog::analyze`]) the retained ring is written to
//! `target/blackbox-<ts>.json` together with the ids of every request
//! that was **in flight** (admitted, not completed) — so the operator can
//! answer "which requests did this incident eat?" after the process is
//! gone.
//!
//! Concurrency model: writers claim a slot with a `fetch_add` on the
//! global cursor and publish it seqlock-style (sequence stored last, with
//! `Release`); the dumper validates each slot's sequence and skips torn
//! ones. The dump is best-effort forensics, not a consistent snapshot —
//! exactly the black-box trade-off.

use pastix_json::{obj, Json};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Ring capacity in events. Power of two; at the coarse event rate
/// (a handful per request) this holds the last few thousand requests.
const CAPACITY: usize = 4096;

/// The coarse event vocabulary of the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightKind {
    /// A request was admitted to the serving queue (`a` = request id).
    RequestStart = 0,
    /// A request completed (`a` = request id, `b` = latency ns).
    RequestEnd = 1,
    /// A coalesced batch was handed to the solver (`a` = batch seq,
    /// `b` = width).
    BatchDispatch = 2,
    /// A numeric factorization started (`a` = matrix fingerprint low
    /// bits).
    FactorizeStart = 3,
    /// The factorization finished (`a` = fingerprint low bits, `b` =
    /// wall ns).
    FactorizeEnd = 4,
    /// The factor cache evicted an entry (`a` = fingerprint low bits,
    /// `b` = freed bytes).
    CacheEvict = 5,
    /// The watchdog flagged a rank as stalled (`a` = rank).
    WatchdogTrip = 6,
    /// A rank's worker panicked (`a` = rank).
    RankPanic = 7,
    /// A phase fence at the run level (`a` = phase id).
    PhaseFence = 8,
    /// Free-form marker (`a`, `b` caller-defined).
    Mark = 9,
}

impl FlightKind {
    /// Stable name (dump JSON).
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::RequestStart => "request_start",
            FlightKind::RequestEnd => "request_end",
            FlightKind::BatchDispatch => "batch_dispatch",
            FlightKind::FactorizeStart => "factorize_start",
            FlightKind::FactorizeEnd => "factorize_end",
            FlightKind::CacheEvict => "cache_evict",
            FlightKind::WatchdogTrip => "watchdog_trip",
            FlightKind::RankPanic => "rank_panic",
            FlightKind::PhaseFence => "phase_fence",
            FlightKind::Mark => "mark",
        }
    }

    fn name_of(k: u8) -> &'static str {
        match k {
            0 => "request_start",
            1 => "request_end",
            2 => "batch_dispatch",
            3 => "factorize_start",
            4 => "factorize_end",
            5 => "cache_evict",
            6 => "watchdog_trip",
            7 => "rank_panic",
            8 => "phase_fence",
            9 => "mark",
            _ => "unknown",
        }
    }
}

/// One decoded ring entry (dump-side view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number (monotone admission order).
    pub seq: u64,
    /// Nanoseconds since the recorder's first event.
    pub at_ns: u64,
    /// Event kind (raw; decode with [`FlightKind::name_of`] semantics).
    pub kind: u8,
    /// First payload word (see [`FlightKind`]).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

struct Slot {
    // 0 = empty/being-written; otherwise seq + 1.
    seq: AtomicU64,
    at_ns: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

struct Recorder {
    slots: Vec<Slot>,
    cursor: AtomicU64,
    epoch: std::time::Instant,
}

static RECORDER: OnceLock<Recorder> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(true);
static DUMP_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn recorder() -> &'static Recorder {
    RECORDER.get_or_init(|| Recorder {
        slots: (0..CAPACITY)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                at_ns: AtomicU64::new(0),
                kind: AtomicU64::new(0),
                a: AtomicU64::new(0),
                b: AtomicU64::new(0),
            })
            .collect(),
        cursor: AtomicU64::new(0),
        epoch: std::time::Instant::now(),
    })
}

/// Master switch, used only by overhead measurements that need a
/// recorder-off baseline; deployments leave it on (the default).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Records one event. Lock-free: one `fetch_add` + five relaxed/release
/// stores; callable from any thread, including inside a panic hook.
#[inline]
pub fn record(kind: FlightKind, a: u64, b: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let r = recorder();
    let seq = r.cursor.fetch_add(1, Ordering::Relaxed);
    let slot = &r.slots[(seq as usize) % CAPACITY];
    // Invalidate first so a concurrent dumper skips the torn window.
    slot.seq.store(0, Ordering::Release);
    slot.at_ns
        .store(r.epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
    slot.kind.store(kind as u64, Ordering::Relaxed);
    slot.a.store(a, Ordering::Relaxed);
    slot.b.store(b, Ordering::Relaxed);
    slot.seq.store(seq + 1, Ordering::Release);
}

/// Total events admitted so far (including ones the ring has since
/// overwritten).
pub fn recorded() -> u64 {
    RECORDER.get().map_or(0, |r| r.cursor.load(Ordering::Relaxed))
}

/// Decodes the retained ring, oldest first, skipping torn slots.
pub fn snapshot() -> Vec<FlightEvent> {
    let Some(r) = RECORDER.get() else {
        return Vec::new();
    };
    let cursor = r.cursor.load(Ordering::Acquire);
    let lo = cursor.saturating_sub(CAPACITY as u64);
    let mut out = Vec::with_capacity((cursor - lo) as usize);
    for seq in lo..cursor {
        let slot = &r.slots[(seq as usize) % CAPACITY];
        if slot.seq.load(Ordering::Acquire) != seq + 1 {
            continue; // torn or recycled mid-read
        }
        let ev = FlightEvent {
            seq,
            at_ns: slot.at_ns.load(Ordering::Relaxed),
            kind: slot.kind.load(Ordering::Relaxed) as u8,
            a: slot.a.load(Ordering::Relaxed),
            b: slot.b.load(Ordering::Relaxed),
        };
        // Validate the slot was not recycled while the fields were read.
        if slot.seq.load(Ordering::Acquire) == seq + 1 {
            out.push(ev);
        }
    }
    out
}

/// Request ids admitted but not completed, per the retained ring: a
/// `RequestStart` with no later `RequestEnd`. (A start whose end was
/// overwritten can be misreported as in flight — the black box keeps the
/// *recent* truth, which is the one incidents need.)
pub fn requests_in_flight() -> Vec<u64> {
    let evs = snapshot();
    let mut open: Vec<u64> = Vec::new();
    for ev in &evs {
        if ev.kind == FlightKind::RequestStart as u8 {
            open.push(ev.a);
        } else if ev.kind == FlightKind::RequestEnd as u8 {
            if let Some(i) = open.iter().position(|&id| id == ev.a) {
                open.remove(i);
            }
        }
    }
    open
}

/// Overrides the directory black-box dumps are written to (tests, or
/// deployments with a dedicated incident volume). `None` restores the
/// default resolution: `PASTIX_BLACKBOX_DIR`, else the workspace
/// `target/` directory.
pub fn set_blackbox_dir(dir: Option<&Path>) {
    *DUMP_DIR.lock().unwrap() = dir.map(Path::to_path_buf);
}

fn blackbox_dir() -> PathBuf {
    if let Some(d) = DUMP_DIR.lock().unwrap().clone() {
        return d;
    }
    if let Ok(d) = std::env::var("PASTIX_BLACKBOX_DIR") {
        return PathBuf::from(d);
    }
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target"))
}

/// Serializes the black box: the retained events, the in-flight request
/// ids, and the dump reason.
pub fn blackbox_json(reason: &str) -> Json {
    let evs = snapshot();
    let rows: Vec<Json> = evs
        .iter()
        .map(|e| {
            obj([
                ("seq", Json::Num(e.seq as f64)),
                ("at_ns", Json::Num(e.at_ns as f64)),
                ("kind", Json::Str(FlightKind::name_of(e.kind).to_string())),
                ("a", Json::Num(e.a as f64)),
                ("b", Json::Num(e.b as f64)),
            ])
        })
        .collect();
    let in_flight: Vec<Json> = requests_in_flight()
        .into_iter()
        .map(|id| Json::Num(id as f64))
        .collect();
    obj([
        ("reason", Json::Str(reason.to_string())),
        ("recorded_total", Json::Num(recorded() as f64)),
        ("retained", Json::Num(rows.len() as f64)),
        ("requests_in_flight", Json::Arr(in_flight)),
        ("events", Json::Arr(rows)),
    ])
}

/// Dumps the black box to `<dir>/blackbox-<ts>-<n>.json` and returns the
/// path, or `None` when the write failed (the dump path must never be
/// able to crash the crashing process further).
pub fn dump_blackbox(reason: &str) -> Option<PathBuf> {
    let dir = blackbox_dir();
    let _ = std::fs::create_dir_all(&dir);
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let n = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("blackbox-{ts}-{n}.json"));
    let body = blackbox_json(reason).pretty();
    std::fs::write(&path, body).ok()?;
    Some(path)
}

/// Installs (once per process) a panic hook that records a
/// [`FlightKind::RankPanic`] event and dumps the black box before the
/// previous hook runs — so every panic, caught or fatal, leaves a
/// forensic record. Serving entry points call this; calling it again is
/// free.
pub fn install_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            record(FlightKind::RankPanic, u64::MAX, 0);
            if let Some(p) = dump_blackbox("panic") {
                eprintln!("pastix: black box dumped to {}", p.display());
            }
            prev(info);
        }));
    });
}

/// Routes the runtime's rank-failure notifications (a worker thread
/// panicking inside an SPMD run) into the flight ring. Installed once by
/// the solver's entry points.
pub fn wire_runtime_observer() {
    pastix_runtime::set_failure_observer(|rank| {
        record(FlightKind::RankPanic, rank as u64, 0);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global; keep the assertions order-free so
    // the tests survive parallel execution within this binary.

    #[test]
    fn record_and_snapshot_round_trip() {
        record(FlightKind::Mark, 111, 222);
        let evs = snapshot();
        assert!(evs
            .iter()
            .any(|e| e.kind == FlightKind::Mark as u8 && e.a == 111 && e.b == 222));
        // Sequence numbers are strictly increasing in the decoded view.
        for w in evs.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn in_flight_tracks_unmatched_starts() {
        record(FlightKind::RequestStart, 900_001, 0);
        record(FlightKind::RequestStart, 900_002, 0);
        record(FlightKind::RequestEnd, 900_001, 5);
        let open = requests_in_flight();
        assert!(open.contains(&900_002));
        assert!(!open.contains(&900_001));
        record(FlightKind::RequestEnd, 900_002, 9);
        assert!(!requests_in_flight().contains(&900_002));
    }

    #[test]
    fn ring_overwrites_but_keeps_recent() {
        for i in 0..(CAPACITY as u64 + 64) {
            record(FlightKind::PhaseFence, 700_000 + i, 0);
        }
        let evs = snapshot();
        assert!(evs.len() <= CAPACITY);
        // The newest event is retained.
        assert!(evs
            .iter()
            .any(|e| e.a == 700_000 + CAPACITY as u64 + 63));
    }

    #[test]
    fn dump_writes_named_file() {
        let dir = std::env::temp_dir().join("pastix-flight-test");
        record(FlightKind::RequestStart, 880_077, 0);
        let json = blackbox_json("unit-test");
        assert!(json
            .get("requests_in_flight")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .any(|v| v.as_f64().ok() == Some(880_077.0)));
        // Dump through an explicit dir to avoid racing the global default.
        let _ = std::fs::create_dir_all(&dir);
        let ts = 424_242u64;
        let path = dir.join(format!("blackbox-{ts}.json"));
        std::fs::write(&path, json.pretty()).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("unit-test"));
        assert!(body.contains("880077"));
        record(FlightKind::RequestEnd, 880_077, 1);
    }
}
