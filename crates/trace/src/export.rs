//! Trace export: [`TraceLog`] → Chrome trace-event JSON (loadable in
//! Perfetto / `chrome://tracing`) and a no-dependency terminal Gantt
//! renderer for quick looks.
//!
//! The export is **canonical**: given the same log (and optional
//! schedule context) the emitted JSON is byte-identical — on the sim
//! backend with [`crate::ClockMode::Logical`] that makes the timeline
//! file itself a pure function of `(seed, policy, digest)`, pinned by a
//! golden test. Host-timing fields (`wall_ns`) are deliberately left
//! out.
//!
//! Mapping of the event vocabulary:
//!
//! | ring event        | trace-event                                    |
//! |-------------------|------------------------------------------------|
//! | `TaskBegin`/`End` | `ph:"B"`/`"E"` span on the rank's track        |
//! | `Send` → `Recv`   | `ph:"s"` → `ph:"f"` flow arrow (same `id`)     |
//! | `SendDropped`     | `ph:"i"` instant (`send_dropped`)              |
//! | `Fence`           | `ph:"i"` instant (`fence`)                     |
//! | `Gauge`           | `ph:"C"` counter track `rank<r>/<gauge>`       |
//! | `Heartbeat`       | `ph:"C"` counter track `rank<r>/progress`      |
//!
//! Only *matched* span pairs are exported (a `B` whose `E` was lost to
//! ring overflow is skipped), and a flow `s` is only emitted when the
//! matching `f` exists — the i-th send to the i-th receive per
//! `(src, dst, kind)` triple — so the schema invariants hold even under
//! drop faults and truncated rings.

use crate::{EventKind, GaugeId, ServeStage, TaskClass, TraceLog, SERVE_RANK};
use pastix_json::{obj, Json};
use pastix_sched::{Schedule, TaskGraph};
use std::collections::HashMap;

/// Converts a trace to Chrome trace-event JSON without schedule context
/// (span args carry only the task id and class).
pub fn chrome_trace(log: &TraceLog) -> Json {
    chrome_trace_impl(log, None)
}

/// Converts a trace to Chrome trace-event JSON with schedule context:
/// every task span's args gain the supernode (column block), the modeled
/// cost, and the statically assigned processor.
pub fn chrome_trace_with(log: &TraceLog, g: &TaskGraph, s: &Schedule) -> Json {
    chrome_trace_impl(log, Some((g, s)))
}

fn ev_base(name: &str, cat: &str, ph: &str, ts: u64, tid: u32) -> Vec<(String, Json)> {
    vec![
        ("name".to_string(), Json::Str(name.to_string())),
        ("cat".to_string(), Json::Str(cat.to_string())),
        ("ph".to_string(), Json::Str(ph.to_string())),
        ("ts".to_string(), Json::Num(ts as f64)),
        ("pid".to_string(), Json::Num(0.0)),
        ("tid".to_string(), Json::Num(tid as f64)),
    ]
}

fn span_args(task: u32, class: TaskClass, ctx: Option<(&TaskGraph, &Schedule)>) -> Json {
    let mut a = vec![
        ("task".to_string(), Json::Num(task as f64)),
        ("class".to_string(), Json::Str(class.name().to_string())),
    ];
    if let Some((g, s)) = ctx {
        let t = task as usize;
        if t < g.n_tasks() && !matches!(class, TaskClass::Scatter | TaskClass::Seq) && !class.is_analyze() {
            a.push(("supernode".to_string(), Json::Num(g.kinds[t].cblk() as f64)));
            a.push(("predicted_cost".to_string(), Json::Num(g.cost[t])));
            a.push(("sched_proc".to_string(), Json::Num(s.task_proc[t] as f64)));
        }
    }
    Json::Obj(a)
}

fn chrome_trace_impl(log: &TraceLog, ctx: Option<(&TaskGraph, &Schedule)>) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(log.event_count() + log.ranks.len() + 2);

    // Track-naming metadata.
    let mut meta = ev_base("process_name", "__metadata", "M", 0, 0);
    meta.push(("args".to_string(), obj([("name", Json::Str("pastix".to_string()))])));
    events.push(Json::Obj(meta));
    for rt in &log.ranks {
        let label = if rt.rank == SERVE_RANK {
            "serve".to_string()
        } else {
            format!("rank {}", rt.rank)
        };
        let mut m = ev_base("thread_name", "__metadata", "M", 0, rt.rank);
        m.push(("args".to_string(), obj([("name", Json::Str(label))])));
        events.push(Json::Obj(m));
    }

    // Pass 1a: per rank, mark the span events whose begin/end partner is
    // present (unpaired ones fell off the ring and are skipped).
    let mut matched: Vec<Vec<bool>> = Vec::with_capacity(log.ranks.len());
    for rt in &log.ranks {
        let mut ok = vec![false; rt.events.len()];
        let mut open: HashMap<(u32, u8), Vec<usize>> = HashMap::new();
        let mut aopen: HashMap<(u64, u8), Vec<usize>> = HashMap::new();
        for (i, ev) in rt.events.iter().enumerate() {
            match ev.kind {
                EventKind::TaskBegin { task, class } => {
                    open.entry((task, class as u8)).or_default().push(i);
                }
                EventKind::TaskEnd { task, class } => {
                    if let Some(b) = open.get_mut(&(task, class as u8)).and_then(Vec::pop) {
                        ok[b] = true;
                        ok[i] = true;
                    }
                }
                EventKind::AsyncBegin { id, stage } => {
                    aopen.entry((id, stage)).or_default().push(i);
                }
                EventKind::AsyncEnd { id, stage } => {
                    if let Some(b) = aopen.get_mut(&(id, stage)).and_then(Vec::pop) {
                        ok[b] = true;
                        ok[i] = true;
                    }
                }
                _ => {}
            }
        }
        matched.push(ok);
    }

    // Pass 1b: count sends and recvs per (src, dst, kind) so each flow
    // arrow pairs the i-th send with the i-th receive of its triple; a
    // send beyond the receive count (dropped or still in flight) gets no
    // arrow. Flow ids are dense in (src, dst, kind, i) order.
    let mut n_sends: HashMap<(u32, u32, u8), u64> = HashMap::new();
    let mut n_recvs: HashMap<(u32, u32, u8), u64> = HashMap::new();
    let mut n_fstarts: HashMap<u64, u64> = HashMap::new();
    let mut n_fends: HashMap<u64, u64> = HashMap::new();
    for rt in &log.ranks {
        for ev in &rt.events {
            match ev.kind {
                EventKind::Send { peer, kind, .. } => {
                    *n_sends.entry((rt.rank, peer, kind)).or_default() += 1;
                }
                EventKind::Recv { peer, kind, .. } => {
                    *n_recvs.entry((peer, rt.rank, kind)).or_default() += 1;
                }
                EventKind::FlowStart { id } => {
                    *n_fstarts.entry(id).or_default() += 1;
                }
                EventKind::FlowEnd { id } => {
                    *n_fends.entry(id).or_default() += 1;
                }
                _ => {}
            }
        }
    }
    let mut flow_base: HashMap<(u32, u32, u8), u64> = HashMap::new();
    let mut keys: Vec<(u32, u32, u8)> = n_sends.keys().copied().collect();
    keys.sort_unstable();
    let mut next_id = 1u64;
    for k in keys {
        let pairs = n_sends[&k].min(n_recvs.get(&k).copied().unwrap_or(0));
        flow_base.insert(k, next_id);
        next_id += pairs;
    }
    let flow_pairs = |k: &(u32, u32, u8)| -> u64 {
        n_sends
            .get(k)
            .copied()
            .unwrap_or(0)
            .min(n_recvs.get(k).copied().unwrap_or(0))
    };
    // Recorded flow arrows (request → solve-rank causality) share the
    // exported id space with message flows: dense ids allocated *after*
    // them, so the two families can never collide.
    let mut rec_base: HashMap<u64, u64> = HashMap::new();
    let mut rec_keys: Vec<u64> = n_fstarts.keys().copied().collect();
    rec_keys.sort_unstable();
    for k in rec_keys {
        let pairs = n_fstarts[&k].min(n_fends.get(&k).copied().unwrap_or(0));
        rec_base.insert(k, next_id);
        next_id += pairs;
    }
    let rec_pairs = |id: u64| -> u64 {
        n_fstarts
            .get(&id)
            .copied()
            .unwrap_or(0)
            .min(n_fends.get(&id).copied().unwrap_or(0))
    };

    // Pass 2: emit, rank by rank, in ring order.
    let mut fstarted: HashMap<u64, u64> = HashMap::new();
    let mut fended: HashMap<u64, u64> = HashMap::new();
    for (ri, rt) in log.ranks.iter().enumerate() {
        let r = rt.rank;
        let mut sent: HashMap<(u32, u32, u8), u64> = HashMap::new();
        let mut rcvd: HashMap<(u32, u32, u8), u64> = HashMap::new();
        for (i, ev) in rt.events.iter().enumerate() {
            match ev.kind {
                EventKind::TaskBegin { task, class } if matched[ri][i] => {
                    let mut e = ev_base(class.name(), "task", "B", ev.at, r);
                    e.push(("args".to_string(), span_args(task, class, ctx)));
                    events.push(Json::Obj(e));
                }
                EventKind::TaskEnd { .. } if matched[ri][i] => {
                    events.push(Json::Obj(ev_base("", "task", "E", ev.at, r)));
                }
                EventKind::TaskBegin { .. } | EventKind::TaskEnd { .. } => {}
                EventKind::Send { peer, bytes, kind } => {
                    let key = (r, peer, kind);
                    let i_th = *sent.entry(key).or_default();
                    sent.insert(key, i_th + 1);
                    if i_th < flow_pairs(&key) {
                        let mut e = ev_base(&format!("msg{kind}"), "flow", "s", ev.at, r);
                        e.push(("id".to_string(), Json::Num((flow_base[&key] + i_th) as f64)));
                        e.push(("args".to_string(), obj([("bytes", Json::Num(bytes as f64))])));
                        events.push(Json::Obj(e));
                    }
                }
                EventKind::Recv { peer, bytes, kind, wait_ns } => {
                    let key = (peer, r, kind);
                    let i_th = *rcvd.entry(key).or_default();
                    rcvd.insert(key, i_th + 1);
                    if i_th < flow_pairs(&key) {
                        let mut e = ev_base(&format!("msg{kind}"), "flow", "f", ev.at, r);
                        e.push(("bp".to_string(), Json::Str("e".to_string())));
                        e.push(("id".to_string(), Json::Num((flow_base[&key] + i_th) as f64)));
                        e.push((
                            "args".to_string(),
                            obj([
                                ("bytes", Json::Num(bytes as f64)),
                                ("wait_ns", Json::Num(wait_ns as f64)),
                            ]),
                        ));
                        events.push(Json::Obj(e));
                    }
                }
                EventKind::SendDropped { peer, bytes, kind } => {
                    let mut e = ev_base("send_dropped", "fault", "i", ev.at, r);
                    e.push(("s".to_string(), Json::Str("t".to_string())));
                    e.push((
                        "args".to_string(),
                        obj([
                            ("peer", Json::Num(peer as f64)),
                            ("bytes", Json::Num(bytes as f64)),
                            ("kind", Json::Num(kind as f64)),
                        ]),
                    ));
                    events.push(Json::Obj(e));
                }
                EventKind::Fence { phase } => {
                    let label = match phase {
                        0 => "session_begin".to_string(),
                        u64::MAX => "session_end".to_string(),
                        p => format!("phase {p}"),
                    };
                    let mut e = ev_base("fence", "phase", "i", ev.at, r);
                    e.push(("s".to_string(), Json::Str("t".to_string())));
                    e.push(("args".to_string(), obj([("phase", Json::Str(label))])));
                    events.push(Json::Obj(e));
                }
                EventKind::Gauge { id, value } => {
                    let name = format!("rank{r}/{}", GaugeId::name_of(id));
                    let mut e = ev_base(&name, "gauge", "C", ev.at, r);
                    e.push(("args".to_string(), obj([("value", Json::Num(value as f64))])));
                    events.push(Json::Obj(e));
                }
                EventKind::Heartbeat { seq } => {
                    let name = format!("rank{r}/progress");
                    let mut e = ev_base(&name, "gauge", "C", ev.at, r);
                    e.push(("args".to_string(), obj([("value", Json::Num(seq as f64))])));
                    events.push(Json::Obj(e));
                }
                EventKind::AsyncBegin { id, stage } if matched[ri][i] => {
                    let mut e =
                        ev_base(ServeStage::name_of(stage), "serve", "b", ev.at, r);
                    e.push(("id".to_string(), Json::Num(id as f64)));
                    e.push(("args".to_string(), obj([("request", Json::Num(id as f64))])));
                    events.push(Json::Obj(e));
                }
                EventKind::AsyncEnd { id, stage } if matched[ri][i] => {
                    let mut e =
                        ev_base(ServeStage::name_of(stage), "serve", "e", ev.at, r);
                    e.push(("id".to_string(), Json::Num(id as f64)));
                    events.push(Json::Obj(e));
                }
                EventKind::AsyncBegin { .. } | EventKind::AsyncEnd { .. } => {}
                EventKind::FlowStart { id } => {
                    let i_th = *fstarted.entry(id).or_default();
                    fstarted.insert(id, i_th + 1);
                    if i_th < rec_pairs(id) {
                        let mut e = ev_base("req", "flow", "s", ev.at, r);
                        e.push(("id".to_string(), Json::Num((rec_base[&id] + i_th) as f64)));
                        events.push(Json::Obj(e));
                    }
                }
                EventKind::FlowEnd { id } => {
                    let i_th = *fended.entry(id).or_default();
                    fended.insert(id, i_th + 1);
                    if i_th < rec_pairs(id) {
                        let mut e = ev_base("req", "flow", "f", ev.at, r);
                        e.push(("bp".to_string(), Json::Str("e".to_string())));
                        e.push(("id".to_string(), Json::Num((rec_base[&id] + i_th) as f64)));
                        events.push(Json::Obj(e));
                    }
                }
            }
        }
    }

    obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ns".to_string())),
        (
            "otherData",
            obj([
                ("schedule_digest", Json::Str(format!("{:#018x}", log.digest))),
                ("ranks", Json::Num(log.ranks.len() as f64)),
            ]),
        ),
    ])
}

/// Structural sanity check of an exported Chrome trace: per track every
/// `B` has a matching `E` (properly nested), every nestable async begin
/// `b` has a matching end `e` per async id, and every flow-start `s` has
/// a flow-finish `f` with the same id (and vice versa). Returns the first
/// violation as an error string.
pub fn validate_chrome_trace(j: &Json) -> Result<(), String> {
    let evs = j
        .get("traceEvents")
        .and_then(|e| e.as_arr().ok())
        .ok_or("no traceEvents array")?;
    let mut depth: HashMap<u64, i64> = HashMap::new();
    let mut adepth: HashMap<u64, i64> = HashMap::new();
    let mut starts: Vec<u64> = Vec::new();
    let mut finishes: Vec<u64> = Vec::new();
    for (i, e) in evs.iter().enumerate() {
        let ph = e.get("ph").and_then(|p| p.as_str().ok()).ok_or(format!("event {i}: no ph"))?;
        let tid = e
            .get("tid")
            .and_then(|t| t.as_f64().ok())
            .ok_or(format!("event {i}: no tid"))? as u64;
        match ph {
            "B" => *depth.entry(tid).or_default() += 1,
            "E" => {
                let d = depth.entry(tid).or_default();
                *d -= 1;
                if *d < 0 {
                    return Err(format!("event {i}: E without B on tid {tid}"));
                }
            }
            "b" | "e" => {
                let id = e
                    .get("id")
                    .and_then(|v| v.as_f64().ok())
                    .ok_or(format!("event {i}: async event without id"))? as u64;
                if ph == "b" {
                    *adepth.entry(id).or_default() += 1;
                } else {
                    let d = adepth.entry(id).or_default();
                    *d -= 1;
                    if *d < 0 {
                        return Err(format!("event {i}: async e without b for id {id}"));
                    }
                }
            }
            "s" | "f" => {
                let id = e
                    .get("id")
                    .and_then(|v| v.as_f64().ok())
                    .ok_or(format!("event {i}: flow without id"))? as u64;
                if ph == "s" {
                    starts.push(id);
                } else {
                    finishes.push(id);
                }
            }
            "C" | "i" | "M" => {}
            other => return Err(format!("event {i}: unknown ph {other:?}")),
        }
    }
    for (tid, d) in depth {
        if d != 0 {
            return Err(format!("tid {tid}: {d} unclosed B spans"));
        }
    }
    for (id, d) in adepth {
        if d != 0 {
            return Err(format!("async id {id}: {d} unclosed b spans"));
        }
    }
    starts.sort_unstable();
    finishes.sort_unstable();
    if starts != finishes {
        return Err(format!(
            "flow mismatch: {} starts vs {} finishes (or id sets differ)",
            starts.len(),
            finishes.len()
        ));
    }
    Ok(())
}

/// Renders an ASCII Gantt chart: one row per rank over the trace window,
/// `#` = inside a task span, `~` = blocked in `recv()`, `.` = idle,
/// followed by the rank's busy fraction. The trailer names the
/// compute-imbalance ratio (max rank compute / mean rank compute). Wants
/// wall-clock traces; logical clocks render but the geometry is event
/// counts, not time.
pub fn render_gantt(log: &TraceLog, width: usize) -> String {
    let width = width.clamp(16, 512);
    // Collect matched spans and wait intervals per rank.
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    let mut spans: Vec<Vec<(u64, u64)>> = Vec::new();
    let mut waits: Vec<Vec<(u64, u64)>> = Vec::new();
    for rt in &log.ranks {
        let mut open: HashMap<(u32, u8), Vec<u64>> = HashMap::new();
        let mut sp = Vec::new();
        let mut wt = Vec::new();
        for ev in &rt.events {
            lo = lo.min(ev.at);
            hi = hi.max(ev.at);
            match ev.kind {
                EventKind::TaskBegin { task, class } => {
                    open.entry((task, class as u8)).or_default().push(ev.at);
                }
                EventKind::TaskEnd { task, class } => {
                    if let Some(b) = open.get_mut(&(task, class as u8)).and_then(Vec::pop) {
                        sp.push((b, ev.at));
                    }
                }
                EventKind::Recv { wait_ns, .. } if wait_ns > 0 => {
                    wt.push((ev.at.saturating_sub(wait_ns), ev.at));
                }
                _ => {}
            }
        }
        spans.push(sp);
        waits.push(wt);
    }
    if lo == u64::MAX || hi <= lo {
        return "gantt: empty trace\n".to_string();
    }
    let span = (hi - lo) as f64;
    let cell = |at: u64| -> usize {
        (((at - lo) as f64 / span) * (width as f64 - 1.0)).round() as usize
    };

    let mut out = String::new();
    let mut compute: Vec<u64> = Vec::new();
    for (ri, rt) in log.ranks.iter().enumerate() {
        let mut row = vec![b'.'; width];
        for &(b, e) in &waits[ri] {
            for c in row.iter_mut().take(cell(e) + 1).skip(cell(b)) {
                *c = b'~';
            }
        }
        let mut busy = 0u64;
        for &(b, e) in &spans[ri] {
            busy += e - b;
            for c in row.iter_mut().take(cell(e) + 1).skip(cell(b)) {
                *c = b'#';
            }
        }
        compute.push(busy);
        let pct = busy as f64 / span * 100.0;
        out.push_str(&format!(
            "rank {:>3} |{}| {:>5.1}% busy\n",
            rt.rank,
            String::from_utf8(row).unwrap(),
            pct
        ));
    }
    let max = compute.iter().copied().max().unwrap_or(0) as f64;
    let mean = if compute.is_empty() {
        0.0
    } else {
        compute.iter().sum::<u64>() as f64 / compute.len() as f64
    };
    out.push_str(&format!(
        "window {:.3} ms   compute imbalance (max/mean) {:.2}\n",
        span / 1e6,
        if mean > 0.0 { max / mean } else { 0.0 }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommCounters, Event, RankTrace};

    fn two_rank_log() -> TraceLog {
        let r0 = RankTrace {
            rank: 0,
            events: vec![
                Event { at: 1, kind: EventKind::Fence { phase: 0 } },
                Event { at: 2, kind: EventKind::TaskBegin { task: 5, class: TaskClass::Comp1d } },
                Event { at: 3, kind: EventKind::Send { peer: 1, bytes: 64, kind: 1 } },
                Event { at: 4, kind: EventKind::TaskEnd { task: 5, class: TaskClass::Comp1d } },
                Event { at: 5, kind: EventKind::Gauge { id: 0, value: 2 } },
                Event { at: 6, kind: EventKind::SendDropped { peer: 1, bytes: 8, kind: 0 } },
                Event { at: 7, kind: EventKind::Fence { phase: u64::MAX } },
            ],
            dropped_events: 0,
            comm: CommCounters::default(),
        };
        let r1 = RankTrace {
            rank: 1,
            events: vec![
                Event { at: 1, kind: EventKind::Fence { phase: 0 } },
                Event {
                    at: 4,
                    kind: EventKind::Recv { peer: 0, bytes: 64, kind: 1, wait_ns: 2 },
                },
                Event { at: 5, kind: EventKind::Heartbeat { seq: 3 } },
                Event { at: 8, kind: EventKind::Fence { phase: u64::MAX } },
            ],
            dropped_events: 0,
            comm: CommCounters::default(),
        };
        TraceLog { ranks: vec![r0, r1], wall_ns: 10, digest: 0xabc }
    }

    #[test]
    fn export_is_valid_and_deterministic() {
        let log = two_rank_log();
        let a = chrome_trace(&log).compact();
        let b = chrome_trace(&log).compact();
        assert_eq!(a, b);
        let j = chrome_trace(&log);
        validate_chrome_trace(&j).unwrap();
        // The matched send/recv pair produced exactly one flow arrow.
        let evs = j.get("traceEvents").unwrap().as_arr().unwrap();
        let n_s = evs.iter().filter(|e| e.get("ph").unwrap().as_str().ok() == Some("s")).count();
        let n_f = evs.iter().filter(|e| e.get("ph").unwrap().as_str().ok() == Some("f")).count();
        assert_eq!((n_s, n_f), (1, 1));
        // Counters for the gauge and the heartbeat.
        let n_c = evs.iter().filter(|e| e.get("ph").unwrap().as_str().ok() == Some("C")).count();
        assert_eq!(n_c, 2);
        // wall_ns (host timing) must not leak into the export.
        assert!(!a.contains("wall_ns\":10"));
    }

    #[test]
    fn unpaired_begin_is_skipped() {
        let rt = RankTrace {
            rank: 0,
            events: vec![
                Event { at: 1, kind: EventKind::TaskBegin { task: 1, class: TaskClass::Factor } },
                Event { at: 2, kind: EventKind::TaskBegin { task: 2, class: TaskClass::Bdiv } },
                Event { at: 3, kind: EventKind::TaskEnd { task: 2, class: TaskClass::Bdiv } },
            ],
            dropped_events: 0,
            comm: CommCounters::default(),
        };
        let log = TraceLog { ranks: vec![rt], wall_ns: 0, digest: 0 };
        let j = chrome_trace(&log);
        validate_chrome_trace(&j).unwrap();
        let evs = j.get("traceEvents").unwrap().as_arr().unwrap();
        let n_b = evs.iter().filter(|e| e.get("ph").unwrap().as_str().ok() == Some("B")).count();
        assert_eq!(n_b, 1, "the unclosed Factor begin must be dropped");
    }

    #[test]
    fn sends_beyond_recvs_get_no_flow() {
        let r0 = RankTrace {
            rank: 0,
            events: vec![
                Event { at: 1, kind: EventKind::Send { peer: 1, bytes: 8, kind: 0 } },
                Event { at: 2, kind: EventKind::Send { peer: 1, bytes: 8, kind: 0 } },
            ],
            dropped_events: 0,
            comm: CommCounters::default(),
        };
        let r1 = RankTrace {
            rank: 1,
            events: vec![Event {
                at: 3,
                kind: EventKind::Recv { peer: 0, bytes: 8, kind: 0, wait_ns: 0 },
            }],
            dropped_events: 0,
            comm: CommCounters::default(),
        };
        let log = TraceLog { ranks: vec![r0, r1], wall_ns: 0, digest: 0 };
        let j = chrome_trace(&log);
        validate_chrome_trace(&j).unwrap();
        let evs = j.get("traceEvents").unwrap().as_arr().unwrap();
        let n_s = evs.iter().filter(|e| e.get("ph").unwrap().as_str().ok() == Some("s")).count();
        assert_eq!(n_s, 1, "only the matched first send flows");
    }

    #[test]
    fn serve_track_async_spans_and_flows_export() {
        use crate::SERVE_RANK;
        // Serve track: request 42 parent span, queue_wait child, a flow
        // start into rank 0, plus an *unpaired* async begin (id 43) that
        // must be skipped.
        let serve = RankTrace {
            rank: SERVE_RANK,
            events: vec![
                Event { at: 0, kind: EventKind::AsyncBegin { id: 42, stage: ServeStage::Request as u8 } },
                Event { at: 0, kind: EventKind::AsyncBegin { id: 42, stage: ServeStage::QueueWait as u8 } },
                Event { at: 5, kind: EventKind::AsyncEnd { id: 42, stage: ServeStage::QueueWait as u8 } },
                Event { at: 5, kind: EventKind::FlowStart { id: 7 } },
                Event { at: 9, kind: EventKind::AsyncEnd { id: 42, stage: ServeStage::Request as u8 } },
                Event { at: 9, kind: EventKind::AsyncBegin { id: 43, stage: ServeStage::Request as u8 } },
            ],
            dropped_events: 0,
            comm: CommCounters::default(),
        };
        // Solve rank: receives the flow and also exchanges one message
        // with rank 1, exercising id-space separation.
        let r0 = RankTrace {
            rank: 0,
            events: vec![
                Event { at: 6, kind: EventKind::FlowEnd { id: 7 } },
                Event { at: 7, kind: EventKind::Send { peer: 1, bytes: 8, kind: 0 } },
            ],
            dropped_events: 0,
            comm: CommCounters::default(),
        };
        let r1 = RankTrace {
            rank: 1,
            events: vec![Event {
                at: 8,
                kind: EventKind::Recv { peer: 0, bytes: 8, kind: 0, wait_ns: 0 },
            }],
            dropped_events: 0,
            comm: CommCounters::default(),
        };
        let log = TraceLog { ranks: vec![serve, r0, r1], wall_ns: 0, digest: 0 };
        let j = chrome_trace(&log);
        validate_chrome_trace(&j).unwrap();
        let text = j.compact();
        assert!(text.contains("\"serve\""), "serve track must be named");
        let evs = j.get("traceEvents").unwrap().as_arr().unwrap();
        let count = |ph: &str| {
            evs.iter().filter(|e| e.get("ph").unwrap().as_str().ok() == Some(ph)).count()
        };
        // request b/e + queue_wait b/e; the unpaired id-43 begin dropped.
        assert_eq!((count("b"), count("e")), (2, 2));
        // One recorded flow + one message flow, with distinct ids.
        assert_eq!((count("s"), count("f")), (2, 2));
        let ids: Vec<u64> = evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str().ok() == Some("s"))
            .map(|e| e.get("id").unwrap().as_f64().unwrap() as u64)
            .collect();
        assert_ne!(ids[0], ids[1], "message and recorded flow ids must not collide");
        // Determinism.
        assert_eq!(j.compact(), chrome_trace(&log).compact());
    }

    #[test]
    fn gantt_renders_rows_and_imbalance() {
        let log = two_rank_log();
        let g = render_gantt(&log, 32);
        assert!(g.contains("rank   0 |"));
        assert!(g.contains("rank   1 |"));
        assert!(g.contains("imbalance"));
        assert!(g.contains('#'));
    }
}
