//! The stall watchdog: turns per-rank progress heartbeats and mailbox
//! gauges into a liveness verdict.
//!
//! Two independent starvation signatures are checked per rank, and
//! either one flags it:
//!
//! 1. **Progress gap.** Every completed task increments a run-global
//!    progress counter and the completing rank records
//!    [`crate::EventKind::Heartbeat`] carrying the post-increment value.
//!    A healthy run interleaves: between two consecutive heartbeats of
//!    one rank, the rest of the machine advances by a bounded amount. A
//!    starved rank shows a long stretch where the global counter races
//!    ahead while the rank completes nothing. The gap sequence analyzed
//!    per rank is `[0, h₁, …, h_k]` — the leading gap counts (a rank
//!    that only starts finishing work near the end was starved at the
//!    start), the trailing gap does not (a rank that ran out of assigned
//!    tasks early is *done*, not stuck). A gap flags when it reaches
//!    `max(min_gap, gap_frac · total_progress)`.
//!
//! 2. **Mailbox backlog.** The solver samples the
//!    [`crate::GaugeId::MailboxDepth`] gauge (messages sent to the rank
//!    and not yet received). A starved rank keeps being *sent* work it
//!    is never serviced to consume, so its backlog climbs far above the
//!    steady trickle of a healthy run. The peak sampled depth flags when
//!    it reaches `max(min_backlog, backlog_frac · recvs)` — normalized
//!    by the rank's own total received-message count, because a rank
//!    that legitimately handles most of the traffic also legitimately
//!    queues more of it at once.
//!
//! The signals are complementary: a rank the whole machine quickly
//! blocks on cannot be starved *long* (the sim's liveness fallback
//! services it as soon as nothing else can run), so its progress gap
//! stays modest — but the burst-service pattern leaves its mailbox
//! visibly piled up at exactly the moments it completes work. The
//! backlog test wants dense gauge sampling (`sample_every = 1`);
//! heartbeats are recorded per completed task regardless.

use crate::{EventKind, GaugeId, TraceLog};

/// Watchdog thresholds.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogOptions {
    /// Absolute floor on the progress gap: gaps below this never flag
    /// (keeps tiny runs, where any interleaving is coarse, from
    /// false-firing).
    pub min_gap: u64,
    /// Relative progress-gap threshold: fraction of the run's total
    /// completed tasks a single gap must reach to flag.
    pub gap_frac: f64,
    /// Absolute floor on the mailbox backlog: peaks below this never
    /// flag (a handful of queued messages is normal burst traffic).
    pub min_backlog: u64,
    /// Relative backlog threshold: fraction of the rank's total received
    /// messages its peak sampled mailbox depth must reach to flag.
    pub backlog_frac: f64,
}

impl Default for WatchdogOptions {
    /// Empirical defaults, re-validated on the chaos grid problems
    /// whenever task granularity shifts (last: the amalgamation retune,
    /// which made supernodes fatter — fewer tasks per run, so healthy
    /// relative gaps grew and the fractions moved up accordingly).
    /// Deployments with unusual problem shapes can override via
    /// `PASTIX_WATCHDOG_GAP` / `PASTIX_WATCHDOG_BACKLOG`.
    fn default() -> Self {
        Self { min_gap: 16, gap_frac: 0.45, min_backlog: 10, backlog_frac: 0.45 }
    }
}

/// Parses one threshold knob: `"floor,frac"` sets both the absolute
/// floor and the relative fraction; a bare number below 1.0 sets only the
/// fraction, any other bare number only the floor. Malformed input leaves
/// the pair untouched.
fn parse_knob(raw: &str, floor: &mut u64, frac: &mut f64) {
    let raw = raw.trim();
    if let Some((a, b)) = raw.split_once(',') {
        if let (Ok(f0), Ok(f1)) = (a.trim().parse::<u64>(), b.trim().parse::<f64>()) {
            if f1.is_finite() && f1 >= 0.0 {
                *floor = f0;
                *frac = f1;
            }
        }
    } else if let Ok(v) = raw.parse::<f64>() {
        if !v.is_finite() || v < 0.0 {
            return; // "-3" / "inf" / "NaN" would disarm the watchdog
        }
        if v < 1.0 {
            *frac = v;
        } else {
            *floor = v as u64;
        }
    }
}

impl WatchdogOptions {
    /// Defaults overridden by the `PASTIX_WATCHDOG_GAP` and
    /// `PASTIX_WATCHDOG_BACKLOG` environment knobs, so a deployed serving
    /// run can be tuned without a rebuild.
    ///
    /// Each knob accepts `floor,frac` (absolute floor and relative
    /// fraction, e.g. `PASTIX_WATCHDOG_GAP=32,0.5`), or a single number:
    /// below 1.0 it sets the fraction, otherwise the floor. Unset or
    /// malformed values keep the [`Default`] thresholds.
    pub fn from_env() -> Self {
        let mut o = Self::default();
        if let Ok(raw) = std::env::var("PASTIX_WATCHDOG_GAP") {
            parse_knob(&raw, &mut o.min_gap, &mut o.gap_frac);
        }
        if let Ok(raw) = std::env::var("PASTIX_WATCHDOG_BACKLOG") {
            parse_knob(&raw, &mut o.min_backlog, &mut o.backlog_frac);
        }
        o
    }
}

/// One rank's progress health.
#[derive(Debug, Clone, Copy)]
pub struct RankStall {
    /// Rank id.
    pub rank: u32,
    /// Heartbeats recorded.
    pub heartbeats: u64,
    /// Largest progress gap (see module docs).
    pub max_gap: u64,
    /// Global progress value at which the largest gap ended.
    pub gap_at: u64,
    /// Peak sampled mailbox depth (0 when the gauge was never sampled).
    pub mailbox_peak: u64,
    /// Messages this rank received over the run.
    pub recvs: u64,
    /// Whether the progress gap reached its stall threshold.
    pub gap_stalled: bool,
    /// Whether the mailbox backlog reached its stall threshold.
    pub backlog_stalled: bool,
    /// Whether either signal flagged the rank.
    pub stalled: bool,
}

/// The watchdog's verdict over a whole trace.
#[derive(Debug, Clone, Default)]
pub struct StallReport {
    /// Total completed tasks observed (max heartbeat value).
    pub total_progress: u64,
    /// The effective progress-gap threshold applied.
    pub threshold: u64,
    /// Per-rank rows, rank order.
    pub ranks: Vec<RankStall>,
}

impl StallReport {
    /// Ranks flagged as stalled.
    pub fn stalled_ranks(&self) -> Vec<u32> {
        self.ranks.iter().filter(|r| r.stalled).map(|r| r.rank).collect()
    }

    /// `true` when any rank stalled.
    pub fn any_stalled(&self) -> bool {
        self.ranks.iter().any(|r| r.stalled)
    }

    /// One-line-per-rank rendering for diagnostics.
    pub fn render(&self) -> String {
        let mut out = format!(
            "watchdog: total progress {} tasks, gap threshold {}\n",
            self.total_progress, self.threshold
        );
        for r in &self.ranks {
            out.push_str(&format!(
                "rank {:>3}  heartbeats {:>6}  max gap {:>6} @ {:>6}  mailbox peak {:>5}/{:<5} {}\n",
                r.rank,
                r.heartbeats,
                r.max_gap,
                r.gap_at,
                r.mailbox_peak,
                r.recvs,
                match (r.gap_stalled, r.backlog_stalled) {
                    (true, true) => "STALLED (gap+backlog)",
                    (true, false) => "STALLED (gap)",
                    (false, true) => "STALLED (backlog)",
                    (false, false) => "ok",
                }
            ));
        }
        out
    }
}

/// Runs the watchdog and, when any rank is flagged, records a
/// [`crate::flight::FlightKind::WatchdogTrip`] per stalled rank and dumps
/// the flight recorder's black box — the production entry point, so a
/// trip mid-serve leaves a forensic record naming the requests in flight.
/// Returns the report plus the dump path (if a dump was written).
pub fn analyze_and_dump(
    log: &TraceLog,
    opts: &WatchdogOptions,
) -> (StallReport, Option<std::path::PathBuf>) {
    let rep = analyze(log, opts);
    if !rep.any_stalled() {
        return (rep, None);
    }
    for r in rep.stalled_ranks() {
        crate::flight::record(crate::flight::FlightKind::WatchdogTrip, r as u64, 0);
    }
    let path = crate::flight::dump_blackbox("watchdog_trip");
    (rep, path)
}

/// Runs the watchdog over a recorded trace.
pub fn analyze(log: &TraceLog, opts: &WatchdogOptions) -> StallReport {
    let mut per_rank: Vec<(u32, Vec<u64>, u64, u64)> = Vec::with_capacity(log.ranks.len());
    let mut total = 0u64;
    for rt in &log.ranks {
        let mut hs: Vec<u64> = Vec::new();
        let mut mailbox_peak = 0u64;
        for ev in &rt.events {
            match ev.kind {
                EventKind::Heartbeat { seq } => hs.push(seq),
                EventKind::Gauge { id, value } if id == GaugeId::MailboxDepth as u8 => {
                    mailbox_peak = mailbox_peak.max(value);
                }
                _ => {}
            }
        }
        // Ring order is recording order, but sort defensively: gaps are
        // about *values*, not arrival order.
        hs.sort_unstable();
        total = total.max(hs.last().copied().unwrap_or(0));
        per_rank.push((rt.rank, hs, mailbox_peak, rt.comm.recvs));
    }
    let threshold = opts.min_gap.max((opts.gap_frac * total as f64).ceil() as u64);
    let ranks = per_rank
        .into_iter()
        .map(|(rank, hs, mailbox_peak, recvs)| {
            let mut max_gap = 0u64;
            let mut gap_at = 0u64;
            let mut prev = 0u64;
            for &h in &hs {
                let gap = h - prev;
                if gap > max_gap {
                    max_gap = gap;
                    gap_at = h;
                }
                prev = h;
            }
            let gap_stalled = !hs.is_empty() && max_gap >= threshold;
            let backlog_threshold = opts
                .min_backlog
                .max((opts.backlog_frac * recvs as f64).ceil() as u64);
            let backlog_stalled = mailbox_peak >= backlog_threshold;
            RankStall {
                rank,
                heartbeats: hs.len() as u64,
                max_gap,
                gap_at,
                mailbox_peak,
                recvs,
                gap_stalled,
                backlog_stalled,
                stalled: gap_stalled || backlog_stalled,
            }
        })
        .collect();
    StallReport { total_progress: total, threshold, ranks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommCounters, Event, RankTrace};

    fn log_with_heartbeats(per_rank: Vec<Vec<u64>>) -> TraceLog {
        let ranks = per_rank
            .into_iter()
            .enumerate()
            .map(|(r, hs)| RankTrace {
                rank: r as u32,
                events: hs
                    .into_iter()
                    .map(|seq| Event { at: seq, kind: EventKind::Heartbeat { seq } })
                    .collect(),
                dropped_events: 0,
                comm: CommCounters::default(),
            })
            .collect();
        TraceLog { ranks, wall_ns: 0, digest: 0 }
    }

    #[test]
    fn interleaved_progress_is_healthy() {
        // Two ranks alternating: gaps of 2 out of 100 total.
        let log = log_with_heartbeats(vec![
            (1..=100).filter(|s| s % 2 == 1).collect(),
            (1..=100).filter(|s| s % 2 == 0).collect(),
        ]);
        let rep = analyze(&log, &WatchdogOptions::default());
        assert_eq!(rep.total_progress, 100);
        assert!(!rep.any_stalled(), "{}", rep.render());
    }

    #[test]
    fn starved_rank_is_flagged() {
        // Rank 1 completes nothing until the other rank has finished 80
        // of 100 tasks — the leading gap fires.
        let log = log_with_heartbeats(vec![(1..=80).collect(), (81..=100).collect()]);
        let rep = analyze(&log, &WatchdogOptions::default());
        assert!(rep.ranks[1].stalled, "{}", rep.render());
        assert!(rep.ranks[1].gap_stalled);
        assert!(!rep.ranks[0].stalled, "{}", rep.render());
        assert_eq!(rep.stalled_ranks(), vec![1]);
        assert_eq!(rep.ranks[1].max_gap, 81);
    }

    #[test]
    fn early_finisher_is_not_flagged() {
        // Rank 0 finishes its 10 tasks in the first 20 completions and
        // then legitimately goes idle; the trailing gap must not count.
        let log = log_with_heartbeats(vec![
            (1..=20).filter(|s| s % 2 == 0).collect(),
            (1..=20).filter(|s| s % 2 == 1).chain(21..=100).collect(),
        ]);
        let rep = analyze(&log, &WatchdogOptions::default());
        assert!(!rep.any_stalled(), "{}", rep.render());
    }

    #[test]
    fn silent_rank_reports_zero_heartbeats() {
        let log = log_with_heartbeats(vec![(1..=50).collect(), vec![]]);
        let rep = analyze(&log, &WatchdogOptions::default());
        assert_eq!(rep.ranks[1].heartbeats, 0);
        // No heartbeats means no tasks were assigned — not a stall claim.
        assert!(!rep.ranks[1].stalled);
    }

    #[test]
    fn piled_mailbox_flags_backlog_even_with_modest_gaps() {
        // Rank 1 interleaves acceptably (gap signal quiet) but its
        // sampled mailbox shows 12 of its 20 messages queued at once —
        // the burst-service signature of starvation at the blocking
        // frontier.
        let mut log = log_with_heartbeats(vec![
            (1..=100).filter(|s| s % 2 == 1).collect(),
            (1..=100).filter(|s| s % 2 == 0).collect(),
        ]);
        log.ranks[1].comm.recvs = 20;
        log.ranks[1].events.push(Event {
            at: 50,
            kind: EventKind::Gauge { id: GaugeId::MailboxDepth as u8, value: 12 },
        });
        let rep = analyze(&log, &WatchdogOptions::default());
        assert!(rep.ranks[1].stalled, "{}", rep.render());
        assert!(rep.ranks[1].backlog_stalled);
        assert!(!rep.ranks[1].gap_stalled);
        assert_eq!(rep.ranks[1].mailbox_peak, 12);
        // A modest queue relative to heavy traffic stays quiet: 12 of
        // 200 received is a trickle, not a pile-up.
        log.ranks[1].comm.recvs = 200;
        let rep = analyze(&log, &WatchdogOptions::default());
        assert!(!rep.ranks[1].stalled, "{}", rep.render());
    }

    #[test]
    fn env_knobs_override_thresholds() {
        // No other test in this binary reads these variables, so the
        // process-global mutation cannot race.
        std::env::set_var("PASTIX_WATCHDOG_GAP", "32,0.5");
        std::env::set_var("PASTIX_WATCHDOG_BACKLOG", "0.75");
        let o = WatchdogOptions::from_env();
        assert_eq!(o.min_gap, 32);
        assert!((o.gap_frac - 0.5).abs() < 1e-12);
        // Bare fraction: floor keeps its default.
        assert_eq!(o.min_backlog, WatchdogOptions::default().min_backlog);
        assert!((o.backlog_frac - 0.75).abs() < 1e-12);
        // Bare floor ≥ 1: fraction keeps its default.
        std::env::set_var("PASTIX_WATCHDOG_BACKLOG", "9");
        let o = WatchdogOptions::from_env();
        assert_eq!(o.min_backlog, 9);
        assert!((o.backlog_frac - WatchdogOptions::default().backlog_frac).abs() < 1e-12);
        // Malformed input keeps the defaults.
        std::env::set_var("PASTIX_WATCHDOG_GAP", "banana");
        let o = WatchdogOptions::from_env();
        assert_eq!(o.min_gap, WatchdogOptions::default().min_gap);
        std::env::remove_var("PASTIX_WATCHDOG_GAP");
        std::env::remove_var("PASTIX_WATCHDOG_BACKLOG");
        let o = WatchdogOptions::from_env();
        assert_eq!(o.min_gap, WatchdogOptions::default().min_gap);

        // Raised thresholds actually change a verdict: the starved-rank
        // log from above stops flagging under a huge floor.
        let log = log_with_heartbeats(vec![(1..=80).collect(), (81..=100).collect()]);
        let strict = analyze(&log, &WatchdogOptions::default());
        assert!(strict.any_stalled());
        let lax = analyze(&log, &WatchdogOptions { min_gap: 1000, ..Default::default() });
        assert!(!lax.any_stalled(), "{}", lax.render());
    }

    #[test]
    fn parse_knob_edge_cases() {
        let cases: &[(&str, u64, f64)] = &[
            // floor,frac with whitespace everywhere
            (" 16 , 0.25 ", 16, 0.25),
            // frac part of a pair may exceed 1.0 (it is a fraction of
            // total progress, callers may deliberately over-damp)
            ("8,2.0", 8, 2.0),
            // bare fraction
            ("0.9", 99, 0.9),
            // bare zero is a fraction (disables the relative signal,
            // floor still guards)
            ("0", 99, 0.0),
            // bare floor
            ("123", 123, 0.5),
            // bare 1.0 is a floor, not a fraction
            ("1.0", 1, 0.5),
        ];
        for &(raw, want_floor, want_frac) in cases {
            let (mut floor, mut frac) = (99u64, 0.5f64);
            parse_knob(raw, &mut floor, &mut frac);
            assert_eq!(floor, want_floor, "floor for {raw:?}");
            assert!((frac - want_frac).abs() < 1e-12, "frac for {raw:?}: {frac}");
        }
        // Malformed or hostile inputs leave both untouched.
        for raw in [
            "", "banana", "32,banana", "banana,0.5", "-3", "-0.5", "inf",
            "NaN", "1,-0.5", "1,inf", "0.5,0.5", "1,2,3", ",", "32,",
        ] {
            let (mut floor, mut frac) = (99u64, 0.5f64);
            parse_knob(raw, &mut floor, &mut frac);
            assert_eq!(floor, 99, "floor must survive {raw:?}");
            assert!((frac - 0.5).abs() < 1e-12, "frac must survive {raw:?}");
        }
    }

    #[test]
    fn trip_records_flight_event_and_dumps() {
        let dir = std::env::temp_dir().join("pastix-watchdog-trip-test");
        let _ = std::fs::remove_dir_all(&dir);
        crate::flight::set_blackbox_dir(Some(&dir));
        let log = log_with_heartbeats(vec![(1..=80).collect(), (81..=100).collect()]);
        let (rep, path) = analyze_and_dump(&log, &WatchdogOptions::default());
        crate::flight::set_blackbox_dir(None);
        assert!(rep.any_stalled());
        let path = path.expect("trip must dump a black box");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("watchdog_trip"));
        // The trip event for the starved rank is in the dumped ring.
        assert!(
            crate::flight::snapshot().iter().any(|e| {
                e.kind == crate::flight::FlightKind::WatchdogTrip as u8 && e.a == 1
            })
        );
        // A healthy log neither trips nor dumps.
        let healthy = log_with_heartbeats(vec![
            (1..=100).filter(|s| s % 2 == 1).collect(),
            (1..=100).filter(|s| s % 2 == 0).collect(),
        ]);
        let (rep, path) = analyze_and_dump(&healthy, &WatchdogOptions::default());
        assert!(!rep.any_stalled());
        assert!(path.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn small_absolute_backlog_never_flags() {
        // Peaks under the absolute floor stay quiet no matter how small
        // the rank's traffic is.
        let mut log = log_with_heartbeats(vec![(1..=40).collect(), (41..=50).collect()]);
        log.ranks[1].comm.recvs = 2;
        log.ranks[1].events.push(Event {
            at: 45,
            kind: EventKind::Gauge { id: GaugeId::MailboxDepth as u8, value: 4 },
        });
        let rep = analyze(&log, &WatchdogOptions::default());
        assert!(!rep.ranks[1].backlog_stalled, "{}", rep.render());
    }
}
