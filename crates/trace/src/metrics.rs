//! The typed metrics registry: named counters, gauges, and histograms,
//! kept per rank and merged, replacing the solver's ad-hoc global atomics.
//!
//! Design: the *hot path* never touches this registry — workers bump plain
//! per-rank `u64` fields (lock-free by construction) and merge them here
//! once, at run end. The registry itself is therefore a small mutex-guarded
//! map: contention-free in practice, and a handle (`Clone` = `Arc` bump)
//! can be owned by a `SolverConfig`, returned from a run, and read by the
//! caller.

use pastix_json::{obj, Json};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A power-of-two-bucketed histogram of `u64` samples (64 buckets: bucket
/// `i` holds values whose highest set bit is `i`; bucket 0 holds 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts.
    pub buckets: [u64; 64],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (u64::MAX when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        let b = (64 - v.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0 < q <= 1`), linearly interpolated within
    /// the bucket that contains it and clamped to the observed `[min, max]`.
    ///
    /// With power-of-two buckets the old upper-edge answer over-reported by
    /// up to 2× (a p99 sitting at the *bottom* of bucket `[2^i, 2^{i+1})`
    /// was still reported as `2^{i+1}-1`); interpolation assumes samples
    /// are uniform within a bucket, so the estimate is exact for uniform
    /// fill and off by at most one bucket width in the worst case — still
    /// monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil()).max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                let frac = (target - seen) as f64 / c as f64;
                let est = (lo as f64 + frac * (hi - lo) as f64).round() as u64;
                return est.clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Folds another histogram in.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One registered metric. The registry is *typed*: using one name with two
/// different metric types is a caller bug and panics with the name.
#[derive(Debug, Clone)]
enum Metric {
    Counter {
        total: u64,
        per_rank: BTreeMap<u32, u64>,
    },
    Gauge(f64),
    Hist {
        merged: Box<Histogram>,
        per_rank: BTreeMap<u32, Histogram>,
    },
}

#[derive(Default)]
struct Inner {
    metrics: BTreeMap<String, Metric>,
}

/// A typed metrics registry handle. Cloning shares the underlying store
/// (`Arc`); `Default` creates a fresh empty registry.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &self.snapshot().counters.len())
            .finish()
    }
}

fn type_mismatch(name: &str, want: &str) -> ! {
    panic!("metric {name:?} already registered with a different type (wanted {want})")
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `name` (registering it on first use).
    pub fn add_counter(&self, name: &str, n: u64) {
        self.add_counter_rank(name, None, n);
    }

    /// Adds `n` to counter `name`, attributed to `rank` (the merged total
    /// is updated either way).
    pub fn add_counter_rank(&self, name: &str, rank: Option<u32>, n: u64) {
        let mut g = self.inner.lock().unwrap();
        let m = g.metrics.entry(name.to_string()).or_insert(Metric::Counter {
            total: 0,
            per_rank: BTreeMap::new(),
        });
        match m {
            Metric::Counter { total, per_rank } => {
                *total += n;
                if let Some(r) = rank {
                    *per_rank.entry(r).or_insert(0) += n;
                }
            }
            _ => type_mismatch(name, "counter"),
        }
    }

    /// Reads counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.inner.lock().unwrap().metrics.get(name) {
            Some(Metric::Counter { total, .. }) => *total,
            Some(_) => type_mismatch(name, "counter"),
            None => 0,
        }
    }

    /// Per-rank shards of counter `name` (empty when absent or never
    /// attributed).
    pub fn counter_per_rank(&self, name: &str) -> Vec<(u32, u64)> {
        match self.inner.lock().unwrap().metrics.get(name) {
            Some(Metric::Counter { per_rank, .. }) => {
                per_rank.iter().map(|(&r, &v)| (r, v)).collect()
            }
            Some(_) => type_mismatch(name, "counter"),
            None => Vec::new(),
        }
    }

    /// Sets gauge `name`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        let mut g = self.inner.lock().unwrap();
        match g.metrics.entry(name.to_string()).or_insert(Metric::Gauge(v)) {
            Metric::Gauge(slot) => *slot = v,
            _ => type_mismatch(name, "gauge"),
        }
    }

    /// Reads gauge `name` (`None` when absent).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.inner.lock().unwrap().metrics.get(name) {
            Some(Metric::Gauge(v)) => Some(*v),
            Some(_) => type_mismatch(name, "gauge"),
            None => None,
        }
    }

    /// Records one sample into histogram `name`.
    pub fn observe(&self, name: &str, v: u64) {
        self.observe_rank(name, None, v);
    }

    /// Records one sample into histogram `name`, attributed to `rank`
    /// (the merged histogram is updated either way, so quantiles over all
    /// ranks remain one lookup).
    pub fn observe_rank(&self, name: &str, rank: Option<u32>, v: u64) {
        let mut g = self.inner.lock().unwrap();
        match g
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Hist {
                merged: Box::default(),
                per_rank: BTreeMap::new(),
            }) {
            Metric::Hist { merged, per_rank } => {
                merged.observe(v);
                if let Some(r) = rank {
                    per_rank.entry(r).or_default().observe(v);
                }
            }
            _ => type_mismatch(name, "histogram"),
        }
    }

    /// Folds a whole pre-aggregated histogram into `name`, attributed to
    /// `rank` — how per-rank shards collected off-registry (e.g. one
    /// `Histogram` per worker, lock-free) are merged at run end.
    pub fn merge_histogram(&self, name: &str, rank: Option<u32>, h: &Histogram) {
        let mut g = self.inner.lock().unwrap();
        match g
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Hist {
                merged: Box::default(),
                per_rank: BTreeMap::new(),
            }) {
            Metric::Hist { merged, per_rank } => {
                merged.merge(h);
                if let Some(r) = rank {
                    per_rank.entry(r).or_default().merge(h);
                }
            }
            _ => type_mismatch(name, "histogram"),
        }
    }

    /// Reads histogram `name` (`None` when absent).
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        match self.inner.lock().unwrap().metrics.get(name) {
            Some(Metric::Hist { merged, .. }) => Some((**merged).clone()),
            Some(_) => type_mismatch(name, "histogram"),
            None => None,
        }
    }

    /// Per-rank shards of histogram `name` (empty when absent or never
    /// attributed).
    pub fn histogram_per_rank(&self, name: &str) -> Vec<(u32, Histogram)> {
        match self.inner.lock().unwrap().metrics.get(name) {
            Some(Metric::Hist { per_rank, .. }) => {
                per_rank.iter().map(|(&r, h)| (r, h.clone())).collect()
            }
            Some(_) => type_mismatch(name, "histogram"),
            None => Vec::new(),
        }
    }

    /// Removes every metric.
    pub fn reset(&self) {
        self.inner.lock().unwrap().metrics.clear();
    }

    /// Point-in-time copy of everything.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, m) in &g.metrics {
            match m {
                Metric::Counter { total, per_rank } => {
                    snap.counters.insert(name.clone(), *total);
                    if !per_rank.is_empty() {
                        snap.counters_per_rank.insert(name.clone(), per_rank.clone());
                    }
                }
                Metric::Gauge(v) => {
                    snap.gauges.insert(name.clone(), *v);
                }
                Metric::Hist { merged, per_rank } => {
                    snap.histograms.insert(name.clone(), (**merged).clone());
                    if !per_rank.is_empty() {
                        snap.histograms_per_rank.insert(name.clone(), per_rank.clone());
                    }
                }
            }
        }
        snap
    }

    /// Serializes a snapshot as JSON (counters, gauges, histogram
    /// summaries).
    pub fn to_json(&self) -> Json {
        let snap = self.snapshot();
        let counters: Vec<(String, Json)> = snap
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
            .collect();
        let gauges: Vec<(String, Json)> = snap
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Num(v)))
            .collect();
        let hists: Vec<(String, Json)> = snap
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    obj([
                        ("count", Json::Num(h.count as f64)),
                        ("sum", Json::Num(h.sum as f64)),
                        ("mean", Json::Num(h.mean())),
                        ("p50", Json::Num(h.quantile(0.5) as f64)),
                        ("p99", Json::Num(h.quantile(0.99) as f64)),
                        ("max", Json::Num(if h.count == 0 { 0.0 } else { h.max as f64 })),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("counters".to_string(), Json::Obj(counters)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("histograms".to_string(), Json::Obj(hists)),
        ])
    }
}

/// Point-in-time copy of a registry's contents.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Merged counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Per-rank counter shards by name (only names that were attributed).
    pub counters_per_rank: BTreeMap<String, BTreeMap<u32, u64>>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-rank histogram shards by name (only names that were attributed).
    pub histograms_per_rank: BTreeMap<String, BTreeMap<u32, Histogram>>,
}

/// Rewrites a registry name (`serve.cache.hits`) as a Prometheus metric
/// name (`pastix_serve_cache_hits`).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("pastix_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Deterministic float rendering for exposition: integers print without a
/// fraction, everything else uses Rust's shortest round-trip form.
fn prom_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (0.0.4): counters and gauges as single samples, per-rank counter
    /// shards as a `_per_rank{rank="r"}` series next to the merged total,
    /// and histograms as cumulative `_bucket{le="…"}` series (power-of-two
    /// edges, empty leading/trailing buckets elided) plus `_sum`/`_count`.
    /// Output is deterministic (names sorted, shortest-round-trip floats),
    /// so it can be golden-tested.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, &v) in &self.counters {
            let p = prom_name(name);
            out.push_str(&format!("# TYPE {p} counter\n{p} {v}\n"));
            if let Some(shards) = self.counters_per_rank.get(name) {
                let ps = format!("{p}_per_rank");
                out.push_str(&format!("# TYPE {ps} counter\n"));
                for (rank, &rv) in shards {
                    out.push_str(&format!("{ps}{{rank=\"{rank}\"}} {rv}\n"));
                }
            }
        }
        for (name, &v) in &self.gauges {
            let p = prom_name(name);
            out.push_str(&format!("# TYPE {p} gauge\n{p} {}\n", prom_num(v)));
        }
        for (name, h) in &self.histograms {
            let p = prom_name(name);
            out.push_str(&format!("# TYPE {p} histogram\n"));
            let last = h
                .buckets
                .iter()
                .rposition(|&c| c != 0)
                .map_or(0, |i| (i + 1).min(63));
            let mut cum = 0u64;
            for (i, &c) in h.buckets.iter().enumerate().take(last + 1) {
                cum += c;
                if c == 0 && i != last {
                    continue;
                }
                let le = if i >= 63 {
                    u64::MAX
                } else {
                    (2u64 << i) - 1
                };
                out.push_str(&format!("{p}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!("{p}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{p}_sum {}\n{p}_count {}\n", h.sum, h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_per_rank() {
        let m = MetricsRegistry::new();
        m.add_counter_rank("x", Some(0), 3);
        m.add_counter_rank("x", Some(1), 4);
        m.add_counter("x", 1);
        assert_eq!(m.counter("x"), 8);
        assert_eq!(m.counter_per_rank("x"), vec![(0, 3), (1, 4)]);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn gauges_and_reset() {
        let m = MetricsRegistry::new();
        m.set_gauge("g", 2.5);
        m.set_gauge("g", 3.5);
        assert_eq!(m.gauge("g"), Some(3.5));
        m.reset();
        assert_eq!(m.gauge("g"), None);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        assert!(h.quantile(0.5) >= 3);
        assert!(h.quantile(1.0) >= 1000);
        let mut h2 = Histogram::new();
        h2.observe(7);
        h.merge(&h2);
        assert_eq!(h.count, 6);
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        // 128 uniform samples across one power-of-two bucket [1024, 2047]:
        // interpolation should land within ~one sample-spacing of the true
        // quantile instead of pinning to the 2047 upper edge.
        let mut h = Histogram::new();
        for i in 0..128u64 {
            h.observe(1024 + i * 8);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        let true_p50 = 1024.0 + 0.5 * 1023.0;
        let true_p99 = 1024.0 + 0.99 * 1023.0;
        assert!(
            (p50 as f64 - true_p50).abs() <= 16.0,
            "p50 {p50} vs true {true_p50}"
        );
        assert!(
            (p99 as f64 - true_p99).abs() <= 16.0,
            "p99 {p99} vs true {true_p99}"
        );
        // The old upper-edge estimate reported 2047 for p50 (2× over); the
        // interpolated one must stay below 1.1× the true value.
        assert!((p50 as f64) < true_p50 * 1.1);
        // Monotone in q, clamped to observed extremes.
        assert!(h.quantile(0.01) <= p50 && p50 <= p99);
        assert!(h.quantile(1.0) <= h.max);
        assert!(h.quantile(0.0001) >= h.min);
    }

    #[test]
    fn quantile_single_sample_is_exact() {
        let mut h = Histogram::new();
        h.observe(777);
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 777);
        }
    }

    #[test]
    fn per_rank_histograms_merge() {
        let m = MetricsRegistry::new();
        m.observe_rank("lat", Some(0), 100);
        m.observe_rank("lat", Some(0), 200);
        m.observe_rank("lat", Some(1), 1000);
        m.observe("lat", 50); // unattributed still lands in the merge
        let merged = m.histogram("lat").unwrap();
        assert_eq!(merged.count, 4);
        assert_eq!(merged.sum, 1350);
        let shards = m.histogram_per_rank("lat");
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].0, 0);
        assert_eq!(shards[0].1.count, 2);
        assert_eq!(shards[1].1.count, 1);
        assert_eq!(shards[1].1.sum, 1000);

        // Off-registry shard folded in wholesale.
        let mut local = Histogram::new();
        local.observe(3000);
        local.observe(4000);
        m.merge_histogram("lat", Some(2), &local);
        assert_eq!(m.histogram("lat").unwrap().count, 6);
        let shards = m.histogram_per_rank("lat");
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[2].1.sum, 7000);
        // Snapshot carries the shards too.
        let snap = m.snapshot();
        assert_eq!(snap.histograms_per_rank["lat"].len(), 3);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let m = MetricsRegistry::new();
        m.add_counter_rank("serve.requests", Some(0), 3);
        m.add_counter_rank("serve.requests", Some(1), 2);
        m.set_gauge("ready_queue_depth", 4.0);
        m.observe("serve.latency_ns", 1500);
        m.observe("serve.latency_ns", 1600);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("# TYPE pastix_serve_requests counter"));
        assert!(text.contains("pastix_serve_requests 5"));
        assert!(text.contains("pastix_serve_requests_per_rank{rank=\"0\"} 3"));
        assert!(text.contains("# TYPE pastix_ready_queue_depth gauge"));
        assert!(text.contains("pastix_ready_queue_depth 4\n"));
        assert!(text.contains("# TYPE pastix_serve_latency_ns histogram"));
        assert!(text.contains("pastix_serve_latency_ns_bucket{le=\"2047\"} 2"));
        assert!(text.contains("pastix_serve_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("pastix_serve_latency_ns_sum 3100"));
        assert!(text.contains("pastix_serve_latency_ns_count 2"));
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(text, m.snapshot().to_prometheus());
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let m = MetricsRegistry::new();
        m.add_counter("x", 1);
        m.set_gauge("x", 1.0);
    }

    #[test]
    fn clone_shares_store() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        m2.add_counter("c", 5);
        assert_eq!(m.counter("c"), 5);
    }

    #[test]
    fn json_shape() {
        let m = MetricsRegistry::new();
        m.add_counter("c", 2);
        m.observe("h", 9);
        let j = m.to_json();
        assert_eq!(j.get("counters").unwrap().get("c").unwrap().as_f64().unwrap(), 2.0);
        assert_eq!(j.get("histograms").unwrap().get("h").unwrap().get("count").unwrap().as_f64().unwrap(), 1.0);
    }
}
