//! The typed metrics registry: named counters, gauges, and histograms,
//! kept per rank and merged, replacing the solver's ad-hoc global atomics.
//!
//! Design: the *hot path* never touches this registry — workers bump plain
//! per-rank `u64` fields (lock-free by construction) and merge them here
//! once, at run end. The registry itself is therefore a small mutex-guarded
//! map: contention-free in practice, and a handle (`Clone` = `Arc` bump)
//! can be owned by a `SolverConfig`, returned from a run, and read by the
//! caller.

use pastix_json::{obj, Json};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A power-of-two-bucketed histogram of `u64` samples (64 buckets: bucket
/// `i` holds values whose highest set bit is `i`; bucket 0 holds 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts.
    pub buckets: [u64; 64],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (u64::MAX when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        let b = (64 - v.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper edge of the bucket containing the `q`-quantile (`0 < q <= 1`):
    /// a coarse but monotone estimate, exact to a factor of two.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
            }
        }
        self.max
    }

    /// Folds another histogram in.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One registered metric. The registry is *typed*: using one name with two
/// different metric types is a caller bug and panics with the name.
#[derive(Debug, Clone)]
enum Metric {
    Counter {
        total: u64,
        per_rank: BTreeMap<u32, u64>,
    },
    Gauge(f64),
    Hist(Box<Histogram>),
}

#[derive(Default)]
struct Inner {
    metrics: BTreeMap<String, Metric>,
}

/// A typed metrics registry handle. Cloning shares the underlying store
/// (`Arc`); `Default` creates a fresh empty registry.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &self.snapshot().counters.len())
            .finish()
    }
}

fn type_mismatch(name: &str, want: &str) -> ! {
    panic!("metric {name:?} already registered with a different type (wanted {want})")
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `name` (registering it on first use).
    pub fn add_counter(&self, name: &str, n: u64) {
        self.add_counter_rank(name, None, n);
    }

    /// Adds `n` to counter `name`, attributed to `rank` (the merged total
    /// is updated either way).
    pub fn add_counter_rank(&self, name: &str, rank: Option<u32>, n: u64) {
        let mut g = self.inner.lock().unwrap();
        let m = g.metrics.entry(name.to_string()).or_insert(Metric::Counter {
            total: 0,
            per_rank: BTreeMap::new(),
        });
        match m {
            Metric::Counter { total, per_rank } => {
                *total += n;
                if let Some(r) = rank {
                    *per_rank.entry(r).or_insert(0) += n;
                }
            }
            _ => type_mismatch(name, "counter"),
        }
    }

    /// Reads counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.inner.lock().unwrap().metrics.get(name) {
            Some(Metric::Counter { total, .. }) => *total,
            Some(_) => type_mismatch(name, "counter"),
            None => 0,
        }
    }

    /// Per-rank shards of counter `name` (empty when absent or never
    /// attributed).
    pub fn counter_per_rank(&self, name: &str) -> Vec<(u32, u64)> {
        match self.inner.lock().unwrap().metrics.get(name) {
            Some(Metric::Counter { per_rank, .. }) => {
                per_rank.iter().map(|(&r, &v)| (r, v)).collect()
            }
            Some(_) => type_mismatch(name, "counter"),
            None => Vec::new(),
        }
    }

    /// Sets gauge `name`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        let mut g = self.inner.lock().unwrap();
        match g.metrics.entry(name.to_string()).or_insert(Metric::Gauge(v)) {
            Metric::Gauge(slot) => *slot = v,
            _ => type_mismatch(name, "gauge"),
        }
    }

    /// Reads gauge `name` (`None` when absent).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.inner.lock().unwrap().metrics.get(name) {
            Some(Metric::Gauge(v)) => Some(*v),
            Some(_) => type_mismatch(name, "gauge"),
            None => None,
        }
    }

    /// Records one sample into histogram `name`.
    pub fn observe(&self, name: &str, v: u64) {
        let mut g = self.inner.lock().unwrap();
        match g
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Hist(Box::default()))
        {
            Metric::Hist(h) => h.observe(v),
            _ => type_mismatch(name, "histogram"),
        }
    }

    /// Reads histogram `name` (`None` when absent).
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        match self.inner.lock().unwrap().metrics.get(name) {
            Some(Metric::Hist(h)) => Some((**h).clone()),
            Some(_) => type_mismatch(name, "histogram"),
            None => None,
        }
    }

    /// Removes every metric.
    pub fn reset(&self) {
        self.inner.lock().unwrap().metrics.clear();
    }

    /// Point-in-time copy of everything.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, m) in &g.metrics {
            match m {
                Metric::Counter { total, per_rank } => {
                    snap.counters.insert(name.clone(), *total);
                    if !per_rank.is_empty() {
                        snap.counters_per_rank.insert(name.clone(), per_rank.clone());
                    }
                }
                Metric::Gauge(v) => {
                    snap.gauges.insert(name.clone(), *v);
                }
                Metric::Hist(h) => {
                    snap.histograms.insert(name.clone(), (**h).clone());
                }
            }
        }
        snap
    }

    /// Serializes a snapshot as JSON (counters, gauges, histogram
    /// summaries).
    pub fn to_json(&self) -> Json {
        let snap = self.snapshot();
        let counters: Vec<(String, Json)> = snap
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
            .collect();
        let gauges: Vec<(String, Json)> = snap
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Num(v)))
            .collect();
        let hists: Vec<(String, Json)> = snap
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    obj([
                        ("count", Json::Num(h.count as f64)),
                        ("sum", Json::Num(h.sum as f64)),
                        ("mean", Json::Num(h.mean())),
                        ("p50", Json::Num(h.quantile(0.5) as f64)),
                        ("p99", Json::Num(h.quantile(0.99) as f64)),
                        ("max", Json::Num(if h.count == 0 { 0.0 } else { h.max as f64 })),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("counters".to_string(), Json::Obj(counters)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("histograms".to_string(), Json::Obj(hists)),
        ])
    }
}

/// Point-in-time copy of a registry's contents.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Merged counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Per-rank counter shards by name (only names that were attributed).
    pub counters_per_rank: BTreeMap<String, BTreeMap<u32, u64>>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_per_rank() {
        let m = MetricsRegistry::new();
        m.add_counter_rank("x", Some(0), 3);
        m.add_counter_rank("x", Some(1), 4);
        m.add_counter("x", 1);
        assert_eq!(m.counter("x"), 8);
        assert_eq!(m.counter_per_rank("x"), vec![(0, 3), (1, 4)]);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn gauges_and_reset() {
        let m = MetricsRegistry::new();
        m.set_gauge("g", 2.5);
        m.set_gauge("g", 3.5);
        assert_eq!(m.gauge("g"), Some(3.5));
        m.reset();
        assert_eq!(m.gauge("g"), None);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        assert!(h.quantile(0.5) >= 3);
        assert!(h.quantile(1.0) >= 1000);
        let mut h2 = Histogram::new();
        h2.observe(7);
        h.merge(&h2);
        assert_eq!(h.count, 6);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let m = MetricsRegistry::new();
        m.add_counter("x", 1);
        m.set_gauge("x", 1.0);
    }

    #[test]
    fn clone_shares_store() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        m2.add_counter("c", 5);
        assert_eq!(m.counter("c"), 5);
    }

    #[test]
    fn json_shape() {
        let m = MetricsRegistry::new();
        m.add_counter("c", 2);
        m.observe("h", 9);
        let j = m.to_json();
        assert_eq!(j.get("counters").unwrap().get("c").unwrap().as_f64().unwrap(), 2.0);
        assert_eq!(j.get("histograms").unwrap().get("h").unwrap().get("count").unwrap().as_f64().unwrap(), 1.0);
    }
}
