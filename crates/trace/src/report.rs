//! The post-run report: joins a recorded [`TraceLog`] against the static
//! [`Schedule`]'s predicted task costs and timeline.
//!
//! This is the validation loop the paper never had at run time: per task,
//! the modeled cost (in calibrated model seconds) next to the measured
//! span (wall nanoseconds); per rank, the compute / communication-wait /
//! idle split of the run; and the schedule's critical-path chain priced
//! both ways. The single scale factor `model_scale_ns` (measured ns per
//! model second, fitted over all matched tasks) is what makes the two
//! unit systems comparable: a task whose `measured / (cost ·
//! model_scale_ns)` ratio strays far from 1 is where the static model and
//! the machine disagree.

use crate::{Event, EventKind, TaskClass, TraceLog};
use pastix_json::{obj, Json};
use pastix_sched::{critical_path_chain, Schedule, SolveSchedule, TaskGraph};
use std::collections::HashMap;

/// Predicted-vs-measured row for one scheduled task.
#[derive(Debug, Clone, Copy)]
pub struct TaskRow {
    /// Task id.
    pub task: u32,
    /// Executing rank (from the trace; schedule owner if never seen).
    pub proc: u32,
    /// Task class recorded by the span.
    pub class: TaskClass,
    /// Modeled cost (model seconds).
    pub predicted_cost: f64,
    /// Predicted start (model seconds).
    pub predicted_start: f64,
    /// Measured execution time (ns; 0 when the task never appeared).
    pub measured_ns: u64,
    /// Measured begin timestamp (session clock).
    pub measured_at: u64,
}

/// Compute / comm-wait / idle accounting for one rank.
#[derive(Debug, Clone, Copy, Default)]
pub struct RankRow {
    /// Rank id.
    pub rank: u32,
    /// Time inside task spans (ns).
    pub compute_ns: u64,
    /// Time blocked in `recv()` (ns).
    pub wait_ns: u64,
    /// `window_ns - compute - wait`, clamped at 0.
    pub idle_ns: u64,
    /// First-to-last event distance (ns).
    pub window_ns: u64,
    /// Spans recorded.
    pub tasks: u64,
    /// Messages sent / dropped / received.
    pub sends: u64,
    /// Lossy sends dropped by fault injection.
    pub drops: u64,
    /// Messages received.
    pub recvs: u64,
    /// Bytes sent.
    pub send_bytes: u64,
}

/// Aggregated predicted-vs-measured totals for one task class — the raw
/// material of the closed calibration loop (`pastix-machine` turns the
/// per-class `measured_ns / predicted` ratios into a `TaskCalibration`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassStat {
    /// Matched tasks of this class.
    pub count: u64,
    /// Σ predicted cost (model seconds).
    pub predicted: f64,
    /// Σ measured span time (ns).
    pub measured_ns: u64,
}

impl ClassStat {
    /// Measured ns per model-second for this class (0 when unmatched).
    pub fn ns_per_cost(&self) -> f64 {
        if self.predicted > 0.0 { self.measured_ns as f64 / self.predicted } else { 0.0 }
    }
}

/// One idle hotspot: the largest inter-event gap on a rank — the place
/// to look when a timeline shows a hole.
#[derive(Debug, Clone)]
pub struct IdleHotspot {
    /// Rank id.
    pub rank: u32,
    /// Gap start (session clock).
    pub start_at: u64,
    /// Gap length (ns under the wall clock).
    pub gap_ns: u64,
    /// What the rank had just finished doing when it went quiet.
    pub after: String,
}

/// The schedule's critical-path chain, priced by model and by trace.
#[derive(Debug, Clone, Default)]
pub struct CriticalPathRow {
    /// Modeled critical-path length (model seconds).
    pub predicted: f64,
    /// Sum of measured spans along the chain (ns).
    pub measured_ns: u64,
    /// The chain, dependency order.
    pub tasks: Vec<u32>,
    /// How many chain tasks had a measured span.
    pub measured_tasks: usize,
}

/// The joined report. Built by [`build_report`].
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Schedule digest (replay key component).
    pub digest: u64,
    /// Wall time of the SPMD run (ns, from the log).
    pub wall_ns: u64,
    /// Trace makespan: max event timestamp − min event timestamp across
    /// ranks (ns; meaningful under the wall clock with a shared epoch).
    pub span_ns: u64,
    /// Per-task rows, task id order.
    pub tasks: Vec<TaskRow>,
    /// Per-rank rows, rank order.
    pub ranks: Vec<RankRow>,
    /// Critical-path breakdown.
    pub critical: CriticalPathRow,
    /// Σ predicted cost over matched tasks (model seconds).
    pub total_predicted: f64,
    /// Σ measured span time over matched tasks (ns).
    pub total_measured_ns: u64,
    /// Fitted ns-per-model-second scale (0 when nothing matched).
    pub model_scale_ns: f64,
    /// `span_ns / wall_ns`: how much of the run's wall time the trace
    /// accounts for (the ≤5% reconciliation gate of `bench_trace`).
    pub reconciliation: f64,
    /// Per-class predicted-vs-measured totals, indexed by the task-graph
    /// classes (`Comp1d`, `Factor`, `Bdiv`, `Bmod` = indices 0–3).
    pub class_stats: [ClassStat; 4],
    /// Prediction quality under the fitted global scale:
    /// `1 − Σ|measured − predicted·scale| / Σ measured` over matched
    /// tasks (1.0 = the model prices every task exactly; this is the
    /// number calibration must not worsen).
    pub prediction_fit: f64,
    /// Load imbalance: max rank compute time / mean rank compute time
    /// (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Worst idle gap per rank, largest first.
    pub hotspots: Vec<IdleHotspot>,
}

fn class_of_kind(g: &TaskGraph, t: usize) -> TaskClass {
    use pastix_sched::TaskKind;
    match g.kinds[t] {
        TaskKind::Comp1d { .. } => TaskClass::Comp1d,
        TaskKind::Factor { .. } => TaskClass::Factor,
        TaskKind::Bdiv { .. } => TaskClass::Bdiv,
        TaskKind::Bmod { .. } => TaskClass::Bmod,
    }
}

fn event_desc(kind: &EventKind) -> String {
    match *kind {
        EventKind::TaskBegin { task, class } => format!("{} {task} begin", class.name()),
        EventKind::TaskEnd { task, class } => format!("{} {task} end", class.name()),
        EventKind::Send { peer, .. } => format!("send to {peer}"),
        EventKind::SendDropped { peer, .. } => format!("dropped send to {peer}"),
        EventKind::Recv { peer, .. } => format!("recv from {peer}"),
        EventKind::Fence { phase: 0 } => "session begin".to_string(),
        EventKind::Fence { phase: u64::MAX } => "session end".to_string(),
        EventKind::Fence { phase } => format!("fence {phase}"),
        EventKind::Gauge { id, .. } => format!("gauge {}", crate::GaugeId::name_of(id)),
        EventKind::Heartbeat { seq } => format!("heartbeat {seq}"),
        EventKind::AsyncBegin { id, stage } => {
            format!("{} req {id} begin", crate::ServeStage::name_of(stage))
        }
        EventKind::AsyncEnd { id, stage } => {
            format!("{} req {id} end", crate::ServeStage::name_of(stage))
        }
        EventKind::FlowStart { id } => format!("flow {id} start"),
        EventKind::FlowEnd { id } => format!("flow {id} end"),
    }
}

/// Joins `log` against the schedule's predictions.
pub fn build_report(g: &TaskGraph, s: &Schedule, log: &TraceLog) -> TraceReport {
    let n = g.n_tasks();
    let mut measured = vec![0u64; n];
    let mut measured_at = vec![0u64; n];
    let mut run_rank = vec![u32::MAX; n];
    let mut ranks = Vec::with_capacity(log.ranks.len());
    let mut class_stats = [ClassStat::default(); 4];
    let mut hotspots: Vec<IdleHotspot> = Vec::new();
    let mut global_min = u64::MAX;
    let mut global_max = 0u64;
    for rt in &log.ranks {
        let mut row = RankRow {
            rank: rt.rank,
            sends: rt.comm.sends,
            drops: rt.comm.send_drops,
            recvs: rt.comm.recvs,
            send_bytes: rt.comm.send_bytes,
            ..RankRow::default()
        };
        // Open spans by task id (spans of one rank are well nested, but a
        // map keeps the join robust to truncated rings).
        let mut open: HashMap<(u32, u8), u64> = HashMap::new();
        let (mut first, mut last) = (u64::MAX, 0u64);
        let mut prev: Option<&Event> = None;
        let mut worst_gap: Option<IdleHotspot> = None;
        for ev in &rt.events {
            first = first.min(ev.at);
            last = last.max(ev.at);
            if let Some(p) = prev {
                let gap = ev.at.saturating_sub(p.at);
                if worst_gap.as_ref().map(|h| gap > h.gap_ns).unwrap_or(gap > 0) {
                    worst_gap = Some(IdleHotspot {
                        rank: rt.rank,
                        start_at: p.at,
                        gap_ns: gap,
                        after: event_desc(&p.kind),
                    });
                }
            }
            prev = Some(ev);
            match ev.kind {
                EventKind::TaskBegin { task, class } => {
                    open.insert((task, class as u8), ev.at);
                }
                EventKind::TaskEnd { task, class } => {
                    if let Some(b) = open.remove(&(task, class as u8)) {
                        let dt = ev.at.saturating_sub(b);
                        row.compute_ns += dt;
                        row.tasks += 1;
                        let t = task as usize;
                        if t < n && !matches!(class, TaskClass::Scatter | TaskClass::Seq) && !class.is_analyze() {
                            measured[t] += dt;
                            measured_at[t] = b;
                            run_rank[t] = rt.rank;
                        }
                    }
                }
                EventKind::Recv { wait_ns, .. } => row.wait_ns += wait_ns,
                _ => {}
            }
        }
        if first != u64::MAX {
            row.window_ns = last - first;
            global_min = global_min.min(first);
            global_max = global_max.max(last);
        }
        row.idle_ns = row.window_ns.saturating_sub(row.compute_ns + row.wait_ns);
        ranks.push(row);
        if let Some(h) = worst_gap {
            hotspots.push(h);
        }
    }
    hotspots.sort_by_key(|h| std::cmp::Reverse(h.gap_ns));

    let mut tasks = Vec::with_capacity(n);
    let mut total_predicted = 0.0f64;
    let mut total_measured = 0u64;
    for t in 0..n {
        if measured[t] > 0 {
            total_predicted += g.cost[t];
            total_measured += measured[t];
            let c = &mut class_stats[class_of_kind(g, t) as usize];
            c.count += 1;
            c.predicted += g.cost[t];
            c.measured_ns += measured[t];
        }
        tasks.push(TaskRow {
            task: t as u32,
            proc: if run_rank[t] != u32::MAX { run_rank[t] } else { s.task_proc[t] },
            class: class_of_kind(g, t),
            predicted_cost: g.cost[t],
            predicted_start: s.start[t],
            measured_ns: measured[t],
            measured_at: measured_at[t],
        });
    }

    let (cp_value, chain) = critical_path_chain(g);
    let mut cp_measured = 0u64;
    let mut cp_known = 0usize;
    for &t in &chain {
        if measured[t as usize] > 0 {
            cp_measured += measured[t as usize];
            cp_known += 1;
        }
    }

    let model_scale_ns =
        if total_predicted > 0.0 { total_measured as f64 / total_predicted } else { 0.0 };
    let mut abs_err = 0.0f64;
    for t in 0..n {
        if measured[t] > 0 {
            abs_err += (measured[t] as f64 - g.cost[t] * model_scale_ns).abs();
        }
    }
    let prediction_fit =
        if total_measured > 0 { 1.0 - abs_err / total_measured as f64 } else { 0.0 };

    let busy: Vec<u64> =
        ranks.iter().filter(|r| r.window_ns > 0).map(|r| r.compute_ns).collect();
    let imbalance = if busy.is_empty() {
        0.0
    } else {
        let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
        if mean > 0.0 { busy.iter().copied().max().unwrap() as f64 / mean } else { 0.0 }
    };

    let span_ns = if global_min == u64::MAX { 0 } else { global_max - global_min };
    TraceReport {
        digest: log.digest,
        wall_ns: log.wall_ns,
        span_ns,
        tasks,
        ranks,
        critical: CriticalPathRow {
            predicted: cp_value,
            measured_ns: cp_measured,
            tasks: chain,
            measured_tasks: cp_known,
        },
        total_predicted,
        total_measured_ns: total_measured,
        model_scale_ns,
        reconciliation: if log.wall_ns > 0 { span_ns as f64 / log.wall_ns as f64 } else { 0.0 },
        class_stats,
        prediction_fit,
        imbalance,
        hotspots,
    }
}

impl TraceReport {
    /// Serializes the report (the per-task array keeps the `top` largest
    /// measured tasks to bound the file; totals always cover everything).
    pub fn to_json(&self, top: usize) -> Json {
        let mut by_measured: Vec<&TaskRow> =
            self.tasks.iter().filter(|t| t.measured_ns > 0).collect();
        by_measured.sort_by_key(|t| std::cmp::Reverse(t.measured_ns));
        by_measured.truncate(top);
        let task_rows: Vec<Json> = by_measured
            .iter()
            .map(|t| {
                obj([
                    ("task", Json::Num(t.task as f64)),
                    ("class", Json::Str(t.class.name().to_string())),
                    ("proc", Json::Num(t.proc as f64)),
                    ("predicted_cost", Json::Num(t.predicted_cost)),
                    ("measured_ns", Json::Num(t.measured_ns as f64)),
                    (
                        "ratio_vs_model",
                        Json::Num(if self.model_scale_ns > 0.0 && t.predicted_cost > 0.0 {
                            t.measured_ns as f64 / (t.predicted_cost * self.model_scale_ns)
                        } else {
                            0.0
                        }),
                    ),
                ])
            })
            .collect();
        let rank_rows: Vec<Json> = self
            .ranks
            .iter()
            .map(|r| {
                obj([
                    ("rank", Json::Num(r.rank as f64)),
                    ("compute_ns", Json::Num(r.compute_ns as f64)),
                    ("wait_ns", Json::Num(r.wait_ns as f64)),
                    ("idle_ns", Json::Num(r.idle_ns as f64)),
                    ("window_ns", Json::Num(r.window_ns as f64)),
                    ("tasks", Json::Num(r.tasks as f64)),
                    ("sends", Json::Num(r.sends as f64)),
                    ("drops", Json::Num(r.drops as f64)),
                    ("recvs", Json::Num(r.recvs as f64)),
                    ("send_bytes", Json::Num(r.send_bytes as f64)),
                ])
            })
            .collect();
        let class_names = ["comp1d", "factor", "bdiv", "bmod"];
        let class_rows: Vec<Json> = self
            .class_stats
            .iter()
            .zip(class_names)
            .filter(|(c, _)| c.count > 0)
            .map(|(c, name)| {
                obj([
                    ("class", Json::Str(name.to_string())),
                    ("count", Json::Num(c.count as f64)),
                    ("predicted_cost", Json::Num(c.predicted)),
                    ("measured_ns", Json::Num(c.measured_ns as f64)),
                    ("ns_per_cost", Json::Num(c.ns_per_cost())),
                ])
            })
            .collect();
        let hotspot_rows: Vec<Json> = self
            .hotspots
            .iter()
            .map(|h| {
                obj([
                    ("rank", Json::Num(h.rank as f64)),
                    ("start_at", Json::Num(h.start_at as f64)),
                    ("gap_ns", Json::Num(h.gap_ns as f64)),
                    ("after", Json::Str(h.after.clone())),
                ])
            })
            .collect();
        obj([
            ("schedule_digest", Json::Str(format!("{:#018x}", self.digest))),
            ("wall_ns", Json::Num(self.wall_ns as f64)),
            ("trace_span_ns", Json::Num(self.span_ns as f64)),
            ("reconciliation", Json::Num(self.reconciliation)),
            ("prediction_fit", Json::Num(self.prediction_fit)),
            ("imbalance", Json::Num(self.imbalance)),
            ("total_predicted_cost", Json::Num(self.total_predicted)),
            ("total_measured_ns", Json::Num(self.total_measured_ns as f64)),
            ("model_scale_ns_per_cost", Json::Num(self.model_scale_ns)),
            ("class_stats", Json::Arr(class_rows)),
            ("idle_hotspots", Json::Arr(hotspot_rows)),
            (
                "critical_path",
                obj([
                    ("predicted_cost", Json::Num(self.critical.predicted)),
                    ("measured_ns", Json::Num(self.critical.measured_ns as f64)),
                    ("tasks", Json::Num(self.critical.tasks.len() as f64)),
                    ("measured_tasks", Json::Num(self.critical.measured_tasks as f64)),
                ]),
            ),
            ("ranks", Json::Arr(rank_rows)),
            ("top_tasks", Json::Arr(task_rows)),
        ])
    }

    /// Renders the human-oriented tables (`bench_trace` output).
    pub fn render_tables(&self, top: usize) -> String {
        let mut out = String::new();
        let ms = |ns: u64| ns as f64 / 1e6;
        out.push_str(&format!(
            "trace report  digest={:#018x}  wall={:.3} ms  trace-span={:.3} ms  reconciliation={:.2}%\n",
            self.digest,
            ms(self.wall_ns),
            ms(self.span_ns),
            self.reconciliation * 100.0
        ));
        out.push_str(&format!(
            "matched tasks: predicted={:.type_e$} model-s  measured={:.3} ms  scale={:.3e} ns/model-s\n\n",
            self.total_predicted,
            ms(self.total_measured_ns),
            self.model_scale_ns,
            type_e = 4,
        ));
        out.push_str("rank    compute_ms     wait_ms     idle_ms   tasks    sends   drops   recvs\n");
        for r in &self.ranks {
            out.push_str(&format!(
                "{:>4}  {:>12.3} {:>11.3} {:>11.3} {:>7} {:>8} {:>7} {:>7}\n",
                r.rank,
                ms(r.compute_ns),
                ms(r.wait_ns),
                ms(r.idle_ns),
                r.tasks,
                r.sends,
                r.drops,
                r.recvs
            ));
        }
        out.push_str(&format!(
            "\nload: imbalance (max/mean compute) {:.2}   prediction fit {:.2}%\n",
            self.imbalance,
            self.prediction_fit * 100.0
        ));
        let class_names = ["comp1d", "factor", "bdiv", "bmod"];
        for (c, name) in self.class_stats.iter().zip(class_names) {
            if c.count > 0 {
                out.push_str(&format!(
                    "  {:>7}: {:>6} tasks  measured {:>10.3} ms  {:.3e} ns/model-s\n",
                    name,
                    c.count,
                    ms(c.measured_ns),
                    c.ns_per_cost()
                ));
            }
        }
        if !self.hotspots.is_empty() {
            out.push_str("idle hotspots (worst gap per rank):\n");
            for h in self.hotspots.iter().take(top) {
                out.push_str(&format!(
                    "  rank {:>3}  {:>10.3} ms after {}\n",
                    h.rank,
                    ms(h.gap_ns),
                    h.after
                ));
            }
        }
        out.push_str(&format!(
            "\ncritical path: {} tasks, predicted {:.4} model-s, measured {:.3} ms over {} traced tasks\n\n",
            self.critical.tasks.len(),
            self.critical.predicted,
            ms(self.critical.measured_ns),
            self.critical.measured_tasks
        ));
        let mut by_measured: Vec<&TaskRow> =
            self.tasks.iter().filter(|t| t.measured_ns > 0).collect();
        by_measured.sort_by_key(|t| std::cmp::Reverse(t.measured_ns));
        by_measured.truncate(top);
        out.push_str("task      class   proc   predicted     measured_ms   vs-model\n");
        for t in by_measured {
            let ratio = if self.model_scale_ns > 0.0 && t.predicted_cost > 0.0 {
                t.measured_ns as f64 / (t.predicted_cost * self.model_scale_ns)
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:>6}  {:>7} {:>6}  {:>10.4e}  {:>12.4} {:>9.2}x\n",
                t.task,
                t.class.name(),
                t.proc,
                t.predicted_cost,
                ms(t.measured_ns),
                ratio
            ));
        }
        out
    }
}

/// Predicted-vs-measured reconciliation of a **solve** trace against its
/// [`SolveSchedule`]. Built by [`build_solve_report`].
///
/// Where the factorization report reconciles on wall-clock coverage, the
/// solve report reconciles on the schedule's *discrete* decisions — the
/// numbers that must hold exactly on the deterministic sim backend:
/// every task observed ([`coverage`](Self::coverage)), on its predicted
/// rank ([`placement`](Self::placement)), in its predicted per-rank order
/// ([`order`](Self::order)).
#[derive(Debug, Clone, Default)]
pub struct SolveReport {
    /// Trace digest (replay key component).
    pub digest: u64,
    /// Solve-schedule digest.
    pub schedule_digest: u64,
    /// Wall time of the solve run (ns, from the log).
    pub wall_ns: u64,
    /// Total scheduled solve tasks (`2 · n_cblks`).
    pub n_tasks: usize,
    /// Tasks with a matched begin/end span in the trace.
    pub matched: usize,
    /// `matched / n_tasks`.
    pub coverage: f64,
    /// Fraction of observed tasks that ran on their predicted rank.
    pub placement: f64,
    /// Per-rank predicted-order agreement: longest observed subsequence
    /// in predicted order over all observed tasks.
    pub order: f64,
    /// `min(coverage, placement, order)` — the ≥95% gate of
    /// `bench_serve`.
    pub reconciliation: f64,
    /// Σ predicted cost over matched tasks (madds).
    pub total_predicted: f64,
    /// Σ measured span time over matched tasks (ns).
    pub total_measured_ns: u64,
    /// Fitted ns-per-madd scale (0 when nothing matched).
    pub model_scale_ns: f64,
    /// `1 − Σ|measured − predicted·scale| / Σ measured` over matched
    /// tasks (informational under logical clocks).
    pub prediction_fit: f64,
}

/// Length of the longest strictly increasing subsequence (patience
/// sorting; `O(m log m)`). The order-agreement metric reduces to this
/// because every task id appears at most once per rank.
fn lis_len(seq: &[u32]) -> usize {
    let mut tails: Vec<u32> = Vec::new();
    for &x in seq {
        match tails.binary_search(&x) {
            Ok(i) | Err(i) => {
                if i == tails.len() {
                    tails.push(x);
                } else {
                    tails[i] = x;
                }
            }
        }
    }
    tails.len()
}

/// Joins a solve trace against the level-set [`SolveSchedule`].
///
/// Forward spans ([`TaskClass::FwdSolve`], keyed by cblk) map to solve
/// task `k`; backward spans ([`TaskClass::BwdSolve`]) to `n_cblks + k`.
pub fn build_solve_report(ss: &SolveSchedule, log: &TraceLog) -> SolveReport {
    let n = ss.n_tasks();
    let ns = ss.n_cblks;
    let mut measured = vec![0u64; n];
    let mut run_rank = vec![u32::MAX; n];
    // Per rank: observed solve task ids in completion order.
    let mut rank_obs: Vec<(u32, Vec<u32>)> = Vec::new();
    for rt in &log.ranks {
        let mut open: HashMap<(u32, u8), u64> = HashMap::new();
        let mut obs = Vec::new();
        for ev in &rt.events {
            match ev.kind {
                EventKind::TaskBegin { task, class }
                    if matches!(class, TaskClass::FwdSolve | TaskClass::BwdSolve) =>
                {
                    open.insert((task, class as u8), ev.at);
                }
                EventKind::TaskEnd { task, class }
                    if matches!(class, TaskClass::FwdSolve | TaskClass::BwdSolve) =>
                {
                    if let Some(b) = open.remove(&(task, class as u8)) {
                        let id = if matches!(class, TaskClass::FwdSolve) {
                            task as usize
                        } else {
                            ns + task as usize
                        };
                        if id < n {
                            measured[id] += ev.at.saturating_sub(b);
                            run_rank[id] = rt.rank;
                            obs.push(id as u32);
                        }
                    }
                }
                _ => {}
            }
        }
        rank_obs.push((rt.rank, obs));
    }

    let matched = run_rank.iter().filter(|&&r| r != u32::MAX).count();
    let coverage = if n > 0 { matched as f64 / n as f64 } else { 1.0 };
    let placed = (0..n)
        .filter(|&t| run_rank[t] != u32::MAX && run_rank[t] == ss.task_proc[t])
        .count();
    let placement = if matched > 0 { placed as f64 / matched as f64 } else { 1.0 };

    // Order agreement: per rank, map the observed completion sequence to
    // positions in that rank's predicted order, then score the longest
    // increasing subsequence. Tasks observed on an unpredicted rank are
    // scored by `placement`, not here.
    let mut order_num = 0usize;
    let mut order_den = 0usize;
    for (rank, obs) in &rank_obs {
        let Some(pred) = ss.proc_tasks.get(*rank as usize) else { continue };
        let pos: HashMap<u32, u32> =
            pred.iter().enumerate().map(|(i, &t)| (t, i as u32)).collect();
        let seq: Vec<u32> = obs.iter().filter_map(|t| pos.get(t).copied()).collect();
        order_num += lis_len(&seq);
        order_den += seq.len();
    }
    let order = if order_den > 0 { order_num as f64 / order_den as f64 } else { 1.0 };

    let mut total_predicted = 0.0f64;
    let mut total_measured = 0u64;
    for t in 0..n {
        if run_rank[t] != u32::MAX {
            total_predicted += ss.cost[t];
            total_measured += measured[t];
        }
    }
    let model_scale_ns =
        if total_predicted > 0.0 { total_measured as f64 / total_predicted } else { 0.0 };
    let mut abs_err = 0.0f64;
    for t in 0..n {
        if run_rank[t] != u32::MAX {
            abs_err += (measured[t] as f64 - ss.cost[t] * model_scale_ns).abs();
        }
    }
    let prediction_fit =
        if total_measured > 0 { 1.0 - abs_err / total_measured as f64 } else { 0.0 };

    SolveReport {
        digest: log.digest,
        schedule_digest: ss.digest(),
        wall_ns: log.wall_ns,
        n_tasks: n,
        matched,
        coverage,
        placement,
        order,
        reconciliation: coverage.min(placement).min(order),
        total_predicted,
        total_measured_ns: total_measured,
        model_scale_ns,
        prediction_fit,
    }
}

impl SolveReport {
    /// Serializes the reconciliation summary.
    pub fn to_json(&self) -> Json {
        obj([
            ("trace_digest", Json::Str(format!("{:#018x}", self.digest))),
            ("schedule_digest", Json::Str(format!("{:#018x}", self.schedule_digest))),
            ("wall_ns", Json::Num(self.wall_ns as f64)),
            ("n_tasks", Json::Num(self.n_tasks as f64)),
            ("matched", Json::Num(self.matched as f64)),
            ("coverage", Json::Num(self.coverage)),
            ("placement", Json::Num(self.placement)),
            ("order", Json::Num(self.order)),
            ("reconciliation", Json::Num(self.reconciliation)),
            ("total_predicted_cost", Json::Num(self.total_predicted)),
            ("total_measured_ns", Json::Num(self.total_measured_ns as f64)),
            ("model_scale_ns_per_cost", Json::Num(self.model_scale_ns)),
            ("prediction_fit", Json::Num(self.prediction_fit)),
        ])
    }

    /// One-line human summary (`bench_serve` output).
    pub fn render(&self) -> String {
        format!(
            "solve reconciliation: {:.2}% (coverage {:.2}%, placement {:.2}%, order {:.2}%) over {}/{} tasks, schedule {:#018x}",
            self.reconciliation * 100.0,
            self.coverage * 100.0,
            self.placement * 100.0,
            self.order * 100.0,
            self.matched,
            self.n_tasks,
            self.schedule_digest,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommCounters, Event, RankTrace};

    fn tiny_graph() -> (TaskGraph, Schedule) {
        let m = pastix_testsupport::grid_mapping(6, 6, 8, 2, &pastix_sched::SchedOptions::default());
        (m.graph, m.schedule)
    }

    #[test]
    fn report_joins_spans_with_predictions() {
        let (g, s) = tiny_graph();
        // Synthesize a trace: rank 0 runs task 0 for 100 ns.
        let class = class_of_kind(&g, 0);
        let rt = RankTrace {
            rank: 0,
            events: vec![
                Event { at: 10, kind: EventKind::TaskBegin { task: 0, class } },
                Event { at: 110, kind: EventKind::TaskEnd { task: 0, class } },
                Event { at: 120, kind: EventKind::Recv { peer: 1, bytes: 8, kind: 0, wait_ns: 5 } },
            ],
            dropped_events: 0,
            comm: CommCounters { recvs: 1, recv_bytes: 8, ..Default::default() },
        };
        let log = TraceLog { ranks: vec![rt], wall_ns: 120, digest: 7 };
        let rep = build_report(&g, &s, &log);
        assert_eq!(rep.tasks[0].measured_ns, 100);
        assert_eq!(rep.total_measured_ns, 100);
        assert!(rep.model_scale_ns > 0.0);
        assert_eq!(rep.ranks[0].wait_ns, 5);
        assert_eq!(rep.ranks[0].compute_ns, 100);
        assert!(!rep.critical.tasks.is_empty());
        assert!((rep.reconciliation - 110.0 / 120.0).abs() < 1e-12);
        // One matched task: the global fit is exact and its class stat
        // carries the whole measurement.
        assert!((rep.prediction_fit - 1.0).abs() < 1e-12);
        let total_class: u64 = rep.class_stats.iter().map(|c| c.measured_ns).sum();
        assert_eq!(total_class, 100);
        assert!((rep.imbalance - 1.0).abs() < 1e-12);
        assert_eq!(rep.hotspots.len(), 1);
        assert_eq!(rep.hotspots[0].rank, 0);
        // JSON and tables render without panicking and carry the digest.
        let j = rep.to_json(10);
        assert!(j.get("schedule_digest").is_some());
        assert!(rep.render_tables(5).contains("critical path"));
    }

    fn solve_span(rank_events: &mut Vec<Event>, at: &mut u64, task: u32, class: TaskClass) {
        rank_events.push(Event { at: *at, kind: EventKind::TaskBegin { task, class } });
        *at += 1;
        rank_events.push(Event { at: *at, kind: EventKind::TaskEnd { task, class } });
        *at += 1;
    }

    #[test]
    fn solve_report_reconciles_a_faithful_trace() {
        use pastix_sched::solve_schedule;
        let (g, s) = tiny_graph();
        let ss = solve_schedule(&g, &s);
        let ns = ss.n_cblks;
        // Synthesize the exact predicted execution: every rank runs its
        // own tasks in predicted order under a logical clock.
        let mut ranks = Vec::new();
        for p in 0..ss.n_procs {
            let mut events = Vec::new();
            let mut at = 1u64;
            for &t in &ss.proc_tasks[p] {
                let t = t as usize;
                let (task, class) = if t < ns {
                    (t as u32, TaskClass::FwdSolve)
                } else {
                    ((t - ns) as u32, TaskClass::BwdSolve)
                };
                solve_span(&mut events, &mut at, task, class);
            }
            ranks.push(RankTrace {
                rank: p as u32,
                events,
                dropped_events: 0,
                comm: CommCounters::default(),
            });
        }
        let log = TraceLog { ranks, wall_ns: 100, digest: 3 };
        let rep = build_solve_report(&ss, &log);
        assert_eq!(rep.n_tasks, 2 * ns);
        assert_eq!(rep.matched, 2 * ns);
        assert!((rep.coverage - 1.0).abs() < 1e-12);
        assert!((rep.placement - 1.0).abs() < 1e-12);
        assert!((rep.order - 1.0).abs() < 1e-12);
        assert!((rep.reconciliation - 1.0).abs() < 1e-12, "{}", rep.render());
        assert_eq!(rep.schedule_digest, ss.digest());
        assert!(rep.to_json().get("reconciliation").is_some());

        // Shuffle one rank's completion order: order degrades, the other
        // components stay perfect, and reconciliation takes the min.
        let mut bad = log.clone();
        let ev = &mut bad.ranks[0].events;
        if ev.len() >= 4 {
            ev.swap(0, 2);
            ev.swap(1, 3);
        }
        let rep2 = build_solve_report(&ss, &bad);
        assert!(rep2.order < 1.0);
        assert!((rep2.coverage - 1.0).abs() < 1e-12);
        assert!((rep2.reconciliation - rep2.order).abs() < 1e-12);

        // Dropping a rank's spans entirely degrades coverage.
        let mut sparse = log.clone();
        sparse.ranks[0].events.clear();
        let rep3 = build_solve_report(&ss, &sparse);
        assert!(rep3.coverage < 1.0);
        assert!(rep3.reconciliation <= rep3.coverage);
    }
}
