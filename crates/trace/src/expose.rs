//! Metrics exposition: a dependency-free Prometheus scrape endpoint and a
//! periodic file snapshot writer.
//!
//! Both consume a [`MetricsRegistry`] handle (an `Arc` bump), so a serving
//! process can expose the same registry its `SolverSession` writes into.
//! The HTTP surface is deliberately tiny — one blocking accept loop on a
//! `std::net::TcpListener`, answering every request with the current
//! [`MetricsSnapshot::to_prometheus`] rendering — because a scrape target
//! needs exactly that and nothing else, and the workspace is offline (no
//! HTTP crate to lean on).

use crate::metrics::MetricsRegistry;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A background Prometheus scrape endpoint. Dropping the server (or
/// calling [`MetricsServer::shutdown`]) stops the accept loop and joins
/// the thread.
pub struct MetricsServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer").field("addr", &self.addr).finish()
    }
}

impl MetricsServer {
    /// Binds `addr` (use port 0 for an ephemeral port; see
    /// [`MetricsServer::local_addr`]) and starts answering every HTTP
    /// request with the registry's current Prometheus rendering.
    pub fn bind(addr: impl ToSocketAddrs, registry: MetricsRegistry) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("pastix-metrics".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // One request per connection; scrape bodies are small
                    // and errors just drop the connection (the scraper
                    // retries).
                    let _ = serve_one(stream, &registry);
                }
            })?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

fn serve_one(mut stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Read (and discard) the request line + headers; we serve one document
    // regardless of path, so parsing stops at the blank line.
    let mut buf = [0u8; 1024];
    let mut seen: Vec<u8> = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        seen.extend_from_slice(&buf[..n]);
        if seen.windows(4).any(|w| w == b"\r\n\r\n") || seen.len() > 16 * 1024 {
            break;
        }
    }
    let body = registry.snapshot().to_prometheus();
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A background thread that rewrites a metrics snapshot file every
/// `interval` — file-based scraping for deployments that cannot open a
/// port. The write is atomic (temp file + rename) so a concurrent reader
/// never sees a torn document.
pub struct SnapshotWriter {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    path: PathBuf,
}

impl std::fmt::Debug for SnapshotWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotWriter").field("path", &self.path).finish()
    }
}

impl SnapshotWriter {
    /// Starts writing the registry's Prometheus rendering to `path` every
    /// `interval` (first write is immediate).
    pub fn start(
        path: impl Into<PathBuf>,
        interval: Duration,
        registry: MetricsRegistry,
    ) -> std::io::Result<Self> {
        let path = path.into();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let path2 = path.clone();
        let handle = std::thread::Builder::new()
            .name("pastix-snapshot".into())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    write_atomic(&path2, &registry.snapshot().to_prometheus());
                    // Sleep in short slices so shutdown is prompt.
                    let mut left = interval;
                    while !stop2.load(Ordering::Acquire) && !left.is_zero() {
                        let step = left.min(Duration::from_millis(50));
                        std::thread::sleep(step);
                        left = left.saturating_sub(step);
                    }
                }
                // Final write so the file reflects end-of-run totals.
                write_atomic(&path2, &registry.snapshot().to_prometheus());
            })?;
        Ok(Self {
            stop,
            handle: Some(handle),
            path,
        })
    }

    /// The snapshot file path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Stops the writer after one final snapshot and joins the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SnapshotWriter {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

fn write_atomic(path: &std::path::Path, body: &str) {
    let tmp = path.with_extension("tmp");
    if std::fs::write(&tmp, body).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: std::net::SocketAddr) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn scrape_endpoint_serves_prometheus_text() {
        let m = MetricsRegistry::new();
        m.add_counter("serve.requests", 7);
        m.observe("serve.latency_ns", 1234);
        let server = MetricsServer::bind("127.0.0.1:0", m.clone()).unwrap();
        let resp = http_get(server.local_addr());
        assert!(resp.starts_with("HTTP/1.1 200 OK"));
        assert!(resp.contains("pastix_serve_requests 7"));
        assert!(resp.contains("pastix_serve_latency_ns_count 1"));
        // The endpoint reads the live registry: later writes show up.
        m.add_counter("serve.requests", 3);
        let resp = http_get(server.local_addr());
        assert!(resp.contains("pastix_serve_requests 10"));
        server.shutdown();
    }

    #[test]
    fn snapshot_writer_emits_file() {
        let m = MetricsRegistry::new();
        m.add_counter("serve.batches", 2);
        let path = std::env::temp_dir().join("pastix-expose-test.prom");
        let w = SnapshotWriter::start(&path, Duration::from_secs(3600), m).unwrap();
        w.shutdown(); // immediate first write + final write
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("pastix_serve_batches 2"));
        let _ = std::fs::remove_file(&path);
    }
}
