//! Property tests for the adversarial scheduling policies.
//!
//! The simulator's contract is that a `SchedPolicy` only reshapes the
//! *interleaving* — which enabled action fires next — never the *values* a
//! correct program computes. These tests drive the resilient collectives
//! (barrier, broadcast, all-reduce) under every policy with lossy faults
//! enabled and assert the results are byte-identical to the uniform
//! baseline, across randomly drawn seeds, world sizes, and fault rates.

use pastix_runtime::collective::{CollMsg, Collectives};
use pastix_runtime::sim::{FaultPlan, SchedPolicy};
use pastix_runtime::{run_spmd_with, Backend, Comm};
use proptest::prelude::*;

/// One SPMD program exercising all three collectives; returns the tuple of
/// results every rank observed so the caller can compare whole executions.
fn run_collectives(n_procs: usize, plan: FaultPlan) -> Vec<(i64, i64, i64)> {
    run_spmd_with(
        &Backend::Sim(plan),
        n_procs,
        |ctx: &dyn Comm<CollMsg<i64>>| {
            let mut coll = Collectives::new();
            coll.barrier(ctx, 0, 0);
            let b = coll.broadcast(ctx, 1, 0, (ctx.rank() == 0).then_some(41));
            let s = coll.all_reduce(ctx, 2, ctx.rank() as i64 + 1, |a, c| a + c);
            let m = coll.all_reduce(ctx, 3, ctx.rank() as i64 * 3, i64::max);
            (b, s, m)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every `SchedPolicy`, the collectives return values identical to
    /// the uniform policy on the same seed — adversarial scheduling may
    /// starve, reorder, or FIFO-restrict delivery but never change results.
    #[test]
    fn every_policy_matches_uniform_collectives(
        seed in 0u64..100_000,
        n_procs in 2usize..5,
        drop in 0.0f64..0.35,
        dup in 0.0f64..0.35,
        victim in 0usize..8,
    ) {
        let base_plan = FaultPlan::builder(seed)
            .drop_lossy(drop)
            .duplicate_lossy(dup)
            .build();
        let baseline = run_collectives(n_procs, base_plan);
        prop_assert_eq!(baseline.len(), n_procs);
        let expect_sum: i64 = (1..=n_procs as i64).sum();
        for (rank, &(b, s, m)) in baseline.iter().enumerate() {
            prop_assert_eq!(b, 41, "rank {} broadcast under Uniform", rank);
            prop_assert_eq!(s, expect_sum, "rank {} sum under Uniform", rank);
            prop_assert_eq!(m, (n_procs as i64 - 1) * 3, "rank {} max under Uniform", rank);
        }
        let policies = [
            SchedPolicy::Uniform,
            SchedPolicy::StarveRank(victim % n_procs),
            SchedPolicy::DeliverLast,
            SchedPolicy::FifoPerPair,
        ];
        for policy in policies {
            let plan = FaultPlan::builder(seed)
                .drop_lossy(drop)
                .duplicate_lossy(dup)
                .policy(policy)
                .build();
            let got = run_collectives(n_procs, plan);
            prop_assert_eq!(
                &got, &baseline,
                "policy {:?} diverged from Uniform (seed {}, p={}, drop={}, dup={})",
                policy, seed, n_procs, drop, dup
            );
        }
    }

    /// Same `(seed, policy)` replays the same execution: the whole point of
    /// the deadlock dump naming the pair is that it is sufficient to replay.
    #[test]
    fn seed_policy_pair_replays_identically(
        seed in 0u64..100_000,
        n_procs in 2usize..5,
        which in 0usize..4,
    ) {
        let policy = match which {
            0 => SchedPolicy::Uniform,
            1 => SchedPolicy::StarveRank(seed as usize % n_procs),
            2 => SchedPolicy::DeliverLast,
            _ => SchedPolicy::FifoPerPair,
        };
        let plan = FaultPlan::builder(seed)
            .drop_lossy(0.2)
            .duplicate_lossy(0.2)
            .policy(policy)
            .build();
        let a = run_collectives(n_procs, plan);
        let b = run_collectives(n_procs, plan);
        prop_assert_eq!(a, b, "replay of (seed {}, policy {:?}) diverged", seed, policy);
    }
}
